//! Property-based tests for the packed arithmetic kernels.

use mom3d_simd::*;
use proptest::prelude::*;

fn widths() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B8),
        Just(Width::H16),
        Just(Width::W32),
        Just(Width::D64)
    ]
}

proptest! {
    #[test]
    fn add_wrap_is_commutative(a: u64, b: u64, w in widths()) {
        prop_assert_eq!(add_wrap(a, b, w), add_wrap(b, a, w));
    }

    #[test]
    fn add_sub_wrap_roundtrip(a: u64, b: u64, w in widths()) {
        prop_assert_eq!(sub_wrap(add_wrap(a, b, w), b, w), a);
    }

    #[test]
    fn add_wrap_matches_scalar_per_lane(a: u64, b: u64, w in widths()) {
        let r = add_wrap(a, b, w);
        for i in 0..w.lanes() {
            let expect = (lane(a, i, w).wrapping_add(lane(b, i, w))) & w.mask();
            prop_assert_eq!(lane(r, i, w), expect);
        }
    }

    #[test]
    fn saturating_unsigned_bounds(a: u64, b: u64, w in widths()) {
        let r = add_sat_u(a, b, w);
        for i in 0..w.lanes() {
            let exact = lane(a, i, w) as u128 + lane(b, i, w) as u128;
            let lane_v = lane(r, i, w) as u128;
            prop_assert_eq!(lane_v, exact.min(w.umax() as u128));
        }
    }

    #[test]
    fn saturating_signed_bounds(a: u64, b: u64, w in widths()) {
        let r = add_sat_s(a, b, w);
        for i in 0..w.lanes() {
            let exact = sext(lane(a, i, w), w) as i128 + sext(lane(b, i, w), w) as i128;
            let clamped = exact.clamp(w.smin() as i128, w.smax() as i128);
            prop_assert_eq!(sext(lane(r, i, w), w) as i128, clamped);
        }
    }

    #[test]
    fn min_max_partition(a: u64, b: u64, w in widths()) {
        // Every lane of min is <= the corresponding lane of max, and
        // {min,max} lanes are a permutation of the inputs' lanes.
        let lo = min_u(a, b, w);
        let hi = max_u(a, b, w);
        for i in 0..w.lanes() {
            prop_assert!(lane(lo, i, w) <= lane(hi, i, w));
            let pair = (lane(lo, i, w), lane(hi, i, w));
            let input = (lane(a, i, w).min(lane(b, i, w)), lane(a, i, w).max(lane(b, i, w)));
            prop_assert_eq!(pair, input);
        }
    }

    #[test]
    fn abs_diff_triangle(a: u64, b: u64, c: u64) {
        // Per-lane triangle inequality on bytes: |a-c| <= |a-b| + |b-c|.
        for i in 0..8 {
            let (x, y, z) = (lane(a, i, Width::B8), lane(b, i, Width::B8), lane(c, i, Width::B8));
            prop_assert!(x.abs_diff(z) <= x.abs_diff(y) + y.abs_diff(z));
        }
    }

    #[test]
    fn sad_is_hsum_of_absdiff(a: u64, b: u64) {
        prop_assert_eq!(sad_u8(a, b), hsum_u(abs_diff_u(a, b, Width::B8), Width::B8));
        prop_assert_eq!(sad_u8(a, b), sad_u8(b, a));
        prop_assert_eq!(sad_u8(a, a), 0);
    }

    #[test]
    fn avg_between_min_and_max(a: u64, b: u64, w in widths()) {
        let r = avg_u(a, b, w);
        for i in 0..w.lanes() {
            let (x, y) = (lane(a, i, w), lane(b, i, w));
            prop_assert!(lane(r, i, w) >= x.min(y));
            prop_assert!(lane(r, i, w) <= x.max(y).saturating_add(1));
        }
    }

    #[test]
    fn unpack_preserves_lanes(a: u64, b: u64) {
        let lo = unpack_lo(a, b, Width::B8);
        let hi = unpack_hi(a, b, Width::B8);
        let mut from_a: Vec<u64> = (0..8).map(|i| lane(a, i, Width::B8)).collect();
        let mut from_interleave: Vec<u64> = (0..4)
            .map(|i| lane(lo, 2 * i, Width::B8))
            .chain((0..4).map(|i| lane(hi, 2 * i, Width::B8)))
            .collect();
        from_a.sort_unstable();
        from_interleave.sort_unstable();
        prop_assert_eq!(from_a, from_interleave);
    }

    #[test]
    fn zext_then_pack_roundtrips(a: u64) {
        prop_assert_eq!(pack_s16_to_u8_sat(zext_lo_u8(a), zext_hi_u8(a)), a);
    }

    #[test]
    fn shifts_match_scalar(a: u64, amt in 0u32..70, w in widths()) {
        let r = shl(a, amt, w);
        for i in 0..w.lanes() {
            let expect = if amt >= w.bits() { 0 } else { (lane(a, i, w) << amt) & w.mask() };
            prop_assert_eq!(lane(r, i, w), expect);
        }
        let r = shr_logic(a, amt, w);
        for i in 0..w.lanes() {
            let expect = if amt >= w.bits() { 0 } else { lane(a, i, w) >> amt };
            prop_assert_eq!(lane(r, i, w), expect);
        }
        let r = shr_arith(a, amt, w);
        for i in 0..w.lanes() {
            let expect = (sext(lane(a, i, w), w) >> amt.min(w.bits() - 1)) as u64 & w.mask();
            prop_assert_eq!(lane(r, i, w), expect);
        }
    }

    #[test]
    fn madd_matches_scalar(a: u64, b: u64) {
        let r = madd_s16(a, b);
        for p in 0..2 {
            let i = 2 * p;
            let expect = sext(lane(a, i, Width::H16), Width::H16)
                * sext(lane(b, i, Width::H16), Width::H16)
                + sext(lane(a, i + 1, Width::H16), Width::H16)
                    * sext(lane(b, i + 1, Width::H16), Width::H16);
            prop_assert_eq!(sext(lane(r, p, Width::W32), Width::W32), (expect as i32) as i64);
        }
    }

    #[test]
    fn cmp_masks_are_all_or_nothing(a: u64, b: u64, w in widths()) {
        let eq = cmp_eq(a, b, w);
        let gt = cmp_gt_s(a, b, w);
        for i in 0..w.lanes() {
            prop_assert!(lane(eq, i, w) == 0 || lane(eq, i, w) == w.mask());
            prop_assert!(lane(gt, i, w) == 0 || lane(gt, i, w) == w.mask());
            // A lane cannot be both equal and strictly greater.
            prop_assert!(!(lane(eq, i, w) == w.mask() && lane(gt, i, w) == w.mask()));
        }
    }

    #[test]
    fn accumulator_matches_i128_sum(vals in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut acc = Accumulator::new();
        let mut expect = 0i128;
        for v in &vals {
            acc.add_packed_u(*v, Width::H16);
            expect += hsum_u(*v, Width::H16) as i128;
        }
        prop_assert_eq!(acc.value(), expect);
    }
}
