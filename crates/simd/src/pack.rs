//! Pack, unpack and interleave operations (`pack*`, `punpck*`).

use crate::lanes::{lane, set_lane, sext, Width};

#[inline]
fn sat_u8(v: i64) -> u64 {
    v.clamp(0, 255) as u64
}

#[inline]
fn sat_s8(v: i64) -> u64 {
    (v.clamp(-128, 127) as u64) & 0xFF
}

#[inline]
fn sat_s16(v: i64) -> u64 {
    (v.clamp(-32768, 32767) as u64) & 0xFFFF
}

#[inline]
fn sat_u16(v: i64) -> u64 {
    v.clamp(0, 65535) as u64
}

/// Packs eight signed 16-bit lanes (from `lo`, then `hi`) into eight
/// unsigned-saturated bytes — `packuswb`.
///
/// The classic final step of IDCT + motion compensation: clamp pixel
/// values into `[0, 255]`.
#[inline]
pub fn pack_s16_to_u8_sat(lo: u64, hi: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..4 {
        out = set_lane(out, i, sat_u8(sext(lane(lo, i, Width::H16), Width::H16)), Width::B8);
        out = set_lane(out, i + 4, sat_u8(sext(lane(hi, i, Width::H16), Width::H16)), Width::B8);
    }
    out
}

/// Packs eight signed 16-bit lanes into signed-saturated bytes — `packsswb`.
#[inline]
pub fn pack_s16_to_s8_sat(lo: u64, hi: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..4 {
        out = set_lane(out, i, sat_s8(sext(lane(lo, i, Width::H16), Width::H16)), Width::B8);
        out = set_lane(out, i + 4, sat_s8(sext(lane(hi, i, Width::H16), Width::H16)), Width::B8);
    }
    out
}

/// Packs four signed 32-bit lanes into signed-saturated halfwords — `packssdw`.
#[inline]
pub fn pack_s32_to_s16_sat(lo: u64, hi: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..2 {
        out = set_lane(out, i, sat_s16(sext(lane(lo, i, Width::W32), Width::W32)), Width::H16);
        out = set_lane(out, i + 2, sat_s16(sext(lane(hi, i, Width::W32), Width::W32)), Width::H16);
    }
    out
}

/// Packs four signed 32-bit lanes into unsigned-saturated halfwords.
#[inline]
pub fn pack_s32_to_u16_sat(lo: u64, hi: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..2 {
        out = set_lane(out, i, sat_u16(sext(lane(lo, i, Width::W32), Width::W32)), Width::H16);
        out = set_lane(out, i + 2, sat_u16(sext(lane(hi, i, Width::W32), Width::W32)), Width::H16);
    }
    out
}

/// Interleaves the low lanes of `a` and `b` — `punpckl`.
///
/// Result lane `2i` comes from `a`, lane `2i + 1` from `b`, using the low
/// half of each source.
#[inline]
pub fn unpack_lo(a: u64, b: u64, w: Width) -> u64 {
    assert!(w != Width::D64, "cannot interleave 64-bit lanes within a 64-bit word");
    let mut out = 0u64;
    for i in 0..w.lanes() / 2 {
        out = set_lane(out, 2 * i, lane(a, i, w), w);
        out = set_lane(out, 2 * i + 1, lane(b, i, w), w);
    }
    out
}

/// Interleaves the high lanes of `a` and `b` — `punpckh`.
#[inline]
pub fn unpack_hi(a: u64, b: u64, w: Width) -> u64 {
    assert!(w != Width::D64, "cannot interleave 64-bit lanes within a 64-bit word");
    let half = w.lanes() / 2;
    let mut out = 0u64;
    for i in 0..half {
        out = set_lane(out, 2 * i, lane(a, half + i, w), w);
        out = set_lane(out, 2 * i + 1, lane(b, half + i, w), w);
    }
    out
}

/// Zero-extends the low four unsigned bytes to 16-bit lanes.
///
/// Equivalent to `punpcklbw a, 0`: the standard way to promote pixels
/// before 16-bit arithmetic.
#[inline]
pub fn zext_lo_u8(a: u64) -> u64 {
    unpack_lo(a, 0, Width::B8)
}

/// Zero-extends the high four unsigned bytes to 16-bit lanes.
#[inline]
pub fn zext_hi_u8(a: u64) -> u64 {
    unpack_hi(a, 0, Width::B8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(xs: [u16; 4]) -> u64 {
        let mut v = 0u64;
        for (i, x) in xs.into_iter().enumerate() {
            v |= (x as u64) << (16 * i);
        }
        v
    }

    #[test]
    fn packuswb_clamps() {
        // -5 -> 0, 300 -> 255, 17 -> 17, 0 -> 0
        let lo = h([0xFFFB, 300, 17, 0]);
        let hi = h([255, 256, 1, 0x8000]);
        let r = pack_s16_to_u8_sat(lo, hi);
        assert_eq!(r.to_le_bytes(), [0, 255, 17, 0, 255, 255, 1, 0]);
    }

    #[test]
    fn packsswb_clamps_signed() {
        let lo = h([200, 0xFF00, 5, 0]); // 200 -> 127, -256 -> -128
        let r = pack_s16_to_s8_sat(lo, 0);
        assert_eq!(r.to_le_bytes()[0], 127);
        assert_eq!(r.to_le_bytes()[1] as i8, -128);
        assert_eq!(r.to_le_bytes()[2], 5);
    }

    #[test]
    fn packssdw_clamps() {
        let lo = (0x0001_0000u64) | ((0xFFFF_0000u64) << 32); // 65536, -65536
        let r = pack_s32_to_s16_sat(lo, 0);
        assert_eq!(lane(r, 0, Width::H16), 32767);
        assert_eq!(sext(lane(r, 1, Width::H16), Width::H16), -32768);
    }

    #[test]
    fn pack_s32_to_u16_clamps_at_zero() {
        let lo = (70000u64) | ((0xFFFF_FFFFu64) << 32); // 70000, -1
        let r = pack_s32_to_u16_sat(lo, 0);
        assert_eq!(lane(r, 0, Width::H16), 65535);
        assert_eq!(lane(r, 1, Width::H16), 0);
    }

    #[test]
    fn unpack_lo_bytes_interleaves() {
        let a = u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = u64::from_le_bytes([11, 12, 13, 14, 15, 16, 17, 18]);
        assert_eq!(unpack_lo(a, b, Width::B8).to_le_bytes(), [1, 11, 2, 12, 3, 13, 4, 14]);
        assert_eq!(unpack_hi(a, b, Width::B8).to_le_bytes(), [5, 15, 6, 16, 7, 17, 8, 18]);
    }

    #[test]
    fn unpack_halfwords() {
        let a = h([1, 2, 3, 4]);
        let b = h([5, 6, 7, 8]);
        assert_eq!(unpack_lo(a, b, Width::H16), h([1, 5, 2, 6]));
        assert_eq!(unpack_hi(a, b, Width::H16), h([3, 7, 4, 8]));
    }

    #[test]
    fn zext_promotes_pixels() {
        let a = u64::from_le_bytes([255, 1, 128, 0, 9, 10, 11, 12]);
        assert_eq!(zext_lo_u8(a), h([255, 1, 128, 0]));
        assert_eq!(zext_hi_u8(a), h([9, 10, 11, 12]));
    }

    #[test]
    #[should_panic(expected = "64-bit lanes")]
    fn unpack_d64_panics() {
        unpack_lo(0, 0, Width::D64);
    }

    #[test]
    fn pack_unpack_roundtrip_bytes() {
        // Zero-extend then pack must reproduce the original bytes.
        let a = u64::from_le_bytes([0, 1, 127, 128, 200, 255, 33, 66]);
        let lo = zext_lo_u8(a);
        let hi = zext_hi_u8(a);
        assert_eq!(pack_s16_to_u8_sat(lo, hi), a);
    }
}
