//! Packed arithmetic, comparison and shift operations.

use crate::lanes::{lane, map_lanes2, set_lane, sext, Width};

/// Lane-wise wrapping (modular) addition — `padd`.
#[inline]
pub fn add_wrap(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| x.wrapping_add(y))
}

/// Lane-wise wrapping (modular) subtraction — `psub`.
#[inline]
pub fn sub_wrap(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| x.wrapping_sub(y))
}

/// Lane-wise unsigned saturating addition — `paddus`.
#[inline]
pub fn add_sat_u(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| (x as u128 + y as u128).min(w.umax() as u128) as u64)
}

/// Lane-wise unsigned saturating subtraction — `psubus`.
#[inline]
pub fn sub_sat_u(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| x.saturating_sub(y))
}

/// Lane-wise signed saturating addition — `padds`.
#[inline]
pub fn add_sat_s(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| {
        let s = sext(x, w) as i128 + sext(y, w) as i128;
        s.clamp(w.smin() as i128, w.smax() as i128) as u64
    })
}

/// Lane-wise signed saturating subtraction — `psubs`.
#[inline]
pub fn sub_sat_s(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| {
        let s = sext(x, w) as i128 - sext(y, w) as i128;
        s.clamp(w.smin() as i128, w.smax() as i128) as u64
    })
}

/// Lane-wise unsigned minimum — `pminu`.
#[inline]
pub fn min_u(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| x.min(y))
}

/// Lane-wise unsigned maximum — `pmaxu`.
#[inline]
pub fn max_u(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| x.max(y))
}

/// Lane-wise signed minimum — `pmins`.
#[inline]
pub fn min_s(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| {
        if sext(x, w) <= sext(y, w) {
            x
        } else {
            y
        }
    })
}

/// Lane-wise signed maximum — `pmaxs`.
#[inline]
pub fn max_s(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| {
        if sext(x, w) >= sext(y, w) {
            x
        } else {
            y
        }
    })
}

/// Lane-wise unsigned absolute difference `|a - b|`.
///
/// The building block of motion-estimation SAD kernels.
#[inline]
pub fn abs_diff_u(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| x.abs_diff(y))
}

/// Sum of absolute differences of the eight unsigned bytes — `psadbw`.
///
/// Returns the 16-bit sum zero-extended into a 64-bit word, exactly like
/// the MMX/SSE `PSADBW` result (maximum value `8 * 255 = 2040`).
///
/// ```
/// let a = u64::from_le_bytes([10, 0, 0, 0, 0, 0, 0, 0]);
/// let b = u64::from_le_bytes([3, 0, 0, 0, 0, 0, 0, 0]);
/// assert_eq!(mom3d_simd::sad_u8(a, b), 7);
/// ```
#[inline]
pub fn sad_u8(a: u64, b: u64) -> u64 {
    let mut sum = 0u64;
    for i in 0..8 {
        sum += lane(a, i, Width::B8).abs_diff(lane(b, i, Width::B8));
    }
    sum
}

/// Lane-wise rounding unsigned average `(a + b + 1) >> 1` — `pavg`.
///
/// Used by MPEG-2 half-pel motion compensation.
#[inline]
pub fn avg_u(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| ((x as u128 + y as u128 + 1) >> 1) as u64)
}

/// Lane-wise multiply keeping the low half of each product — `pmull`.
///
/// Defined for 16-bit and 32-bit lanes (the MMX repertoire).
#[inline]
pub fn mul_low_16(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| x.wrapping_mul(y))
}

/// Lane-wise signed 16-bit multiply keeping the high half — `pmulhw`.
#[inline]
pub fn mul_high_s16(a: u64, b: u64) -> u64 {
    map_lanes2(a, b, Width::H16, |x, y| {
        let p = sext(x, Width::H16) * sext(y, Width::H16);
        ((p >> 16) as u64) & 0xFFFF
    })
}

/// Multiply-accumulate of signed 16-bit pairs — `pmaddwd`.
///
/// Lanes `(0,1)` and `(2,3)` of the 16-bit products are summed into two
/// signed 32-bit results. The workhorse of dot products (DCT, GSM LTP
/// cross-correlation).
#[inline]
pub fn madd_s16(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    for p in 0..2 {
        let i = 2 * p;
        let s0 = sext(lane(a, i, Width::H16), Width::H16) * sext(lane(b, i, Width::H16), Width::H16);
        let s1 = sext(lane(a, i + 1, Width::H16), Width::H16)
            * sext(lane(b, i + 1, Width::H16), Width::H16);
        out = set_lane(out, p, (s0 + s1) as u64, Width::W32);
    }
    out
}

/// Lane-wise logical left shift by an immediate — `psll`.
///
/// Shift amounts `>= w.bits()` zero the lanes, as on real hardware.
#[inline]
pub fn shl(a: u64, amount: u32, w: Width) -> u64 {
    if amount >= w.bits() {
        return 0;
    }
    map_lanes2(a, 0, w, |x, _| x << amount)
}

/// Lane-wise logical right shift by an immediate — `psrl`.
#[inline]
pub fn shr_logic(a: u64, amount: u32, w: Width) -> u64 {
    if amount >= w.bits() {
        return 0;
    }
    map_lanes2(a, 0, w, |x, _| x >> amount)
}

/// Lane-wise arithmetic right shift by an immediate — `psra`.
///
/// Shift amounts `>= w.bits()` replicate the sign bit across the lane.
#[inline]
pub fn shr_arith(a: u64, amount: u32, w: Width) -> u64 {
    let amount = amount.min(w.bits() - 1);
    map_lanes2(a, 0, w, |x, _| (sext(x, w) >> amount) as u64)
}

/// Lane-wise equality compare producing all-ones / all-zeros masks — `pcmpeq`.
#[inline]
pub fn cmp_eq(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| if x == y { w.mask() } else { 0 })
}

/// Lane-wise signed greater-than compare producing masks — `pcmpgt`.
#[inline]
pub fn cmp_gt_s(a: u64, b: u64, w: Width) -> u64 {
    map_lanes2(a, b, w, |x, y| if sext(x, w) > sext(y, w) { w.mask() } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(xs: [u8; 8]) -> u64 {
        u64::from_le_bytes(xs)
    }

    fn h(xs: [u16; 4]) -> u64 {
        let mut v = 0u64;
        for (i, x) in xs.into_iter().enumerate() {
            v |= (x as u64) << (16 * i);
        }
        v
    }

    #[test]
    fn wrapping_add_bytes_wraps() {
        let r = add_wrap(b([250, 1, 2, 3, 4, 5, 6, 7]), b([10, 1, 1, 1, 1, 1, 1, 1]), Width::B8);
        assert_eq!(r.to_le_bytes(), [4, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn wrapping_does_not_leak_between_lanes() {
        // 0xFF + 1 in lane 0 must not carry into lane 1.
        let r = add_wrap(b([0xFF, 0, 0, 0, 0, 0, 0, 0]), b([1, 0, 0, 0, 0, 0, 0, 0]), Width::B8);
        assert_eq!(r, 0);
    }

    #[test]
    fn saturating_unsigned_add() {
        let r = add_sat_u(b([250, 1, 0, 0, 0, 0, 0, 0]), b([10, 1, 0, 0, 0, 0, 0, 0]), Width::B8);
        assert_eq!(r.to_le_bytes()[0], 255);
        assert_eq!(r.to_le_bytes()[1], 2);
    }

    #[test]
    fn saturating_unsigned_sub_floors_at_zero() {
        let r = sub_sat_u(b([3, 10, 0, 0, 0, 0, 0, 0]), b([10, 3, 0, 0, 0, 0, 0, 0]), Width::B8);
        assert_eq!(r.to_le_bytes()[0], 0);
        assert_eq!(r.to_le_bytes()[1], 7);
    }

    #[test]
    fn saturating_signed_add_halfwords() {
        let r = add_sat_s(h([32000, 0x8000, 5, 0]), h([1000, 0xFFFF, 5, 0]), Width::H16);
        assert_eq!(lane(r, 0, Width::H16), 32767); // clamped high
        assert_eq!(sext(lane(r, 1, Width::H16), Width::H16), -32768); // clamped low
        assert_eq!(lane(r, 2, Width::H16), 10);
    }

    #[test]
    fn saturating_signed_sub_halfwords() {
        let r = sub_sat_s(h([0x8000, 32000, 0, 0]), h([1, 0x8000, 0, 0]), Width::H16);
        assert_eq!(sext(lane(r, 0, Width::H16), Width::H16), -32768);
        assert_eq!(lane(r, 1, Width::H16), 32767);
    }

    #[test]
    fn min_max_unsigned() {
        let a = b([1, 200, 3, 4, 5, 6, 7, 8]);
        let c = b([2, 100, 3, 0, 9, 9, 0, 9]);
        assert_eq!(min_u(a, c, Width::B8).to_le_bytes(), [1, 100, 3, 0, 5, 6, 0, 8]);
        assert_eq!(max_u(a, c, Width::B8).to_le_bytes(), [2, 200, 3, 4, 9, 9, 7, 9]);
    }

    #[test]
    fn min_max_signed_respects_sign() {
        let a = h([0xFFFF, 5, 0, 0]); // -1, 5
        let c = h([1, 0x8000, 0, 0]); // 1, -32768
        assert_eq!(sext(lane(min_s(a, c, Width::H16), 0, Width::H16), Width::H16), -1);
        assert_eq!(sext(lane(min_s(a, c, Width::H16), 1, Width::H16), Width::H16), -32768);
        assert_eq!(lane(max_s(a, c, Width::H16), 0, Width::H16), 1);
        assert_eq!(lane(max_s(a, c, Width::H16), 1, Width::H16), 5);
    }

    #[test]
    fn abs_diff_symmetry() {
        let a = b([10, 3, 200, 0, 1, 2, 3, 4]);
        let c = b([3, 10, 0, 200, 1, 2, 3, 4]);
        assert_eq!(abs_diff_u(a, c, Width::B8), abs_diff_u(c, a, Width::B8));
        assert_eq!(abs_diff_u(a, c, Width::B8).to_le_bytes(), [7, 7, 200, 200, 0, 0, 0, 0]);
    }

    #[test]
    fn sad_matches_scalar() {
        let a = b([10, 20, 30, 40, 50, 60, 70, 80]);
        let c = b([80, 70, 60, 50, 40, 30, 20, 10]);
        let expected: u64 = a
            .to_le_bytes()
            .iter()
            .zip(c.to_le_bytes().iter())
            .map(|(x, y)| (*x as i32 - *y as i32).unsigned_abs() as u64)
            .sum();
        assert_eq!(sad_u8(a, c), expected);
    }

    #[test]
    fn sad_max_value() {
        assert_eq!(sad_u8(u64::MAX, 0), 8 * 255);
    }

    #[test]
    fn avg_rounds_up() {
        let r = avg_u(b([1, 2, 0, 0, 0, 0, 0, 0]), b([2, 2, 0, 0, 0, 0, 0, 0]), Width::B8);
        assert_eq!(r.to_le_bytes()[0], 2); // (1+2+1)>>1
        assert_eq!(r.to_le_bytes()[1], 2);
        // 255 avg 255 must not overflow the lane.
        assert_eq!(avg_u(u64::MAX, u64::MAX, Width::B8), u64::MAX);
    }

    #[test]
    fn mul_low_and_high() {
        let a = h([300, 0xFFFF, 2, 0]);
        let c = h([300, 2, 3, 0]);
        // 300*300 = 90000 = 0x15F90; low 16 = 0x5F90, high 16 = 1.
        assert_eq!(lane(mul_low_16(a, c, Width::H16), 0, Width::H16), 0x5F90);
        assert_eq!(lane(mul_high_s16(a, c), 0, Width::H16), 1);
        // -1 * 2 = -2 → high half = 0xFFFF.
        assert_eq!(lane(mul_high_s16(a, c), 1, Width::H16), 0xFFFF);
    }

    #[test]
    fn madd_pairs() {
        let a = h([1, 2, 3, 0xFFFF]); // 1, 2, 3, -1
        let c = h([10, 20, 30, 40]);
        let r = madd_s16(a, c);
        assert_eq!(sext(lane(r, 0, Width::W32), Width::W32), 10 + 2 * 20);
        assert_eq!(sext(lane(r, 1, Width::W32), Width::W32), 3 * 30 - 40);
    }

    #[test]
    fn madd_extreme_no_overflow() {
        // (-32768 * -32768) * 2 = 2^31 exactly wraps in i32 on x86; the spec
        // says the result is 0x80000000. Our i64 math then truncates the same.
        let a = h([0x8000, 0x8000, 0, 0]);
        let r = madd_s16(a, a);
        assert_eq!(lane(r, 0, Width::W32), 0x8000_0000);
    }

    #[test]
    fn shifts() {
        let a = h([0x8001, 0x0F0F, 0, 0]);
        assert_eq!(lane(shl(a, 4, Width::H16), 0, Width::H16), 0x0010);
        assert_eq!(lane(shr_logic(a, 4, Width::H16), 0, Width::H16), 0x0800);
        assert_eq!(sext(lane(shr_arith(a, 4, Width::H16), 0, Width::H16), Width::H16), -2048,);
        // sanity: arithmetic shift keeps sign
        assert!(sext(lane(shr_arith(a, 1, Width::H16), 0, Width::H16), Width::H16) < 0);
    }

    #[test]
    fn shift_amount_saturation() {
        let a = h([0x8000, 1, 1, 1]);
        assert_eq!(shl(a, 16, Width::H16), 0);
        assert_eq!(shr_logic(a, 16, Width::H16), 0);
        // Arithmetic shift by >= width replicates the sign bit.
        assert_eq!(lane(shr_arith(a, 16, Width::H16), 0, Width::H16), 0xFFFF);
        assert_eq!(lane(shr_arith(a, 16, Width::H16), 1, Width::H16), 0);
    }

    #[test]
    fn compares_produce_masks() {
        let a = b([1, 5, 3, 0, 0, 0, 0, 0]);
        let c = b([1, 3, 5, 0, 0, 0, 0, 0]);
        assert_eq!(cmp_eq(a, c, Width::B8).to_le_bytes()[0], 0xFF);
        assert_eq!(cmp_eq(a, c, Width::B8).to_le_bytes()[1], 0);
        assert_eq!(cmp_gt_s(a, c, Width::B8).to_le_bytes()[1], 0xFF);
        assert_eq!(cmp_gt_s(a, c, Width::B8).to_le_bytes()[2], 0);
    }
}
