//! Lane geometry of packed 64-bit values.

use std::fmt;

/// Sub-word lane width of a packed 64-bit value.
///
/// Mirrors the data types of MMX/MOM: packed bytes, halfwords (16-bit),
/// words (32-bit) and a single doubleword (64-bit).
///
/// ```
/// use mom3d_simd::Width;
/// assert_eq!(Width::B8.lanes(), 8);
/// assert_eq!(Width::H16.bits(), 16);
/// assert_eq!(Width::W32.mask(), 0xFFFF_FFFF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// Eight 8-bit lanes (pixels).
    B8,
    /// Four 16-bit lanes (audio samples, DCT coefficients).
    H16,
    /// Two 32-bit lanes (accumulators, products).
    W32,
    /// One 64-bit lane.
    D64,
}

impl Width {
    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::B8, Width::H16, Width::W32, Width::D64];

    /// Number of lanes in a 64-bit word.
    #[inline]
    pub const fn lanes(self) -> usize {
        match self {
            Width::B8 => 8,
            Width::H16 => 4,
            Width::W32 => 2,
            Width::D64 => 1,
        }
    }

    /// Bits per lane.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            Width::B8 => 8,
            Width::H16 => 16,
            Width::W32 => 32,
            Width::D64 => 64,
        }
    }

    /// Bytes per lane.
    #[inline]
    pub const fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// All-ones mask covering one lane.
    #[inline]
    pub const fn mask(self) -> u64 {
        match self {
            Width::B8 => 0xFF,
            Width::H16 => 0xFFFF,
            Width::W32 => 0xFFFF_FFFF,
            Width::D64 => u64::MAX,
        }
    }

    /// Largest unsigned lane value.
    #[inline]
    pub const fn umax(self) -> u64 {
        self.mask()
    }

    /// Largest signed lane value (e.g. `127` for [`Width::B8`]).
    #[inline]
    pub const fn smax(self) -> i64 {
        (self.mask() >> 1) as i64
    }

    /// Smallest signed lane value (e.g. `-128` for [`Width::B8`]).
    #[inline]
    pub const fn smin(self) -> i64 {
        -(self.smax()) - 1
    }

    /// Width with twice the lane size, if one exists.
    #[inline]
    pub const fn widen(self) -> Option<Width> {
        match self {
            Width::B8 => Some(Width::H16),
            Width::H16 => Some(Width::W32),
            Width::W32 => Some(Width::D64),
            Width::D64 => None,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Width::B8 => "b",
            Width::H16 => "h",
            Width::W32 => "w",
            Width::D64 => "d",
        };
        f.write_str(s)
    }
}

/// Extracts lane `i` of `v` (zero-extended).
///
/// # Panics
///
/// Panics if `i >= w.lanes()`.
#[inline]
pub fn lane(v: u64, i: usize, w: Width) -> u64 {
    assert!(i < w.lanes(), "lane index {i} out of range for {w:?}");
    (v >> (i as u32 * w.bits())) & w.mask()
}

/// Returns `v` with lane `i` replaced by the low bits of `x`.
///
/// # Panics
///
/// Panics if `i >= w.lanes()`.
#[inline]
pub fn set_lane(v: u64, i: usize, x: u64, w: Width) -> u64 {
    assert!(i < w.lanes(), "lane index {i} out of range for {w:?}");
    let sh = i as u32 * w.bits();
    let cleared = v & !(w.mask().wrapping_shl(sh));
    cleared | ((x & w.mask()) << sh)
}

/// Sign-extends a lane value (as produced by [`lane`]) to `i64`.
#[inline]
pub fn sext(v: u64, w: Width) -> i64 {
    let shift = 64 - w.bits();
    ((v << shift) as i64) >> shift
}

/// Applies `f` to every lane of `v`, truncating the result into the lane.
#[inline]
pub fn map_lanes(v: u64, w: Width, mut f: impl FnMut(u64) -> u64) -> u64 {
    let mut out = 0u64;
    for i in 0..w.lanes() {
        out = set_lane(out, i, f(lane(v, i, w)), w);
    }
    out
}

/// Applies `f` lane-wise to `a` and `b`, truncating results into lanes.
#[inline]
pub fn map_lanes2(a: u64, b: u64, w: Width, mut f: impl FnMut(u64, u64) -> u64) -> u64 {
    let mut out = 0u64;
    for i in 0..w.lanes() {
        out = set_lane(out, i, f(lane(a, i, w), lane(b, i, w)), w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_geometry_is_consistent() {
        for w in Width::ALL {
            assert_eq!(w.lanes() * w.bits() as usize, 64);
            assert_eq!(w.bytes() * 8, w.bits() as usize);
            if w != Width::D64 {
                assert_eq!(w.mask(), (1u64 << w.bits()) - 1);
            }
        }
    }

    #[test]
    fn signed_bounds() {
        assert_eq!(Width::B8.smax(), 127);
        assert_eq!(Width::B8.smin(), -128);
        assert_eq!(Width::H16.smax(), 32767);
        assert_eq!(Width::H16.smin(), -32768);
        assert_eq!(Width::W32.smax(), i32::MAX as i64);
        assert_eq!(Width::D64.smax(), i64::MAX);
        assert_eq!(Width::D64.smin(), i64::MIN);
    }

    #[test]
    fn lane_extract_and_insert_roundtrip() {
        let v = 0x0123_4567_89AB_CDEFu64;
        for w in Width::ALL {
            let mut rebuilt = 0u64;
            for i in 0..w.lanes() {
                rebuilt = set_lane(rebuilt, i, lane(v, i, w), w);
            }
            assert_eq!(rebuilt, v, "width {w:?}");
        }
    }

    #[test]
    fn lane_order_is_little_endian() {
        let v = u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(lane(v, 0, Width::B8), 1);
        assert_eq!(lane(v, 7, Width::B8), 8);
        assert_eq!(lane(v, 0, Width::H16), 0x0201);
        assert_eq!(lane(v, 1, Width::W32), 0x0807_0605);
    }

    #[test]
    fn sext_works() {
        assert_eq!(sext(0xFF, Width::B8), -1);
        assert_eq!(sext(0x7F, Width::B8), 127);
        assert_eq!(sext(0x8000, Width::H16), -32768);
        assert_eq!(sext(0xFFFF_FFFF, Width::W32), -1);
        assert_eq!(sext(u64::MAX, Width::D64), -1);
    }

    #[test]
    fn widen_chain() {
        assert_eq!(Width::B8.widen(), Some(Width::H16));
        assert_eq!(Width::H16.widen(), Some(Width::W32));
        assert_eq!(Width::W32.widen(), Some(Width::D64));
        assert_eq!(Width::D64.widen(), None);
    }

    #[test]
    #[should_panic(expected = "lane index")]
    fn lane_out_of_range_panics() {
        lane(0, 2, Width::W32);
    }

    #[test]
    fn map_lanes2_add_bytes() {
        let a = u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
        let b = u64::from_le_bytes([10, 20, 30, 40, 50, 60, 70, 80]);
        let c = map_lanes2(a, b, Width::B8, |x, y| x + y);
        assert_eq!(c.to_le_bytes(), [11, 22, 33, 44, 55, 66, 77, 88]);
    }
}
