//! Horizontal reductions and the MOM accumulator register.

use crate::lanes::{lane, sext, Width};

/// Sums all lanes of `v` as unsigned values.
#[inline]
pub fn hsum_u(v: u64, w: Width) -> u64 {
    (0..w.lanes()).map(|i| lane(v, i, w)).sum()
}

/// Sums all lanes of `v` as signed values.
#[inline]
pub fn hsum_s(v: u64, w: Width) -> i64 {
    (0..w.lanes()).map(|i| sext(lane(v, i, w), w)).sum()
}

/// The MOM 192-bit accumulator register.
///
/// MOM pairs its 2D vector operations with a small accumulator register
/// file (Table 3 of the paper: 2 logical / 4 physical registers of 192
/// bits) used by reduction instructions such as the vector
/// sum-of-absolute-differences of the motion-estimation kernel. 192 bits
/// are wide enough that summing an entire 2D register of products can
/// never overflow.
///
/// We model the value as a signed 128-bit integer (the dynamic range of
/// every workload fits comfortably; the hardware's extra bits exist for
/// the same reason) and keep the architectural width for area/power
/// modelling.
///
/// ```
/// use mom3d_simd::{Accumulator, Width};
///
/// let mut acc = Accumulator::new();
/// let v = u64::from_le_bytes([1, 2, 3, 4, 0, 0, 0, 0]);
/// acc.add_packed_u(v, Width::B8);
/// assert_eq!(acc.value(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Accumulator {
    value: i128,
}

impl Accumulator {
    /// Architectural width in bits (Table 3).
    pub const BITS: u32 = 192;

    /// Creates a zeroed accumulator.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current accumulated value.
    #[inline]
    pub fn value(&self) -> i128 {
        self.value
    }

    /// Clears the accumulator to zero.
    #[inline]
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Adds every lane of `v`, treated as unsigned, into the accumulator.
    #[inline]
    pub fn add_packed_u(&mut self, v: u64, w: Width) {
        self.value += hsum_u(v, w) as i128;
    }

    /// Adds every lane of `v`, treated as signed, into the accumulator.
    #[inline]
    pub fn add_packed_s(&mut self, v: u64, w: Width) {
        self.value += hsum_s(v, w) as i128;
    }

    /// Adds a raw scalar into the accumulator.
    #[inline]
    pub fn add_scalar(&mut self, v: i128) {
        self.value += v;
    }

    /// Returns the low 64 bits of the accumulator, the form in which MOM
    /// transfers a reduction result back to a scalar register.
    #[inline]
    pub fn low_u64(&self) -> u64 {
        self.value as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsum_unsigned() {
        let v = u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(hsum_u(v, Width::B8), 36);
        assert_eq!(hsum_u(v, Width::D64), v);
    }

    #[test]
    fn hsum_signed_uses_sign() {
        let v = 0xFFFFu64; // one 16-bit lane = -1
        assert_eq!(hsum_s(v, Width::H16), -1);
        assert_eq!(hsum_u(v, Width::H16), 65535);
    }

    #[test]
    fn accumulator_accumulates_mixed() {
        let mut acc = Accumulator::new();
        acc.add_packed_u(u64::from_le_bytes([10, 10, 0, 0, 0, 0, 0, 0]), Width::B8);
        acc.add_packed_s(0xFFFF, Width::H16); // -1
        acc.add_scalar(5);
        assert_eq!(acc.value(), 24);
        assert_eq!(acc.low_u64(), 24);
        acc.clear();
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn accumulator_never_overflows_workload_range() {
        // Worst realistic case: 16 elements x 8 lanes x 255 per SAD, many
        // thousands of times.
        let mut acc = Accumulator::new();
        for _ in 0..1_000_000 {
            acc.add_scalar((16 * 8 * 255) as i128);
        }
        assert_eq!(acc.value(), 1_000_000i128 * 16 * 8 * 255);
    }
}
