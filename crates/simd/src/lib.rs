//! # mom3d-simd — packed µSIMD arithmetic
//!
//! Functional semantics of the MMX-like µSIMD operations used by the MOM
//! 2D vector ISA (MICRO-35 2002, "Three-Dimensional Memory Vectorization
//! for High Bandwidth Media Memory Systems"). Every MOM computation
//! instruction applies one of these packed operations to each 64-bit
//! element of a 2D vector register; an MMX-style processor applies them to
//! a single 64-bit register.
//!
//! A packed value is an ordinary `u64` whose lanes are interpreted
//! according to a [`Width`]: eight bytes, four halfwords, two words or one
//! doubleword, in little-endian lane order (lane 0 = least-significant).
//!
//! ```
//! use mom3d_simd::{Width, add_sat_u};
//!
//! // Saturating unsigned byte add: 0xF0 + 0x20 saturates to 0xFF.
//! let a = u64::from_le_bytes([0xF0, 1, 2, 3, 4, 5, 6, 7]);
//! let b = u64::from_le_bytes([0x20, 1, 1, 1, 1, 1, 1, 1]);
//! let c = add_sat_u(a, b, Width::B8);
//! assert_eq!(c.to_le_bytes()[0], 0xFF);
//! assert_eq!(c.to_le_bytes()[1], 2);
//! ```
//!
//! **Place in the dataflow** (see `ARCHITECTURE.md`): the innermost
//! leaf. `mom3d-isa` mirrors [`Width`] for its instruction encodings,
//! `mom3d-emu` calls these functions to execute every µSIMD/MOM
//! compute instruction, and `mom3d-core`'s 3D register file reuses the
//! packed-value conventions for its slice extraction.

mod lanes;
mod ops;
mod pack;
mod reduce;

pub use lanes::{lane, map_lanes, map_lanes2, sext, set_lane, Width};
pub use ops::{
    abs_diff_u, add_sat_s, add_sat_u, add_wrap, avg_u, cmp_eq, cmp_gt_s, madd_s16, max_s, max_u,
    min_s, min_u, mul_high_s16, mul_low_16, sad_u8, shl, shr_arith, shr_logic, sub_sat_s,
    sub_sat_u, sub_wrap,
};
pub use pack::{
    pack_s16_to_s8_sat, pack_s16_to_u8_sat, pack_s32_to_s16_sat, pack_s32_to_u16_sat, unpack_hi,
    unpack_lo, zext_hi_u8, zext_lo_u8,
};
pub use reduce::{hsum_s, hsum_u, Accumulator};
