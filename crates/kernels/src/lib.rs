//! # mom3d-kernels — the five Mediabench-equivalent media workloads
//!
//! The paper evaluates five rewritten Mediabench applications:
//! `mpeg2 encode`, `mpeg2 decode`, `jpeg encode`, `jpeg decode` and
//! `gsm encode`, each hand-vectorized for a 1D µSIMD ISA (MMX-like) and
//! for MOM, with 3D memory instructions added to the MOM versions where
//! the patterns allow. We do not have those binaries (nor ATOM, the
//! Alpha-only tracer they used), so each workload is rebuilt natively:
//!
//! * a **scalar Rust reference** computes the expected outputs;
//! * three **code generators** emit dynamic instruction traces in the
//!   [`mom3d_isa`] IR — one per [`IsaVariant`] — over synthetic media
//!   data;
//! * [`Workload::verify`] executes the trace on the functional emulator
//!   and demands bit-identical outputs to the reference.
//!
//! The kernels preserve the paper's memory-pattern taxonomy (the basis
//! of every evaluation figure): motion-estimation candidate streams one
//! byte apart (`mpeg2_encode`), half-pel interpolation pairs and row
//! re-reads (`mpeg2_decode`), adjacent 8×8 blocks on the image x-axis
//! (`jpeg_encode`), wide consecutive rows with *no* 3D patterns
//! (`jpeg_decode`), and lag-shifted dense windows (`gsm_encode`).
//! Arithmetic inside the blocks is representative rather than
//! codec-conformant — the evaluation targets the memory system, and
//! every variant is still checked bit-exactly against the same scalar
//! reference.
//!
//! ```
//! use mom3d_kernels::{Workload, WorkloadKind, IsaVariant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wl = Workload::build(WorkloadKind::GsmEncode, IsaVariant::Mom3d, 42)?;
//! wl.verify()?; // emulate + compare against the scalar reference
//! assert!(wl.trace().stats().mem_3d > 0);
//! # Ok(())
//! # }
//! ```
//!
//! **Place in the dataflow**: the source. Each `(kind, variant, seed)`
//! triple deterministically yields a [`Workload`] — trace + initial
//! [`mom3d_mem::MainMemory`] image + expected outputs — that the
//! emulator verifies and the timing simulator replays. The
//! [`encode_workload`]/[`decode_workload`] image codec serializes a
//! verified workload to a versioned binary format, which is what the
//! `mom3d-bench` cross-invocation cache stores on disk.

mod data;
mod gsm_encode;
mod image;
mod jpeg_decode;
mod jpeg_encode;
mod layout;
mod mpeg2_decode;
mod mpeg2_encode;
mod workload;

pub use data::{AudioBuf, Frame};
pub use gsm_encode::GsmEncodeParams;
pub use image::{
    decode_workload, encode_workload, ImageError, ImageKey, WORKLOAD_IMAGE_MAGIC,
    WORKLOAD_IMAGE_VERSION,
};
pub use jpeg_decode::JpegDecodeParams;
pub use jpeg_encode::JpegEncodeParams;
pub use layout::Arena;
pub use mpeg2_decode::Mpeg2DecodeParams;
pub use mpeg2_encode::{build_shift_trick as mpeg2_encode_shift_trick, Mpeg2EncodeParams};
pub use workload::{IsaVariant, RegionCheck, VerifyError, Workload, WorkloadKind};
