//! Deterministic synthetic media data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A grayscale frame (row-major, one byte per pixel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Frame {
    /// Generates a deterministic frame: smooth gradients plus bounded
    /// noise, so motion search has structure to lock onto but blocks are
    /// not trivially identical.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let base = ((x * 5) ^ (y * 3)) as u32 % 200;
                let noise: u32 = rng.gen_range(0..40);
                pixels.push((base + noise).min(255) as u8);
            }
        }
        Frame { width, height, pixels }
    }

    /// A frame whose content is `self` shifted left by `dx` pixels with
    /// added noise — the "next video frame" for motion estimation. Pixels
    /// shifted in from beyond the right edge wrap.
    pub fn shifted(&self, dx: usize, noise_seed: u64) -> Frame {
        let mut rng = SmallRng::seed_from_u64(noise_seed);
        let mut pixels = Vec::with_capacity(self.pixels.len());
        for y in 0..self.height {
            for x in 0..self.width {
                let sx = (x + dx) % self.width;
                let p = self.pixel(sx, y) as i32 + rng.gen_range(-3i32..=3);
                pixels.push(p.clamp(0, 255) as u8);
            }
        }
        Frame { width: self.width, height: self.height, pixels }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Raw row-major bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.pixels
    }
}

/// A 16-bit PCM audio buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioBuf {
    samples: Vec<i16>,
}

impl AudioBuf {
    /// Generates deterministic pseudo-speech: a couple of sinusoid-ish
    /// components (integer-approximated) plus noise, bounded to ±`amp`.
    ///
    /// Keeping samples within ±4096 guarantees 40-sample correlations
    /// fit in an `i32` — the same headroom real GSM relies on.
    pub fn synthetic(len: usize, amp: i16, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(len);
        let mut phase: i64 = 0;
        for i in 0..len {
            phase += 37 + (i as i64 % 11);
            // Triangle-ish waves at two periods + noise.
            let t1 = (phase % 200 - 100).abs() - 50;
            let t2 = ((phase / 3) % 140 - 70).abs() - 35;
            let noise = rng.gen_range(-64i64..=64);
            let v = (t1 * 24 + t2 * 18 + noise).clamp(-(amp as i64), amp as i64);
            samples.push(v as i16);
        }
        AudioBuf { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample at `i`.
    pub fn sample(&self, i: usize) -> i16 {
        self.samples[i]
    }

    /// Little-endian byte serialization.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        self.samples.iter().flat_map(|s| s.to_le_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic() {
        let a = Frame::synthetic(64, 16, 7);
        let b = Frame::synthetic(64, 16, 7);
        assert_eq!(a, b);
        let c = Frame::synthetic(64, 16, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn shifted_frame_correlates_at_shift() {
        let f = Frame::synthetic(128, 8, 1);
        let g = f.shifted(5, 2);
        // SAD at the true shift must beat SAD at a wrong shift.
        let sad = |dx: usize| -> u32 {
            let mut s = 0u32;
            for y in 0..8 {
                for x in 0..32 {
                    s += (f.pixel(x + dx, y) as i32 - g.pixel(x, y) as i32).unsigned_abs();
                }
            }
            s
        };
        assert!(sad(5) < sad(0));
        assert!(sad(5) < sad(9));
    }

    #[test]
    fn audio_is_bounded_and_deterministic() {
        let a = AudioBuf::synthetic(1000, 4096, 3);
        assert_eq!(a.len(), 1000);
        assert!(a.samples.iter().all(|&s| (-4096..=4096).contains(&s)));
        assert_eq!(a, AudioBuf::synthetic(1000, 4096, 3));
        // Not silent.
        assert!(a.samples.iter().any(|&s| s.abs() > 100));
    }

    #[test]
    fn audio_bytes_roundtrip() {
        let a = AudioBuf::synthetic(4, 4096, 1);
        let b = a.to_le_bytes();
        assert_eq!(b.len(), 8);
        assert_eq!(i16::from_le_bytes([b[0], b[1]]), a.sample(0));
    }
}
