//! `mpeg2 decode` — half-pel motion compensation + residual add +
//! saturation ("Add_Block"), with a second smoothing pass.
//!
//! Per 8×8 block: fetch the motion-compensated prediction (two byte-
//! shifted streams averaged — half-pel interpolation), add the 16-bit
//! residual with signed saturation, clamp to pixels, and store; a second
//! pass re-reads the prediction for a smoothed auxiliary output (decoders
//! re-touch prediction data for field/deblock processing). The 3D
//! patterns are *small* — half-pel pairs (delta 1) and residual halves
//! (delta 8) — matching the paper's 1.7-average third dimension, and the
//! pass-2 re-reads give the moderate traffic reduction of Figure 7.

use crate::data::Frame;
use crate::layout::Arena;
use crate::workload::{IsaVariant, RegionCheck, Workload, WorkloadKind};
use mom3d_isa::{DReg, Gpr, IntOp, MmxReg, MomReg, TraceBuilder, UsimdOp, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Block edge in pixels.
const BLOCK: usize = 8;

/// Parameters of the MPEG-2 decode workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mpeg2DecodeParams {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Maximum motion-vector magnitude (x and y).
    pub mv_range: i32,
    /// Data-generator seed.
    pub seed: u64,
}

impl Default for Mpeg2DecodeParams {
    fn default() -> Self {
        // CIF-style width (see `Mpeg2EncodeParams`): keeps strided rows
        // spread across the L2 banks.
        Mpeg2DecodeParams { width: 352, height: 64, mv_range: 4, seed: 5 }
    }
}

impl Mpeg2DecodeParams {
    /// Default geometry with a specific data seed.
    pub fn with_seed(seed: u64) -> Self {
        Mpeg2DecodeParams { seed, ..Default::default() }
    }

    /// Reduced geometry for fast (debug-build) test runs.
    pub fn small_with_seed(seed: u64) -> Self {
        Mpeg2DecodeParams { width: 64, height: 32, mv_range: 3, seed }
    }

    /// Interior block positions (margins keep MV reads in bounds).
    fn block_positions(&self) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        let m = BLOCK; // one-block margin on every side
        for by in (m..self.height - 2 * BLOCK + 1).step_by(BLOCK) {
            for bx in (m..self.width - 2 * BLOCK).step_by(BLOCK) {
                v.push((bx, by));
            }
        }
        v
    }

    /// Deterministic per-block motion vectors.
    fn motion_vectors(&self, n: usize) -> Vec<(i32, i32)> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xC0FF_EE00);
        (0..n)
            .map(|_| {
                (rng.gen_range(-self.mv_range..=self.mv_range),
                 rng.gen_range(-self.mv_range..=self.mv_range))
            })
            .collect()
    }

    /// Deterministic residuals in ±255 (as `i16`).
    fn residuals(&self, n: usize) -> Vec<i16> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xDEAD_10CC);
        (0..n * BLOCK * BLOCK).map(|_| rng.gen_range(-255..=255)).collect()
    }
}

/// Scalar reference: `(out, out2)` frames (zero outside block regions).
fn reference(
    params: &Mpeg2DecodeParams,
    rf: &Frame,
    blocks: &[(usize, usize)],
    mvs: &[(i32, i32)],
    res: &[i16],
) -> (Vec<u8>, Vec<u8>) {
    let (w, h) = (params.width, params.height);
    let mut out = vec![0u8; w * h];
    let mut out2 = vec![0u8; w * h];
    for (b, &(bx, by)) in blocks.iter().enumerate() {
        let (dx, dy) = mvs[b];
        for j in 0..BLOCK {
            for i in 0..BLOCK {
                let sy = (by as i32 + dy + j as i32) as usize;
                let sx = (bx as i32 + dx + i as i32) as usize;
                let p1 = rf.pixel(sx, sy) as u16;
                let p2 = rf.pixel(sx + 1, sy) as u16;
                let pred = ((p1 + p2 + 1) >> 1) as i32;
                let r = res[b * 64 + j * BLOCK + i] as i32;
                out[(by + j) * w + bx + i] = (pred + r).clamp(0, 255) as u8;
                out2[(by + j) * w + bx + i] = ((pred + 1) >> 1) as u8;
            }
        }
    }
    (out, out2)
}

const R_P: Gpr = Gpr::new(1);
const R_P2: Gpr = Gpr::new(2);
const R_R: Gpr = Gpr::new(3);
const R_O: Gpr = Gpr::new(4);
const R_T: Gpr = Gpr::new(5);

// MOM register conventions.
const MR_P1: MomReg = MomReg::new(0);
const MR_P2: MomReg = MomReg::new(1);
const MR_PRED: MomReg = MomReg::new(2);
const MR_RLO: MomReg = MomReg::new(3);
const MR_RHI: MomReg = MomReg::new(4);
const MR_LO: MomReg = MomReg::new(5);
const MR_HI: MomReg = MomReg::new(6);
const MR_OUT: MomReg = MomReg::new(7);
const MR_ZERO: MomReg = MomReg::new(8);

/// Builds the workload for one ISA variant.
pub(crate) fn build(params: &Mpeg2DecodeParams, variant: IsaVariant) -> Workload {
    let rf = Frame::synthetic(params.width, params.height, params.seed);
    let blocks = params.block_positions();
    let mvs = params.motion_vectors(blocks.len());
    let res = params.residuals(blocks.len());
    let res_bytes: Vec<u8> = res.iter().flat_map(|r| r.to_le_bytes()).collect();

    let mut arena = Arena::new();
    let ref_addr = arena.place(rf.bytes());
    let res_addr = arena.place(&res_bytes);
    let out_addr = arena.reserve((params.width * params.height) as u64);
    let out2_addr = arena.reserve((params.width * params.height) as u64);
    let (out_ref, out2_ref) = reference(params, &rf, &blocks, &mvs, &res);

    let w = params.width as u64;
    let mut tb = TraceBuilder::new();

    // Shared arithmetic tail once MR_P1/MR_P2/MR_RLO/MR_RHI are loaded.
    let emit_addblock = |tb: &mut TraceBuilder, out: u64| {
        tb.vop2(UsimdOp::AvgU(Width::B8), MR_PRED, MR_P1, MR_P2);
        tb.vop2(UsimdOp::UnpackLo(Width::B8), MR_LO, MR_PRED, MR_ZERO);
        tb.vop2(UsimdOp::UnpackHi(Width::B8), MR_HI, MR_PRED, MR_ZERO);
        tb.vop2(UsimdOp::AddSatS(Width::H16), MR_LO, MR_LO, MR_RLO);
        tb.vop2(UsimdOp::AddSatS(Width::H16), MR_HI, MR_HI, MR_RHI);
        tb.vop2(UsimdOp::PackUs16To8, MR_OUT, MR_LO, MR_HI);
        tb.set_vs(w as i64);
        tb.li(R_O, out as i64);
        tb.vstore(MR_OUT, R_O, out);
    };
    let emit_smooth = |tb: &mut TraceBuilder, out2: u64| {
        tb.vop2(UsimdOp::AvgU(Width::B8), MR_PRED, MR_P1, MR_P2);
        tb.vop2(UsimdOp::AvgU(Width::B8), MR_OUT, MR_PRED, MR_ZERO);
        tb.set_vs(w as i64);
        tb.li(R_O, out2 as i64);
        tb.vstore(MR_OUT, R_O, out2);
    };

    match variant {
        IsaVariant::Mom => {
            tb.set_vl(BLOCK as u8);
            tb.vop2(UsimdOp::Xor, MR_ZERO, MR_ZERO, MR_ZERO);
            for (b, &(bx, by)) in blocks.iter().enumerate() {
                let (dx, dy) = mvs[b];
                let p1 = ref_addr
                    + ((by as i64 + dy as i64) as u64) * w
                    + (bx as i64 + dx as i64) as u64;
                let rb = res_addr + b as u64 * 128;
                let out = out_addr + (by as u64) * w + bx as u64;
                let out2 = out2_addr + (by as u64) * w + bx as u64;
                // Pass 1: prediction + residual.
                tb.set_vs(w as i64);
                tb.li(R_P, p1 as i64);
                tb.vload(MR_P1, R_P, p1);
                tb.alui(IntOp::Add, R_P2, R_P, 1);
                tb.vload(MR_P2, R_P2, p1 + 1);
                tb.set_vs(16);
                tb.li(R_R, rb as i64);
                tb.vload_w(MR_RLO, R_R, rb, Width::H16);
                tb.alui(IntOp::Add, R_T, R_R, 8);
                tb.vload_w(MR_RHI, R_T, rb + 8, Width::H16);
                emit_addblock(&mut tb, out);
                // Pass 2: the prediction rows are re-read (the C source
                // walks the arrays again).
                tb.li(R_P, p1 as i64);
                tb.vload(MR_P1, R_P, p1);
                tb.alui(IntOp::Add, R_P2, R_P, 1);
                tb.vload(MR_P2, R_P2, p1 + 1);
                emit_smooth(&mut tb, out2);
            }
        }
        IsaVariant::Mom3d => {
            tb.set_vl(BLOCK as u8);
            tb.vop2(UsimdOp::Xor, MR_ZERO, MR_ZERO, MR_ZERO);
            for (b, &(bx, by)) in blocks.iter().enumerate() {
                let (dx, dy) = mvs[b];
                let p1 = ref_addr
                    + ((by as i64 + dy as i64) as u64) * w
                    + (bx as i64 + dx as i64) as u64;
                let rb = res_addr + b as u64 * 128;
                let out = out_addr + (by as u64) * w + bx as u64;
                let out2 = out2_addr + (by as u64) * w + bx as u64;
                // One 3dvload covers both half-pel streams (delta 1) and
                // both passes (reuse).
                tb.li(R_P, p1 as i64);
                tb.dvload(DReg::new(0), R_P, p1, w as i64, 2, false);
                // One 3dvload covers both residual halves (delta 8).
                tb.li(R_R, rb as i64);
                tb.dvload(DReg::new(1), R_R, rb, 16, 2, false);
                tb.dvmov(MR_P1, DReg::new(0), 1);
                tb.dvmov(MR_P2, DReg::new(0), -1);
                tb.dvmov_w(MR_RLO, DReg::new(1), 8, Width::H16);
                tb.dvmov_w(MR_RHI, DReg::new(1), -8, Width::H16);
                emit_addblock(&mut tb, out);
                tb.dvmov(MR_P1, DReg::new(0), 1);
                tb.dvmov(MR_P2, DReg::new(0), -1);
                emit_smooth(&mut tb, out2);
            }
        }
        IsaVariant::Mmx => {
            // mm15 is the zero register.
            tb.usimd2(UsimdOp::Xor, MmxReg::new(15), MmxReg::new(15), MmxReg::new(15));
            for (b, &(bx, by)) in blocks.iter().enumerate() {
                let (dx, dy) = mvs[b];
                let p1 = ref_addr
                    + ((by as i64 + dy as i64) as u64) * w
                    + (bx as i64 + dx as i64) as u64;
                let rb = res_addr + b as u64 * 128;
                let out = out_addr + (by as u64) * w + bx as u64;
                let out2 = out2_addr + (by as u64) * w + bx as u64;
                tb.li(R_P, p1 as i64);
                tb.li(R_R, rb as i64);
                tb.li(R_O, out as i64);
                for j in 0..BLOCK as u64 {
                    let row = p1 + j * w;
                    tb.alui(IntOp::Add, R_T, R_P, (j * w) as i64);
                    tb.movq_load(MmxReg::new(0), R_T, row, Width::B8);
                    tb.alui(IntOp::Add, R_T, R_T, 1);
                    tb.movq_load(MmxReg::new(1), R_T, row + 1, Width::B8);
                    tb.usimd2(UsimdOp::AvgU(Width::B8), MmxReg::new(2), MmxReg::new(0), MmxReg::new(1));
                    tb.alui(IntOp::Add, R_T, R_R, (j * 16) as i64);
                    tb.movq_load(MmxReg::new(3), R_T, rb + j * 16, Width::H16);
                    tb.alui(IntOp::Add, R_T, R_T, 8);
                    tb.movq_load(MmxReg::new(4), R_T, rb + j * 16 + 8, Width::H16);
                    tb.usimd2(UsimdOp::UnpackLo(Width::B8), MmxReg::new(5), MmxReg::new(2), MmxReg::new(15));
                    tb.usimd2(UsimdOp::UnpackHi(Width::B8), MmxReg::new(6), MmxReg::new(2), MmxReg::new(15));
                    tb.usimd2(UsimdOp::AddSatS(Width::H16), MmxReg::new(5), MmxReg::new(5), MmxReg::new(3));
                    tb.usimd2(UsimdOp::AddSatS(Width::H16), MmxReg::new(6), MmxReg::new(6), MmxReg::new(4));
                    tb.usimd2(UsimdOp::PackUs16To8, MmxReg::new(7), MmxReg::new(5), MmxReg::new(6));
                    tb.alui(IntOp::Add, R_T, R_O, (j * w) as i64);
                    tb.movq_store(MmxReg::new(7), R_T, out + j * w);
                    // Pass 2 for this row: re-read the prediction.
                    tb.alui(IntOp::Add, R_T, R_P, (j * w) as i64);
                    tb.movq_load(MmxReg::new(0), R_T, row, Width::B8);
                    tb.alui(IntOp::Add, R_T, R_T, 1);
                    tb.movq_load(MmxReg::new(1), R_T, row + 1, Width::B8);
                    tb.usimd2(UsimdOp::AvgU(Width::B8), MmxReg::new(2), MmxReg::new(0), MmxReg::new(1));
                    tb.usimd2(UsimdOp::AvgU(Width::B8), MmxReg::new(8), MmxReg::new(2), MmxReg::new(15));
                    tb.li(R_T, (out2 + j * w) as i64);
                    tb.movq_store(MmxReg::new(8), R_T, out2 + j * w);
                }
            }
        }
    }

    Workload::from_parts(
        WorkloadKind::Mpeg2Decode,
        variant,
        tb.finish(),
        arena.into_memory(),
        vec![
            RegionCheck { what: "reconstructed frame", addr: out_addr, expected: out_ref },
            RegionCheck { what: "smoothed frame", addr: out2_addr, expected: out2_ref },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mpeg2DecodeParams {
        Mpeg2DecodeParams { width: 64, height: 32, mv_range: 3, seed: 44 }
    }

    #[test]
    fn all_variants_verify() {
        for v in IsaVariant::ALL {
            build(&tiny(), v).verify().unwrap_or_else(|e| panic!("{v} failed: {e}"));
        }
    }

    #[test]
    fn third_dimension_is_small_like_paper() {
        // The paper's mpeg2 decode third dimension averages 1.7 (max 3);
        // ours serves 4 and 2 slices from the two windows per block.
        let s = build(&tiny(), IsaVariant::Mom3d).trace().stats();
        assert!(s.mem_3d > 0);
        let d3 = s.avg_dim3().unwrap();
        assert!((2.0..=4.0).contains(&d3), "avg dim3 {d3}");
        assert!(s.dim3_vl_max <= 4);
    }

    #[test]
    fn pass2_reuse_reduces_traffic() {
        let b2 = build(&tiny(), IsaVariant::Mom).trace().stats().bytes_accessed;
        let b3 = build(&tiny(), IsaVariant::Mom3d).trace().stats().bytes_accessed;
        assert!(b3 < b2, "3D {b3} vs 2D {b2}");
    }

    #[test]
    fn saturation_paths_are_exercised() {
        let p = tiny();
        let rf = Frame::synthetic(p.width, p.height, p.seed);
        let blocks = p.block_positions();
        let mvs = p.motion_vectors(blocks.len());
        let res = p.residuals(blocks.len());
        let (out, _) = reference(&p, &rf, &blocks, &mvs, &res);
        let zeros = out.iter().filter(|&&b| b == 0).count();
        let maxed = out.iter().filter(|&&b| b == 255).count();
        assert!(zeros > 0 && maxed > 0, "clamps must fire: {zeros} zeros, {maxed} maxed");
    }

    #[test]
    fn blocks_stay_in_bounds() {
        let p = tiny();
        for (bx, by) in p.block_positions() {
            assert!(bx >= BLOCK && bx + 2 * BLOCK <= p.width);
            assert!(by >= BLOCK && by + 2 * BLOCK - 1 <= p.height);
        }
    }
}
