//! Workload images: a versioned on-disk binary format for
//! built-and-verified [`Workload`]s.
//!
//! Building a full-geometry workload is the cold-start floor of every
//! experiment binary — each build runs the code generator *and* a full
//! functional-emulator verification against the scalar reference. The
//! image format lets `mom3d-bench` persist that work across binary
//! invocations: [`encode_workload`] serializes the trace, the initial
//! memory image and the expected-output regions; [`decode_workload`]
//! reconstructs a bit-identical [`Workload`] (round-trip equality is a
//! test invariant).
//!
//! The format is hand-rolled (no serde — the build environment vendors
//! its dependencies) and defensive by construction:
//!
//! * a fixed **magic** and a [`WORKLOAD_IMAGE_VERSION`] up front —
//!   bumping the version invalidates every existing image;
//! * the **cache key** (workload kind, ISA variant, geometry, seed) is
//!   embedded and checked against what the caller expects, so a renamed
//!   or misfiled image can never impersonate another cell;
//! * an FNV-1a **payload checksum** catches truncation and bit rot;
//! * the **verification digest** produced by
//!   [`Workload::verify_digested`] (a fingerprint of the emulator's
//!   actual output bytes) is recomputed from the decoded expected
//!   regions and compared.
//!
//! Every failure mode is a typed [`ImageError`]; callers (the
//! `mom3d-bench` workload cache) treat any error as a cache miss and
//! rebuild — a corrupt or stale image degrades to a rebuild, never to a
//! wrong answer.
//!
//! All multi-byte integers are little-endian regardless of host.

use crate::workload::{IsaVariant, RegionCheck, Workload, WorkloadKind};
use mom3d_emu::Fnv64;
use mom3d_isa::{
    AccReg, DReg, Gpr, Instruction, IntOp, MemAccess, MemPattern, MmxReg, MomReg, Opcode, PReg,
    ReduceOp, Reg, RegList, Trace, UsimdOp, Width,
};
use mom3d_mem::MainMemory;
use std::error::Error;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Format version. Bump on **any** encoding change — decoding rejects
/// every other version, forcing a clean rebuild instead of a
/// misinterpreted image.
pub const WORKLOAD_IMAGE_VERSION: u32 = 1;

/// Magic bytes opening every workload image.
pub const WORKLOAD_IMAGE_MAGIC: [u8; 8] = *b"MOM3DWLI";

const HEADER_LEN: usize = 48;

/// The identity of a cached workload image: everything that determines
/// the bits of a built workload. Two runs with equal keys build
/// bit-identical workloads (the generators are seeded and
/// deterministic), which is what makes cross-invocation caching sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageKey {
    /// Which kernel.
    pub kind: WorkloadKind,
    /// Which ISA variant the trace was generated for.
    pub variant: IsaVariant,
    /// The synthetic-data seed.
    pub seed: u64,
    /// True for the reduced test geometry, false for the paper's
    /// full geometry.
    pub small: bool,
}

/// Why an image failed to decode. Every variant is recoverable by
/// rebuilding the workload from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The file does not start with [`WORKLOAD_IMAGE_MAGIC`].
    BadMagic,
    /// The image was written by a different format version.
    VersionMismatch {
        /// Version found in the image.
        found: u32,
    },
    /// The embedded key differs from what the caller expects (misfiled
    /// or renamed image).
    KeyMismatch {
        /// Human-readable description of the embedded key.
        found: String,
    },
    /// The image is shorter than its header or declared payload.
    Truncated,
    /// The payload checksum does not match (bit rot, partial write).
    ChecksumMismatch,
    /// The verification digest does not match the decoded
    /// expected-output regions.
    DigestMismatch,
    /// A structurally invalid field (unknown opcode/register/width
    /// code, oversized count, …).
    Malformed(&'static str),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadMagic => write!(f, "not a workload image (bad magic)"),
            ImageError::VersionMismatch { found } => write!(
                f,
                "format version {found} (this build reads only {WORKLOAD_IMAGE_VERSION})"
            ),
            ImageError::KeyMismatch { found } => write!(f, "image is for {found}"),
            ImageError::Truncated => write!(f, "truncated image"),
            ImageError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            ImageError::DigestMismatch => write!(f, "verification digest mismatch"),
            ImageError::Malformed(what) => write!(f, "malformed image: {what}"),
        }
    }
}

impl Error for ImageError {}

// ---------------------------------------------------------------------------
// Stable byte codes for the closed ISA enums. Exhaustive matches keep
// the codec in sync: adding an enum variant fails compilation here,
// which is the reminder to bump WORKLOAD_IMAGE_VERSION.
// ---------------------------------------------------------------------------

fn kind_code(k: WorkloadKind) -> u8 {
    match k {
        WorkloadKind::JpegEncode => 0,
        WorkloadKind::JpegDecode => 1,
        WorkloadKind::Mpeg2Decode => 2,
        WorkloadKind::Mpeg2Encode => 3,
        WorkloadKind::GsmEncode => 4,
    }
}

fn kind_from(code: u8) -> Option<WorkloadKind> {
    WorkloadKind::ALL.iter().copied().find(|&k| kind_code(k) == code)
}

fn variant_code(v: IsaVariant) -> u8 {
    match v {
        IsaVariant::Mmx => 0,
        IsaVariant::Mom => 1,
        IsaVariant::Mom3d => 2,
    }
}

fn variant_from(code: u8) -> Option<IsaVariant> {
    IsaVariant::ALL.iter().copied().find(|&v| variant_code(v) == code)
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::B8 => 0,
        Width::H16 => 1,
        Width::W32 => 2,
        Width::D64 => 3,
    }
}

fn width_from(code: u8) -> Option<Width> {
    match code {
        0 => Some(Width::B8),
        1 => Some(Width::H16),
        2 => Some(Width::W32),
        3 => Some(Width::D64),
        _ => None,
    }
}

fn int_op_code(op: IntOp) -> u8 {
    match op {
        IntOp::Add => 0,
        IntOp::Sub => 1,
        IntOp::Mul => 2,
        IntOp::And => 3,
        IntOp::Or => 4,
        IntOp::Xor => 5,
        IntOp::Shl => 6,
        IntOp::Shr => 7,
        IntOp::Sar => 8,
        IntOp::SltS => 9,
        IntOp::SltU => 10,
        IntOp::Mov => 11,
    }
}

fn int_op_from(code: u8) -> Option<IntOp> {
    use IntOp::*;
    [Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sar, SltS, SltU, Mov].get(code as usize).copied()
}

/// `(sub-code, width-code)`; width-free ops encode width 0.
fn usimd_code(op: UsimdOp) -> (u8, u8) {
    match op {
        UsimdOp::AddWrap(w) => (0, width_code(w)),
        UsimdOp::SubWrap(w) => (1, width_code(w)),
        UsimdOp::AddSatU(w) => (2, width_code(w)),
        UsimdOp::SubSatU(w) => (3, width_code(w)),
        UsimdOp::AddSatS(w) => (4, width_code(w)),
        UsimdOp::SubSatS(w) => (5, width_code(w)),
        UsimdOp::MinU(w) => (6, width_code(w)),
        UsimdOp::MaxU(w) => (7, width_code(w)),
        UsimdOp::MinS(w) => (8, width_code(w)),
        UsimdOp::MaxS(w) => (9, width_code(w)),
        UsimdOp::AbsDiffU(w) => (10, width_code(w)),
        UsimdOp::SadU8 => (11, 0),
        UsimdOp::AvgU(w) => (12, width_code(w)),
        UsimdOp::MulLow(w) => (13, width_code(w)),
        UsimdOp::MulHighS16 => (14, 0),
        UsimdOp::MaddS16 => (15, 0),
        UsimdOp::Shl(w) => (16, width_code(w)),
        UsimdOp::ShrL(w) => (17, width_code(w)),
        UsimdOp::ShrA(w) => (18, width_code(w)),
        UsimdOp::And => (19, 0),
        UsimdOp::Or => (20, 0),
        UsimdOp::Xor => (21, 0),
        UsimdOp::AndNot => (22, 0),
        UsimdOp::CmpEq(w) => (23, width_code(w)),
        UsimdOp::CmpGtS(w) => (24, width_code(w)),
        UsimdOp::PackUs16To8 => (25, 0),
        UsimdOp::PackSs16To8 => (26, 0),
        UsimdOp::PackSs32To16 => (27, 0),
        UsimdOp::UnpackLo(w) => (28, width_code(w)),
        UsimdOp::UnpackHi(w) => (29, width_code(w)),
    }
}

fn usimd_from(code: u8, w: u8) -> Option<UsimdOp> {
    let width = width_from(w)?;
    Some(match code {
        0 => UsimdOp::AddWrap(width),
        1 => UsimdOp::SubWrap(width),
        2 => UsimdOp::AddSatU(width),
        3 => UsimdOp::SubSatU(width),
        4 => UsimdOp::AddSatS(width),
        5 => UsimdOp::SubSatS(width),
        6 => UsimdOp::MinU(width),
        7 => UsimdOp::MaxU(width),
        8 => UsimdOp::MinS(width),
        9 => UsimdOp::MaxS(width),
        10 => UsimdOp::AbsDiffU(width),
        11 => UsimdOp::SadU8,
        12 => UsimdOp::AvgU(width),
        13 => UsimdOp::MulLow(width),
        14 => UsimdOp::MulHighS16,
        15 => UsimdOp::MaddS16,
        16 => UsimdOp::Shl(width),
        17 => UsimdOp::ShrL(width),
        18 => UsimdOp::ShrA(width),
        19 => UsimdOp::And,
        20 => UsimdOp::Or,
        21 => UsimdOp::Xor,
        22 => UsimdOp::AndNot,
        23 => UsimdOp::CmpEq(width),
        24 => UsimdOp::CmpGtS(width),
        25 => UsimdOp::PackUs16To8,
        26 => UsimdOp::PackSs16To8,
        27 => UsimdOp::PackSs32To16,
        28 => UsimdOp::UnpackLo(width),
        29 => UsimdOp::UnpackHi(width),
        _ => return None,
    })
}

fn reduce_code(op: ReduceOp) -> (u8, u8) {
    match op {
        ReduceOp::SadAccumU8 => (0, 0),
        ReduceOp::SumU(w) => (1, width_code(w)),
        ReduceOp::SumS(w) => (2, width_code(w)),
        ReduceOp::DotS16 => (3, 0),
    }
}

fn reduce_from(code: u8, w: u8) -> Option<ReduceOp> {
    let width = width_from(w)?;
    Some(match code {
        0 => ReduceOp::SadAccumU8,
        1 => ReduceOp::SumU(width),
        2 => ReduceOp::SumS(width),
        3 => ReduceOp::DotS16,
        _ => return None,
    })
}

/// `(tag, sub-code, width-code)`.
fn opcode_code(op: Opcode) -> (u8, u8, u8) {
    match op {
        Opcode::IntAlu(i) => (0, int_op_code(i), 0),
        Opcode::LoadScalar => (1, 0, 0),
        Opcode::StoreScalar => (2, 0, 0),
        Opcode::Branch => (3, 0, 0),
        Opcode::Usimd(u) => {
            let (s, w) = usimd_code(u);
            (4, s, w)
        }
        Opcode::LoadMmx => (5, 0, 0),
        Opcode::StoreMmx => (6, 0, 0),
        Opcode::VCompute(u) => {
            let (s, w) = usimd_code(u);
            (7, s, w)
        }
        Opcode::VLoad => (8, 0, 0),
        Opcode::VStore => (9, 0, 0),
        Opcode::VReduce(r) => {
            let (s, w) = reduce_code(r);
            (10, s, w)
        }
        Opcode::ReadAcc => (11, 0, 0),
        Opcode::SetVl => (12, 0, 0),
        Opcode::SetVs => (13, 0, 0),
        Opcode::DvLoad => (14, 0, 0),
        Opcode::DvMov => (15, 0, 0),
    }
}

fn opcode_from(tag: u8, sub: u8, w: u8) -> Option<Opcode> {
    Some(match tag {
        0 => Opcode::IntAlu(int_op_from(sub)?),
        1 => Opcode::LoadScalar,
        2 => Opcode::StoreScalar,
        3 => Opcode::Branch,
        4 => Opcode::Usimd(usimd_from(sub, w)?),
        5 => Opcode::LoadMmx,
        6 => Opcode::StoreMmx,
        7 => Opcode::VCompute(usimd_from(sub, w)?),
        8 => Opcode::VLoad,
        9 => Opcode::VStore,
        10 => Opcode::VReduce(reduce_from(sub, w)?),
        11 => Opcode::ReadAcc,
        12 => Opcode::SetVl,
        13 => Opcode::SetVs,
        14 => Opcode::DvLoad,
        15 => Opcode::DvMov,
        _ => return None,
    })
}

fn pattern_code(p: MemPattern) -> u8 {
    match p {
        MemPattern::Scalar => 0,
        MemPattern::Unit64 => 1,
        MemPattern::Strided2d => 2,
        MemPattern::Strided3d => 3,
    }
}

fn pattern_from(code: u8) -> Option<MemPattern> {
    match code {
        0 => Some(MemPattern::Scalar),
        1 => Some(MemPattern::Unit64),
        2 => Some(MemPattern::Strided2d),
        3 => Some(MemPattern::Strided3d),
        _ => None,
    }
}

/// Registers are encoded as their dense [`Reg::flat_index`]; 0xFF marks
/// an empty operand slot. The decode table is the flat index's inverse,
/// built once from the register-class enumerations (so it cannot drift
/// from `flat_index`).
const REG_NONE: u8 = 0xFF;

fn reg_table() -> &'static [Reg] {
    static TABLE: OnceLock<Vec<Reg>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut all: Vec<Reg> = Vec::with_capacity(Reg::FLAT_COUNT);
        all.extend(Gpr::all().map(Reg::Gpr));
        all.extend(MmxReg::all().map(Reg::Mmx));
        all.extend(MomReg::all().map(Reg::Mom));
        all.extend(DReg::all().map(Reg::D));
        all.extend(PReg::all().map(Reg::P));
        all.extend(AccReg::all().map(Reg::Acc));
        all.push(Reg::Vl);
        all.push(Reg::Vs);
        all.sort_by_key(|r| r.flat_index());
        debug_assert_eq!(all.len(), Reg::FLAT_COUNT);
        all
    })
}

/// Region-check labels are `&'static str` in [`RegionCheck`]; decoding
/// reconstructs them through a small process-global intern pool so
/// loading many images leaks each distinct label at most once.
fn intern_label(s: &str) -> &'static str {
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().expect("label intern pool poisoned");
    if let Some(&existing) = pool.iter().find(|&&e| e == s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_reg_list(out: &mut Vec<u8>, list: &RegList) {
    let mut slots = [REG_NONE; 4];
    for (slot, reg) in slots.iter_mut().zip(list.iter()) {
        *slot = reg.flat_index() as u8;
    }
    out.extend_from_slice(&slots);
}

fn put_instruction(out: &mut Vec<u8>, i: &Instruction) {
    let (tag, sub, w) = opcode_code(i.opcode);
    out.extend_from_slice(&[tag, sub, w]);
    put_reg_list(out, &i.dsts);
    put_reg_list(out, &i.srcs);
    put_i64(out, i.imm);
    out.push(i.vl);
    out.push(width_code(i.data_width));
    out.push(i.taken as u8);
    match &i.mem {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_u64(out, m.base);
            put_i64(out, m.stride);
            out.push(m.count);
            out.push(m.elem_bytes);
            out.push(pattern_code(m.pattern));
        }
    }
}

/// Digest of the expected-output regions in the same formula as
/// [`Workload::verify_digested`] (address, length, bytes per check, in
/// order). On the encode side the two are equal because verification
/// demands bit-identical output; on the decode side this is what the
/// stored digest is compared against.
fn checks_digest(checks: &[RegionCheck]) -> u64 {
    let mut d = Fnv64::new();
    for c in checks {
        d.write_u64(c.addr);
        d.write_u64(c.expected.len() as u64);
        d.write(&c.expected);
    }
    d.finish()
}

/// Serializes a built-and-verified workload into an image.
///
/// `verify_digest` must come from a passing
/// [`Workload::verify_digested`] run of this very workload — the cache
/// layer's contract is that only verified workloads are ever encoded.
pub fn encode_workload(wl: &Workload, key: &ImageKey, verify_digest: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64 * wl.trace().len() + 4096);

    // Trace section.
    put_u64(&mut payload, wl.trace().len() as u64);
    for i in wl.trace().iter() {
        put_instruction(&mut payload, i);
    }

    // Memory section (pages in ascending address order, so identical
    // memories encode identically).
    let pages = wl.initial_memory().pages_sorted();
    put_u64(&mut payload, pages.len() as u64);
    for (base, data) in pages {
        put_u64(&mut payload, base);
        payload.extend_from_slice(data);
    }

    // Expected-output section.
    put_u32(&mut payload, wl.checks().len() as u32);
    for c in wl.checks() {
        let label = c.what.as_bytes();
        put_u32(&mut payload, label.len() as u32);
        payload.extend_from_slice(label);
        put_u64(&mut payload, c.addr);
        put_u64(&mut payload, c.expected.len() as u64);
        payload.extend_from_slice(&c.expected);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&WORKLOAD_IMAGE_MAGIC);
    put_u32(&mut out, WORKLOAD_IMAGE_VERSION);
    out.push(kind_code(key.kind));
    out.push(variant_code(key.variant));
    out.push(key.small as u8);
    out.push(0); // reserved
    put_u64(&mut out, key.seed);
    put_u64(&mut out, verify_digest);
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, mom3d_emu::checksum64(&payload));
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self.pos.checked_add(n).ok_or(ImageError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ImageError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn reg_list_from(raw: &[u8], table: &[Reg]) -> Result<RegList, ImageError> {
    let mut list = RegList::new();
    let mut ended = false;
    for &code in raw {
        if code == REG_NONE {
            ended = true;
            continue;
        }
        if ended {
            return Err(ImageError::Malformed("operand after empty slot"));
        }
        let reg =
            *table.get(code as usize).ok_or(ImageError::Malformed("unknown register code"))?;
        list.push(reg);
    }
    Ok(list)
}

/// Fixed-size instruction prefix: opcode (3) + operand lists (4 + 4) +
/// immediate (8) + vl/width/taken (3) + memory-presence flag (1).
const INSTR_HEAD: usize = 23;

fn read_instruction(r: &mut Reader<'_>, table: &[Reg]) -> Result<Instruction, ImageError> {
    // One bounds check for the whole fixed prefix; this loop decodes
    // hundreds of thousands of instructions per image, so the reader is
    // slice-based rather than field-by-field.
    let head = r.take(INSTR_HEAD)?;
    let opcode = opcode_from(head[0], head[1], head[2])
        .ok_or(ImageError::Malformed("unknown opcode"))?;
    let dsts = reg_list_from(&head[3..7], table)?;
    let srcs = reg_list_from(&head[7..11], table)?;
    let imm = i64::from_le_bytes(head[11..19].try_into().expect("8 bytes"));
    let vl = head[19];
    let data_width = width_from(head[20]).ok_or(ImageError::Malformed("unknown data width"))?;
    let taken = match head[21] {
        0 => false,
        1 => true,
        _ => return Err(ImageError::Malformed("non-boolean taken flag")),
    };
    let mem = match head[22] {
        0 => None,
        1 => {
            let m = r.take(19)?;
            let base = u64::from_le_bytes(m[0..8].try_into().expect("8 bytes"));
            let stride = i64::from_le_bytes(m[8..16].try_into().expect("8 bytes"));
            let (count, elem_bytes) = (m[16], m[17]);
            let pattern =
                pattern_from(m[18]).ok_or(ImageError::Malformed("unknown memory pattern"))?;
            if count == 0 || elem_bytes == 0 {
                return Err(ImageError::Malformed("empty memory access"));
            }
            Some(MemAccess { base, stride, count, elem_bytes, pattern })
        }
        _ => return Err(ImageError::Malformed("non-boolean mem flag")),
    };
    let mut instr = Instruction::op(opcode, &[], &[]).with_imm(imm).with_vl(vl).with_width(data_width);
    instr.dsts = dsts;
    instr.srcs = srcs;
    instr.taken = taken;
    instr.mem = mem;
    Ok(instr)
}

/// Deserializes a workload image, checking — in order — magic, format
/// version, the embedded cache key against `expect`, the payload
/// checksum, structural validity, and finally the verification digest.
///
/// # Errors
///
/// Returns the first failed check as an [`ImageError`]; callers treat
/// any error as a cache miss and rebuild.
pub fn decode_workload(bytes: &[u8], expect: &ImageKey) -> Result<Workload, ImageError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8).map_err(|_| ImageError::BadMagic)? != WORKLOAD_IMAGE_MAGIC {
        return Err(ImageError::BadMagic);
    }
    let version = r.u32().map_err(|_| ImageError::Truncated)?;
    if version != WORKLOAD_IMAGE_VERSION {
        return Err(ImageError::VersionMismatch { found: version });
    }
    let kind = kind_from(r.u8()?).ok_or(ImageError::Malformed("unknown workload kind"))?;
    let variant = variant_from(r.u8()?).ok_or(ImageError::Malformed("unknown ISA variant"))?;
    let small = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(ImageError::Malformed("non-boolean geometry flag")),
    };
    let _reserved = r.u8()?;
    let seed = r.u64()?;
    let found = ImageKey { kind, variant, seed, small };
    if found != *expect {
        return Err(ImageError::KeyMismatch {
            found: format!(
                "{kind} {variant} seed {seed} ({})",
                if small { "small" } else { "full" }
            ),
        });
    }
    let verify_digest = r.u64()?;
    let payload_len = r.u64()?;
    let checksum = r.u64()?;
    let payload = r.take(payload_len as usize)?;
    if !r.done() {
        return Err(ImageError::Malformed("trailing bytes after payload"));
    }
    if mom3d_emu::checksum64(payload) != checksum {
        return Err(ImageError::ChecksumMismatch);
    }

    let mut p = Reader { bytes: payload, pos: 0 };

    // Trace section.
    let n_instrs = p.u64()? as usize;
    // Cheap sanity bound: every instruction costs at least INSTR_HEAD
    // bytes.
    if n_instrs.saturating_mul(INSTR_HEAD) > payload.len() {
        return Err(ImageError::Malformed("instruction count exceeds payload"));
    }
    let table = reg_table();
    let mut instrs: Vec<Instruction> = Vec::with_capacity(n_instrs);
    for _ in 0..n_instrs {
        instrs.push(read_instruction(&mut p, table)?);
    }
    let trace: Trace = instrs.into_iter().collect();

    // Memory section.
    let n_pages = p.u64()? as usize;
    let mut memory = MainMemory::new();
    for _ in 0..n_pages {
        let base = p.u64()?;
        if base & (MainMemory::PAGE_BYTES as u64 - 1) != 0 {
            return Err(ImageError::Malformed("unaligned page base"));
        }
        let data: &[u8; MainMemory::PAGE_BYTES] =
            p.take(MainMemory::PAGE_BYTES)?.try_into().expect("page-sized slice");
        memory.write_page(base, data);
    }

    // Expected-output section.
    let n_checks = p.u32()? as usize;
    let mut checks = Vec::with_capacity(n_checks.min(1024));
    for _ in 0..n_checks {
        let label_len = p.u32()? as usize;
        let label = std::str::from_utf8(p.take(label_len)?)
            .map_err(|_| ImageError::Malformed("non-UTF-8 check label"))?;
        let addr = p.u64()?;
        let expected_len = p.u64()? as usize;
        let expected = p.take(expected_len)?.to_vec();
        checks.push(RegionCheck { what: intern_label(label), addr, expected });
    }
    if !p.done() {
        return Err(ImageError::Malformed("trailing bytes in payload"));
    }

    if checks_digest(&checks) != verify_digest {
        return Err(ImageError::DigestMismatch);
    }

    Ok(Workload::from_parts(kind, variant, trace, memory, checks))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ImageKey {
        ImageKey { kind: WorkloadKind::GsmEncode, variant: IsaVariant::Mom3d, seed: 3, small: true }
    }

    fn image() -> (Workload, Vec<u8>) {
        let wl = Workload::build_small(key().kind, key().variant, key().seed).unwrap();
        let digest = wl.verify_digested().unwrap();
        let bytes = encode_workload(&wl, &key(), digest);
        (wl, bytes)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let (wl, bytes) = image();
        let decoded = decode_workload(&bytes, &key()).unwrap();
        assert_eq!(decoded, wl);
        // The decoded workload still verifies, with the same digest.
        assert_eq!(decoded.verify_digested().unwrap(), wl.verify_digested().unwrap());
    }

    #[test]
    fn encoding_is_deterministic() {
        let (_, a) = image();
        let (_, b) = image();
        assert_eq!(a, b, "same key must produce byte-identical images");
    }

    #[test]
    fn key_mismatch_is_rejected() {
        let (_, bytes) = image();
        let other = ImageKey { seed: 4, ..key() };
        assert!(matches!(
            decode_workload(&bytes, &other),
            Err(ImageError::KeyMismatch { .. })
        ));
        let full = ImageKey { small: false, ..key() };
        assert!(matches!(decode_workload(&bytes, &full), Err(ImageError::KeyMismatch { .. })));
    }

    #[test]
    fn version_bump_invalidates() {
        let (_, mut bytes) = image();
        let bumped = WORKLOAD_IMAGE_VERSION + 1;
        bytes[8..12].copy_from_slice(&bumped.to_le_bytes());
        assert_eq!(
            decode_workload(&bytes, &key()),
            Err(ImageError::VersionMismatch { found: bumped })
        );
    }

    #[test]
    fn truncation_and_bit_flips_are_rejected() {
        let (_, bytes) = image();
        assert_eq!(decode_workload(&[], &key()), Err(ImageError::BadMagic));
        assert_eq!(
            decode_workload(&bytes[..bytes.len() / 2], &key()),
            Err(ImageError::Truncated)
        );
        // Flip one payload bit: the checksum catches it.
        let mut flipped = bytes.clone();
        let i = HEADER_LEN + flipped[HEADER_LEN..].len() / 2;
        flipped[i] ^= 0x40;
        assert_eq!(decode_workload(&flipped, &key()), Err(ImageError::ChecksumMismatch));
        // Corrupt the magic.
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode_workload(&bad_magic, &key()), Err(ImageError::BadMagic));
    }

    #[test]
    fn digest_mismatch_is_rejected() {
        let (wl, _) = image();
        // Encode with a digest that does not match the checks.
        let bytes = encode_workload(&wl, &key(), 0xDEAD_BEEF);
        assert_eq!(decode_workload(&bytes, &key()), Err(ImageError::DigestMismatch));
    }

    #[test]
    fn reg_codec_covers_every_register() {
        let table = reg_table();
        assert_eq!(table.len(), Reg::FLAT_COUNT);
        for (i, &reg) in table.iter().enumerate() {
            assert_eq!(reg.flat_index(), i, "{reg}");
        }
        assert!(table.get(REG_NONE as usize).is_none());
    }

    #[test]
    fn opcode_codec_round_trips() {
        let mut ops: Vec<Opcode> = vec![
            Opcode::LoadScalar,
            Opcode::StoreScalar,
            Opcode::Branch,
            Opcode::LoadMmx,
            Opcode::StoreMmx,
            Opcode::VLoad,
            Opcode::VStore,
            Opcode::ReadAcc,
            Opcode::SetVl,
            Opcode::SetVs,
            Opcode::DvLoad,
            Opcode::DvMov,
        ];
        for code in 0..=11u8 {
            ops.push(Opcode::IntAlu(int_op_from(code).unwrap()));
        }
        for code in 0..=29u8 {
            for w in 0..=3u8 {
                let u = usimd_from(code, w).unwrap();
                ops.push(Opcode::Usimd(u));
                ops.push(Opcode::VCompute(u));
            }
        }
        for code in 0..=3u8 {
            ops.push(Opcode::VReduce(reduce_from(code, 0).unwrap()));
        }
        for op in ops {
            let (t, s, w) = opcode_code(op);
            let back = opcode_from(t, s, w).unwrap();
            // Width-free ops normalize their width byte, so compare the
            // re-encoded code, which must be stable.
            assert_eq!(opcode_code(back), (t, s, w), "{op:?}");
        }
        assert_eq!(opcode_from(16, 0, 0), None);
        assert_eq!(usimd_from(30, 0), None);
        assert_eq!(int_op_from(12), None);
        assert_eq!(reduce_from(4, 0), None);
    }

    #[test]
    fn labels_intern_to_one_leak() {
        let a = intern_label("region-x");
        let b = intern_label("region-x");
        assert!(std::ptr::eq(a, b), "same label must intern to the same allocation");
    }
}
