//! Address-space layout helper for workload memory images.

use mom3d_mem::MainMemory;

/// A bump allocator over the simulated address space.
///
/// Workloads place their arrays (frames, residuals, output buffers) at
/// aligned addresses and write the initial data into a [`MainMemory`]
/// image that both the emulator and the trace generators share.
#[derive(Debug)]
pub struct Arena {
    next: u64,
    memory: MainMemory,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Arena {
    /// Base address of the first allocation (keeps workloads away from
    /// the null page).
    pub const BASE: u64 = 0x10_0000;

    /// An empty arena.
    pub fn new() -> Self {
        Arena { next: Self::BASE, memory: MainMemory::new() }
    }

    /// Reserves `len` bytes aligned to `align` and returns the base
    /// address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + len;
        base
    }

    /// Reserves space for `bytes` (128-byte aligned, matching an L2
    /// line), writes them, and returns the base address.
    pub fn place(&mut self, bytes: &[u8]) -> u64 {
        let base = self.alloc(bytes.len() as u64, 128);
        self.memory.write_bytes(base, bytes);
        base
    }

    /// Reserves a zeroed output region.
    pub fn reserve(&mut self, len: u64) -> u64 {
        self.alloc(len, 128)
    }

    /// Consumes the arena, returning the initial memory image.
    pub fn into_memory(self) -> MainMemory {
        self.memory
    }

    /// Total bytes spanned so far.
    pub fn used(&self) -> u64 {
        self.next - Self::BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut a = Arena::new();
        let x = a.alloc(100, 64);
        let y = a.alloc(10, 64);
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 100);
    }

    #[test]
    fn place_writes_data() {
        let mut a = Arena::new();
        let addr = a.place(&[1, 2, 3, 4]);
        assert_eq!(addr % 128, 0);
        let mem = a.into_memory();
        assert_eq!(mem.read_bytes(addr, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        Arena::new().alloc(8, 3);
    }

    #[test]
    fn used_tracks_footprint() {
        let mut a = Arena::new();
        assert_eq!(a.used(), 0);
        a.alloc(1000, 128);
        assert!(a.used() >= 1000);
    }
}
