//! `jpeg decode` — upsampling + color reconstruction over wide
//! consecutive rows.
//!
//! The decode side of JPEG walks whole image rows: dense, unit-stride
//! byte streams that already exploit the vector cache's wide port at
//! full rate. The paper found **no suitable 3D memory patterns** here —
//! the next row chunk sits 128 bytes away, outside the 3D element span —
//! so the `Mom3d` variant is identical to `Mom` (and the vectorizer pass
//! declines the trace too; see the crate's integration tests).

use crate::data::Frame;
use crate::layout::Arena;
use crate::workload::{IsaVariant, RegionCheck, Workload, WorkloadKind};
use mom3d_isa::{Gpr, IntOp, MmxReg, MomReg, TraceBuilder, UsimdOp, Width};

/// Bytes processed per vector iteration (one full MOM register).
const CHUNK: usize = 128;
/// Chroma bias added after blending.
const BIAS: u8 = 16;

/// Parameters of the JPEG-decode workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JpegDecodeParams {
    /// Image width in pixels (must be a multiple of 128).
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Data-generator seed.
    pub seed: u64,
}

impl Default for JpegDecodeParams {
    fn default() -> Self {
        JpegDecodeParams { width: 512, height: 96, seed: 3 }
    }
}

impl JpegDecodeParams {
    /// Default geometry with a specific data seed.
    pub fn with_seed(seed: u64) -> Self {
        JpegDecodeParams { seed, ..Default::default() }
    }

    /// Reduced geometry for fast (debug-build) test runs.
    pub fn small_with_seed(seed: u64) -> Self {
        JpegDecodeParams { width: 128, height: 16, seed }
    }
}

/// Scalar reference: `out = sat_u8(avg_round(y, c) + BIAS)` per pixel.
fn reference(y: &Frame, c: &Frame) -> Vec<u8> {
    y.bytes()
        .iter()
        .zip(c.bytes().iter())
        .map(|(&yp, &cp)| {
            let avg = (yp as u16 + cp as u16 + 1) >> 1;
            (avg + BIAS as u16).min(255) as u8
        })
        .collect()
}

const R_Y: Gpr = Gpr::new(1);
const R_C: Gpr = Gpr::new(2);
const R_O: Gpr = Gpr::new(3);
const R_B: Gpr = Gpr::new(4);
const R_T: Gpr = Gpr::new(5);

/// Builds the workload for one ISA variant.
pub(crate) fn build(params: &JpegDecodeParams, variant: IsaVariant) -> Workload {
    assert!(params.width.is_multiple_of(CHUNK), "width must be a multiple of 128");
    let yf = Frame::synthetic(params.width, params.height, params.seed);
    let cf = Frame::synthetic(params.width, params.height, params.seed + 1);

    let mut arena = Arena::new();
    let y_addr = arena.place(yf.bytes());
    let c_addr = arena.place(cf.bytes());
    let bias_addr = arena.place(&[BIAS; CHUNK]);
    let out_addr = arena.reserve((params.width * params.height) as u64);
    let expected = reference(&yf, &cf);

    let mut tb = TraceBuilder::new();
    match variant {
        // The paper leaves jpeg decode without 3D instructions; both MOM
        // variants emit the same code.
        IsaVariant::Mom | IsaVariant::Mom3d => {
            tb.set_vl(16);
            tb.set_vs(8);
            // Bias vector stays register-resident.
            tb.li(R_B, bias_addr as i64);
            tb.vload(MomReg::new(2), R_B, bias_addr);
            for off in (0..params.width * params.height).step_by(CHUNK) {
                let off = off as u64;
                tb.li(R_Y, (y_addr + off) as i64);
                tb.vload(MomReg::new(0), R_Y, y_addr + off);
                tb.li(R_C, (c_addr + off) as i64);
                tb.vload(MomReg::new(1), R_C, c_addr + off);
                tb.vop2(UsimdOp::AvgU(Width::B8), MomReg::new(3), MomReg::new(0), MomReg::new(1));
                tb.vop2(
                    UsimdOp::AddSatU(Width::B8),
                    MomReg::new(4),
                    MomReg::new(3),
                    MomReg::new(2),
                );
                tb.li(R_O, (out_addr + off) as i64);
                tb.vstore(MomReg::new(4), R_O, out_addr + off);
            }
        }
        IsaVariant::Mmx => {
            // Bias word stays register-resident in mm8.
            tb.li(R_B, bias_addr as i64);
            tb.movq_load(MmxReg::new(8), R_B, bias_addr, Width::B8);
            for off in (0..params.width * params.height).step_by(CHUNK) {
                let off = off as u64;
                tb.li(R_Y, (y_addr + off) as i64);
                tb.li(R_C, (c_addr + off) as i64);
                tb.li(R_O, (out_addr + off) as i64);
                for w in 0..CHUNK / 8 {
                    let wo = w as u64 * 8;
                    tb.alui(IntOp::Add, R_T, R_Y, wo as i64);
                    tb.movq_load(MmxReg::new(0), R_T, y_addr + off + wo, Width::B8);
                    tb.alui(IntOp::Add, R_T, R_C, wo as i64);
                    tb.movq_load(MmxReg::new(1), R_T, c_addr + off + wo, Width::B8);
                    tb.usimd2(
                        UsimdOp::AvgU(Width::B8),
                        MmxReg::new(2),
                        MmxReg::new(0),
                        MmxReg::new(1),
                    );
                    tb.usimd2(
                        UsimdOp::AddSatU(Width::B8),
                        MmxReg::new(3),
                        MmxReg::new(2),
                        MmxReg::new(8),
                    );
                    tb.alui(IntOp::Add, R_T, R_O, wo as i64);
                    tb.movq_store(MmxReg::new(3), R_T, out_addr + off + wo);
                }
            }
        }
    }

    Workload::from_parts(
        WorkloadKind::JpegDecode,
        variant,
        tb.finish(),
        arena.into_memory(),
        vec![RegionCheck { what: "reconstructed pixels", addr: out_addr, expected }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> JpegDecodeParams {
        JpegDecodeParams { width: 128, height: 8, seed: 21 }
    }

    #[test]
    fn all_variants_verify() {
        for v in IsaVariant::ALL {
            build(&tiny(), v).verify().unwrap_or_else(|e| panic!("{v} failed: {e}"));
        }
    }

    #[test]
    fn mom3d_is_identical_to_mom() {
        // The paper: "only jpeg decode did not have suitable
        // 3-dimensional memory patterns".
        let a = build(&tiny(), IsaVariant::Mom);
        let b = build(&tiny(), IsaVariant::Mom3d);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(b.trace().stats().mem_3d, 0);
    }

    #[test]
    fn streams_are_unit_stride() {
        let wl = build(&tiny(), IsaVariant::Mom);
        for i in wl.trace().iter() {
            if let Some(m) = &i.mem {
                if i.opcode.is_vector() {
                    assert_eq!(m.stride, 8, "dense rows only");
                }
            }
        }
        // High second-dimension length, like the paper's 15.9.
        assert!((wl.trace().stats().avg_dim2() - 16.0).abs() < 0.01);
    }

    #[test]
    fn reference_is_shifted_average() {
        let p = tiny();
        let y = Frame::synthetic(p.width, p.height, p.seed);
        let c = Frame::synthetic(p.width, p.height, p.seed + 1);
        let out = reference(&y, &c);
        assert_eq!(out.len(), p.width * p.height);
        // Every output is avg + bias (saturating), so it is at least as
        // bright as the bias and at least as bright as min(y,c)/2.
        for (i, &o) in out.iter().enumerate() {
            assert!(o >= BIAS, "pixel {i} below bias");
            let lo = (y.bytes()[i].min(c.bytes()[i]) / 2).saturating_add(BIAS);
            assert!(o >= lo);
        }
    }
}
