//! The workload container: trace + memory image + expected outputs.

use crate::{gsm_encode, jpeg_decode, jpeg_encode, mpeg2_decode, mpeg2_encode};
use mom3d_emu::{EmuError, Emulator, Fnv64, Machine};
use mom3d_isa::Trace;
use mom3d_mem::MainMemory;
use std::error::Error;
use std::fmt;

/// Which benchmark (paper §5.1's Mediabench selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// JPEG compression: block transform + quantization over 8×8 blocks
    /// laid out along the image x-axis.
    JpegEncode,
    /// JPEG decompression: wide consecutive row patterns; **no** 3D
    /// memory patterns (the paper leaves it unchanged).
    JpegDecode,
    /// MPEG-2 decoding: half-pel motion compensation + residual add +
    /// saturation, with row re-reads.
    Mpeg2Decode,
    /// MPEG-2 encoding: full-search motion estimation (the paper's
    /// running example; the most memory-bound workload).
    Mpeg2Encode,
    /// GSM speech encoding: long-term-prediction cross-correlation over
    /// lag-shifted dense 16-bit windows.
    GsmEncode,
}

impl WorkloadKind {
    /// All five workloads in the paper's figure order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::JpegEncode,
        WorkloadKind::JpegDecode,
        WorkloadKind::Mpeg2Decode,
        WorkloadKind::Mpeg2Encode,
        WorkloadKind::GsmEncode,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::JpegEncode => "jpeg encode",
            WorkloadKind::JpegDecode => "jpeg decode",
            WorkloadKind::Mpeg2Decode => "mpeg2 decode",
            WorkloadKind::Mpeg2Encode => "mpeg2 encode",
            WorkloadKind::GsmEncode => "gsm encode",
        }
    }

    /// True when the paper found exploitable 3D patterns (all but
    /// `jpeg decode`).
    pub fn has_3d_patterns(self) -> bool {
        !matches!(self, WorkloadKind::JpegDecode)
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which ISA style the trace is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaVariant {
    /// 1D µSIMD, MMX-like (the paper's baseline processor style).
    Mmx,
    /// The MOM 2D vector ISA.
    Mom,
    /// MOM plus the 3D memory instructions.
    Mom3d,
}

impl IsaVariant {
    /// All variants.
    pub const ALL: [IsaVariant; 3] = [IsaVariant::Mmx, IsaVariant::Mom, IsaVariant::Mom3d];
}

impl fmt::Display for IsaVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IsaVariant::Mmx => "MMX",
            IsaVariant::Mom => "MOM",
            IsaVariant::Mom3d => "MOM+3D",
        };
        f.write_str(s)
    }
}

/// An expected-output region: after emulation, memory at `addr` must
/// equal `expected`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionCheck {
    /// What this region holds (for error messages).
    pub what: &'static str,
    /// Base address.
    pub addr: u64,
    /// Expected bytes (computed by the scalar reference).
    pub expected: Vec<u8>,
}

/// Verification failure: emulation error or output mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The emulator rejected the trace.
    Emulation(EmuError),
    /// An output region differs from the scalar reference.
    Mismatch {
        /// Which region.
        what: &'static str,
        /// First differing byte's address.
        addr: u64,
        /// Expected byte.
        expected: u8,
        /// Byte the trace produced.
        actual: u8,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Emulation(e) => write!(f, "emulation failed: {e}"),
            VerifyError::Mismatch { what, addr, expected, actual } => write!(
                f,
                "{what}: output mismatch at {addr:#x}: expected {expected:#04x}, got {actual:#04x}"
            ),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Emulation(e) => Some(e),
            VerifyError::Mismatch { .. } => None,
        }
    }
}

impl From<EmuError> for VerifyError {
    fn from(e: EmuError) -> Self {
        VerifyError::Emulation(e)
    }
}

/// A ready-to-run benchmark instance: instruction trace, initial memory
/// image, and the scalar reference's expected outputs.
///
/// Equality is bit-exact over every component (trace, memory image,
/// expected-output regions) — what the workload-image round-trip tests
/// assert about [`crate::decode_workload`].
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    kind: WorkloadKind,
    variant: IsaVariant,
    trace: Trace,
    memory: MainMemory,
    checks: Vec<RegionCheck>,
}

impl Workload {
    /// Builds a workload with each kernel's default parameters.
    ///
    /// `seed` drives the synthetic data generators; the same seed always
    /// yields bit-identical workloads.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (the result type leaves room for
    /// parameterized builders to validate); kept for API stability.
    pub fn build(
        kind: WorkloadKind,
        variant: IsaVariant,
        seed: u64,
    ) -> Result<Workload, Box<dyn Error>> {
        Ok(match kind {
            WorkloadKind::Mpeg2Encode => {
                mpeg2_encode::build(&mpeg2_encode::Mpeg2EncodeParams::with_seed(seed), variant)
            }
            WorkloadKind::Mpeg2Decode => {
                mpeg2_decode::build(&mpeg2_decode::Mpeg2DecodeParams::with_seed(seed), variant)
            }
            WorkloadKind::JpegEncode => {
                jpeg_encode::build(&jpeg_encode::JpegEncodeParams::with_seed(seed), variant)
            }
            WorkloadKind::JpegDecode => {
                jpeg_decode::build(&jpeg_decode::JpegDecodeParams::with_seed(seed), variant)
            }
            WorkloadKind::GsmEncode => {
                gsm_encode::build(&gsm_encode::GsmEncodeParams::with_seed(seed), variant)
            }
        })
    }

    /// Builds a reduced-geometry workload — same memory-pattern shapes,
    /// far fewer dynamic instructions. Intended for (debug-build) test
    /// suites; the experiment harness uses [`Workload::build`].
    ///
    /// # Errors
    ///
    /// See [`Workload::build`].
    pub fn build_small(
        kind: WorkloadKind,
        variant: IsaVariant,
        seed: u64,
    ) -> Result<Workload, Box<dyn Error>> {
        Ok(match kind {
            WorkloadKind::Mpeg2Encode => mpeg2_encode::build(
                &mpeg2_encode::Mpeg2EncodeParams::small_with_seed(seed),
                variant,
            ),
            WorkloadKind::Mpeg2Decode => mpeg2_decode::build(
                &mpeg2_decode::Mpeg2DecodeParams::small_with_seed(seed),
                variant,
            ),
            WorkloadKind::JpegEncode => {
                jpeg_encode::build(&jpeg_encode::JpegEncodeParams::small_with_seed(seed), variant)
            }
            WorkloadKind::JpegDecode => {
                jpeg_decode::build(&jpeg_decode::JpegDecodeParams::small_with_seed(seed), variant)
            }
            WorkloadKind::GsmEncode => {
                gsm_encode::build(&gsm_encode::GsmEncodeParams::small_with_seed(seed), variant)
            }
        })
    }

    /// Assembles a workload from parts (used by the kernel modules).
    pub(crate) fn from_parts(
        kind: WorkloadKind,
        variant: IsaVariant,
        trace: Trace,
        memory: MainMemory,
        checks: Vec<RegionCheck>,
    ) -> Self {
        Workload { kind, variant, trace, memory, checks }
    }

    /// The benchmark kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The ISA variant.
    pub fn variant(&self) -> IsaVariant {
        self.variant
    }

    /// The dynamic instruction trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The initial memory image.
    pub fn initial_memory(&self) -> &MainMemory {
        &self.memory
    }

    /// The expected-output regions.
    pub fn checks(&self) -> &[RegionCheck] {
        &self.checks
    }

    /// A machine pre-loaded with the initial memory image.
    pub fn machine(&self) -> Machine {
        let mut m = Machine::new();
        m.mem = self.memory.clone();
        m
    }

    /// Executes the trace on the functional emulator and compares every
    /// output region against the scalar reference.
    ///
    /// # Errors
    ///
    /// Returns the emulation error or the first mismatching byte.
    pub fn verify(&self) -> Result<(), VerifyError> {
        self.verify_digested().map(|_| ())
    }

    /// Like [`Workload::verify`], but also returns an FNV-1a digest of
    /// the **emulator's actual output bytes** over every check region
    /// (address, length and content, in check order).
    ///
    /// The digest is what the workload-image cache persists alongside a
    /// serialized workload: it fingerprints a verification run that
    /// really happened, and a loaded image whose expected-output
    /// regions do not reproduce it is rejected (the cache rebuilds
    /// instead of ever serving a wrong answer). Because verification
    /// demands bit-identical output, the digest equals the digest of
    /// the expected bytes — but it is computed from the emulator side
    /// so it cannot exist without a passing run.
    ///
    /// # Errors
    ///
    /// See [`Workload::verify`].
    pub fn verify_digested(&self) -> Result<u64, VerifyError> {
        let mut emu = Emulator::with_machine(self.machine());
        emu.run(&self.trace)?;
        let mut digest = Fnv64::new();
        for check in &self.checks {
            let actual = emu.machine().mem.read_bytes(check.addr, check.expected.len());
            for (i, (&e, &a)) in check.expected.iter().zip(actual.iter()).enumerate() {
                if e != a {
                    return Err(VerifyError::Mismatch {
                        what: check.what,
                        addr: check.addr + i as u64,
                        expected: e,
                        actual: a,
                    });
                }
            }
            digest.write_u64(check.addr);
            digest.write_u64(actual.len() as u64);
            digest.write(&actual);
        }
        Ok(digest.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_spellings() {
        assert_eq!(WorkloadKind::Mpeg2Encode.name(), "mpeg2 encode");
        assert_eq!(WorkloadKind::ALL.len(), 5);
    }

    #[test]
    fn only_jpeg_decode_lacks_3d_patterns() {
        let without: Vec<_> =
            WorkloadKind::ALL.iter().filter(|k| !k.has_3d_patterns()).collect();
        assert_eq!(without, vec![&WorkloadKind::JpegDecode]);
    }

    #[test]
    fn variant_display() {
        assert_eq!(IsaVariant::Mom3d.to_string(), "MOM+3D");
    }
}
