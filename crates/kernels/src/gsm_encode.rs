//! `gsm encode` — long-term-prediction (LTP) lag search.
//!
//! For each 40-sample subsegment, GSM's LTP scans lags 40..=120 and
//! keeps the lag maximizing the cross-correlation with the signal
//! history. The windows are *dense* 16-bit streams whose base addresses
//! move by 2 bytes per lag — the highest-overlap 3D pattern of the five
//! workloads (the paper measures a 7.7-average third dimension and the
//! largest traffic reduction).

use crate::data::AudioBuf;
use crate::layout::Arena;
use crate::workload::{IsaVariant, RegionCheck, Workload, WorkloadKind};
use mom3d_isa::{AccReg, DReg, Gpr, IntOp, MmxReg, MomReg, ReduceOp, TraceBuilder, UsimdOp, Width};

/// Samples per subsegment (GSM RPE-LTP).
const SUB: usize = 40;
/// Smallest lag searched.
const LAG_MIN: usize = 40;
/// Largest lag searched.
const LAG_MAX: usize = 120;
/// Lags served per `3dvload` chunk.
const CHUNK: usize = 16;
/// 64-bit words per 40-sample window.
const WORDS: usize = SUB * 2 / 8;

/// Parameters of the LTP workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GsmEncodeParams {
    /// Number of 40-sample subsegments processed.
    pub subsegments: usize,
    /// Peak sample amplitude (≤ 4096 keeps correlations in `i32`).
    pub amplitude: i16,
    /// Data-generator seed.
    pub seed: u64,
}

impl Default for GsmEncodeParams {
    fn default() -> Self {
        GsmEncodeParams { subsegments: 16, amplitude: 4096, seed: 2 }
    }
}

impl GsmEncodeParams {
    /// Default geometry with a specific data seed.
    pub fn with_seed(seed: u64) -> Self {
        GsmEncodeParams { seed, ..Default::default() }
    }

    /// Reduced geometry for fast (debug-build) test runs.
    pub fn small_with_seed(seed: u64) -> Self {
        GsmEncodeParams { subsegments: 4, amplitude: 4096, seed }
    }

    fn total_samples(&self) -> usize {
        LAG_MAX + self.subsegments * SUB + 8
    }

    fn sub_start(&self, n: usize) -> usize {
        LAG_MAX + n * SUB
    }
}

/// Scalar reference: per subsegment, `(max correlation, arg-max lag)`,
/// scanning lags in *descending* order with strict `>` — the same
/// iteration order the vector code uses (ascending history addresses).
fn reference(params: &GsmEncodeParams, sig: &AudioBuf) -> Vec<(i64, u32)> {
    (0..params.subsegments)
        .map(|n| {
            let s0 = params.sub_start(n);
            let mut best = i64::MIN;
            let mut lag = 0u32;
            for k in (LAG_MIN..=LAG_MAX).rev() {
                let c = corr_at(sig, s0, k);
                if c > best {
                    best = c;
                    lag = k as u32;
                }
            }
            (best, lag)
        })
        .collect()
}

fn corr_at(sig: &AudioBuf, s0: usize, k: usize) -> i64 {
    (0..SUB)
        .map(|i| sig.sample(s0 + i) as i64 * sig.sample(s0 - k + i) as i64)
        .sum()
}

const R_X: Gpr = Gpr::new(1);
const R_DW: Gpr = Gpr::new(2);
const R_OUT: Gpr = Gpr::new(4);
const R_OUT2: Gpr = Gpr::new(5);
const R_T: Gpr = Gpr::new(6);
const R_LO: Gpr = Gpr::new(7);
const R_HI: Gpr = Gpr::new(8);
const R_D: Gpr = Gpr::new(10);
const R_CMP: Gpr = Gpr::new(11);
const R_BEST: Gpr = Gpr::new(20);
const R_LAG: Gpr = Gpr::new(21);

fn emit_max_update(tb: &mut TraceBuilder, k: usize, c: i64, best: &mut i64, lag: &mut u32) {
    tb.alu(IntOp::SltS, R_CMP, R_BEST, R_D);
    let taken = c > *best;
    tb.branch(R_CMP, taken);
    if taken {
        tb.alui(IntOp::Mov, R_BEST, R_D, 0);
        tb.li(R_LAG, k as i64);
        *best = c;
        *lag = k as u32;
    }
}

fn emit_result_stores(tb: &mut TraceBuilder, out: u64) {
    tb.li(R_OUT, out as i64);
    tb.store_scalar(R_BEST, R_OUT, out, 8);
    tb.alui(IntOp::Add, R_OUT2, R_OUT, 8);
    tb.store_scalar(R_LAG, R_OUT2, out + 8, 4);
}

/// Builds the workload for one ISA variant.
pub(crate) fn build(params: &GsmEncodeParams, variant: IsaVariant) -> Workload {
    let sig = AudioBuf::synthetic(params.total_samples(), params.amplitude, params.seed);

    let mut arena = Arena::new();
    let sig_addr = arena.place(&sig.to_le_bytes());
    let out_addr = arena.reserve(params.subsegments as u64 * 16);

    let expected: Vec<u8> = reference(params, &sig)
        .iter()
        .flat_map(|&(best, lag)| {
            let mut b = best.to_le_bytes().to_vec();
            b.extend_from_slice(&lag.to_le_bytes());
            b.extend_from_slice(&[0u8; 4]); // pad to 16 bytes
            b
        })
        .collect();

    let mut tb = TraceBuilder::new();
    match variant {
        IsaVariant::Mom => {
            tb.set_vl(WORDS as u8);
            tb.set_vs(8);
            for n in 0..params.subsegments {
                let s0 = params.sub_start(n);
                let d_addr = sig_addr + 2 * s0 as u64;
                tb.li(R_BEST, i64::MIN);
                tb.li(R_LAG, 0);
                let (mut best, mut lag) = (i64::MIN, 0u32);
                for k in (LAG_MIN..=LAG_MAX).rev() {
                    let x_addr = sig_addr + 2 * (s0 - k) as u64;
                    tb.li(R_X, x_addr as i64);
                    tb.vload_w(MomReg::new(0), R_X, x_addr, Width::H16);
                    // The d window is re-read each lag, as in the C source.
                    tb.li(R_DW, d_addr as i64);
                    tb.vload_w(MomReg::new(1), R_DW, d_addr, Width::H16);
                    tb.clear_acc(AccReg::new(0));
                    tb.vreduce(
                        ReduceOp::DotS16,
                        AccReg::new(0),
                        MomReg::new(0),
                        Some(MomReg::new(1)),
                    );
                    tb.rdacc(R_D, AccReg::new(0));
                    emit_max_update(&mut tb, k, corr_at(&sig, s0, k), &mut best, &mut lag);
                }
                emit_result_stores(&mut tb, out_addr + n as u64 * 16);
            }
        }
        IsaVariant::Mom3d => {
            tb.set_vl(WORDS as u8);
            tb.set_vs(8);
            for n in 0..params.subsegments {
                let s0 = params.sub_start(n);
                let d_addr = sig_addr + 2 * s0 as u64;
                tb.li(R_BEST, i64::MIN);
                tb.li(R_LAG, 0);
                let (mut best, mut lag) = (i64::MIN, 0u32);
                let lags: Vec<usize> = (LAG_MIN..=LAG_MAX).rev().collect();
                for chunk in lags.chunks(CHUNK) {
                    // The d window is dense and invariant: a 2D load on
                    // the wide port (refreshed per chunk) beats a 3D
                    // window of one-word elements.
                    tb.li(R_DW, d_addr as i64);
                    tb.vload_w(MomReg::new(1), R_DW, d_addr, Width::H16);
                    // History bases ascend by 2 bytes within the chunk:
                    // span = 2*(len-1) + 8.
                    let wwords = (2 * (chunk.len() - 1) + 8).div_ceil(8) as u8;
                    let x0 = sig_addr + 2 * (s0 - chunk[0]) as u64;
                    tb.li(R_X, x0 as i64);
                    tb.dvload(DReg::new(0), R_X, x0, 8, wwords, false);
                    for &k in chunk {
                        tb.dvmov_w(MomReg::new(0), DReg::new(0), 2, Width::H16);
                        tb.clear_acc(AccReg::new(0));
                        tb.vreduce(
                            ReduceOp::DotS16,
                            AccReg::new(0),
                            MomReg::new(0),
                            Some(MomReg::new(1)),
                        );
                        tb.rdacc(R_D, AccReg::new(0));
                        emit_max_update(&mut tb, k, corr_at(&sig, s0, k), &mut best, &mut lag);
                    }
                }
                emit_result_stores(&mut tb, out_addr + n as u64 * 16);
            }
        }
        IsaVariant::Mmx => {
            for n in 0..params.subsegments {
                let s0 = params.sub_start(n);
                let d_addr = sig_addr + 2 * s0 as u64;
                // Cache the d window in mm8..mm17 once per subsegment.
                tb.li(R_DW, d_addr as i64);
                for w in 0..WORDS {
                    tb.alui(IntOp::Add, R_T, R_DW, (w * 8) as i64);
                    tb.movq_load(MmxReg::new(8 + w as u8), R_T, d_addr + w as u64 * 8, Width::H16);
                }
                tb.li(R_BEST, i64::MIN);
                tb.li(R_LAG, 0);
                let (mut best, mut lag) = (i64::MIN, 0u32);
                for k in (LAG_MIN..=LAG_MAX).rev() {
                    let x_addr = sig_addr + 2 * (s0 - k) as u64;
                    tb.li(R_X, x_addr as i64);
                    tb.usimd2(UsimdOp::Xor, MmxReg::new(7), MmxReg::new(7), MmxReg::new(7));
                    for w in 0..WORDS {
                        tb.alui(IntOp::Add, R_T, R_X, (w * 8) as i64);
                        tb.movq_load(MmxReg::new(0), R_T, x_addr + w as u64 * 8, Width::H16);
                        tb.usimd2(
                            UsimdOp::MaddS16,
                            MmxReg::new(1),
                            MmxReg::new(0),
                            MmxReg::new(8 + w as u8),
                        );
                        tb.usimd2(
                            UsimdOp::AddWrap(Width::W32),
                            MmxReg::new(7),
                            MmxReg::new(7),
                            MmxReg::new(1),
                        );
                    }
                    // Horizontal add of the two signed 32-bit lanes.
                    tb.mmx_to_gpr(R_T, MmxReg::new(7));
                    tb.alui(IntOp::Shl, R_LO, R_T, 32);
                    tb.alui(IntOp::Sar, R_LO, R_LO, 32);
                    tb.alui(IntOp::Sar, R_HI, R_T, 32);
                    tb.alu(IntOp::Add, R_D, R_LO, R_HI);
                    emit_max_update(&mut tb, k, corr_at(&sig, s0, k), &mut best, &mut lag);
                }
                emit_result_stores(&mut tb, out_addr + n as u64 * 16);
            }
        }
    }

    Workload::from_parts(
        WorkloadKind::GsmEncode,
        variant,
        tb.finish(),
        arena.into_memory(),
        vec![RegionCheck { what: "LTP (max correlation, lag)", addr: out_addr, expected }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GsmEncodeParams {
        GsmEncodeParams { subsegments: 3, amplitude: 4096, seed: 11 }
    }

    #[test]
    fn all_variants_verify() {
        let p = tiny();
        for v in IsaVariant::ALL {
            build(&p, v).verify().unwrap_or_else(|e| panic!("{v} failed: {e}"));
        }
    }

    #[test]
    fn correlation_fits_i32_headroom() {
        let p = tiny();
        let sig = AudioBuf::synthetic(p.total_samples(), p.amplitude, p.seed);
        for n in 0..p.subsegments {
            for k in LAG_MIN..=LAG_MAX {
                let c = corr_at(&sig, p.sub_start(n), k);
                assert!(c.abs() < i32::MAX as i64, "corr {c} overflows i32 partials");
            }
        }
    }

    #[test]
    fn third_dimension_shape_matches_table1() {
        let s = build(&tiny(), IsaVariant::Mom3d).trace().stats();
        assert!(s.mem_3d > 0);
        assert_eq!(s.dim3_vl_max, CHUNK as u64);
        // Dense windows: dim2 = 10 words, like the paper's gsm row.
        assert!((s.avg_dim2() - 10.0).abs() < 0.2);
        let d3 = s.avg_dim3().unwrap();
        assert!(d3 > 4.0 && d3 <= 16.0, "avg dim3 {d3}");
    }

    #[test]
    fn traffic_shrinks_with_3d() {
        let b2 = build(&tiny(), IsaVariant::Mom).trace().stats().bytes_accessed;
        let b3 = build(&tiny(), IsaVariant::Mom3d).trace().stats().bytes_accessed;
        assert!(b3 * 2 < b2, "3D {b3} vs 2D {b2}");
    }

    #[test]
    fn best_lag_is_plausible() {
        let p = tiny();
        let sig = AudioBuf::synthetic(p.total_samples(), p.amplitude, p.seed);
        for (best, lag) in reference(&p, &sig) {
            assert!((LAG_MIN as u32..=LAG_MAX as u32).contains(&lag));
            assert!(best > 0, "periodic signals correlate positively somewhere");
        }
    }
}
