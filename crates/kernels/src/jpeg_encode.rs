//! `jpeg encode` — block transform + quantization over 8×8 blocks.
//!
//! JPEG's forward path walks 8×8 pixel blocks laid out along the image
//! x-axis: each block's rows are strided by the image width, and the
//! *next* block's rows sit 8 bytes further — the paper's "more than one
//! MOM stream per cache line" 3D condition. One `3dvload` of 16 × 64-bit
//! elements fetches a whole line of 16 adjacent blocks' rows; the gain
//! is effective bandwidth (wide fetch), with little traffic reduction
//! (adjacent blocks do not overlap), matching the paper's Figure 6/7
//! split for this benchmark.

use crate::data::Frame;
use crate::layout::Arena;
use crate::workload::{IsaVariant, RegionCheck, Workload, WorkloadKind};
use mom3d_isa::{
    AccReg, DReg, Gpr, IntOp, MmxReg, MomReg, ReduceOp, TraceBuilder, UsimdOp, Width,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Block edge in pixels.
const BLOCK: usize = 8;
/// Adjacent blocks grouped per `3dvload` (16 × 8 B = one L2 line).
const GROUP: usize = 16;

/// Parameters of the JPEG-encode workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JpegEncodeParams {
    /// Image width in pixels (multiple of 128 keeps groups whole).
    pub width: usize,
    /// Image height in pixels (multiple of 8).
    pub height: usize,
    /// Data-generator seed.
    pub seed: u64,
}

impl Default for JpegEncodeParams {
    fn default() -> Self {
        // 328 bytes = 41 words per row: block rows spread across all
        // eight L2 banks, and the trailing 9 blocks of each row do not
        // fill a 16-block 3D group (they stay 2D, like real images whose
        // width is not a multiple of 128).
        JpegEncodeParams { width: 328, height: 64, seed: 4 }
    }
}

impl JpegEncodeParams {
    /// Default geometry with a specific data seed.
    pub fn with_seed(seed: u64) -> Self {
        JpegEncodeParams { seed, ..Default::default() }
    }

    /// Reduced geometry for fast (debug-build) test runs.
    pub fn small_with_seed(seed: u64) -> Self {
        JpegEncodeParams { width: 128, height: 16, seed }
    }

    fn blocks_x(&self) -> usize {
        self.width / BLOCK
    }

    fn blocks_y(&self) -> usize {
        self.height / BLOCK
    }

    fn block_count(&self) -> usize {
        self.blocks_x() * self.blocks_y()
    }
}

/// Per-block quantization bias table (one byte per coefficient).
fn qbias_table(params: &JpegEncodeParams) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x9E37_79B9);
    (0..params.block_count() * BLOCK * BLOCK).map(|_| rng.gen_range(0..32)).collect()
}

/// Scalar reference.
///
/// Per block: `coded[j][i] = sat_u8((p >> 1) + qbias)`, an activity
/// measure `act = Σ |p − 128|` (stored as `u32`), and a DC predictor
/// `dc = p[0][0]` read through the *scalar* pipeline (the part of real
/// encoders that makes the L1 and the vector side share frame lines).
fn reference(params: &JpegEncodeParams, f: &Frame, qbias: &[u8]) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let mut coded = Vec::with_capacity(params.block_count() * 64);
    let mut activity = Vec::with_capacity(params.block_count() * 4);
    let mut dc = Vec::with_capacity(params.block_count());
    for byi in 0..params.blocks_y() {
        for bxi in 0..params.blocks_x() {
            let b_idx = byi * params.blocks_x() + bxi;
            let mut act = 0u32;
            for j in 0..BLOCK {
                for i in 0..BLOCK {
                    let p = f.pixel(bxi * BLOCK + i, byi * BLOCK + j);
                    let qb = qbias[b_idx * 64 + j * BLOCK + i];
                    coded.push(((p >> 1) as u16 + qb as u16).min(255) as u8);
                    act += (p as i32 - 128).unsigned_abs();
                }
            }
            activity.extend_from_slice(&act.to_le_bytes());
            dc.push(f.pixel(bxi * BLOCK, byi * BLOCK));
        }
    }
    (coded, activity, dc)
}

const R_P: Gpr = Gpr::new(1);
const R_Q: Gpr = Gpr::new(2);
const R_O: Gpr = Gpr::new(3);
const R_A: Gpr = Gpr::new(4);
const R_T: Gpr = Gpr::new(5);
const R_D: Gpr = Gpr::new(10);

/// Builds the workload for one ISA variant.
pub(crate) fn build(params: &JpegEncodeParams, variant: IsaVariant) -> Workload {
    assert!(params.width.is_multiple_of(BLOCK), "width must be a multiple of 8");
    assert!(params.height.is_multiple_of(BLOCK), "height must be a multiple of 8");
    let f = Frame::synthetic(params.width, params.height, params.seed);
    let qbias = qbias_table(params);

    let mut arena = Arena::new();
    let pix_addr = arena.place(f.bytes());
    let qb_addr = arena.place(&qbias);
    let c128_addr = arena.place(&[128u8; 64]);
    let out_addr = arena.reserve(params.block_count() as u64 * 64);
    let act_addr = arena.reserve(params.block_count() as u64 * 4);
    let dc_addr = arena.reserve(params.block_count() as u64);
    let (coded, activity, dc) = reference(params, &f, &qbias);

    let w = params.width as u64;
    let mut tb = TraceBuilder::new();

    // DC prediction: a scalar-pipeline read of the block's first pixel
    // (this is what makes the L1 and the vector side share frame lines,
    // exercising the exclusive-bit coherence protocol).
    let dc_read = |tb: &mut TraceBuilder, base: u64, b_idx: u64| {
        tb.li(R_P, base as i64);
        tb.load_scalar(R_D, R_P, base, 1);
        tb.li(R_A, (dc_addr + b_idx) as i64);
        tb.store_scalar(R_D, R_A, dc_addr + b_idx, 1);
    };

    // Emits the per-block tail once the pixel rows are in mr0:
    // quantize, store the coded block, measure + store activity.
    let block_tail = |tb: &mut TraceBuilder, b_idx: u64| {
        tb.set_vs(8);
        tb.li(R_Q, (qb_addr + b_idx * 64) as i64);
        tb.vload(MomReg::new(1), R_Q, qb_addr + b_idx * 64);
        tb.vop2i(UsimdOp::ShrL(Width::B8), MomReg::new(2), MomReg::new(0), 1);
        tb.vop2(UsimdOp::AddSatU(Width::B8), MomReg::new(3), MomReg::new(2), MomReg::new(1));
        tb.li(R_O, (out_addr + b_idx * 64) as i64);
        tb.vstore(MomReg::new(3), R_O, out_addr + b_idx * 64);
        tb.clear_acc(AccReg::new(0));
        tb.vreduce(ReduceOp::SadAccumU8, AccReg::new(0), MomReg::new(0), Some(MomReg::new(7)));
        tb.rdacc(R_D, AccReg::new(0));
        tb.li(R_A, (act_addr + b_idx * 4) as i64);
        tb.store_scalar(R_D, R_A, act_addr + b_idx * 4, 4);
    };

    match variant {
        IsaVariant::Mom => {
            tb.set_vl(BLOCK as u8);
            // Constant-128 register for the activity SAD.
            tb.set_vs(8);
            tb.li(R_T, c128_addr as i64);
            tb.vload(MomReg::new(7), R_T, c128_addr);
            for byi in 0..params.blocks_y() {
                for bxi in 0..params.blocks_x() {
                    let b_idx = (byi * params.blocks_x() + bxi) as u64;
                    let base = pix_addr + (byi * BLOCK) as u64 * w + (bxi * BLOCK) as u64;
                    dc_read(&mut tb, base, b_idx);
                    tb.set_vs(w as i64);
                    tb.li(R_P, base as i64);
                    tb.vload(MomReg::new(0), R_P, base);
                    block_tail(&mut tb, b_idx);
                }
            }
        }
        IsaVariant::Mom3d => {
            tb.set_vl(BLOCK as u8);
            tb.set_vs(8);
            tb.li(R_T, c128_addr as i64);
            tb.vload(MomReg::new(7), R_T, c128_addr);
            let full_groups = params.blocks_x() / GROUP;
            for byi in 0..params.blocks_y() {
                for g in 0..full_groups {
                    // One 3dvload fetches 16 adjacent blocks' rows.
                    let base =
                        pix_addr + (byi * BLOCK) as u64 * w + (g * GROUP * BLOCK) as u64;
                    tb.li(R_P, base as i64);
                    tb.dvload(DReg::new(0), R_P, base, w as i64, GROUP as u8, false);
                    for bi in 0..GROUP {
                        let b_idx = (byi * params.blocks_x() + g * GROUP + bi) as u64;
                        dc_read(&mut tb, base + (bi * BLOCK) as u64, b_idx);
                        tb.dvmov(MomReg::new(0), DReg::new(0), BLOCK as i16);
                        block_tail(&mut tb, b_idx);
                    }
                }
                // Row tail: blocks that do not fill a 16-block group stay
                // as plain 2D loads (the analysis only converts groups).
                for bxi in full_groups * GROUP..params.blocks_x() {
                    let b_idx = (byi * params.blocks_x() + bxi) as u64;
                    let base = pix_addr + (byi * BLOCK) as u64 * w + (bxi * BLOCK) as u64;
                    dc_read(&mut tb, base, b_idx);
                    tb.set_vs(w as i64);
                    tb.li(R_P, base as i64);
                    tb.vload(MomReg::new(0), R_P, base);
                    block_tail(&mut tb, b_idx);
                }
            }
        }
        IsaVariant::Mmx => {
            tb.li(R_T, c128_addr as i64);
            tb.movq_load(MmxReg::new(15), R_T, c128_addr, Width::B8);
            for byi in 0..params.blocks_y() {
                for bxi in 0..params.blocks_x() {
                    let b_idx = (byi * params.blocks_x() + bxi) as u64;
                    let base = pix_addr + (byi * BLOCK) as u64 * w + (bxi * BLOCK) as u64;
                    dc_read(&mut tb, base, b_idx);
                    tb.li(R_P, base as i64);
                    tb.li(R_Q, (qb_addr + b_idx * 64) as i64);
                    tb.li(R_O, (out_addr + b_idx * 64) as i64);
                    // Activity accumulator.
                    tb.usimd2(UsimdOp::Xor, MmxReg::new(7), MmxReg::new(7), MmxReg::new(7));
                    for j in 0..BLOCK {
                        let jo = (j as u64) * 8;
                        tb.alui(IntOp::Add, R_T, R_P, (j as u64 * w) as i64);
                        tb.movq_load(MmxReg::new(0), R_T, base + j as u64 * w, Width::B8);
                        tb.alui(IntOp::Add, R_T, R_Q, jo as i64);
                        tb.movq_load(MmxReg::new(1), R_T, qb_addr + b_idx * 64 + jo, Width::B8);
                        tb.usimd2i(UsimdOp::ShrL(Width::B8), MmxReg::new(2), MmxReg::new(0), 1);
                        tb.usimd2(
                            UsimdOp::AddSatU(Width::B8),
                            MmxReg::new(3),
                            MmxReg::new(2),
                            MmxReg::new(1),
                        );
                        tb.alui(IntOp::Add, R_T, R_O, jo as i64);
                        tb.movq_store(MmxReg::new(3), R_T, out_addr + b_idx * 64 + jo);
                        tb.usimd2(
                            UsimdOp::SadU8,
                            MmxReg::new(4),
                            MmxReg::new(0),
                            MmxReg::new(15),
                        );
                        tb.usimd2(
                            UsimdOp::AddWrap(Width::D64),
                            MmxReg::new(7),
                            MmxReg::new(7),
                            MmxReg::new(4),
                        );
                    }
                    tb.mmx_to_gpr(R_D, MmxReg::new(7));
                    tb.li(R_A, (act_addr + b_idx * 4) as i64);
                    tb.store_scalar(R_D, R_A, act_addr + b_idx * 4, 4);
                }
            }
        }
    }

    Workload::from_parts(
        WorkloadKind::JpegEncode,
        variant,
        tb.finish(),
        arena.into_memory(),
        vec![
            RegionCheck { what: "coded blocks", addr: out_addr, expected: coded },
            RegionCheck { what: "block activity", addr: act_addr, expected: activity },
            RegionCheck { what: "DC predictors", addr: dc_addr, expected: dc },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> JpegEncodeParams {
        JpegEncodeParams { width: 128, height: 16, seed: 33 }
    }

    #[test]
    fn all_variants_verify() {
        for v in IsaVariant::ALL {
            build(&tiny(), v).verify().unwrap_or_else(|e| panic!("{v} failed: {e}"));
        }
    }

    #[test]
    fn group_of_16_blocks_per_dvload() {
        let s = build(&tiny(), IsaVariant::Mom3d).trace().stats();
        assert!(s.mem_3d > 0);
        assert_eq!(s.avg_dim3(), Some(GROUP as f64));
        assert_eq!(s.dim3_vl_max, GROUP as u64);
    }

    #[test]
    fn no_traffic_reduction_but_fewer_strided_loads() {
        // Adjacent blocks do not overlap: bytes fetched stay equal, but
        // the strided pixel loads disappear into wide 3D fetches.
        let s2 = build(&tiny(), IsaVariant::Mom).trace().stats();
        let s3 = build(&tiny(), IsaVariant::Mom3d).trace().stats();
        let pixels = (tiny().width * tiny().height) as u64;
        assert!(s2.bytes_accessed >= pixels);
        // Same pixel bytes + same qbias/output traffic.
        assert_eq!(s2.bytes_accessed, s3.bytes_accessed);
        assert!(s3.mem_2d < s2.mem_2d);
    }

    #[test]
    fn quantization_clamps() {
        let p = tiny();
        let f = Frame::synthetic(p.width, p.height, p.seed);
        let qb = qbias_table(&p);
        let (coded, act, dc) = reference(&p, &f, &qb);
        assert_eq!(coded.len(), p.block_count() * 64);
        assert_eq!(act.len(), p.block_count() * 4);
        assert_eq!(dc.len(), p.block_count());
        assert_eq!(dc[0], f.pixel(0, 0));
    }
}
