//! `mpeg2 encode` — full-search motion estimation (the paper's Figure 1
//! running example).
//!
//! For every 8×8 block of the current frame, the kernel scans
//! `candidates` positions along the reference frame's x-axis (the `k`
//! loop of the paper's `fullsearch`), computing a sum of absolute
//! differences per candidate and keeping the minimum. The `k` loop is
//! not vectorizable (the min update carries a dependence) but its
//! *memory accesses* are — candidate streams sit one byte apart, the
//! canonical 3D pattern.

use crate::data::Frame;
use crate::layout::Arena;
use crate::workload::{IsaVariant, RegionCheck, Workload, WorkloadKind};
use mom3d_isa::{
    AccReg, DReg, Gpr, IntOp, MmxReg, MomReg, ReduceOp, TraceBuilder, UsimdOp, Width,
};

/// Parameters of the motion-estimation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mpeg2EncodeParams {
    /// Frame width in pixels (and bytes — grayscale).
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Search positions per block along the x-axis.
    pub candidates: usize,
    /// Horizontal shift applied to the synthetic current frame (the
    /// "true" motion the search should find).
    pub true_shift: usize,
    /// Data-generator seed.
    pub seed: u64,
}

/// Block edge in pixels (the paper's inner 8×8 SAD).
const BLOCK: usize = 8;
/// Max candidates served per `3dvload` (keeps the third dimension within
/// Table 1's observed maximum of 16).
const CHUNK: usize = 16;

impl Default for Mpeg2EncodeParams {
    fn default() -> Self {
        // CIF-style width: 352 bytes = 44 words, so strided rows spread
        // over the L2 banks the way Mediabench frames did (a width that
        // is a multiple of 64 bytes would alias every row element onto
        // one bank and unfairly cripple the multi-banked system).
        Mpeg2EncodeParams { width: 352, height: 32, candidates: 32, true_shift: 5, seed: 1 }
    }
}

impl Mpeg2EncodeParams {
    /// Default geometry with a specific data seed.
    pub fn with_seed(seed: u64) -> Self {
        Mpeg2EncodeParams { seed, ..Default::default() }
    }

    /// Reduced geometry for fast (debug-build) test runs.
    pub fn small_with_seed(seed: u64) -> Self {
        Mpeg2EncodeParams { width: 64, height: 16, candidates: 16, true_shift: 3, seed }
    }

    fn block_positions(&self) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        let max_bx = self.width - BLOCK - self.candidates;
        for by in (0..=self.height - BLOCK).step_by(BLOCK) {
            for bx in (0..=max_bx).step_by(BLOCK) {
                v.push((bx, by));
            }
        }
        v
    }
}

/// Scalar reference: per block, `(min SAD, argmin position)` with strict
/// `<` (first minimum wins), exactly the paper's C code.
fn reference(params: &Mpeg2EncodeParams, rf: &Frame, cf: &Frame) -> Vec<(u32, u32)> {
    params
        .block_positions()
        .iter()
        .map(|&(bx, by)| {
            let mut min = u32::MAX;
            let mut pos = 0u32;
            for k in 0..params.candidates {
                let mut d = 0u32;
                for j in 0..BLOCK {
                    for i in 0..BLOCK {
                        let a = rf.pixel(bx + k + i, by + j) as i32;
                        let b = cf.pixel(bx + i, by + j) as i32;
                        d += (a - b).unsigned_abs();
                    }
                }
                if d < min {
                    min = d;
                    pos = k as u32;
                }
            }
            (min, pos)
        })
        .collect()
}

/// Per-candidate SAD (used to resolve branch directions at trace time).
fn sad_at(rf: &Frame, cf: &Frame, bx: usize, by: usize, k: usize) -> u32 {
    let mut d = 0u32;
    for j in 0..BLOCK {
        for i in 0..BLOCK {
            d += (rf.pixel(bx + k + i, by + j) as i32 - cf.pixel(bx + i, by + j) as i32)
                .unsigned_abs();
        }
    }
    d
}

// Register conventions.
const R_ABASE: Gpr = Gpr::new(1);
const R_BBASE: Gpr = Gpr::new(2);
const R_ADDR: Gpr = Gpr::new(3);
const R_OUT: Gpr = Gpr::new(4);
const R_OUT2: Gpr = Gpr::new(5);
const R_ROW: Gpr = Gpr::new(6);
const R_D: Gpr = Gpr::new(10);
const R_CMP: Gpr = Gpr::new(11);
const R_MIN: Gpr = Gpr::new(20);
const R_POS: Gpr = Gpr::new(21);

/// Emits the SAD + min-update tail shared by all variants' candidate
/// loops. `d` is the candidate's true SAD; `min` tracks the running
/// minimum for branch-direction resolution.
fn emit_min_update(tb: &mut TraceBuilder, k: usize, d: u32, min: &mut u32, pos: &mut u32) {
    tb.alu(IntOp::SltU, R_CMP, R_D, R_MIN);
    let taken = d < *min;
    tb.branch(R_CMP, taken);
    if taken {
        tb.alui(IntOp::Mov, R_MIN, R_D, 0);
        tb.li(R_POS, k as i64);
        *min = d;
        *pos = k as u32;
    }
}

fn emit_result_stores(tb: &mut TraceBuilder, out: u64) {
    tb.li(R_OUT, out as i64);
    tb.store_scalar(R_MIN, R_OUT, out, 4);
    tb.alui(IntOp::Add, R_OUT2, R_OUT, 4);
    tb.store_scalar(R_POS, R_OUT2, out + 4, 4);
}

/// Builds the §7 "related work" coding of motion estimation: plain MOM
/// plus the vector **shift&mask register trick** — candidate `k+1`'s
/// rows are reconstructed from candidate `k`'s register by shifting each
/// element down one byte and merging a freshly loaded byte column,
/// instead of reloading the full block.
///
/// The paper argues this mimics 3D reuse "at the cost of a high
/// instruction overhead, and an increase in pressure over the 2D
/// register file", while still being unable to exploit wide-block
/// fetches. This builder makes that comparison measurable (see the
/// `ablation` experiment binary).
pub fn build_shift_trick(params: &Mpeg2EncodeParams) -> Workload {
    let rf = Frame::synthetic(params.width, params.height, params.seed);
    let cf = rf.shifted(params.true_shift, params.seed + 1);

    let mut arena = Arena::new();
    let ref_addr = arena.place(rf.bytes());
    let cur_addr = arena.place(cf.bytes());
    let blocks = params.block_positions();
    let out_addr = arena.reserve(blocks.len() as u64 * 8);

    let expected: Vec<u8> = reference(params, &rf, &cf)
        .iter()
        .flat_map(|&(min, pos)| {
            let mut b = min.to_le_bytes().to_vec();
            b.extend_from_slice(&pos.to_le_bytes());
            b
        })
        .collect();

    let w = params.width as u64;
    let mut tb = TraceBuilder::new();
    tb.set_vl(BLOCK as u8);
    tb.set_vs(w as i64);
    for (b_idx, &(bx, by)) in blocks.iter().enumerate() {
        let a_base = ref_addr + (by as u64 * w + bx as u64);
        let b_base = cur_addr + (by as u64 * w + bx as u64);
        tb.li(R_ABASE, a_base as i64);
        tb.li(R_BBASE, b_base as i64);
        // The current block stays register-resident (the trick's whole
        // point is avoiding reloads).
        tb.vload(MomReg::new(1), R_BBASE, b_base);
        // Candidate 0: one full reload.
        tb.vload(MomReg::new(0), R_ABASE, a_base);
        tb.li(R_MIN, 1 << 30);
        tb.li(R_POS, 0);
        let (mut min, mut pos) = (u32::MAX, 0u32);
        for k in 0..params.candidates {
            if k > 0 {
                // Reconstruct candidate k from candidate k-1:
                //   row' = (row >> 8) | (incoming_byte << 56)
                // The incoming byte column sits 8 bytes past the old base;
                // the column load still costs a strided cache access per
                // row — the trick saves *registers*, not port time.
                let col = a_base + k as u64 + 7;
                tb.alui(IntOp::Add, R_ADDR, R_ABASE, (k + 7) as i64);
                tb.vload(MomReg::new(2), R_ADDR, col);
                tb.vop2i(UsimdOp::ShrL(Width::D64), MomReg::new(0), MomReg::new(0), 8);
                tb.vop2i(UsimdOp::Shl(Width::D64), MomReg::new(2), MomReg::new(2), 56);
                tb.vop2(UsimdOp::Or, MomReg::new(0), MomReg::new(0), MomReg::new(2));
            }
            tb.clear_acc(AccReg::new(0));
            tb.vreduce(
                ReduceOp::SadAccumU8,
                AccReg::new(0),
                MomReg::new(0),
                Some(MomReg::new(1)),
            );
            tb.rdacc(R_D, AccReg::new(0));
            let d = sad_at(&rf, &cf, bx, by, k);
            emit_min_update(&mut tb, k, d, &mut min, &mut pos);
        }
        emit_result_stores(&mut tb, out_addr + b_idx as u64 * 8);
    }

    Workload::from_parts(
        WorkloadKind::Mpeg2Encode,
        IsaVariant::Mom,
        tb.finish(),
        arena.into_memory(),
        vec![RegionCheck { what: "motion vectors (min SAD, position)", addr: out_addr, expected }],
    )
}

/// Builds the workload for one ISA variant.
pub(crate) fn build(params: &Mpeg2EncodeParams, variant: IsaVariant) -> Workload {
    let rf = Frame::synthetic(params.width, params.height, params.seed);
    let cf = rf.shifted(params.true_shift, params.seed + 1);

    let mut arena = Arena::new();
    let ref_addr = arena.place(rf.bytes());
    let cur_addr = arena.place(cf.bytes());
    let blocks = params.block_positions();
    let out_addr = arena.reserve(blocks.len() as u64 * 8);

    let expected: Vec<u8> = reference(params, &rf, &cf)
        .iter()
        .flat_map(|&(min, pos)| {
            let mut b = min.to_le_bytes().to_vec();
            b.extend_from_slice(&pos.to_le_bytes());
            b
        })
        .collect();

    let w = params.width as u64;
    let mut tb = TraceBuilder::new();
    match variant {
        IsaVariant::Mom => {
            tb.set_vl(BLOCK as u8);
            tb.set_vs(w as i64);
            for (b_idx, &(bx, by)) in blocks.iter().enumerate() {
                let a_base = ref_addr + (by as u64 * w + bx as u64);
                let b_base = cur_addr + (by as u64 * w + bx as u64);
                tb.li(R_ABASE, a_base as i64);
                tb.li(R_BBASE, b_base as i64);
                tb.li(R_MIN, 1 << 30);
                tb.li(R_POS, 0);
                let (mut min, mut pos) = (u32::MAX, 0u32);
                for k in 0..params.candidates {
                    tb.alui(IntOp::Add, R_ADDR, R_ABASE, k as i64);
                    tb.vload(MomReg::new(0), R_ADDR, a_base + k as u64);
                    tb.vload(MomReg::new(1), R_BBASE, b_base);
                    tb.clear_acc(AccReg::new(0));
                    tb.vreduce(
                        ReduceOp::SadAccumU8,
                        AccReg::new(0),
                        MomReg::new(0),
                        Some(MomReg::new(1)),
                    );
                    tb.rdacc(R_D, AccReg::new(0));
                    let d = sad_at(&rf, &cf, bx, by, k);
                    emit_min_update(&mut tb, k, d, &mut min, &mut pos);
                }
                emit_result_stores(&mut tb, out_addr + b_idx as u64 * 8);
            }
        }
        IsaVariant::Mom3d => {
            tb.set_vl(BLOCK as u8);
            for (b_idx, &(bx, by)) in blocks.iter().enumerate() {
                let a_base = ref_addr + (by as u64 * w + bx as u64);
                let b_base = cur_addr + (by as u64 * w + bx as u64);
                tb.li(R_ABASE, a_base as i64);
                tb.li(R_BBASE, b_base as i64);
                // The invariant current block: one 3dvload serves every
                // candidate's re-read (the paper's delta-0 reuse case).
                tb.dvload(DReg::new(1), R_BBASE, b_base, w as i64, 1, false);
                tb.li(R_MIN, 1 << 30);
                tb.li(R_POS, 0);
                let (mut min, mut pos) = (u32::MAX, 0u32);
                for chunk_start in (0..params.candidates).step_by(CHUNK) {
                    let chunk = CHUNK.min(params.candidates - chunk_start);
                    // Candidate slices are 1 byte apart: span = chunk-1+8.
                    let wwords = (chunk - 1 + 8).div_ceil(8) as u8;
                    tb.alui(IntOp::Add, R_ADDR, R_ABASE, chunk_start as i64);
                    tb.dvload(
                        DReg::new(0),
                        R_ADDR,
                        a_base + chunk_start as u64,
                        w as i64,
                        wwords,
                        false,
                    );
                    for ki in 0..chunk {
                        let k = chunk_start + ki;
                        tb.dvmov(MomReg::new(0), DReg::new(0), 1);
                        tb.dvmov(MomReg::new(1), DReg::new(1), 0);
                        tb.clear_acc(AccReg::new(0));
                        tb.vreduce(
                            ReduceOp::SadAccumU8,
                            AccReg::new(0),
                            MomReg::new(0),
                            Some(MomReg::new(1)),
                        );
                        tb.rdacc(R_D, AccReg::new(0));
                        let d = sad_at(&rf, &cf, bx, by, k);
                        emit_min_update(&mut tb, k, d, &mut min, &mut pos);
                    }
                }
                emit_result_stores(&mut tb, out_addr + b_idx as u64 * 8);
            }
        }
        IsaVariant::Mmx => {
            for (b_idx, &(bx, by)) in blocks.iter().enumerate() {
                let a_base = ref_addr + (by as u64 * w + bx as u64);
                let b_base = cur_addr + (by as u64 * w + bx as u64);
                // Load the current block's rows into mm8..mm15 once.
                tb.li(R_BBASE, b_base as i64);
                for j in 0..BLOCK {
                    tb.alui(IntOp::Add, R_ROW, R_BBASE, (j as u64 * w) as i64);
                    tb.movq_load(MmxReg::new(8 + j as u8), R_ROW, b_base + j as u64 * w, Width::B8);
                }
                tb.li(R_ABASE, a_base as i64);
                tb.li(R_MIN, 1 << 30);
                tb.li(R_POS, 0);
                let (mut min, mut pos) = (u32::MAX, 0u32);
                for k in 0..params.candidates {
                    tb.alui(IntOp::Add, R_ADDR, R_ABASE, k as i64);
                    tb.usimd2(UsimdOp::Xor, MmxReg::new(7), MmxReg::new(7), MmxReg::new(7));
                    for j in 0..BLOCK {
                        tb.alui(IntOp::Add, R_ROW, R_ADDR, (j as u64 * w) as i64);
                        tb.movq_load(
                            MmxReg::new(0),
                            R_ROW,
                            a_base + k as u64 + j as u64 * w,
                            Width::B8,
                        );
                        tb.usimd2(
                            UsimdOp::SadU8,
                            MmxReg::new(1),
                            MmxReg::new(0),
                            MmxReg::new(8 + j as u8),
                        );
                        tb.usimd2(
                            UsimdOp::AddWrap(Width::D64),
                            MmxReg::new(7),
                            MmxReg::new(7),
                            MmxReg::new(1),
                        );
                    }
                    tb.mmx_to_gpr(R_D, MmxReg::new(7));
                    let d = sad_at(&rf, &cf, bx, by, k);
                    emit_min_update(&mut tb, k, d, &mut min, &mut pos);
                }
                emit_result_stores(&mut tb, out_addr + b_idx as u64 * 8);
            }
        }
    }

    Workload::from_parts(
        WorkloadKind::Mpeg2Encode,
        variant,
        tb.finish(),
        arena.into_memory(),
        vec![RegionCheck { what: "motion vectors (min SAD, position)", addr: out_addr, expected }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Mpeg2EncodeParams {
        Mpeg2EncodeParams { width: 64, height: 16, candidates: 12, true_shift: 3, seed: 9 }
    }

    #[test]
    fn reference_finds_true_shift() {
        let p = tiny();
        let rf = Frame::synthetic(p.width, p.height, p.seed);
        let cf = rf.shifted(p.true_shift, p.seed + 1);
        let results = reference(&p, &rf, &cf);
        // With a mildly noisy shifted frame, most blocks lock onto the
        // true shift.
        let hits = results.iter().filter(|(_, pos)| *pos == p.true_shift as u32).count();
        assert!(hits * 2 > results.len(), "{hits}/{} blocks found the shift", results.len());
    }

    #[test]
    fn all_variants_verify() {
        let p = tiny();
        for v in IsaVariant::ALL {
            let wl = build(&p, v);
            wl.verify().unwrap_or_else(|e| panic!("{v} variant failed: {e}"));
        }
    }

    #[test]
    fn mmx_trace_is_much_longer_than_mom() {
        let p = tiny();
        let mmx = build(&p, IsaVariant::Mmx).trace().len();
        let mom = build(&p, IsaVariant::Mom).trace().len();
        assert!(mmx as f64 > 2.5 * mom as f64, "mmx {mmx} vs mom {mom}");
    }

    #[test]
    fn mom3d_has_3d_instructions_and_fewer_2d_loads() {
        let p = tiny();
        let s3 = build(&p, IsaVariant::Mom3d).trace().stats();
        let s2 = build(&p, IsaVariant::Mom).trace().stats();
        assert!(s3.mem_3d > 0);
        assert!(s3.mov_3d > 0);
        assert_eq!(s3.mem_2d, 0, "all candidate loads become 3D");
        assert!(s2.mem_2d > 0);
        // Third dimension length is bounded by the chunking.
        assert!(s3.dim3_vl_max <= CHUNK as u64);
        assert!(s3.avg_dim3().unwrap() > 1.0);
    }

    #[test]
    fn bytes_fetched_shrink_with_3d() {
        let p = tiny();
        let b2 = build(&p, IsaVariant::Mom).trace().stats().bytes_accessed;
        let b3 = build(&p, IsaVariant::Mom3d).trace().stats().bytes_accessed;
        assert!(b3 * 2 < b2, "3D {b3} bytes vs 2D {b2} bytes");
    }

    #[test]
    fn default_sizes_are_simulable() {
        let p = Mpeg2EncodeParams::default();
        let wl = build(&p, IsaVariant::Mom);
        assert!(wl.trace().len() > 10_000);
        assert!(wl.trace().len() < 200_000);
    }

    #[test]
    fn shift_trick_verifies_bit_exact() {
        let wl = build_shift_trick(&tiny());
        wl.verify().expect("shift&mask coding reproduces the reference");
    }

    #[test]
    fn shift_trick_trades_loads_for_compute() {
        let p = tiny();
        let plain = build(&p, IsaVariant::Mom).trace().stats();
        let trick = build_shift_trick(&p).trace().stats();
        // Fewer 2D loads (one column load instead of two full reloads)...
        assert!(trick.mem_2d < plain.mem_2d);
        // ...but substantially more vector compute — the paper's
        // "high instruction overhead".
        assert!(trick.vcompute > 2 * plain.vcompute);
    }
}
