//! Capacitance-based energy model for register files and the L2 cache
//! (Figure 11).
//!
//! Both models are of the Rixner family: energy per access is the
//! switched wire capacitance (bitlines + wordlines, with array
//! dimensions taken from the same wire-track geometry as the area model)
//! times `Vdd²`. The paper notes its own numbers are approximations that
//! ignore hierarchical/differential bitline tricks; ours are calibrated
//! by the same wire-track geometry that reproduces Table 3 exactly.

use crate::area::RegFileSpec;

/// Process/technology parameters (defaults: the paper's 0.18 µm CMOS at
/// 1 GHz, 1.8 V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Wire track pitch in micrometres.
    pub wire_pitch_um: f64,
    /// Wire capacitance in femtofarads per micrometre.
    pub wire_cap_ff_per_um: f64,
    /// Storage-cell capacitance charged per accessed bit (fF).
    pub cell_cap_ff: f64,
    /// Clock frequency in hertz.
    pub freq_hz: f64,
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams {
            vdd: 1.8,
            wire_pitch_um: 0.8,
            wire_cap_ff_per_um: 0.30,
            cell_cap_ff: 2.0,
            freq_hz: 1.0e9,
        }
    }
}

impl ProcessParams {
    /// Energy (joules) to switch `length_um` micrometres of wire.
    fn wire_energy(&self, length_um: f64) -> f64 {
        length_um * self.wire_cap_ff_per_um * 1e-15 * self.vdd * self.vdd
    }

    /// Energy (joules) per access to one lane of a register file.
    ///
    /// The accessed word's bitlines run the height of the lane array
    /// (registers × cell height) and its wordline runs the width
    /// (bits-per-lane × cell width); cell dimensions grow with port
    /// count exactly as in the area model.
    pub fn regfile_access_energy(&self, spec: &RegFileSpec) -> f64 {
        let p = spec.ports() as f64;
        let cell_w = (3.0 + p) * self.wire_pitch_um;
        let cell_h = (4.0 + p) * self.wire_pitch_um;
        let bits_per_lane = spec.bits_per_register as f64 / spec.lanes as f64;
        // Word accessed per lane per cycle: 64 bits (one element slice).
        let word_bits = 64.0_f64.min(bits_per_lane);
        let bitline_len = spec.registers as f64 * cell_h;
        let wordline_len = bits_per_lane * cell_w;
        let bitlines = word_bits * self.wire_energy(bitline_len);
        let wordline = self.wire_energy(wordline_len);
        let cells = word_bits * self.cell_cap_ff * 1e-15 * self.vdd * self.vdd;
        bitlines + wordline + cells
    }
}

/// Geometry of the on-chip L2 (paper §5.3/§6.3: 2 MB, 128-byte lines,
/// physically distributed across 32 memory sub-arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Params {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Number of sub-arrays; one access activates one sub-array.
    pub subarrays: u32,
    /// Bits read/written per access (one wide access = up to a line).
    pub access_bits: u32,
}

impl Default for L2Params {
    fn default() -> Self {
        L2Params { size_bytes: 2 * 1024 * 1024, subarrays: 32, access_bits: 128 * 8 }
    }
}

impl L2Params {
    /// Energy (joules) per L2 access under `process`.
    ///
    /// One sub-array (size/subarrays bytes, modeled square-ish: rows =
    /// sqrt(bits)) activates its wordline and `access_bits` bitline
    /// pairs; SRAM cells sit at ~1.5 × 1.5 wire tracks (6T, single
    /// ported).
    pub fn access_energy(&self, process: &ProcessParams) -> f64 {
        let bits = (self.size_bytes * 8 / self.subarrays as u64) as f64;
        let rows = bits.sqrt().ceil();
        let cols = bits / rows;
        let cell = 1.5 * process.wire_pitch_um;
        let bitline_len = rows * cell;
        let wordline_len = cols * cell;
        let bitlines = self.access_bits as f64 * process.wire_energy(bitline_len);
        let wordline = process.wire_energy(wordline_len);
        let sense = self.access_bits as f64 * process.cell_cap_ff * 1e-15
            * process.vdd
            * process.vdd;
        bitlines + wordline + sense
    }
}

/// Energy (joules) to activate one DRAM row of `row_bytes` bytes under
/// `process`.
///
/// A row activation senses the whole row: every bit's storage cell is
/// switched onto its bitline, and the bitline (modeled at the same
/// square-ish sub-array aspect as the L2, but built from 1-track-pitch
/// DRAM cells) swings rail to rail. This is the dominant energy term of
/// open-row main-memory organizations — whether the row feeds a burst
/// interface, a die-stacked wide interface, or memory-side vector
/// units — which is why backends expose their row size through
/// `VectorMemoryBackend::activate_row_bytes` and the autotuner charges
/// this per row miss.
pub fn row_activate_energy(process: &ProcessParams, row_bytes: u64) -> f64 {
    if row_bytes == 0 {
        return 0.0;
    }
    let bits = (row_bytes * 8) as f64;
    // One row = one wordline across `bits` columns; the sensed bitlines
    // run the height of a square-ish array of the same capacity.
    let cell = 1.0 * process.wire_pitch_um;
    let bitline_len = bits.sqrt().ceil() * cell;
    let wordline_len = bits * cell;
    let bitlines = bits * process.wire_energy(bitline_len);
    let wordline = process.wire_energy(wordline_len);
    let cells = bits * process.cell_cap_ff * 1e-15 * process.vdd * process.vdd;
    bitlines + wordline + cells
}

/// Average power in watts of `accesses` events of `energy_per_access`
/// joules over `cycles` cycles at `freq_hz`.
pub fn average_power_watts(accesses: u64, energy_per_access: f64, cycles: u64, freq_hz: f64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / freq_hz;
    accesses as f64 * energy_per_access / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_access_energy_is_nanojoule_scale() {
        // A 2 MB 0.18 µm SRAM access lands in the 0.1-10 nJ range.
        let e = L2Params::default().access_energy(&ProcessParams::default());
        assert!(e > 0.05e-9 && e < 10e-9, "L2 access energy {e:.3e} J");
    }

    #[test]
    fn regfile_access_is_much_cheaper_than_l2() {
        // The paper's Figure 11 argument: 3D RF accesses are cheap
        // compared with L2 accesses.
        let p = ProcessParams::default();
        let rf = p.regfile_access_energy(&RegFileSpec::dreg_3d());
        let l2 = L2Params::default().access_energy(&p);
        assert!(rf * 10.0 < l2, "rf {rf:.3e} J vs l2 {l2:.3e} J");
    }

    #[test]
    fn more_ports_cost_more_energy() {
        let p = ProcessParams::default();
        let mmx = p.regfile_access_energy(&RegFileSpec::mmx());
        let d3 = p.regfile_access_energy(&RegFileSpec::dreg_3d());
        assert!(mmx > d3, "a 20-port access beats a 2-port access in energy");
    }

    #[test]
    fn row_activate_energy_scales_with_row_size() {
        let p = ProcessParams::default();
        assert_eq!(row_activate_energy(&p, 0), 0.0, "no row, no activate energy");
        let small = row_activate_energy(&p, 128);
        let default = row_activate_energy(&p, 1024);
        let wide = row_activate_energy(&p, 4096);
        assert!(small > 0.0);
        assert!(small < default && default < wide, "wider rows sense more bits");
        // A 1 KB activate sits at nanojoule scale, comparable to a
        // line-wide L2 access; a 4 KB commodity row clearly exceeds
        // it — the energy motivation for small-row HBM stacks and for
        // keeping rows open.
        assert!(default > 0.1e-9 && default < 10e-9, "1 KB activate {default:.3e} J");
        let l2 = L2Params::default().access_energy(&p);
        assert!(wide > l2, "4 KB activate {wide:.3e} J vs L2 access {l2:.3e} J");
    }

    #[test]
    fn average_power_math() {
        // 1e9 accesses of 1 nJ over 1e9 cycles at 1 GHz = 1 J / 1 s = 1 W.
        let w = average_power_watts(1_000_000_000, 1e-9, 1_000_000_000, 1e9);
        assert!((w - 1.0).abs() < 1e-9);
        assert_eq!(average_power_watts(5, 1.0, 0, 1e9), 0.0);
    }

    #[test]
    fn power_scales_with_activity() {
        let e = L2Params::default().access_energy(&ProcessParams::default());
        let lo = average_power_watts(1_000_000, e, 10_000_000, 1e9);
        let hi = average_power_watts(2_000_000, e, 10_000_000, 1e9);
        assert!((hi / lo - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pointer_file_power_is_negligible() {
        let p = ProcessParams::default();
        let ptr = p.regfile_access_energy(&RegFileSpec::pointer_3d());
        let l2 = L2Params::default().access_energy(&p);
        assert!(ptr * 1000.0 < l2);
    }
}
