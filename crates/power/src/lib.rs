//! # mom3d-power — register-file area and power models
//!
//! The paper estimates register-file areas with the models of Rixner
//! et al. ("Register Organization for Media Processing", HPCA-6) and
//! power with the same family of capacitance models, for a 0.18 µm,
//! 1 GHz processor whose 2 MB L2 is distributed over 32 sub-arrays.
//!
//! For the published area numbers (Table 3), Rixner's grid model reduces
//! to
//!
//! ```text
//! area = bits × (3 + P) × (4 + P)   square wire tracks,
//! ```
//!
//! with `P` the number of read+write ports seen by each storage cell
//! (per lane, for clustered register files). This crate reproduces every
//! Table 3 entry **exactly** — see [`RegFileSpec::area_wire_tracks`] and
//! the `table3` tests — which is also what calibrates the technology
//! constants used by the energy model behind Figure 11.
//!
//! ```
//! use mom3d_power::RegFileSpec;
//!
//! // The paper's MMX register file: 80 x 64-bit, 12R/8W ports.
//! assert_eq!(RegFileSpec::mmx().area_wire_tracks(), 2_826_240);
//! // The 3D vector register file costs less area than the MMX file
//! // despite holding 8x the bytes, thanks to 1R/1W clustered ports.
//! assert_eq!(RegFileSpec::dreg_3d().area_wire_tracks(), 1_966_080);
//! ```
//!
//! **Place in the dataflow**: a leaf consumed only by `mom3d-bench`'s
//! report formatters — [`RegFileSpec`]/`ConfigArea` reproduce Table 3
//! from first principles (no simulation input), while the energy model
//! converts `mom3d-cpu` activity counters into Figure 11 watts.

mod area;
mod energy;

pub use area::{ConfigArea, RegFileSpec, CACHE_BUS_WIRE_TRACKS};
pub use energy::{average_power_watts, row_activate_energy, L2Params, ProcessParams};
