//! Rixner-style register file area model (Table 3).

/// Area of the cache buses charged to the non-3D configurations in
/// Table 3 (square wire tracks): the 4 × 64-bit L1/L2 buses feeding the
/// µSIMD/MOM register files directly. The 3D configuration replaces them
/// with the 3D register file's own bitline array, so the paper reports
/// "n/a" for it.
pub const CACHE_BUS_WIRE_TRACKS: u64 = 262_144;

/// Geometry of one register file for the area/power models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFileSpec {
    /// Descriptive name (used in reports).
    pub name: &'static str,
    /// Physical registers.
    pub registers: u64,
    /// Bits per register (whole register, across lanes).
    pub bits_per_register: u64,
    /// Read ports per lane.
    pub read_ports: u32,
    /// Write ports per lane.
    pub write_ports: u32,
    /// Lanes (clusters); ports are per lane, storage is divided among
    /// lanes.
    pub lanes: u32,
}

impl RegFileSpec {
    /// Total storage bits.
    pub fn total_bits(&self) -> u64 {
        self.registers * self.bits_per_register
    }

    /// Ports seen by each storage cell.
    pub fn ports(&self) -> u32 {
        self.read_ports + self.write_ports
    }

    /// Area in square wire tracks: `bits × (3 + P) × (4 + P)`.
    ///
    /// This is Rixner's grid model with one word line per port in one
    /// dimension and one bit line per port in the other, plus the fixed
    /// cell width/height (3 × 4 tracks).
    pub fn area_wire_tracks(&self) -> u64 {
        let p = self.ports() as u64;
        self.total_bits() * (3 + p) * (4 + p)
    }

    /// The MMX-style µSIMD register file (Table 3): 80 physical 64-bit
    /// registers, 12 read / 8 write ports.
    pub fn mmx() -> Self {
        RegFileSpec {
            name: "MMX register file",
            registers: 80,
            bits_per_register: 64,
            read_ports: 12,
            write_ports: 8,
            lanes: 1,
        }
    }

    /// The MOM 2D vector register file: 36 physical registers of
    /// 16 × 64 bit, 3 read / 2 write ports per lane, 4 lanes.
    pub fn mom() -> Self {
        RegFileSpec {
            name: "MOM register file",
            registers: 36,
            bits_per_register: 16 * 64,
            read_ports: 3,
            write_ports: 2,
            lanes: 4,
        }
    }

    /// The 192-bit accumulator register file: 4 physical registers,
    /// 1 read / 1 write port.
    pub fn accumulator() -> Self {
        RegFileSpec {
            name: "accumulator register file",
            registers: 4,
            bits_per_register: 192,
            read_ports: 1,
            write_ports: 1,
            lanes: 1,
        }
    }

    /// The 3D vector register file: 4 physical registers of
    /// 16 × 16 × 64 bit, 1 read / 1 write port per lane, 4 lanes.
    pub fn dreg_3d() -> Self {
        RegFileSpec {
            name: "3D vector register file",
            registers: 4,
            bits_per_register: 16 * 16 * 64,
            read_ports: 1,
            write_ports: 1,
            lanes: 4,
        }
    }

    /// The 3D pointer register file: 8 physical 7-bit registers,
    /// 2 read / 2 write ports.
    pub fn pointer_3d() -> Self {
        RegFileSpec {
            name: "3D pointer register file",
            registers: 8,
            bits_per_register: 7,
            read_ports: 2,
            write_ports: 2,
            lanes: 1,
        }
    }
}

/// Total multimedia register-file area of one processor configuration
/// (a Table 3 column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigArea {
    /// Configuration name.
    pub name: &'static str,
    /// The register files included.
    pub files: Vec<RegFileSpec>,
    /// Cache-bus area charged to this configuration.
    pub bus_wire_tracks: u64,
}

impl ConfigArea {
    /// The MMX column of Table 3.
    pub fn mmx() -> Self {
        ConfigArea {
            name: "MMX",
            files: vec![RegFileSpec::mmx()],
            bus_wire_tracks: CACHE_BUS_WIRE_TRACKS,
        }
    }

    /// The MOM column of Table 3.
    pub fn mom() -> Self {
        ConfigArea {
            name: "MOM",
            files: vec![RegFileSpec::mom(), RegFileSpec::accumulator()],
            bus_wire_tracks: CACHE_BUS_WIRE_TRACKS,
        }
    }

    /// The MOM + 3D column of Table 3 (the 3D register file's bitline
    /// array replaces the cache buses).
    pub fn mom_3d() -> Self {
        ConfigArea {
            name: "MOM + 3D",
            files: vec![
                RegFileSpec::mom(),
                RegFileSpec::accumulator(),
                RegFileSpec::dreg_3d(),
                RegFileSpec::pointer_3d(),
            ],
            bus_wire_tracks: 0,
        }
    }

    /// Total area in square wire tracks (register files + buses).
    pub fn total_wire_tracks(&self) -> u64 {
        self.files.iter().map(RegFileSpec::area_wire_tracks).sum::<u64>() + self.bus_wire_tracks
    }

    /// Area normalized to the MMX configuration (the paper's bottom
    /// row: 1.00 / 0.95 / 1.50).
    pub fn normalized_to_mmx(&self) -> f64 {
        self.total_wire_tracks() as f64 / ConfigArea::mmx().total_wire_tracks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_mmx_rf_area_exact() {
        assert_eq!(RegFileSpec::mmx().area_wire_tracks(), 2_826_240);
    }

    #[test]
    fn table3_mom_rf_area_exact() {
        assert_eq!(RegFileSpec::mom().area_wire_tracks(), 2_654_208);
    }

    #[test]
    fn table3_accumulator_area_exact() {
        assert_eq!(RegFileSpec::accumulator().area_wire_tracks(), 23_040);
    }

    #[test]
    fn table3_3d_rf_area_exact() {
        assert_eq!(RegFileSpec::dreg_3d().area_wire_tracks(), 1_966_080);
    }

    #[test]
    fn table3_pointer_rf_area_exact() {
        assert_eq!(RegFileSpec::pointer_3d().area_wire_tracks(), 3_136);
    }

    #[test]
    fn table3_config_totals_exact() {
        assert_eq!(ConfigArea::mmx().total_wire_tracks(), 3_088_384);
        assert_eq!(ConfigArea::mom().total_wire_tracks(), 2_939_392);
        assert_eq!(ConfigArea::mom_3d().total_wire_tracks(), 4_646_464);
    }

    #[test]
    fn table3_normalized_areas() {
        assert!((ConfigArea::mmx().normalized_to_mmx() - 1.00).abs() < 1e-12);
        assert!((ConfigArea::mom().normalized_to_mmx() - 0.95).abs() < 0.005);
        // "At the investment of a 50% more area than a regular SIMD
        // register file": 1.50 normalized.
        assert!((ConfigArea::mom_3d().normalized_to_mmx() - 1.50).abs() < 0.005);
    }

    #[test]
    fn max_bandwidth_geometry() {
        // Table 3: MOM RF max memory bandwidth 4 (words/cycle), 3D RF 16.
        // Bandwidth = write ports x lanes x (element words movable/cycle).
        let mom = RegFileSpec::mom();
        assert_eq!(mom.lanes, 4);
        let d3 = RegFileSpec::dreg_3d();
        // One 128-byte line per cycle = 16 words across the lanes.
        assert_eq!(d3.bits_per_register / 16 / 64, 16);
    }

    #[test]
    fn ports_dominate_area() {
        // The 3D RF holds 8x the MMX file's bits but is smaller, because
        // P=2 vs P=20 — the paper's key area argument.
        let mmx = RegFileSpec::mmx();
        let d3 = RegFileSpec::dreg_3d();
        assert!(d3.total_bits() > 8 * mmx.total_bits());
        assert!(d3.area_wire_tracks() < mmx.area_wire_tracks());
    }
}
