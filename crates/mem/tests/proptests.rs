//! Property-based tests of the memory substrate.

use mom3d_mem::{
    distinct_lines, schedule_multibanked, schedule_vector_cache, BankedConfig, Cache,
    CacheConfig, MainMemory, VectorCacheConfig, WritePolicy,
};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        assoc: 2,
        line_bytes: 32,
        write_policy: WritePolicy::WriteBack,
    })
}

proptest! {
    /// Memory reads always return the last value written, regardless of
    /// access width mixing.
    #[test]
    fn memory_read_your_writes(ops in proptest::collection::vec(
        (0u64..0x1_0000, any::<u64>(), 1u8..=8), 1..50)) {
        let mut mem = MainMemory::new();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        for (addr, value, width) in ops {
            mem.write_scalar(addr, value, width);
            for i in 0..width as u64 {
                model.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        for (addr, byte) in model {
            prop_assert_eq!(mem.read_u8(addr), byte);
        }
    }

    /// A line accessed twice in a row always hits the second time, and
    /// residency never exceeds capacity.
    #[test]
    fn cache_rehit_and_capacity(addrs in proptest::collection::vec(0u64..0x10_0000, 1..200)) {
        let mut c = small_cache();
        for &a in &addrs {
            c.access(a, false);
            prop_assert!(c.access(a, false).hit, "immediate re-access must hit");
            prop_assert!(c.resident_lines() <= 1024 / 32);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!(s.hits >= addrs.len() as u64, "one guaranteed hit per pair");
    }

    /// Writebacks only ever name lines that were written.
    #[test]
    fn writebacks_are_dirty_lines(ops in proptest::collection::vec(
        (0u64..0x4000, any::<bool>()), 1..300)) {
        let mut c = small_cache();
        let mut written = std::collections::HashSet::new();
        for (addr, is_write) in ops {
            let line = addr & !31;
            if is_write {
                written.insert(line);
            }
            if let Some(wb) = c.access(addr, is_write).writeback {
                prop_assert!(written.contains(&wb), "writeback of never-written line {wb:#x}");
            }
        }
    }

    /// Both schedulers conserve words: everything requested is
    /// delivered, in bounded cycles.
    #[test]
    fn schedulers_conserve_words(
        base in 0u64..0x1_0000,
        stride in -512i64..512,
        vl in 1usize..16,
    ) {
        let blocks: Vec<(u64, u32)> =
            (0..vl).map(|i| ((base as i64 + stride * i as i64).unsigned_abs(), 8)).collect();
        let mb = schedule_multibanked(&BankedConfig::default(), &blocks);
        let vc = schedule_vector_cache(&VectorCacheConfig::default(), &blocks);
        prop_assert_eq!(mb.words, vl as u64);
        prop_assert_eq!(vc.words, vl as u64);
        // Multi-banked: between vl/ports and vl cycles.
        prop_assert!(mb.port_cycles as usize >= vl.div_ceil(4));
        prop_assert!(mb.port_cycles as usize <= vl);
        // Vector cache: between vl/width and vl accesses.
        prop_assert!(vc.port_cycles as usize >= vl.div_ceil(4));
        prop_assert!(vc.port_cycles as usize <= vl);
        // Each granted element is one bank access on the banked system.
        prop_assert_eq!(mb.cache_accesses, vl as u64);
    }

    /// `distinct_lines` covers every accessed byte exactly once.
    #[test]
    fn distinct_lines_cover(blocks in proptest::collection::vec(
        (0u64..0x1_0000, 1u32..200), 1..20)) {
        let lines = distinct_lines(&blocks, 128);
        // No duplicates.
        let set: std::collections::HashSet<_> = lines.iter().collect();
        prop_assert_eq!(set.len(), lines.len());
        // Every byte of every block lies in some returned line.
        for (addr, len) in blocks {
            for b in addr..addr + len as u64 {
                prop_assert!(lines.contains(&(b & !127)), "byte {b:#x} uncovered");
            }
        }
        // All lines aligned.
        prop_assert!(lines.iter().all(|l| l % 128 == 0));
    }
}
