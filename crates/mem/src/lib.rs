//! # mom3d-mem — the memory hierarchy substrate
//!
//! Memory-system models for the MICRO-35 2002 3D memory vectorization
//! paper:
//!
//! * [`MainMemory`] — a sparse, byte-addressable backing store used by
//!   the functional emulator and the workload generators;
//! * [`Cache`] — a set-associative tag array (LRU, write-through or
//!   write-back) used for timing; data correctness lives in
//!   [`MainMemory`], so the caches track only presence and dirtiness;
//! * [`MemHierarchy`] — the paper's §5.3 hierarchy: a 64 KB 2-way 32 B
//!   write-through L1 for scalar accesses, a 2 MB 4-way 128 B write-back
//!   L2 that vector accesses reach directly (bypassing L1), and the
//!   exclusive-bit coherence rule between the two sides;
//! * port schedulers for the three vector memory organizations compared
//!   in the paper (§3.1, Figure 2 and Figure 8): the **multi-banked**
//!   cache (4 ports × 8 banks behind a crossbar), the **vector cache**
//!   (one wide port, interchange + shift&mask, wide grants only for
//!   consecutive words) and the **3D path** (one whole L2 line per cycle
//!   into a 3D register-file lane);
//! * the pluggable **memory-backend API** ([`VectorMemoryBackend`],
//!   [`BackendRegistry`]): each organization is registered behind a
//!   stable string id ([`BackendId`]) so new organizations — like the
//!   built-in row-buffer-aware [`DramBurstBackend`], the die-stacked
//!   wide-interface [`HbmWideBackend`] and the memory-side vector
//!   [`PimVectorBackend`] — plug into the simulator, sweep engine and
//!   reports without touching them. Ids may carry a canonical
//!   `?key=value,...` suffix naming a tuned design point of a family
//!   (validated against the entry's [`ParamSpec`]s), which is what the
//!   design-space autotuner sweeps over.
//!
//! ```
//! use mom3d_mem::{MainMemory, Cache, CacheConfig, WritePolicy};
//!
//! let mut mem = MainMemory::new();
//! mem.write_u64(0x1000, 0xDEAD_BEEF);
//! assert_eq!(mem.read_u64(0x1000), 0xDEAD_BEEF);
//!
//! let mut l2 = Cache::new(CacheConfig::l2_2mb());
//! assert!(!l2.access(0x1000, false).hit); // cold miss
//! assert!(l2.access(0x1000, false).hit); // now resident
//! ```
//!
//! **Place in the dataflow**: the substrate both execution stages
//! stand on. [`MainMemory`] holds workload data for the emulator (and
//! is serialized page-wise into workload images by `mom3d-kernels`);
//! the caches, port schedulers and registered backends price every
//! memory instruction for the `mom3d-cpu` timing model.

mod backend;
mod cache;
mod dram;
mod hbm;
mod hierarchy;
mod main_mem;
mod pim;
mod ports;

pub use backend::{
    BackendEntry, BackendId, BackendParams, BackendRegistry, BackendStats, IdealBackend,
    MultiBankedBackend, ParamSpec, ParseIdError, RegistryError, VectorCache3dBackend,
    VectorCacheBackend, VectorMemoryBackend,
};
pub use cache::{AccessResult, Cache, CacheConfig, CacheStats, WritePolicy};
pub use dram::{DramBurstBackend, DramConfig};
pub use hbm::{HbmConfig, HbmWideBackend};
pub use pim::{PimConfig, PimVectorBackend};
pub use hierarchy::{HierarchyConfig, HierarchyStats, MemHierarchy, VectorAccessOutcome};
pub use main_mem::MainMemory;
pub use ports::{
    distinct_lines, schedule_3d, schedule_multibanked, schedule_vector_cache, BankedConfig,
    LineSet, PortSchedule, VectorCacheConfig,
};
