//! The pluggable vector-memory-backend API.
//!
//! The paper compares four vector memory organizations; this module
//! turns "which organization" from a closed enum into an open trait so
//! new organizations can be added without touching the simulator, the
//! sweep engine or the report formatters:
//!
//! * [`VectorMemoryBackend`] — one organization's port model: given the
//!   resolved `(address, length)` blocks of a vector memory
//!   instruction, produce a [`PortSchedule`]. Backends may be stateful
//!   (e.g. DRAM row buffers), so scheduling takes `&mut self`; one
//!   instance is built per simulation run.
//! * [`BackendId`] — the stable string identity a backend is keyed by
//!   everywhere (simulation caches, sweep grids, JSON reports).
//! * [`BackendRegistry`] — the global id → factory table. The four
//!   paper organizations and the [DRAM-burst model](crate::DramConfig)
//!   are pre-registered; [`BackendRegistry::register`] adds more at
//!   runtime (see `examples/custom_backend.rs` in the workspace root).
//!
//! ```
//! use mom3d_mem::{BackendParams, BackendRegistry};
//!
//! let id = BackendRegistry::parse("vector-cache").unwrap();
//! let mut backend = BackendRegistry::build(id, &BackendParams::default()).unwrap();
//! // Eight consecutive words through the 4-word wide port: two accesses.
//! let blocks: Vec<(u64, u32)> = (0..8).map(|i| (0x1000 + 8 * i, 8)).collect();
//! let s = backend.schedule(&blocks, false);
//! assert_eq!(s.port_cycles, 2);
//! ```

use crate::dram::{DramBurstBackend, DramConfig};
use crate::ports::{
    schedule_3d, schedule_multibanked, schedule_vector_cache, BankedConfig, PortSchedule,
    VectorCacheConfig,
};
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Stable identity of a memory backend: a short kebab-case string
/// (`"vector-cache"`, `"dram-burst"`, …).
///
/// `BackendId` is what simulation caches, sweep grids and reports key
/// on. It is `Copy` and hashes/compares by string *content*, so ids
/// parsed from user input ([`BackendRegistry::parse`]) compare equal to
/// ids taken from registry entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(&'static str);

impl BackendId {
    /// Wraps a static id string. The id only resolves to a backend once
    /// a matching entry is registered.
    pub const fn new(id: &'static str) -> Self {
        BackendId(id)
    }

    /// The id as a string slice.
    pub const fn as_str(self) -> &'static str {
        self.0
    }

    /// True when the registered backend behind this id includes a 3D
    /// register file (required to execute `3dvload`/`3dvmov`). False for
    /// unregistered ids.
    pub fn has_3d(self) -> bool {
        BackendRegistry::get(self.0).is_some_and(|e| e.has_3d)
    }

    /// True when the registered backend behind this id is an idealistic
    /// memory (1-cycle, unbounded bandwidth). False for unregistered
    /// ids.
    pub fn is_ideal(self) -> bool {
        BackendRegistry::get(self.0).is_some_and(|e| e.is_ideal)
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Everything a backend factory may need to build an instance — the
/// port-system knobs of [`crate::HierarchyConfig`]'s owner (the
/// processor configuration) without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendParams {
    /// Multi-banked port system parameters.
    pub banked: BankedConfig,
    /// Vector cache port parameters.
    pub vector_cache: VectorCacheConfig,
    /// DRAM-burst main-memory model parameters.
    pub dram: DramConfig,
}

/// Counters a backend may accumulate beyond the per-instruction
/// [`PortSchedule`] (all zero for stateless backends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Accesses that hit an open DRAM row buffer.
    pub row_hits: u64,
    /// Accesses that had to open (activate) a new DRAM row.
    pub row_misses: u64,
}

/// One vector memory organization's port model.
///
/// A backend schedules the element blocks of one vector memory
/// instruction onto its ports and reports occupancy, energy-relevant
/// cache accesses and transferred words (see [`PortSchedule`]). One
/// instance is built per simulation run, so implementations may carry
/// mutable state across instructions (the DRAM-burst backend tracks
/// open rows per bank); the instruction stream is deterministic, so
/// stateful backends remain deterministic too.
pub trait VectorMemoryBackend: fmt::Debug + Send {
    /// The stable id this backend registered under.
    fn id(&self) -> BackendId;

    /// Human-readable name for report columns ("MOM vector cache").
    fn display_name(&self) -> &'static str;

    /// One-line Table-2-style configuration description
    /// ("1 port × 4 × 64 bit, shift&mask, 128 B lines").
    fn describe(&self) -> String;

    /// True for idealistic memories: the simulator short-circuits them
    /// to 1-cycle flat accesses and never calls [`Self::schedule`].
    fn is_ideal(&self) -> bool {
        false
    }

    /// True when the organization includes the second-level 3D vector
    /// register file (required by `3dvload`/`3dvmov` traces).
    fn has_3d(&self) -> bool {
        false
    }

    /// Schedules one vector memory instruction's `(address,
    /// length-in-bytes)` blocks. `is_3d` is true for `3dvload`s (only
    /// ever passed to backends with [`Self::has_3d`]).
    fn schedule(&mut self, blocks: &[(u64, u32)], is_3d: bool) -> PortSchedule;

    /// Backend-specific counters accumulated so far.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }
}

/// One row of the [`BackendRegistry`]: identity, capabilities, and the
/// factory that builds a fresh backend instance for a simulation run.
///
/// Capabilities are duplicated here (rather than only on instances) so
/// the simulator can validate a trace against a backend id without
/// building one.
#[derive(Debug, Clone, Copy)]
pub struct BackendEntry {
    /// Stable kebab-case id ([`BackendId::as_str`] of the built
    /// instances).
    pub id: &'static str,
    /// Human-readable name for report columns.
    pub display_name: &'static str,
    /// Whether the organization includes the 3D register file.
    pub has_3d: bool,
    /// Whether the organization is an idealistic memory.
    pub is_ideal: bool,
    /// Builds one instance for a simulation run.
    pub build: fn(&BackendParams) -> Box<dyn VectorMemoryBackend>,
}

impl BackendEntry {
    /// The entry's id as a [`BackendId`].
    pub const fn backend_id(&self) -> BackendId {
        BackendId::new(self.id)
    }
}

/// Error returned by [`BackendRegistry::register`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An entry with the same id is already registered.
    DuplicateId(&'static str),
    /// The entry's declared id/capabilities disagree with what its
    /// factory's instances report (`what` names the offending field).
    EntryMismatch {
        /// The entry's id.
        id: &'static str,
        /// Which declaration disagreed (`"id"`, `"has_3d"`,
        /// `"is_ideal"`).
        what: &'static str,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => {
                write!(f, "a memory backend with id {id:?} is already registered")
            }
            RegistryError::EntryMismatch { id, what } => write!(
                f,
                "backend entry {id:?}: declared {what} disagrees with the built instance's {what}()"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The global id → backend table.
///
/// Entries are kept in registration order — the five built-ins first
/// (ideal, multi-banked, vector-cache, vector-cache-3d, dram-burst),
/// then anything added by [`BackendRegistry::register`] — so
/// enumeration ([`BackendRegistry::entries`]) is deterministic.
pub struct BackendRegistry;

fn registry() -> &'static Mutex<Vec<BackendEntry>> {
    static REGISTRY: OnceLock<Mutex<Vec<BackendEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(builtin_entries().to_vec()))
}

fn lock() -> std::sync::MutexGuard<'static, Vec<BackendEntry>> {
    // A panic while holding the lock cannot leave the Vec in a torn
    // state (all mutations are single `push`es), so poisoning is safe
    // to ignore.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

impl BackendRegistry {
    /// Registers a new backend. Fails if the id is already taken (the
    /// built-ins cannot be replaced) or if the entry's declared
    /// id/capabilities disagree with what its factory actually builds —
    /// the simulator validates traces against the *entry* before an
    /// instance exists, so drift between the two would reject valid
    /// traces or silently mistime them.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateId`] when an entry with the same id
    /// exists; [`RegistryError::EntryMismatch`] when a probe instance
    /// built with default [`BackendParams`] reports a different id,
    /// `has_3d` or `is_ideal` than the entry declares.
    pub fn register(entry: BackendEntry) -> Result<(), RegistryError> {
        let probe = (entry.build)(&BackendParams::default());
        let mismatch = |what| Err(RegistryError::EntryMismatch { id: entry.id, what });
        if probe.id().as_str() != entry.id {
            return mismatch("id");
        }
        if probe.has_3d() != entry.has_3d {
            return mismatch("has_3d");
        }
        if probe.is_ideal() != entry.is_ideal {
            return mismatch("is_ideal");
        }
        let mut entries = lock();
        if entries.iter().any(|e| e.id == entry.id) {
            return Err(RegistryError::DuplicateId(entry.id));
        }
        entries.push(entry);
        Ok(())
    }

    /// A snapshot of every registered backend, in registration order.
    pub fn entries() -> Vec<BackendEntry> {
        lock().clone()
    }

    /// Looks up one entry by id string.
    pub fn get(id: &str) -> Option<BackendEntry> {
        lock().iter().find(|e| e.id == id).copied()
    }

    /// Resolves a user-supplied string to a registered backend's id.
    pub fn parse(s: &str) -> Option<BackendId> {
        Self::get(s).map(|e| e.backend_id())
    }

    /// Builds a fresh backend instance for a simulation run, or `None`
    /// when the id is not registered.
    pub fn build(id: BackendId, params: &BackendParams) -> Option<Box<dyn VectorMemoryBackend>> {
        Self::get(id.as_str()).map(|e| (e.build)(params))
    }
}

/// The five built-in organizations, in their canonical order.
fn builtin_entries() -> [BackendEntry; 5] {
    [
        BackendEntry {
            id: "ideal",
            display_name: "ideal",
            has_3d: true,
            is_ideal: true,
            build: |_| Box::new(IdealBackend),
        },
        BackendEntry {
            id: "multi-banked",
            display_name: "multi-banked",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(MultiBankedBackend { cfg: p.banked }),
        },
        BackendEntry {
            id: "vector-cache",
            display_name: "vector cache",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(VectorCacheBackend { cfg: p.vector_cache }),
        },
        BackendEntry {
            id: "vector-cache-3d",
            display_name: "vector cache + 3D RF",
            has_3d: true,
            is_ideal: false,
            build: |p| Box::new(VectorCache3dBackend { cfg: p.vector_cache }),
        },
        BackendEntry {
            id: "dram-burst",
            display_name: "DRAM burst",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(DramBurstBackend::new(p.dram)),
        },
    ]
}

/// Perfect memory: 1-cycle latency, unbounded bandwidth (the Figure 3/9
/// normalization baseline). The simulator short-circuits it, so
/// [`VectorMemoryBackend::schedule`] exists only for completeness.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealBackend;

impl VectorMemoryBackend for IdealBackend {
    fn id(&self) -> BackendId {
        BackendId::new("ideal")
    }

    fn display_name(&self) -> &'static str {
        "ideal"
    }

    fn describe(&self) -> String {
        "perfect cache: 1-cycle latency, unbounded bandwidth".into()
    }

    fn is_ideal(&self) -> bool {
        true
    }

    fn has_3d(&self) -> bool {
        true
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        let words = blocks.iter().map(|&(_, len)| (len as u64).div_ceil(8)).sum();
        PortSchedule { port_cycles: 1, cache_accesses: 0, words }
    }
}

/// The 4-port, 8-bank multi-banked cache behind a crossbar (Figure 2-a),
/// on top of [`schedule_multibanked`].
#[derive(Debug, Clone, Copy)]
pub struct MultiBankedBackend {
    cfg: BankedConfig,
}

impl VectorMemoryBackend for MultiBankedBackend {
    fn id(&self) -> BackendId {
        BackendId::new("multi-banked")
    }

    fn display_name(&self) -> &'static str {
        "multi-banked"
    }

    fn describe(&self) -> String {
        format!(
            "{} ports x {} banks behind a crossbar, {} B interleave",
            self.cfg.ports, self.cfg.banks, self.cfg.interleave_bytes
        )
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        schedule_multibanked(&self.cfg, blocks)
    }
}

/// The single wide-port vector cache (Figure 2-b), on top of
/// [`schedule_vector_cache`].
#[derive(Debug, Clone, Copy)]
pub struct VectorCacheBackend {
    cfg: VectorCacheConfig,
}

impl VectorMemoryBackend for VectorCacheBackend {
    fn id(&self) -> BackendId {
        BackendId::new("vector-cache")
    }

    fn display_name(&self) -> &'static str {
        "vector cache"
    }

    fn describe(&self) -> String {
        format!(
            "1 port x {} x 64 bit, shift&mask network, {} B lines",
            self.cfg.width_words, self.cfg.line_bytes
        )
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        schedule_vector_cache(&self.cfg, blocks)
    }
}

/// The vector cache plus the second-level 3D vector register file
/// (Figure 8-c): 2D accesses use the wide port, `3dvload`s stream one
/// whole line per cycle into a 3D-register-file lane ([`schedule_3d`]).
#[derive(Debug, Clone, Copy)]
pub struct VectorCache3dBackend {
    cfg: VectorCacheConfig,
}

impl VectorMemoryBackend for VectorCache3dBackend {
    fn id(&self) -> BackendId {
        BackendId::new("vector-cache-3d")
    }

    fn display_name(&self) -> &'static str {
        "vector cache + 3D RF"
    }

    fn describe(&self) -> String {
        format!(
            "1 port x {} x 64 bit + 3D register file, one {} B line per cycle on the 3D path",
            self.cfg.width_words, self.cfg.line_bytes
        )
    }

    fn has_3d(&self) -> bool {
        true
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], is_3d: bool) -> PortSchedule {
        if is_3d {
            schedule_3d(blocks)
        } else {
            schedule_vector_cache(&self.cfg, blocks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const PAPER_IDS: [&str; 4] = ["ideal", "multi-banked", "vector-cache", "vector-cache-3d"];

    #[test]
    fn builtins_are_registered_in_canonical_order() {
        let entries = BackendRegistry::entries();
        let ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
        assert!(ids.len() >= 5);
        assert_eq!(&ids[..5], &["ideal", "multi-banked", "vector-cache", "vector-cache-3d", "dram-burst"]);
        // Enumeration is deterministic: a second snapshot agrees.
        let again: Vec<&str> = BackendRegistry::entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, again);
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for entry in BackendRegistry::entries() {
            let id = BackendRegistry::parse(entry.id).expect("registered id parses");
            assert_eq!(id.as_str(), entry.id);
            let mut built = BackendRegistry::build(id, &BackendParams::default()).unwrap();
            assert_eq!(built.id(), id);
            assert_eq!(built.has_3d(), entry.has_3d);
            assert_eq!(built.is_ideal(), entry.is_ideal);
            assert!(!built.describe().is_empty());
            // Any backend must schedule an empty block list to nothing
            // or a constant — it must not panic.
            let _ = built.schedule(&[], false);
        }
        assert_eq!(BackendRegistry::parse("no-such-backend"), None);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        // A self-consistent entry (so it passes the capability probe)
        // that collides with a built-in id.
        let err = BackendRegistry::register(BackendEntry {
            id: "vector-cache",
            display_name: "impostor",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(VectorCacheBackend { cfg: p.vector_cache }),
        })
        .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateId("vector-cache"));
        assert!(err.to_string().contains("vector-cache"));
    }

    /// A test-only backend whose instances report id "drifting",
    /// has_3d = true and is_ideal = true.
    #[derive(Debug)]
    struct DriftingProbe;

    impl VectorMemoryBackend for DriftingProbe {
        fn id(&self) -> BackendId {
            BackendId::new("drifting")
        }

        fn display_name(&self) -> &'static str {
            "drifting probe"
        }

        fn describe(&self) -> String {
            "test probe".into()
        }

        fn has_3d(&self) -> bool {
            true
        }

        fn is_ideal(&self) -> bool {
            true
        }

        fn schedule(&mut self, _blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
            PortSchedule::default()
        }
    }

    #[test]
    fn mismatched_entries_are_rejected() {
        // Declaring capabilities the instances do not report would let
        // the pipeline validate traces against the wrong contract —
        // register() must catch the drift up front, field by field.
        let entry = |id, has_3d, is_ideal| BackendEntry {
            id,
            display_name: "drifting probe",
            has_3d,
            is_ideal,
            build: |_| Box::new(DriftingProbe),
        };
        let err = BackendRegistry::register(entry("wrong-id", true, true)).unwrap_err();
        assert_eq!(err, RegistryError::EntryMismatch { id: "wrong-id", what: "id" });
        let err = BackendRegistry::register(entry("drifting", false, true)).unwrap_err();
        assert_eq!(err, RegistryError::EntryMismatch { id: "drifting", what: "has_3d" });
        let err = BackendRegistry::register(entry("drifting", true, false)).unwrap_err();
        assert_eq!(err, RegistryError::EntryMismatch { id: "drifting", what: "is_ideal" });
        assert!(err.to_string().contains("is_ideal"));
        // No bad entry made it into the registry.
        assert!(BackendRegistry::get("drifting").is_none());
        assert!(BackendRegistry::get("wrong-id").is_none());
    }

    #[test]
    fn id_capabilities_match_entries() {
        assert!(BackendId::new("ideal").is_ideal());
        assert!(BackendId::new("ideal").has_3d());
        assert!(BackendId::new("vector-cache-3d").has_3d());
        assert!(!BackendId::new("vector-cache").has_3d());
        assert!(!BackendId::new("dram-burst").has_3d());
        assert!(!BackendId::new("unregistered").has_3d());
        assert!(!BackendId::new("unregistered").is_ideal());
    }

    fn arb_blocks() -> impl Strategy<Value = Vec<(u64, u32)>> {
        proptest::collection::vec((0u64..0x2_0000, 1u32..300), 1..40)
    }

    proptest! {
        /// The trait objects for the paper organizations are thin
        /// adapters: they must agree exactly with the underlying pure
        /// schedulers on arbitrary block lists.
        #[test]
        fn paper_backends_match_schedule_functions(blocks in arb_blocks()) {
            let params = BackendParams::default();
            for id in PAPER_IDS {
                let entry = BackendRegistry::get(id).unwrap();
                let mut b = (entry.build)(&params);
                let expected = match id {
                    "multi-banked" => schedule_multibanked(&params.banked, &blocks),
                    "vector-cache" | "vector-cache-3d" => {
                        schedule_vector_cache(&params.vector_cache, &blocks)
                    }
                    _ => continue, // ideal is short-circuited by the simulator
                };
                prop_assert_eq!(b.schedule(&blocks, false), expected);
            }
            // The 3D path of the 3D-capable backend is schedule_3d.
            let mut b3 = BackendRegistry::build(
                BackendId::new("vector-cache-3d"),
                &params,
            ).unwrap();
            prop_assert_eq!(b3.schedule(&blocks, true), schedule_3d(&blocks));
        }
    }
}
