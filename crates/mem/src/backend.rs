//! The pluggable vector-memory-backend API.
//!
//! The paper compares four vector memory organizations; this module
//! turns "which organization" from a closed enum into an open trait so
//! new organizations can be added without touching the simulator, the
//! sweep engine or the report formatters:
//!
//! * [`VectorMemoryBackend`] — one organization's port model: given the
//!   resolved `(address, length)` blocks of a vector memory
//!   instruction, produce a [`PortSchedule`]. Backends may be stateful
//!   (e.g. DRAM row buffers), so scheduling takes `&mut self`; one
//!   instance is built per simulation run.
//! * [`BackendId`] — the stable string identity a backend is keyed by
//!   everywhere (simulation caches, sweep grids, JSON reports). Ids may
//!   carry a `?key=value,...` parameter suffix describing a *tuned*
//!   design point of a backend family (`"dram-burst?banks=16,row=512"`);
//!   [`BackendRegistry::parse`] canonicalizes the suffix (keys sorted,
//!   values validated against the family's [`ParamSpec`]s) so equal
//!   design points always compare, hash and cache equal.
//! * [`BackendRegistry`] — the global id → factory table. The four
//!   paper organizations, the [DRAM-burst model](crate::DramConfig) and
//!   the two zoo organizations ([`crate::HbmWideBackend`],
//!   [`crate::PimVectorBackend`]) are pre-registered;
//!   [`BackendRegistry::register`] adds more at runtime (see
//!   `examples/custom_backend.rs` in the workspace root).
//!
//! ```
//! use mom3d_mem::{BackendParams, BackendRegistry};
//!
//! let id = BackendRegistry::parse("vector-cache").unwrap();
//! let mut backend = BackendRegistry::build(id, &BackendParams::default()).unwrap();
//! // Eight consecutive words through the 4-word wide port: two accesses.
//! let blocks: Vec<(u64, u32)> = (0..8).map(|i| (0x1000 + 8 * i, 8)).collect();
//! let s = backend.schedule(&blocks, false);
//! assert_eq!(s.port_cycles, 2);
//!
//! // A tuned design point: same family, wider port, canonical id.
//! let wide = BackendRegistry::parse("vector-cache?width=8").unwrap();
//! assert_eq!(wide.base(), "vector-cache");
//! let mut backend = BackendRegistry::build(wide, &BackendParams::default()).unwrap();
//! let s = backend.schedule(&blocks, false);
//! assert_eq!(s.port_cycles, 1);
//! ```

use crate::dram::{DramBurstBackend, DramConfig};
use crate::hbm::{HbmConfig, HbmWideBackend};
use crate::pim::{PimConfig, PimVectorBackend};
use crate::ports::{
    schedule_3d, schedule_multibanked, schedule_vector_cache, BankedConfig, PortSchedule,
    VectorCacheConfig,
};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Stable identity of a memory backend: a short kebab-case string
/// (`"vector-cache"`, `"dram-burst"`, …), optionally followed by a
/// `?key=value,...` suffix naming a tuned design point of that family
/// (`"dram-burst?banks=16,row=512"`).
///
/// `BackendId` is what simulation caches, sweep grids and reports key
/// on. It is `Copy` and hashes/compares by string *content*, so ids
/// parsed from user input ([`BackendRegistry::parse`]) compare equal to
/// ids taken from registry entries. Parameterized ids are canonicalized
/// by `parse` (keys sorted, validated) and interned for the process
/// lifetime, so a tuned design point is exactly as cacheable, shardable
/// and reproducible as a plain base id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(&'static str);

impl BackendId {
    /// Wraps a static id string. The id only resolves to a backend once
    /// a matching entry is registered.
    pub const fn new(id: &'static str) -> Self {
        BackendId(id)
    }

    /// The id as a string slice.
    pub const fn as_str(self) -> &'static str {
        self.0
    }

    /// The backend family this id names: the part before the optional
    /// `?key=value,...` suffix (`"dram-burst?banks=16"` → `"dram-burst"`).
    pub fn base(self) -> &'static str {
        match self.0.split_once('?') {
            Some((base, _)) => base,
            None => self.0,
        }
    }

    /// True when the id carries a `?key=value,...` parameter suffix.
    pub fn has_params(self) -> bool {
        self.0.contains('?')
    }

    /// The id's `key=value` parameters. Ids produced by
    /// [`BackendRegistry::parse`] or [`BackendRegistry::make_id`] are
    /// canonical (keys sorted, every pair well-formed); for hand-built
    /// ids, malformed pairs are skipped. Empty for plain base ids.
    pub fn params(self) -> impl Iterator<Item = (&'static str, u64)> {
        let suffix = match self.0.split_once('?') {
            Some((_, suffix)) => suffix,
            None => "",
        };
        suffix.split(',').filter_map(|pair| {
            let (key, value) = pair.split_once('=')?;
            Some((key, value.parse().ok()?))
        })
    }

    /// True when the registered backend behind this id includes a 3D
    /// register file (required to execute `3dvload`/`3dvmov`). False for
    /// unregistered ids.
    pub fn has_3d(self) -> bool {
        BackendRegistry::get(self.0).is_some_and(|e| e.has_3d)
    }

    /// True when the registered backend behind this id is an idealistic
    /// memory (1-cycle, unbounded bandwidth). False for unregistered
    /// ids.
    pub fn is_ideal(self) -> bool {
        BackendRegistry::get(self.0).is_some_and(|e| e.is_ideal)
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Everything a backend factory may need to build an instance — the
/// port-system knobs of [`crate::HierarchyConfig`]'s owner (the
/// processor configuration) without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendParams {
    /// Multi-banked port system parameters.
    pub banked: BankedConfig,
    /// Vector cache port parameters.
    pub vector_cache: VectorCacheConfig,
    /// DRAM-burst main-memory model parameters.
    pub dram: DramConfig,
    /// Die-stacked wide-interface memory parameters.
    pub hbm: HbmConfig,
    /// Memory-side vector-execution parameters.
    pub pim: PimConfig,
}

/// Canonical parameterized id strings live for the whole process so
/// [`BackendId`] can stay `Copy` over `&'static str`; each distinct
/// canonical string is leaked exactly once.
fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    match set.get(s) {
        Some(&interned) => interned,
        None => {
            let interned: &'static str = Box::leak(s.to_owned().into_boxed_str());
            set.insert(interned);
            interned
        }
    }
}

/// Counters a backend may accumulate beyond the per-instruction
/// [`PortSchedule`] (all zero for stateless backends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Accesses that hit an open DRAM row buffer.
    pub row_hits: u64,
    /// Accesses that had to open (activate) a new DRAM row.
    pub row_misses: u64,
}

/// One vector memory organization's port model.
///
/// A backend schedules the element blocks of one vector memory
/// instruction onto its ports and reports occupancy, energy-relevant
/// cache accesses and transferred words (see [`PortSchedule`]). One
/// instance is built per simulation run, so implementations may carry
/// mutable state across instructions (the DRAM-burst backend tracks
/// open rows per bank); the instruction stream is deterministic, so
/// stateful backends remain deterministic too.
pub trait VectorMemoryBackend: fmt::Debug + Send {
    /// The stable id this backend registered under.
    fn id(&self) -> BackendId;

    /// Human-readable name for report columns ("MOM vector cache").
    fn display_name(&self) -> &'static str;

    /// One-line Table-2-style configuration description
    /// ("1 port × 4 × 64 bit, shift&mask, 128 B lines").
    fn describe(&self) -> String;

    /// True for idealistic memories: the simulator short-circuits them
    /// to 1-cycle flat accesses and never calls [`Self::schedule`].
    fn is_ideal(&self) -> bool {
        false
    }

    /// True when the organization includes the second-level 3D vector
    /// register file (required by `3dvload`/`3dvmov` traces).
    fn has_3d(&self) -> bool {
        false
    }

    /// Schedules one vector memory instruction's `(address,
    /// length-in-bytes)` blocks. `is_3d` is true for `3dvload`s (only
    /// ever passed to backends with [`Self::has_3d`]).
    fn schedule(&mut self, blocks: &[(u64, u32)], is_3d: bool) -> PortSchedule;

    /// Backend-specific counters accumulated so far.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }

    /// Bytes sensed per DRAM row activation — the granularity at which
    /// design-space scoring charges activate energy against
    /// [`BackendStats::row_misses`]. Zero for SRAM organizations whose
    /// accesses never activate DRAM rows.
    fn activate_row_bytes(&self) -> u64 {
        0
    }
}

/// One tunable knob of a backend family: the key it is written as in a
/// parameterized [`BackendId`] suffix (`"dram-burst?banks=16"`), the
/// value the plain base id builds with, the candidate values a
/// design-space search should visit, and how a value lands in
/// [`BackendParams`].
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Parameter key (lower-case, must not contain `=`, `,` or `?`).
    pub key: &'static str,
    /// Value the plain base id (no suffix) resolves to.
    pub default: u64,
    /// Values worth visiting in a design-space search (must include the
    /// default).
    pub candidates: &'static [u64],
    /// Writes a value into the build parameters.
    pub apply: fn(&mut BackendParams, u64),
}

/// One row of the [`BackendRegistry`]: identity, capabilities, and the
/// factory that builds a fresh backend instance for a simulation run.
///
/// Capabilities are duplicated here (rather than only on instances) so
/// the simulator can validate a trace against a backend id without
/// building one.
#[derive(Debug, Clone, Copy)]
pub struct BackendEntry {
    /// Stable kebab-case id ([`BackendId::as_str`] of the built
    /// instances).
    pub id: &'static str,
    /// Human-readable name for report columns.
    pub display_name: &'static str,
    /// Whether the organization includes the 3D register file.
    pub has_3d: bool,
    /// Whether the organization is an idealistic memory.
    pub is_ideal: bool,
    /// Builds one instance for a simulation run.
    pub build: fn(&BackendParams) -> Box<dyn VectorMemoryBackend>,
    /// The tunable parameters the family accepts in a `?key=value,...`
    /// id suffix (empty for fixed organizations).
    pub params: &'static [ParamSpec],
}

impl BackendEntry {
    /// The entry's id as a [`BackendId`].
    pub const fn backend_id(&self) -> BackendId {
        BackendId::new(self.id)
    }
}

/// Error returned by [`BackendRegistry::register`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An entry with the same id is already registered.
    DuplicateId(&'static str),
    /// The entry's declared id/capabilities disagree with what its
    /// factory's instances report (`what` names the offending field).
    EntryMismatch {
        /// The entry's id.
        id: &'static str,
        /// Which declaration disagreed (`"id"`, `"has_3d"`,
        /// `"is_ideal"`, or `"params"` for an ill-formed
        /// [`ParamSpec`] list).
        what: &'static str,
    },
}

/// Why an id string failed [`BackendRegistry::try_parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseIdError {
    /// No registered backend family matches the part before `?`.
    UnknownBase(String),
    /// A suffix element is not a `key=value` pair with an unsigned
    /// integer value.
    MalformedPair {
        /// The family the suffix was parsed against.
        base: &'static str,
        /// The offending element.
        pair: String,
    },
    /// The key is not one of the family's declared parameters.
    UnknownKey {
        /// The family the suffix was parsed against.
        base: &'static str,
        /// The offending key.
        key: String,
        /// The keys the family does declare.
        valid: Vec<&'static str>,
    },
    /// The same key appears twice in the suffix.
    DuplicateKey {
        /// The family the suffix was parsed against.
        base: &'static str,
        /// The repeated key.
        key: String,
    },
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseIdError::UnknownBase(base) => {
                write!(f, "unknown memory backend {base:?}")
            }
            ParseIdError::MalformedPair { base, pair } => write!(
                f,
                "backend {base:?}: malformed parameter {pair:?} (expected key=value with an \
                 unsigned integer value)"
            ),
            ParseIdError::UnknownKey { base, key, valid } => {
                write!(f, "backend {base:?}: unknown parameter key {key:?} (valid keys: ")?;
                if valid.is_empty() {
                    write!(f, "none — the backend takes no parameters)")
                } else {
                    write!(f, "{})", valid.join(", "))
                }
            }
            ParseIdError::DuplicateKey { base, key } => {
                write!(f, "backend {base:?}: duplicate parameter key {key:?}")
            }
        }
    }
}

impl std::error::Error for ParseIdError {}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => {
                write!(f, "a memory backend with id {id:?} is already registered")
            }
            RegistryError::EntryMismatch { id, what } => write!(
                f,
                "backend entry {id:?}: declared {what} disagrees with the built instance's {what}()"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The global id → backend table.
///
/// Entries are kept in registration order — the seven built-ins first
/// (ideal, multi-banked, vector-cache, vector-cache-3d, dram-burst,
/// hbm-wide, pim-vector), then anything added by
/// [`BackendRegistry::register`] — so enumeration
/// ([`BackendRegistry::entries`]) is deterministic.
pub struct BackendRegistry;

/// A validated parameterized id: the family entry plus its `(key,
/// value)` pairs sorted by key.
type ParsedId = (BackendEntry, Vec<(&'static str, u64)>);

fn registry() -> &'static Mutex<Vec<BackendEntry>> {
    static REGISTRY: OnceLock<Mutex<Vec<BackendEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(builtin_entries().to_vec()))
}

fn lock() -> std::sync::MutexGuard<'static, Vec<BackendEntry>> {
    // A panic while holding the lock cannot leave the Vec in a torn
    // state (all mutations are single `push`es), so poisoning is safe
    // to ignore.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

impl BackendRegistry {
    /// Registers a new backend. Fails if the id is already taken (the
    /// built-ins cannot be replaced) or if the entry's declared
    /// id/capabilities disagree with what its factory actually builds —
    /// the simulator validates traces against the *entry* before an
    /// instance exists, so drift between the two would reject valid
    /// traces or silently mistime them.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateId`] when an entry with the same id
    /// exists; [`RegistryError::EntryMismatch`] when a probe instance
    /// built with default [`BackendParams`] reports a different id,
    /// `has_3d` or `is_ideal` than the entry declares, or when the
    /// entry's [`ParamSpec`] list is ill-formed (a key containing the
    /// id-syntax characters `=`/`,`/`?`, a duplicate key, or candidates
    /// that omit the default).
    pub fn register(entry: BackendEntry) -> Result<(), RegistryError> {
        let probe = (entry.build)(&BackendParams::default());
        let mismatch = |what| Err(RegistryError::EntryMismatch { id: entry.id, what });
        if probe.id().as_str() != entry.id {
            return mismatch("id");
        }
        if probe.has_3d() != entry.has_3d {
            return mismatch("has_3d");
        }
        if probe.is_ideal() != entry.is_ideal {
            return mismatch("is_ideal");
        }
        for spec in entry.params {
            if spec.key.is_empty()
                || spec.key.contains(['=', ',', '?'])
                || !spec.candidates.contains(&spec.default)
                || entry.params.iter().filter(|p| p.key == spec.key).count() > 1
            {
                return mismatch("params");
            }
        }
        let mut entries = lock();
        if entries.iter().any(|e| e.id == entry.id) {
            return Err(RegistryError::DuplicateId(entry.id));
        }
        entries.push(entry);
        Ok(())
    }

    /// A snapshot of every registered backend, in registration order.
    pub fn entries() -> Vec<BackendEntry> {
        lock().clone()
    }

    /// Looks up one entry by id string. A parameterized id
    /// (`"dram-burst?banks=16"`) resolves to its family's entry; the
    /// suffix must be well-formed and name only keys the family
    /// declares, so an id accepted here is also buildable.
    pub fn get(id: &str) -> Option<BackendEntry> {
        Self::parse_entry(id).ok().map(|(entry, _)| entry)
    }

    /// Resolves a user-supplied string to a registered backend's id in
    /// canonical form: the parameter suffix, if any, is validated
    /// against the family's [`ParamSpec`]s, sorted by key and interned,
    /// so equal design points always compare (and cache) equal.
    pub fn parse(s: &str) -> Option<BackendId> {
        Self::try_parse(s).ok()
    }

    /// [`Self::parse`] with the reason a string was rejected (unknown
    /// family, malformed pair, unknown or duplicate key).
    ///
    /// # Errors
    ///
    /// The [`ParseIdError`] variant describing the first offending part
    /// of the string.
    pub fn try_parse(s: &str) -> Result<BackendId, ParseIdError> {
        let (entry, pairs) = Self::parse_entry(s)?;
        Ok(Self::id_for(&entry, &pairs))
    }

    /// Builds the canonical id of a design point of family `base` with
    /// the given `key = value` parameters (pairs in any order; keys are
    /// validated against the family's [`ParamSpec`]s and sorted).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::try_parse`].
    pub fn make_id(base: &str, pairs: &[(&str, u64)]) -> Result<BackendId, ParseIdError> {
        let mut s = String::from(base);
        for (i, &(key, value)) in pairs.iter().enumerate() {
            s.push(if i == 0 { '?' } else { ',' });
            s.push_str(key);
            s.push('=');
            s.push_str(&value.to_string());
        }
        Self::try_parse(&s)
    }

    /// Splits and validates `base?k=v,...`, returning the family entry
    /// and the parsed pairs sorted by key.
    fn parse_entry(s: &str) -> Result<ParsedId, ParseIdError> {
        let (base, suffix) = match s.split_once('?') {
            Some((base, suffix)) => (base, Some(suffix)),
            None => (s, None),
        };
        let entry = lock()
            .iter()
            .find(|e| e.id == base)
            .copied()
            .ok_or_else(|| ParseIdError::UnknownBase(base.to_owned()))?;
        let mut pairs: Vec<(&'static str, u64)> = Vec::new();
        for pair in suffix.into_iter().flat_map(|s| s.split(',')) {
            let malformed =
                || ParseIdError::MalformedPair { base: entry.id, pair: pair.to_owned() };
            let (key, value) = pair.split_once('=').ok_or_else(malformed)?;
            let spec = entry.params.iter().find(|p| p.key == key).ok_or_else(|| {
                ParseIdError::UnknownKey {
                    base: entry.id,
                    key: key.to_owned(),
                    valid: entry.params.iter().map(|p| p.key).collect(),
                }
            })?;
            let value: u64 = value.parse().map_err(|_| malformed())?;
            if pairs.iter().any(|&(k, _)| k == spec.key) {
                return Err(ParseIdError::DuplicateKey { base: entry.id, key: key.to_owned() });
            }
            pairs.push((spec.key, value));
        }
        pairs.sort_by_key(|&(key, _)| key);
        Ok((entry, pairs))
    }

    /// The canonical (interned) id for a family and sorted pairs.
    fn id_for(entry: &BackendEntry, pairs: &[(&'static str, u64)]) -> BackendId {
        if pairs.is_empty() {
            return entry.backend_id();
        }
        let mut s = String::from(entry.id);
        for (i, &(key, value)) in pairs.iter().enumerate() {
            s.push(if i == 0 { '?' } else { ',' });
            s.push_str(key);
            s.push('=');
            s.push_str(&value.to_string());
        }
        BackendId(intern(&s))
    }

    /// The effective build parameters of a (possibly parameterized) id:
    /// `base` with every `key=value` of the id's suffix applied through
    /// the family's [`ParamSpec`]s. `None` when the id does not resolve.
    pub fn resolved_params(id: BackendId, base: &BackendParams) -> Option<BackendParams> {
        let entry = Self::get(id.as_str())?;
        let mut params = *base;
        for (key, value) in id.params() {
            let spec = entry.params.iter().find(|p| p.key == key)?;
            (spec.apply)(&mut params, value);
        }
        Some(params)
    }

    /// Builds a fresh backend instance for a simulation run — the id's
    /// parameter suffix, if any, is applied on top of `params` — or
    /// `None` when the id is not registered.
    pub fn build(id: BackendId, params: &BackendParams) -> Option<Box<dyn VectorMemoryBackend>> {
        let entry = Self::get(id.as_str())?;
        let resolved = Self::resolved_params(id, params)?;
        Some((entry.build)(&resolved))
    }
}

/// Tunable knobs of the multi-banked cache (Figure 2-a geometry).
const MULTI_BANKED_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "banks",
        default: 8,
        candidates: &[4, 8, 16],
        apply: |p, v| p.banked.banks = v.max(1) as usize,
    },
    ParamSpec {
        key: "ports",
        default: 4,
        candidates: &[2, 4, 8],
        apply: |p, v| p.banked.ports = v.max(1) as usize,
    },
];

/// Tunable knobs of the vector-cache wide port (shared by the plain and
/// the 3D-register-file organizations).
const VECTOR_CACHE_PARAMS: &[ParamSpec] = &[ParamSpec {
    key: "width",
    default: 4,
    candidates: &[2, 4, 8],
    apply: |p, v| p.vector_cache.width_words = v.max(1) as usize,
}];

/// Tunable knobs of the DRAM-burst main-memory model.
const DRAM_BURST_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "act",
        default: 6,
        candidates: &[2, 6, 12],
        apply: |p, v| p.dram.row_miss_penalty = v.min(u32::MAX as u64) as u32,
    },
    ParamSpec {
        key: "banks",
        default: 8,
        candidates: &[4, 8, 16],
        apply: |p, v| p.dram.banks = v as usize,
    },
    ParamSpec {
        key: "burst",
        default: 4,
        candidates: &[2, 4, 8],
        apply: |p, v| p.dram.burst_words = v as usize,
    },
    ParamSpec {
        key: "row",
        default: 1024,
        candidates: &[512, 1024, 4096],
        apply: |p, v| p.dram.row_bytes = v,
    },
];

/// Tunable knobs of the die-stacked wide-interface memory.
const HBM_WIDE_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "act",
        default: 8,
        candidates: &[4, 8, 16],
        apply: |p, v| p.hbm.act_cycles = v.min(u32::MAX as u64) as u32,
    },
    ParamSpec {
        key: "banks",
        default: 4,
        candidates: &[2, 4, 8],
        apply: |p, v| p.hbm.banks = v as usize,
    },
    ParamSpec {
        key: "channels",
        default: 8,
        candidates: &[4, 8, 16],
        apply: |p, v| p.hbm.channels = v as usize,
    },
    ParamSpec {
        key: "row",
        default: 256,
        candidates: &[128, 256, 512],
        apply: |p, v| p.hbm.row_bytes = v,
    },
];

/// Tunable knobs of the memory-side vector-execution model.
const PIM_VECTOR_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "act",
        default: 6,
        candidates: &[2, 6, 12],
        apply: |p, v| p.pim.act_cycles = v.min(u32::MAX as u64) as u32,
    },
    ParamSpec {
        key: "issue",
        default: 4,
        candidates: &[2, 4, 8],
        apply: |p, v| p.pim.issue_cycles = v.min(u32::MAX as u64) as u32,
    },
    ParamSpec {
        key: "width",
        default: 256,
        candidates: &[128, 256, 512],
        apply: |p, v| p.pim.row_op_bytes = v,
    },
];

/// The seven built-in organizations, in their canonical order.
fn builtin_entries() -> [BackendEntry; 7] {
    [
        BackendEntry {
            id: "ideal",
            display_name: "ideal",
            has_3d: true,
            is_ideal: true,
            build: |_| Box::new(IdealBackend),
            params: &[],
        },
        BackendEntry {
            id: "multi-banked",
            display_name: "multi-banked",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(MultiBankedBackend { cfg: p.banked }),
            params: MULTI_BANKED_PARAMS,
        },
        BackendEntry {
            id: "vector-cache",
            display_name: "vector cache",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(VectorCacheBackend { cfg: p.vector_cache }),
            params: VECTOR_CACHE_PARAMS,
        },
        BackendEntry {
            id: "vector-cache-3d",
            display_name: "vector cache + 3D RF",
            has_3d: true,
            is_ideal: false,
            build: |p| Box::new(VectorCache3dBackend { cfg: p.vector_cache }),
            params: VECTOR_CACHE_PARAMS,
        },
        BackendEntry {
            id: "dram-burst",
            display_name: "DRAM burst",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(DramBurstBackend::new(p.dram)),
            params: DRAM_BURST_PARAMS,
        },
        BackendEntry {
            id: "hbm-wide",
            display_name: "die-stacked wide HBM",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(HbmWideBackend::new(p.hbm)),
            params: HBM_WIDE_PARAMS,
        },
        BackendEntry {
            id: "pim-vector",
            display_name: "memory-side vector (PIM)",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(PimVectorBackend::new(p.pim)),
            params: PIM_VECTOR_PARAMS,
        },
    ]
}

/// Perfect memory: 1-cycle latency, unbounded bandwidth (the Figure 3/9
/// normalization baseline). The simulator short-circuits it, so
/// [`VectorMemoryBackend::schedule`] exists only for completeness.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealBackend;

impl VectorMemoryBackend for IdealBackend {
    fn id(&self) -> BackendId {
        BackendId::new("ideal")
    }

    fn display_name(&self) -> &'static str {
        "ideal"
    }

    fn describe(&self) -> String {
        "perfect cache: 1-cycle latency, unbounded bandwidth".into()
    }

    fn is_ideal(&self) -> bool {
        true
    }

    fn has_3d(&self) -> bool {
        true
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        let words = blocks.iter().map(|&(_, len)| (len as u64).div_ceil(8)).sum();
        PortSchedule { port_cycles: 1, cache_accesses: 0, words }
    }
}

/// The 4-port, 8-bank multi-banked cache behind a crossbar (Figure 2-a),
/// on top of [`schedule_multibanked`].
#[derive(Debug, Clone, Copy)]
pub struct MultiBankedBackend {
    cfg: BankedConfig,
}

impl VectorMemoryBackend for MultiBankedBackend {
    fn id(&self) -> BackendId {
        BackendId::new("multi-banked")
    }

    fn display_name(&self) -> &'static str {
        "multi-banked"
    }

    fn describe(&self) -> String {
        format!(
            "{} ports x {} banks behind a crossbar, {} B interleave",
            self.cfg.ports, self.cfg.banks, self.cfg.interleave_bytes
        )
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        schedule_multibanked(&self.cfg, blocks)
    }
}

/// The single wide-port vector cache (Figure 2-b), on top of
/// [`schedule_vector_cache`].
#[derive(Debug, Clone, Copy)]
pub struct VectorCacheBackend {
    cfg: VectorCacheConfig,
}

impl VectorMemoryBackend for VectorCacheBackend {
    fn id(&self) -> BackendId {
        BackendId::new("vector-cache")
    }

    fn display_name(&self) -> &'static str {
        "vector cache"
    }

    fn describe(&self) -> String {
        format!(
            "1 port x {} x 64 bit, shift&mask network, {} B lines",
            self.cfg.width_words, self.cfg.line_bytes
        )
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        schedule_vector_cache(&self.cfg, blocks)
    }
}

/// The vector cache plus the second-level 3D vector register file
/// (Figure 8-c): 2D accesses use the wide port, `3dvload`s stream one
/// whole line per cycle into a 3D-register-file lane ([`schedule_3d`]).
#[derive(Debug, Clone, Copy)]
pub struct VectorCache3dBackend {
    cfg: VectorCacheConfig,
}

impl VectorMemoryBackend for VectorCache3dBackend {
    fn id(&self) -> BackendId {
        BackendId::new("vector-cache-3d")
    }

    fn display_name(&self) -> &'static str {
        "vector cache + 3D RF"
    }

    fn describe(&self) -> String {
        format!(
            "1 port x {} x 64 bit + 3D register file, one {} B line per cycle on the 3D path",
            self.cfg.width_words, self.cfg.line_bytes
        )
    }

    fn has_3d(&self) -> bool {
        true
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], is_3d: bool) -> PortSchedule {
        if is_3d {
            schedule_3d(blocks)
        } else {
            schedule_vector_cache(&self.cfg, blocks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const PAPER_IDS: [&str; 4] = ["ideal", "multi-banked", "vector-cache", "vector-cache-3d"];

    #[test]
    fn builtins_are_registered_in_canonical_order() {
        let entries = BackendRegistry::entries();
        let ids: Vec<&str> = entries.iter().map(|e| e.id).collect();
        assert!(ids.len() >= 7);
        assert_eq!(
            &ids[..7],
            &[
                "ideal",
                "multi-banked",
                "vector-cache",
                "vector-cache-3d",
                "dram-burst",
                "hbm-wide",
                "pim-vector"
            ]
        );
        // Enumeration is deterministic: a second snapshot agrees.
        let again: Vec<&str> = BackendRegistry::entries().iter().map(|e| e.id).collect();
        assert_eq!(ids, again);
    }

    #[test]
    fn builtin_param_specs_are_well_formed() {
        for entry in BackendRegistry::entries() {
            for spec in entry.params {
                assert!(!spec.key.is_empty(), "{}: empty key", entry.id);
                assert!(
                    !spec.key.contains(['=', ',', '?']),
                    "{}: key {:?} collides with id syntax",
                    entry.id,
                    spec.key
                );
                assert!(
                    spec.candidates.contains(&spec.default),
                    "{}: candidates of {:?} omit the default {}",
                    entry.id,
                    spec.key,
                    spec.default
                );
                assert_eq!(
                    entry.params.iter().filter(|p| p.key == spec.key).count(),
                    1,
                    "{}: duplicate key {:?}",
                    entry.id,
                    spec.key
                );
            }
        }
    }

    #[test]
    fn parse_canonicalizes_parameterized_ids() {
        // Keys are sorted and the result is interned: equal design
        // points are pointer-equal strings, whatever the input order.
        let a = BackendRegistry::parse("dram-burst?row=512,banks=16").unwrap();
        let b = BackendRegistry::parse("dram-burst?banks=16,row=512").unwrap();
        assert_eq!(a.as_str(), "dram-burst?banks=16,row=512");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(a.base(), "dram-burst");
        assert!(a.has_params());
        assert_eq!(a.params().collect::<Vec<_>>(), vec![("banks", 16), ("row", 512)]);
        // Parameterized ids inherit the family's capabilities.
        assert!(!a.has_3d() && !a.is_ideal());
        assert!(BackendRegistry::parse("vector-cache-3d?width=8").unwrap().has_3d());
    }

    #[test]
    fn parse_rejects_malformed_suffixes_with_reasons() {
        use ParseIdError::*;
        let err = |s: &str| BackendRegistry::try_parse(s).unwrap_err();
        assert_eq!(err("no-such?banks=4"), UnknownBase("no-such".into()));
        assert!(matches!(err("dram-burst?"), MalformedPair { base: "dram-burst", .. }));
        assert!(matches!(err("dram-burst?banks"), MalformedPair { .. }));
        assert!(matches!(err("dram-burst?banks=four"), MalformedPair { .. }));
        assert!(matches!(err("dram-burst?banks=4,banks=8"), DuplicateKey { .. }));
        let unknown = err("dram-burst?bogus=1");
        let UnknownKey { base, key, valid } = &unknown else {
            panic!("expected UnknownKey, got {unknown:?}")
        };
        assert_eq!((*base, key.as_str()), ("dram-burst", "bogus"));
        assert_eq!(valid, &["act", "banks", "burst", "row"]);
        // The rendered message lists the valid keys for the CLI.
        assert!(unknown.to_string().contains("act, banks, burst, row"));
        // A parameter-less family reports that it takes none.
        assert!(err("ideal?x=1").to_string().contains("takes no parameters"));
        // get() applies the same validation, so the simulator rejects
        // malformed design points as unknown backends.
        assert!(BackendRegistry::get("dram-burst?bogus=1").is_none());
        assert!(BackendRegistry::get("dram-burst?banks=16").is_some());
    }

    #[test]
    fn make_id_and_resolved_params_apply_specs() {
        let id = BackendRegistry::make_id("dram-burst", &[("row", 512), ("banks", 16)]).unwrap();
        assert_eq!(id.as_str(), "dram-burst?banks=16,row=512");
        let params =
            BackendRegistry::resolved_params(id, &BackendParams::default()).unwrap();
        assert_eq!(params.dram.banks, 16);
        assert_eq!(params.dram.row_bytes, 512);
        // Untouched knobs keep the base values.
        assert_eq!(params.dram.burst_words, 4);
        // And build() applies the suffix on top of the passed params.
        let built = BackendRegistry::build(id, &BackendParams::default()).unwrap();
        assert!(built.describe().contains("16 banks x 512 B rows"));
        assert!(BackendRegistry::make_id("dram-burst", &[("bogus", 1)]).is_err());
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for entry in BackendRegistry::entries() {
            let id = BackendRegistry::parse(entry.id).expect("registered id parses");
            assert_eq!(id.as_str(), entry.id);
            let mut built = BackendRegistry::build(id, &BackendParams::default()).unwrap();
            assert_eq!(built.id(), id);
            assert_eq!(built.has_3d(), entry.has_3d);
            assert_eq!(built.is_ideal(), entry.is_ideal);
            assert!(!built.describe().is_empty());
            // Any backend must schedule an empty block list to nothing
            // or a constant — it must not panic.
            let _ = built.schedule(&[], false);
        }
        assert_eq!(BackendRegistry::parse("no-such-backend"), None);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        // A self-consistent entry (so it passes the capability probe)
        // that collides with a built-in id.
        let err = BackendRegistry::register(BackendEntry {
            id: "vector-cache",
            display_name: "impostor",
            has_3d: false,
            is_ideal: false,
            build: |p| Box::new(VectorCacheBackend { cfg: p.vector_cache }),
            params: &[],
        })
        .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateId("vector-cache"));
        assert!(err.to_string().contains("vector-cache"));
    }

    /// A test-only backend whose instances report id "drifting",
    /// has_3d = true and is_ideal = true.
    #[derive(Debug)]
    struct DriftingProbe;

    impl VectorMemoryBackend for DriftingProbe {
        fn id(&self) -> BackendId {
            BackendId::new("drifting")
        }

        fn display_name(&self) -> &'static str {
            "drifting probe"
        }

        fn describe(&self) -> String {
            "test probe".into()
        }

        fn has_3d(&self) -> bool {
            true
        }

        fn is_ideal(&self) -> bool {
            true
        }

        fn schedule(&mut self, _blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
            PortSchedule::default()
        }
    }

    #[test]
    fn mismatched_entries_are_rejected() {
        // Declaring capabilities the instances do not report would let
        // the pipeline validate traces against the wrong contract —
        // register() must catch the drift up front, field by field.
        let entry = |id, has_3d, is_ideal| BackendEntry {
            id,
            display_name: "drifting probe",
            has_3d,
            is_ideal,
            build: |_| Box::new(DriftingProbe),
            params: &[],
        };
        let err = BackendRegistry::register(entry("wrong-id", true, true)).unwrap_err();
        assert_eq!(err, RegistryError::EntryMismatch { id: "wrong-id", what: "id" });
        let err = BackendRegistry::register(entry("drifting", false, true)).unwrap_err();
        assert_eq!(err, RegistryError::EntryMismatch { id: "drifting", what: "has_3d" });
        let err = BackendRegistry::register(entry("drifting", true, false)).unwrap_err();
        assert_eq!(err, RegistryError::EntryMismatch { id: "drifting", what: "is_ideal" });
        assert!(err.to_string().contains("is_ideal"));
        // Ill-formed param declarations are caught the same way.
        let err = BackendRegistry::register(BackendEntry {
            id: "drifting",
            display_name: "drifting probe",
            has_3d: true,
            is_ideal: true,
            build: |_| Box::new(DriftingProbe),
            params: &[ParamSpec {
                key: "bad=key",
                default: 1,
                candidates: &[1],
                apply: |_, _| {},
            }],
        })
        .unwrap_err();
        assert_eq!(err, RegistryError::EntryMismatch { id: "drifting", what: "params" });
        // No bad entry made it into the registry.
        assert!(BackendRegistry::get("drifting").is_none());
        assert!(BackendRegistry::get("wrong-id").is_none());
    }

    #[test]
    fn id_capabilities_match_entries() {
        assert!(BackendId::new("ideal").is_ideal());
        assert!(BackendId::new("ideal").has_3d());
        assert!(BackendId::new("vector-cache-3d").has_3d());
        assert!(!BackendId::new("vector-cache").has_3d());
        assert!(!BackendId::new("dram-burst").has_3d());
        assert!(!BackendId::new("unregistered").has_3d());
        assert!(!BackendId::new("unregistered").is_ideal());
    }

    fn arb_blocks() -> impl Strategy<Value = Vec<(u64, u32)>> {
        proptest::collection::vec((0u64..0x2_0000, 1u32..300), 1..40)
    }

    proptest! {
        /// The trait objects for the paper organizations are thin
        /// adapters: they must agree exactly with the underlying pure
        /// schedulers on arbitrary block lists.
        #[test]
        fn paper_backends_match_schedule_functions(blocks in arb_blocks()) {
            let params = BackendParams::default();
            for id in PAPER_IDS {
                let entry = BackendRegistry::get(id).unwrap();
                let mut b = (entry.build)(&params);
                let expected = match id {
                    "multi-banked" => schedule_multibanked(&params.banked, &blocks),
                    "vector-cache" | "vector-cache-3d" => {
                        schedule_vector_cache(&params.vector_cache, &blocks)
                    }
                    _ => continue, // ideal is short-circuited by the simulator
                };
                prop_assert_eq!(b.schedule(&blocks, false), expected);
            }
            // The 3D path of the 3D-capable backend is schedule_3d.
            let mut b3 = BackendRegistry::build(
                BackendId::new("vector-cache-3d"),
                &params,
            ).unwrap();
            prop_assert_eq!(b3.schedule(&blocks, true), schedule_3d(&blocks));
        }
    }
}
