//! A DRAM-burst/bank-conflict-aware main-memory backend.
//!
//! The paper's organizations all assume an SRAM L2 whose banks respond
//! in a cycle. Streaming vector memory systems that feed from DRAM see
//! a different first-order effect: a bank's sense amplifiers hold one
//! open *row*, consecutive accesses to that row stream at burst rate,
//! and touching a different row pays an activate/precharge penalty
//! (cf. "Addressing memory bandwidth scalability in vector processors
//! for streaming applications", arXiv:2505.12856). This backend models
//! that on top of the same port-schedule contract as the paper's
//! organizations, making wide-gap main-memory what-ifs (e.g.
//! die-stacked DRAM, arXiv:1608.07485 — tune [`DramConfig`]) run
//! through the unmodified simulator, sweep engine and reports.
//!
//! The model, per vector memory instruction:
//!
//! * element blocks are split into 64-bit word references, in order;
//! * a run of consecutive ascending words in one bank's open row is
//!   *bursted*: one access of up to [`DramConfig::burst_words`] words;
//! * every access occupies the channel for one cycle, plus
//!   [`DramConfig::row_miss_penalty`] cycles when it must open a new
//!   row in its bank first;
//! * open rows persist *across* instructions (one instance lives for a
//!   whole simulation run), so streaming workloads keep their rows open
//!   while large-strided ones thrash them.
//!
//! Banks interleave at row granularity: `bank = (addr / row_bytes) %
//! banks`, `row = addr / (row_bytes * banks)` — the usual layout that
//! keeps a dense stream inside one row until it spills to the next
//! bank's row.
//!
//! ```
//! use mom3d_mem::{DramBurstBackend, DramConfig, VectorMemoryBackend};
//!
//! let mut dram = DramBurstBackend::new(DramConfig::default());
//! // A dense 64-byte block: cold row activate + two 4-word bursts.
//! let s = dram.schedule(&[(0, 64)], false);
//! assert_eq!(s.words, 8);
//! assert_eq!(s.cache_accesses, 2);
//! assert_eq!(s.port_cycles, 2 + DramConfig::default().row_miss_penalty);
//! // Same block again: the row is still open, no activate.
//! let s = dram.schedule(&[(0, 64)], false);
//! assert_eq!(s.port_cycles, 2);
//! ```

use crate::backend::{BackendId, BackendStats, VectorMemoryBackend};
use crate::ports::PortSchedule;

/// DRAM channel/bank geometry and timing of the [`DramBurstBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent banks, each with one open-row buffer.
    pub banks: usize,
    /// Maximum 64-bit words a single burst access delivers.
    pub burst_words: usize,
    /// Row-buffer size in bytes (also the bank interleave granularity).
    pub row_bytes: u64,
    /// Extra channel cycles to activate a row after a row-buffer miss
    /// (precharge + activate, in L2-port cycles).
    pub row_miss_penalty: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig { banks: 8, burst_words: 4, row_bytes: 1024, row_miss_penalty: 6 }
    }
}

impl DramConfig {
    /// Bank owning byte address `addr`.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.row_bytes) % self.banks as u64) as usize
    }

    /// Row index of `addr` within its bank.
    #[inline]
    pub fn row_of(&self, addr: u64) -> u64 {
        addr / (self.row_bytes * self.banks as u64)
    }
}

/// The stateful DRAM-burst backend: open-row buffers per bank, burst
/// grants for consecutive words in the open row, activate penalties on
/// row misses (see the source-file header for the full model).
#[derive(Debug, Clone)]
pub struct DramBurstBackend {
    cfg: DramConfig,
    /// Open row per bank (`None` = all banks precharged).
    open_rows: Vec<Option<u64>>,
    stats: BackendStats,
}

impl DramBurstBackend {
    /// A backend with all rows closed. Degenerate geometry is clamped
    /// to the smallest sane value (1 bank, 8 B rows, 1-word bursts)
    /// rather than dividing by zero on the first access.
    pub fn new(cfg: DramConfig) -> Self {
        let cfg = DramConfig {
            banks: cfg.banks.max(1),
            burst_words: cfg.burst_words.max(1),
            row_bytes: cfg.row_bytes.max(8),
            row_miss_penalty: cfg.row_miss_penalty,
        };
        DramBurstBackend { cfg, open_rows: vec![None; cfg.banks], stats: BackendStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }
}

impl VectorMemoryBackend for DramBurstBackend {
    fn id(&self) -> BackendId {
        BackendId::new("dram-burst")
    }

    fn display_name(&self) -> &'static str {
        "DRAM burst"
    }

    fn describe(&self) -> String {
        format!(
            "{} banks x {} B rows, {}-word bursts, {}-cycle row activate",
            self.cfg.banks, self.cfg.row_bytes, self.cfg.burst_words, self.cfg.row_miss_penalty
        )
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        let mut schedule = PortSchedule::default();
        // Length of the current burst (0 = none yet), the previous
        // word's address, and the (bank, row) the burst streams from.
        let mut burst = 0usize;
        let mut prev = 0u64;
        let mut burst_bank = 0usize;
        let mut burst_row = 0u64;
        for &(addr, len) in blocks {
            for k in 0..(len as u64).div_ceil(8) {
                let word = addr + 8 * k;
                schedule.words += 1;
                let bank = self.cfg.bank_of(word);
                let row = self.cfg.row_of(word);
                if burst > 0
                    && burst < self.cfg.burst_words
                    && word == prev + 8
                    && bank == burst_bank
                    && row == burst_row
                {
                    burst += 1;
                } else {
                    schedule.port_cycles += 1;
                    schedule.cache_accesses += 1;
                    if self.open_rows[bank] == Some(row) {
                        self.stats.row_hits += 1;
                    } else {
                        self.stats.row_misses += 1;
                        schedule.port_cycles += self.cfg.row_miss_penalty;
                        self.open_rows[bank] = Some(row);
                    }
                    burst = 1;
                    burst_bank = bank;
                    burst_row = row;
                }
                prev = word;
            }
        }
        schedule
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn activate_row_bytes(&self) -> u64 {
        self.cfg.row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dram() -> DramBurstBackend {
        DramBurstBackend::new(DramConfig::default())
    }

    fn unit_blocks(base: u64, stride: u64, n: usize) -> Vec<(u64, u32)> {
        (0..n as u64).map(|i| (base + stride * i, 8)).collect()
    }

    #[test]
    fn degenerate_geometry_is_clamped_not_divided_by_zero() {
        let mut d = DramBurstBackend::new(DramConfig {
            banks: 0,
            burst_words: 0,
            row_bytes: 0,
            row_miss_penalty: 2,
        });
        assert_eq!(d.config().banks, 1);
        assert_eq!(d.config().burst_words, 1);
        assert_eq!(d.config().row_bytes, 8);
        // One word per access, one row (= one word) per activate.
        let s = d.schedule(&unit_blocks(0, 8, 4), false);
        assert_eq!(s.cache_accesses, 4);
        assert_eq!(s.port_cycles, 4 * (1 + 2));
    }

    #[test]
    fn bank_and_row_mapping() {
        let cfg = DramConfig::default();
        assert_eq!(cfg.bank_of(0), 0);
        assert_eq!(cfg.bank_of(1024), 1);
        assert_eq!(cfg.bank_of(1024 * 8), 0);
        assert_eq!(cfg.row_of(0), 0);
        assert_eq!(cfg.row_of(1024 * 7), 0);
        assert_eq!(cfg.row_of(1024 * 8), 1);
    }

    #[test]
    fn dense_stream_bursts_after_one_activate() {
        let mut d = dram();
        // 16 consecutive words in one row: 1 activate + 4 bursts of 4.
        let s = d.schedule(&unit_blocks(0, 8, 16), false);
        assert_eq!(s.words, 16);
        assert_eq!(s.cache_accesses, 4);
        assert_eq!(s.port_cycles, 4 + 6);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().row_hits, 3);
    }

    #[test]
    fn open_rows_persist_across_instructions() {
        let mut d = dram();
        d.schedule(&unit_blocks(0, 8, 4), false);
        assert_eq!(d.stats().row_misses, 1);
        // The next instruction streams the same row: pure hits.
        let s = d.schedule(&unit_blocks(32, 8, 4), false);
        assert_eq!(s.port_cycles, 1);
        assert_eq!(d.stats().row_misses, 1);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_thrashing_pays_activate_every_access() {
        let mut d = dram();
        // Stride of one whole row-set (8 banks x 1 KB): every reference
        // is a different row of bank 0.
        let row_set = 1024 * 8;
        let s = d.schedule(&unit_blocks(0, row_set, 8), false);
        assert_eq!(s.cache_accesses, 8);
        assert_eq!(s.port_cycles, 8 * (1 + 6));
        assert_eq!(d.stats().row_misses, 8);
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn moderate_stride_spreads_over_banks() {
        let mut d = dram();
        // 1 KB stride: banks 0..8 in turn, one activate each, then the
        // second pass over the same rows hits.
        let s1 = d.schedule(&unit_blocks(0, 1024, 8), false);
        assert_eq!(s1.port_cycles, 8 * 7);
        let s2 = d.schedule(&unit_blocks(8, 1024, 8), false);
        assert_eq!(s2.port_cycles, 8);
        assert_eq!(d.stats(), BackendStats { row_hits: 8, row_misses: 8 });
    }

    #[test]
    fn burst_stops_at_row_boundary() {
        let mut d = dram();
        // Four words straddling the row boundary at 1024: the burst must
        // break even though the addresses are consecutive.
        let s = d.schedule(&unit_blocks(1024 - 16, 8, 4), false);
        assert_eq!(s.cache_accesses, 2);
        assert_eq!(d.stats().row_misses, 2, "both rows were cold");
    }

    proptest! {
        /// Counter consistency on arbitrary block lists: every access is
        /// a hit or a miss, occupancy is accesses plus activate stalls,
        /// and words are preserved.
        #[test]
        fn counters_are_consistent(
            blocks in proptest::collection::vec((0u64..0x10_0000, 1u32..300), 1..40),
        ) {
            let mut d = dram();
            let s = d.schedule(&blocks, false);
            let stats = d.stats();
            prop_assert_eq!(stats.row_hits + stats.row_misses, s.cache_accesses);
            prop_assert_eq!(
                s.port_cycles as u64,
                s.cache_accesses + stats.row_misses * DramConfig::default().row_miss_penalty as u64
            );
            let expected_words: u64 =
                blocks.iter().map(|&(_, len)| (len as u64).div_ceil(8)).sum();
            prop_assert_eq!(s.words, expected_words);
            // A burst never exceeds the configured length.
            prop_assert!(s.cache_accesses * DramConfig::default().burst_words as u64 >= s.words);
        }
    }
}
