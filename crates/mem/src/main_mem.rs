//! Sparse byte-addressable main memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse, paged, byte-addressable memory.
///
/// Unwritten bytes read as zero, so workload generators can lay out data
/// anywhere in a 64-bit address space without preallocating.
///
/// ```
/// let mut m = mom3d_mem::MainMemory::new();
/// m.write_bytes(0xFF00, &[1, 2, 3]);
/// assert_eq!(m.read_bytes(0xFF00, 4), vec![1, 2, 3, 0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MainMemory {
    /// Bytes per page — the granularity of [`MainMemory::pages_sorted`]
    /// and [`MainMemory::write_page`].
    pub const PAGE_BYTES: usize = PAGE_SIZE;

    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident pages (for tests / footprint checks).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident pages as `(base_address, data)` in ascending address
    /// order — the deterministic enumeration workload-image
    /// serialization needs (hash-map order would make encodings of
    /// identical memories differ).
    pub fn pages_sorted(&self) -> Vec<(u64, &[u8; Self::PAGE_BYTES])> {
        let mut pages: Vec<(u64, &[u8; Self::PAGE_BYTES])> =
            self.pages.iter().map(|(&idx, data)| (idx << PAGE_SHIFT, &**data)).collect();
        pages.sort_unstable_by_key(|&(base, _)| base);
        pages
    }

    /// Installs one full page wholesale (the deserialization
    /// counterpart of [`MainMemory::pages_sorted`]; far cheaper than
    /// 4096 `write_u8` calls).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned.
    pub fn write_page(&mut self, base: u64, data: &[u8; Self::PAGE_BYTES]) {
        assert_eq!(base & (PAGE_SIZE as u64 - 1), 0, "page base must be page-aligned");
        self.pages.insert(base >> PAGE_SHIFT, Box::new(*data));
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// Reads `len` bytes into `buf`.
    pub fn read_into(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes a byte slice starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)])
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_into(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian scalar of `bytes` bytes (1–8), zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 8.
    pub fn read_scalar(&self, addr: u64, bytes: u8) -> u64 {
        assert!((1..=8).contains(&bytes), "scalar width must be 1-8 bytes");
        let mut v = 0u64;
        for i in 0..bytes as u64 {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `bytes` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is 0 or greater than 8.
    pub fn write_scalar(&mut self, addr: u64, value: u64, bytes: u8) {
        assert!((1..=8).contains(&bytes), "scalar width must be 1-8 bytes");
        for i in 0..bytes as u64 {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    // ---- page-batched accessors -----------------------------------------
    //
    // The byte-at-a-time paths above pay one page-table lookup per byte;
    // callers that know their access geometry up front (the trace-
    // specializing emulator) use these instead: one lookup per page
    // touched, bit-identical results. The per-byte paths are kept
    // untouched — they are the reference the batched paths are pinned
    // against.

    /// Reads a little-endian `u64` with a single page lookup when the
    /// word lies within one page (falls back to [`MainMemory::read_u64`]
    /// across a page boundary). Bit-identical to `read_u64`.
    #[inline]
    pub fn read_u64_paged(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + 8 <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            }
        } else {
            self.read_u64(addr)
        }
    }

    /// Writes a little-endian `u64` with a single page lookup when the
    /// word lies within one page. Like `write_u64`, always materializes
    /// the touched page(s).
    #[inline]
    pub fn write_u64_paged(&mut self, addr: u64, value: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + 8 <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_u64(addr, value);
        }
    }

    /// Fills `buf` from `addr` with one page lookup per page touched —
    /// the batched counterpart of [`MainMemory::read_into`].
    pub fn read_paged(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            match self.pages.get(&(a >> PAGE_SHIFT)) {
                Some(p) => buf[done..done + chunk].copy_from_slice(&p[off..off + chunk]),
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
    }

    /// Writes `bytes` starting at `addr` with one page lookup per page
    /// touched — the batched counterpart of [`MainMemory::write_bytes`].
    pub fn write_paged(&mut self, addr: u64, bytes: &[u8]) {
        let mut done = 0usize;
        while done < bytes.len() {
            let a = addr + done as u64;
            let off = (a as usize) & (PAGE_SIZE - 1);
            let chunk = (PAGE_SIZE - off).min(bytes.len() - done);
            let page = self
                .pages
                .entry(a >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + chunk].copy_from_slice(&bytes[done..done + chunk]);
            done += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = MainMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xFFFF_FFFF_FFFF_0000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = MainMemory::new();
        m.write_u8(10, 0xAB);
        m.write_u16(20, 0xBEEF);
        m.write_u32(30, 0xDEAD_BEEF);
        m.write_u64(40, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(10), 0xAB);
        assert_eq!(m.read_u16(20), 0xBEEF);
        assert_eq!(m.read_u32(30), 0xDEAD_BEEF);
        assert_eq!(m.read_u64(40), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MainMemory::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles the page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn scalar_widths() {
        let mut m = MainMemory::new();
        m.write_scalar(0, 0x1234_5678, 3);
        assert_eq!(m.read_scalar(0, 3), 0x34_5678);
        assert_eq!(m.read_u8(3), 0); // byte 3 untouched
        m.write_scalar(100, u64::MAX, 8);
        assert_eq!(m.read_scalar(100, 8), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "1-8 bytes")]
    fn scalar_zero_width_panics() {
        MainMemory::new().read_scalar(0, 0);
    }

    #[test]
    fn pages_sorted_and_write_page_round_trip() {
        let mut m = MainMemory::new();
        m.write_u64(0x5000, 0xAAAA);
        m.write_u64(0x1000, 0xBBBB);
        m.write_u8(0x9FFF, 7);
        let pages = m.pages_sorted();
        let bases: Vec<u64> = pages.iter().map(|&(b, _)| b).collect();
        assert_eq!(bases, vec![0x1000, 0x5000, 0x9000], "ascending page bases");
        let mut copy = MainMemory::new();
        for (base, data) in pages {
            copy.write_page(base, data);
        }
        assert_eq!(copy, m, "page-wise copy must be bit-identical");
        assert_eq!(copy.read_u64(0x5000), 0xAAAA);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn write_page_rejects_unaligned_base() {
        MainMemory::new().write_page(8, &[0u8; MainMemory::PAGE_BYTES]);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = MainMemory::new();
        m.write_u32(0, 0x0A0B_0C0D);
        assert_eq!(m.read_u8(0), 0x0D);
        assert_eq!(m.read_u8(3), 0x0A);
    }

    #[test]
    fn paged_u64_matches_per_byte_everywhere() {
        let mut m = MainMemory::new();
        for i in 0..2 * PAGE_SIZE as u64 {
            m.write_u8(0x1000 + i, (i % 251) as u8);
        }
        // Within a page, straddling the page boundary, and on absent pages.
        for addr in [0x1000, 0x1ffc, 0x1000 + PAGE_SIZE as u64 - 4, 0x9_0000] {
            assert_eq!(m.read_u64_paged(addr), m.read_u64(addr), "read at {addr:#x}");
        }
        let mut a = m.clone();
        let mut b = m.clone();
        for (i, addr) in [0x1008u64, 0x1000 + PAGE_SIZE as u64 - 3, 0xA_0000].iter().enumerate() {
            a.write_u64(*addr, 0x1122_3344_5566_7788 * (i as u64 + 1));
            b.write_u64_paged(*addr, 0x1122_3344_5566_7788 * (i as u64 + 1));
        }
        assert_eq!(a, b, "batched u64 writes must be bit-identical");
    }

    #[test]
    fn paged_block_matches_per_byte_across_pages() {
        let mut m = MainMemory::new();
        for i in 0..PAGE_SIZE as u64 {
            m.write_u8(0x2000 + i, i as u8);
        }
        // A read spanning resident and absent pages.
        let base = 0x2000 + PAGE_SIZE as u64 - 100;
        let mut fast = vec![0u8; 300];
        m.read_paged(base, &mut fast);
        assert_eq!(fast, m.read_bytes(base, 300));

        let payload: Vec<u8> = (0..300).map(|i| (i % 7) as u8).collect();
        let mut a = m.clone();
        let mut b = m.clone();
        a.write_bytes(base, &payload);
        b.write_paged(base, &payload);
        assert_eq!(a, b, "batched block writes must be bit-identical");
        // Writes materialize pages exactly like the per-byte path.
        assert_eq!(a.resident_pages(), b.resident_pages());
    }
}
