//! Vector memory port schedulers.
//!
//! The paper compares three ways of feeding a SIMD pipeline from the L2
//! cache (§3.1 Figure 2, §5.3 Figure 8). Given the resolved element
//! addresses of one vector memory instruction, each scheduler computes
//!
//! * how many cycles the port (or bank array) is occupied,
//! * how many energy-relevant cache accesses are performed (the Table 4
//!   "activity" / Figure 11 power metric), and
//! * how many 64-bit words are transferred to the register files (the
//!   Figure 6 effective-bandwidth and Figure 7 traffic metric).
//!
//! The schedulers are pure functions so they can be property-tested and
//! reused by both the timing simulator and the analytical harness.

/// Result of scheduling one vector memory instruction on a port system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortSchedule {
    /// Cycles the port/bank array is busy servicing this instruction.
    pub port_cycles: u32,
    /// Energy-relevant cache accesses (bank reads for the multi-banked
    /// organization, wide-port accesses for the vector cache and 3D path).
    pub cache_accesses: u64,
    /// 64-bit words transferred between the cache and a register file.
    pub words: u64,
}

impl PortSchedule {
    /// Effective bandwidth of this instruction in words per access
    /// — the paper's Figure 6 metric. Zero when nothing was transferred.
    pub fn words_per_access(&self) -> f64 {
        if self.port_cycles == 0 {
            0.0
        } else {
            self.words as f64 / self.port_cycles as f64
        }
    }

    /// Accumulates another schedule (for whole-trace totals).
    pub fn merge(&mut self, other: &PortSchedule) {
        self.port_cycles += other.port_cycles;
        self.cache_accesses += other.cache_accesses;
        self.words += other.words;
    }
}

/// Multi-banked cache configuration (Figure 2-a): `ports` references per
/// cycle served by `banks` interleaved banks behind a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankedConfig {
    /// Concurrent references per cycle (the paper evaluates 4).
    pub ports: usize,
    /// Number of banks (the paper evaluates 8).
    pub banks: usize,
    /// Bank interleaving granularity in bytes (64-bit words).
    pub interleave_bytes: u64,
}

impl Default for BankedConfig {
    fn default() -> Self {
        BankedConfig { ports: 4, banks: 8, interleave_bytes: 8 }
    }
}

impl BankedConfig {
    /// Bank servicing byte address `addr`.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.interleave_bytes) % self.banks as u64) as usize
    }
}

/// Vector cache configuration (Figure 2-b): one port of `width_words`
/// 64-bit words, fed by two interleaved line banks with an interchange
/// switch and shift&mask network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorCacheConfig {
    /// Words deliverable per access (the paper evaluates 4 × 64 bit).
    pub width_words: usize,
    /// L2 line size in bytes (bounds a wide access to two lines).
    pub line_bytes: u64,
}

impl Default for VectorCacheConfig {
    fn default() -> Self {
        VectorCacheConfig { width_words: 4, line_bytes: 128 }
    }
}

/// Schedules one vector instruction's element references on a
/// multi-banked cache.
///
/// Elements are granted greedily: each cycle takes up to `ports`
/// references whose banks do not collide, scanning the pending queue in
/// order (references blocked by a bank conflict retry next cycle; younger
/// references may bypass them, as a crossbar permits). Every granted
/// reference is one bank access — the multi-banked organization cannot
/// combine two references to the same line, which is exactly why its
/// Table 4 activity is high.
///
/// `blocks` holds `(address, length-in-bytes)` pairs; blocks wider than
/// the interleave granularity are split into words first.
pub fn schedule_multibanked(cfg: &BankedConfig, blocks: &[(u64, u32)]) -> PortSchedule {
    // Split into word references.
    let mut pending: Vec<u64> = Vec::new();
    for &(addr, len) in blocks {
        let mut off = 0;
        while off < len as u64 {
            pending.push(addr + off);
            off += cfg.interleave_bytes;
        }
    }
    let words = pending.len() as u64;
    let mut schedule = PortSchedule { port_cycles: 0, cache_accesses: words, words };
    let mut done = vec![false; pending.len()];
    let mut remaining = pending.len();
    while remaining > 0 {
        schedule.port_cycles += 1;
        let mut used_banks = vec![false; cfg.banks];
        let mut granted = 0;
        for (i, &addr) in pending.iter().enumerate() {
            if done[i] || granted == cfg.ports {
                continue;
            }
            let bank = cfg.bank_of(addr);
            if !used_banks[bank] {
                used_banks[bank] = true;
                done[i] = true;
                granted += 1;
                remaining -= 1;
            }
        }
        debug_assert!(granted > 0, "scheduler must make progress");
    }
    schedule
}

/// Schedules one vector instruction on the vector cache's single wide
/// port.
///
/// Elements are serviced strictly in order. A run of references to
/// *consecutive ascending* words is combined into a single wide access of
/// up to `width_words` words (the shift&mask network extracts them from
/// the two fetched lines). Any other stride degrades to one element per
/// access — the §3.1 limitation that motivates the 3D extension.
pub fn schedule_vector_cache(cfg: &VectorCacheConfig, blocks: &[(u64, u32)]) -> PortSchedule {
    // Expand blocks into word references, preserving order.
    let mut refs: Vec<u64> = Vec::new();
    for &(addr, len) in blocks {
        let mut off = 0;
        while off < len as u64 {
            refs.push(addr + off);
            off += 8;
        }
    }
    let mut schedule = PortSchedule { port_cycles: 0, cache_accesses: 0, words: refs.len() as u64 };
    let mut i = 0;
    while i < refs.len() {
        // Extend a consecutive ascending run from refs[i].
        let mut run = 1;
        while run < cfg.width_words
            && i + run < refs.len()
            && refs[i + run] == refs[i + run - 1] + 8
        {
            run += 1;
        }
        schedule.port_cycles += 1;
        schedule.cache_accesses += 1;
        i += run;
    }
    schedule
}

/// Schedules one `3dvload` on the vector cache + 3D register file path.
///
/// Each 3D register element (up to a whole 128-byte L2 line, at any byte
/// alignment thanks to the two interleaved line banks) is written into
/// one 3D-register-file lane per cycle: one wide access per element
/// (Figure 8-c).
pub fn schedule_3d(blocks: &[(u64, u32)]) -> PortSchedule {
    let mut schedule = PortSchedule::default();
    for &(_, len) in blocks {
        schedule.port_cycles += 1;
        schedule.cache_accesses += 1;
        schedule.words += (len as u64).div_ceil(8);
    }
    schedule
}

/// Distinct line-aligned addresses touched by a set of blocks, in first-
/// touch order (used for L2 hit/miss accounting).
pub fn distinct_lines(blocks: &[(u64, u32)], line_bytes: u64) -> Vec<u64> {
    debug_assert!(line_bytes.is_power_of_two());
    let mut lines: Vec<u64> = Vec::new();
    for &(addr, len) in blocks {
        let mut line = addr & !(line_bytes - 1);
        let end = addr + len as u64;
        while line < end {
            if !lines.contains(&line) {
                lines.push(line);
            }
            line += line_bytes;
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_blocks(base: u64, stride: i64, n: usize) -> Vec<(u64, u32)> {
        (0..n)
            .map(|i| ((base as i64 + stride * i as i64) as u64, 8))
            .collect()
    }

    #[test]
    fn multibanked_unit_stride_uses_all_ports() {
        // 8 consecutive words over 8 banks: 4 ports -> 2 cycles.
        let s = schedule_multibanked(&BankedConfig::default(), &unit_blocks(0, 8, 8));
        assert_eq!(s.port_cycles, 2);
        assert_eq!(s.cache_accesses, 8);
        assert_eq!(s.words, 8);
        assert_eq!(s.words_per_access(), 4.0);
    }

    #[test]
    fn multibanked_bank_conflicts_serialize() {
        // Stride of 64 bytes = 8 words: every reference maps to bank 0.
        let s = schedule_multibanked(&BankedConfig::default(), &unit_blocks(0, 64, 8));
        assert_eq!(s.port_cycles, 8);
        assert_eq!(s.words_per_access(), 1.0);
    }

    #[test]
    fn multibanked_moderate_stride() {
        // Stride 16B = 2 words: banks 0,2,4,6,0,2,4,6 -> 4 distinct banks
        // per cycle, ports=4 -> 2 cycles.
        let s = schedule_multibanked(&BankedConfig::default(), &unit_blocks(0, 16, 8));
        assert_eq!(s.port_cycles, 2);
    }

    #[test]
    fn multibanked_splits_wide_blocks() {
        // One 32-byte block = 4 word references.
        let s = schedule_multibanked(&BankedConfig::default(), &[(0, 32)]);
        assert_eq!(s.words, 4);
        assert_eq!(s.port_cycles, 1);
        assert_eq!(s.cache_accesses, 4);
    }

    #[test]
    fn vector_cache_unit_stride_wide_grants() {
        // 8 consecutive words -> two 4-word accesses.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0, 8, 8));
        assert_eq!(s.port_cycles, 2);
        assert_eq!(s.cache_accesses, 2);
        assert_eq!(s.words, 8);
        assert_eq!(s.words_per_access(), 4.0);
    }

    #[test]
    fn vector_cache_strided_degrades_to_one_per_cycle() {
        // The paper's §3.1 limitation: stride != 1 word -> 1 ref/cycle.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0, 640, 8));
        assert_eq!(s.port_cycles, 8);
        assert_eq!(s.words_per_access(), 1.0);
    }

    #[test]
    fn vector_cache_partial_tail_run() {
        // 6 consecutive words -> 4 + 2.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0, 8, 6));
        assert_eq!(s.port_cycles, 2);
        assert_eq!(s.words, 6);
    }

    #[test]
    fn vector_cache_descending_not_combined() {
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0x1000, -8, 4));
        assert_eq!(s.port_cycles, 4);
    }

    #[test]
    fn vector_cache_wide_block_crosses_lines() {
        // A 128-byte block at unaligned base: 16 words consecutive ->
        // 4 accesses of 4 words regardless of alignment.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &[(0x1F4, 128)]);
        assert_eq!(s.port_cycles, 4);
        assert_eq!(s.words, 16);
    }

    #[test]
    fn schedule_3d_one_line_per_cycle() {
        // 16 blocks of 128 B: one per cycle, 16 words each.
        let blocks: Vec<(u64, u32)> = (0..16).map(|i| (0x1000 + i, 128)).collect();
        let s = schedule_3d(&blocks);
        assert_eq!(s.port_cycles, 16);
        assert_eq!(s.cache_accesses, 16);
        assert_eq!(s.words, 256);
        assert_eq!(s.words_per_access(), 16.0);
    }

    #[test]
    fn schedule_3d_narrow_blocks() {
        let blocks: Vec<(u64, u32)> = (0..4).map(|i| (i * 640, 64)).collect();
        let s = schedule_3d(&blocks);
        assert_eq!(s.port_cycles, 4);
        assert_eq!(s.words, 32);
    }

    #[test]
    fn distinct_lines_dedups_and_spans() {
        // Two overlapping 128-byte blocks 1 byte apart on 128B lines.
        let lines = distinct_lines(&[(0x100, 128), (0x101, 128)], 128);
        assert_eq!(lines, vec![0x100, 0x180]);
        // Strided 8-byte elements far apart: one line each.
        let blocks = unit_blocks(0, 640, 4);
        let lines = distinct_lines(&blocks, 128);
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn distinct_lines_straddle() {
        // 8-byte access straddling a line boundary touches two lines.
        let lines = distinct_lines(&[(0x7C, 8)], 128);
        assert_eq!(lines, vec![0x00, 0x80]);
    }

    #[test]
    fn merge_accumulates() {
        let mut total = PortSchedule::default();
        total.merge(&PortSchedule { port_cycles: 2, cache_accesses: 2, words: 8 });
        total.merge(&PortSchedule { port_cycles: 8, cache_accesses: 8, words: 8 });
        assert_eq!(total.port_cycles, 10);
        assert_eq!(total.words, 16);
        assert!((total.words_per_access() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn bank_mapping() {
        let cfg = BankedConfig::default();
        assert_eq!(cfg.bank_of(0), 0);
        assert_eq!(cfg.bank_of(8), 1);
        assert_eq!(cfg.bank_of(56), 7);
        assert_eq!(cfg.bank_of(64), 0);
    }
}
