//! Vector memory port schedulers.
//!
//! The paper compares three ways of feeding a SIMD pipeline from the L2
//! cache (§3.1 Figure 2, §5.3 Figure 8). Given the resolved element
//! addresses of one vector memory instruction, each scheduler computes
//!
//! * how many cycles the port (or bank array) is occupied,
//! * how many energy-relevant cache accesses are performed (the Table 4
//!   "activity" / Figure 11 power metric), and
//! * how many 64-bit words are transferred to the register files (the
//!   Figure 6 effective-bandwidth and Figure 7 traffic metric).
//!
//! The schedulers are pure functions so they can be property-tested and
//! reused by both the timing simulator and the analytical harness. They
//! sit on the innermost loop of every timing simulation (one call per
//! vector memory instruction), so [`schedule_vector_cache`] streams its
//! word references directly from the `(address, length)` blocks without
//! materializing them, and line deduplication ([`LineSet`],
//! [`distinct_lines`]) is linear in the number of touched lines.
//!
//! ```
//! use mom3d_mem::{schedule_vector_cache, VectorCacheConfig};
//!
//! // Eight consecutive 64-bit words through a 4-word-wide port: two
//! // wide accesses, each delivering four words.
//! let blocks: Vec<(u64, u32)> = (0..8).map(|i| (0x1000 + 8 * i, 8)).collect();
//! let s = schedule_vector_cache(&VectorCacheConfig::default(), &blocks);
//! assert_eq!(s.port_cycles, 2);
//! assert_eq!(s.words_per_access(), 4.0);
//! ```

use std::collections::HashSet;

/// Result of scheduling one vector memory instruction on a port system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortSchedule {
    /// Cycles the port/bank array is busy servicing this instruction.
    pub port_cycles: u32,
    /// Energy-relevant cache accesses (bank reads for the multi-banked
    /// organization, wide-port accesses for the vector cache and 3D path).
    pub cache_accesses: u64,
    /// 64-bit words transferred between the cache and a register file.
    pub words: u64,
}

impl PortSchedule {
    /// Effective bandwidth of this instruction in words per access
    /// — the paper's Figure 6 metric. Zero when nothing was transferred.
    pub fn words_per_access(&self) -> f64 {
        if self.port_cycles == 0 {
            0.0
        } else {
            self.words as f64 / self.port_cycles as f64
        }
    }

    /// Accumulates another schedule (for whole-trace totals).
    pub fn merge(&mut self, other: &PortSchedule) {
        self.port_cycles += other.port_cycles;
        self.cache_accesses += other.cache_accesses;
        self.words += other.words;
    }
}

/// Multi-banked cache configuration (Figure 2-a): `ports` references per
/// cycle served by `banks` interleaved banks behind a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankedConfig {
    /// Concurrent references per cycle (the paper evaluates 4).
    pub ports: usize,
    /// Number of banks (the paper evaluates 8).
    pub banks: usize,
    /// Bank interleaving granularity in bytes (64-bit words).
    pub interleave_bytes: u64,
}

impl Default for BankedConfig {
    fn default() -> Self {
        BankedConfig { ports: 4, banks: 8, interleave_bytes: 8 }
    }
}

impl BankedConfig {
    /// Bank servicing byte address `addr`.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.interleave_bytes) % self.banks as u64) as usize
    }
}

/// Vector cache configuration (Figure 2-b): one port of `width_words`
/// 64-bit words, fed by two interleaved line banks with an interchange
/// switch and shift&mask network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorCacheConfig {
    /// Words deliverable per access (the paper evaluates 4 × 64 bit).
    pub width_words: usize,
    /// L2 line size in bytes (bounds a wide access to two lines).
    pub line_bytes: u64,
}

impl Default for VectorCacheConfig {
    fn default() -> Self {
        VectorCacheConfig { width_words: 4, line_bytes: 128 }
    }
}

/// Schedules one vector instruction's element references on a
/// multi-banked cache.
///
/// Elements are granted greedily: each cycle takes up to `ports`
/// references whose banks do not collide, scanning the pending queue in
/// order (references blocked by a bank conflict retry next cycle; younger
/// references may bypass them, as a crossbar permits). Every granted
/// reference is one bank access — the multi-banked organization cannot
/// combine two references to the same line, which is exactly why its
/// Table 4 activity is high.
///
/// `blocks` holds `(address, length-in-bytes)` pairs; blocks wider than
/// the interleave granularity are split into words first.
///
/// ```
/// use mom3d_mem::{schedule_multibanked, BankedConfig};
///
/// // A 64-byte stride maps every reference to bank 0: full serialization.
/// let conflicting: Vec<(u64, u32)> = (0..8).map(|i| (64 * i, 8)).collect();
/// let s = schedule_multibanked(&BankedConfig::default(), &conflicting);
/// assert_eq!(s.port_cycles, 8);
/// // Unit stride spreads over all 8 banks: 4 ports grant 4 words/cycle.
/// let dense: Vec<(u64, u32)> = (0..8).map(|i| (8 * i, 8)).collect();
/// let s = schedule_multibanked(&BankedConfig::default(), &dense);
/// assert_eq!(s.port_cycles, 2);
/// ```
pub fn schedule_multibanked(cfg: &BankedConfig, blocks: &[(u64, u32)]) -> PortSchedule {
    // Split into word references.
    let mut pending: Vec<u64> = Vec::new();
    for &(addr, len) in blocks {
        let mut off = 0;
        while off < len as u64 {
            pending.push(addr + off);
            off += cfg.interleave_bytes;
        }
    }
    let words = pending.len() as u64;
    let mut schedule = PortSchedule { port_cycles: 0, cache_accesses: words, words };
    let mut done = vec![false; pending.len()];
    let mut remaining = pending.len();
    while remaining > 0 {
        schedule.port_cycles += 1;
        let mut used_banks = vec![false; cfg.banks];
        let mut granted = 0;
        for (i, &addr) in pending.iter().enumerate() {
            if done[i] || granted == cfg.ports {
                continue;
            }
            let bank = cfg.bank_of(addr);
            if !used_banks[bank] {
                used_banks[bank] = true;
                done[i] = true;
                granted += 1;
                remaining -= 1;
            }
        }
        debug_assert!(granted > 0, "scheduler must make progress");
    }
    schedule
}

/// Word references of a block list in order: every 64-bit word of every
/// `(address, length-in-bytes)` block, `len` rounded up to whole words.
#[inline]
fn word_refs(blocks: &[(u64, u32)]) -> impl Iterator<Item = u64> + '_ {
    blocks
        .iter()
        .flat_map(|&(addr, len)| (0..(len as u64).div_ceil(8)).map(move |k| addr + 8 * k))
}

/// Schedules one vector instruction on the vector cache's single wide
/// port.
///
/// Elements are serviced strictly in order. A run of references to
/// *consecutive ascending* words is combined into a single wide access of
/// up to `width_words` words (the shift&mask network extracts them from
/// the two fetched lines). Any other stride degrades to one element per
/// access — the §3.1 limitation that motivates the 3D extension.
///
/// The runs are detected by streaming the word references straight off
/// the block list; the scheduling loop performs no heap allocation.
///
/// ```
/// use mom3d_mem::{schedule_vector_cache, VectorCacheConfig};
///
/// // The §3.1 limitation: a 640-byte stride gets one word per access…
/// let strided: Vec<(u64, u32)> = (0..8).map(|i| (640 * i, 8)).collect();
/// let s = schedule_vector_cache(&VectorCacheConfig::default(), &strided);
/// assert_eq!((s.port_cycles, s.words), (8, 8));
/// // …while one dense 128-byte block fills the 4-word port every cycle.
/// let s = schedule_vector_cache(&VectorCacheConfig::default(), &[(0x1F4, 128)]);
/// assert_eq!((s.port_cycles, s.words), (4, 16));
/// ```
pub fn schedule_vector_cache(cfg: &VectorCacheConfig, blocks: &[(u64, u32)]) -> PortSchedule {
    let mut schedule = PortSchedule::default();
    // Length of the current consecutive ascending run (0 = none yet) and
    // the previous word's address.
    let mut run = 0usize;
    let mut prev = 0u64;
    for word in word_refs(blocks) {
        schedule.words += 1;
        if run > 0 && run < cfg.width_words && word == prev + 8 {
            run += 1;
        } else {
            schedule.port_cycles += 1;
            schedule.cache_accesses += 1;
            run = 1;
        }
        prev = word;
    }
    schedule
}

/// Schedules one `3dvload` on the vector cache + 3D register file path.
///
/// Each 3D register element (up to a whole 128-byte L2 line, at any byte
/// alignment thanks to the two interleaved line banks) is written into
/// one 3D-register-file lane per cycle: one wide access per element
/// (Figure 8-c).
///
/// ```
/// use mom3d_mem::schedule_3d;
///
/// // Four 128-byte candidate rows, one per cycle: 16 words per access.
/// let blocks: Vec<(u64, u32)> = (0..4).map(|i| (0x1000 + 640 * i, 128)).collect();
/// let s = schedule_3d(&blocks);
/// assert_eq!((s.port_cycles, s.words), (4, 64));
/// assert_eq!(s.words_per_access(), 16.0);
/// ```
pub fn schedule_3d(blocks: &[(u64, u32)]) -> PortSchedule {
    let mut schedule = PortSchedule::default();
    for &(_, len) in blocks {
        schedule.port_cycles += 1;
        schedule.cache_accesses += 1;
        schedule.words += (len as u64).div_ceil(8);
    }
    schedule
}

/// Reusable first-touch-order line deduplicator.
///
/// The timing simulator needs the distinct L2 lines of every vector
/// memory instruction (tag lookups, hit/miss accounting, warm-up).
/// Collecting them with a `Vec::contains` scan is quadratic in the line
/// count; this set pairs the ordered `Vec` with a [`HashSet`] membership
/// index so each line is O(1), and both buffers are reused across calls
/// so the steady-state scheduling path stops allocating.
///
/// ```
/// use mom3d_mem::LineSet;
///
/// let mut set = LineSet::new();
/// // An 8-byte access straddling a 128-byte line boundary: two lines.
/// set.collect(&[(0x7C, 8)], 128);
/// assert_eq!(set.lines(), &[0x00, 0x80]);
/// // Buffers are cleared and reused by the next collect.
/// set.collect(&[(0x100, 128), (0x101, 128)], 128);
/// assert_eq!(set.lines(), &[0x100, 0x180]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LineSet {
    lines: Vec<u64>,
    seen: HashSet<u64>,
}

impl LineSet {
    /// An empty set.
    pub fn new() -> Self {
        LineSet::default()
    }

    /// Clears the set and collects the distinct line-aligned addresses
    /// touched by `blocks`, in first-touch order.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `line_bytes` is a power of two.
    pub fn collect(&mut self, blocks: &[(u64, u32)], line_bytes: u64) {
        debug_assert!(line_bytes.is_power_of_two());
        self.lines.clear();
        self.seen.clear();
        for &(addr, len) in blocks {
            let mut line = addr & !(line_bytes - 1);
            let end = addr + len as u64;
            while line < end {
                if self.seen.insert(line) {
                    self.lines.push(line);
                }
                line += line_bytes;
            }
        }
    }

    /// The collected lines, in first-touch order.
    pub fn lines(&self) -> &[u64] {
        &self.lines
    }
}

/// Distinct line-aligned addresses touched by a set of blocks, in first-
/// touch order (used for L2 hit/miss accounting).
///
/// One-shot convenience over [`LineSet`]; hot loops should hold a
/// `LineSet` and [`LineSet::collect`] into it instead.
///
/// ```
/// use mom3d_mem::distinct_lines;
///
/// // Two overlapping 128-byte blocks one byte apart: two 128-byte lines.
/// assert_eq!(distinct_lines(&[(0x100, 128), (0x101, 128)], 128), vec![0x100, 0x180]);
/// ```
pub fn distinct_lines(blocks: &[(u64, u32)], line_bytes: u64) -> Vec<u64> {
    let mut set = LineSet::new();
    set.collect(blocks, line_bytes);
    set.lines
}

/// The pre-rewrite implementations, kept verbatim as oracles for the
/// equivalence property tests: `schedule_vector_cache` used to
/// materialize every word reference in a `Vec<u64>` before scanning, and
/// `distinct_lines` deduplicated with a quadratic `Vec::contains` scan.
#[cfg(test)]
mod reference {
    use super::{PortSchedule, VectorCacheConfig};

    pub fn schedule_vector_cache(cfg: &VectorCacheConfig, blocks: &[(u64, u32)]) -> PortSchedule {
        let mut refs: Vec<u64> = Vec::new();
        for &(addr, len) in blocks {
            let mut off = 0;
            while off < len as u64 {
                refs.push(addr + off);
                off += 8;
            }
        }
        let mut schedule =
            PortSchedule { port_cycles: 0, cache_accesses: 0, words: refs.len() as u64 };
        let mut i = 0;
        while i < refs.len() {
            let mut run = 1;
            while run < cfg.width_words
                && i + run < refs.len()
                && refs[i + run] == refs[i + run - 1] + 8
            {
                run += 1;
            }
            schedule.port_cycles += 1;
            schedule.cache_accesses += 1;
            i += run;
        }
        schedule
    }

    pub fn distinct_lines(blocks: &[(u64, u32)], line_bytes: u64) -> Vec<u64> {
        let mut lines: Vec<u64> = Vec::new();
        for &(addr, len) in blocks {
            let mut line = addr & !(line_bytes - 1);
            let end = addr + len as u64;
            while line < end {
                if !lines.contains(&line) {
                    lines.push(line);
                }
                line += line_bytes;
            }
        }
        lines
    }
}

#[cfg(test)]
mod equivalence {
    use super::*;
    use proptest::prelude::*;

    fn arb_blocks() -> impl Strategy<Value = Vec<(u64, u32)>> {
        proptest::collection::vec((0u64..0x2_0000, 1u32..300), 1..40)
    }

    proptest! {
        /// The streaming scheduler matches the old materialize-then-scan
        /// implementation on arbitrary block lists and port widths.
        #[test]
        fn vector_cache_streaming_matches_reference(
            blocks in arb_blocks(),
            width in 1usize..9,
        ) {
            let cfg = VectorCacheConfig { width_words: width, line_bytes: 128 };
            prop_assert_eq!(
                schedule_vector_cache(&cfg, &blocks),
                reference::schedule_vector_cache(&cfg, &blocks)
            );
        }

        /// The hash-indexed dedup returns exactly the old quadratic
        /// scan's lines, in the same first-touch order.
        #[test]
        fn distinct_lines_matches_reference(blocks in arb_blocks()) {
            prop_assert_eq!(
                distinct_lines(&blocks, 128),
                reference::distinct_lines(&blocks, 128)
            );
        }

        /// A reused LineSet gives the same answer as a fresh one.
        #[test]
        fn line_set_reuse_is_stateless(a in arb_blocks(), b in arb_blocks()) {
            let mut reused = LineSet::new();
            reused.collect(&a, 128);
            reused.collect(&b, 128);
            prop_assert_eq!(reused.lines(), distinct_lines(&b, 128).as_slice());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_blocks(base: u64, stride: i64, n: usize) -> Vec<(u64, u32)> {
        (0..n)
            .map(|i| ((base as i64 + stride * i as i64) as u64, 8))
            .collect()
    }

    #[test]
    fn multibanked_unit_stride_uses_all_ports() {
        // 8 consecutive words over 8 banks: 4 ports -> 2 cycles.
        let s = schedule_multibanked(&BankedConfig::default(), &unit_blocks(0, 8, 8));
        assert_eq!(s.port_cycles, 2);
        assert_eq!(s.cache_accesses, 8);
        assert_eq!(s.words, 8);
        assert_eq!(s.words_per_access(), 4.0);
    }

    #[test]
    fn multibanked_bank_conflicts_serialize() {
        // Stride of 64 bytes = 8 words: every reference maps to bank 0.
        let s = schedule_multibanked(&BankedConfig::default(), &unit_blocks(0, 64, 8));
        assert_eq!(s.port_cycles, 8);
        assert_eq!(s.words_per_access(), 1.0);
    }

    #[test]
    fn multibanked_moderate_stride() {
        // Stride 16B = 2 words: banks 0,2,4,6,0,2,4,6 -> 4 distinct banks
        // per cycle, ports=4 -> 2 cycles.
        let s = schedule_multibanked(&BankedConfig::default(), &unit_blocks(0, 16, 8));
        assert_eq!(s.port_cycles, 2);
    }

    #[test]
    fn multibanked_splits_wide_blocks() {
        // One 32-byte block = 4 word references.
        let s = schedule_multibanked(&BankedConfig::default(), &[(0, 32)]);
        assert_eq!(s.words, 4);
        assert_eq!(s.port_cycles, 1);
        assert_eq!(s.cache_accesses, 4);
    }

    #[test]
    fn vector_cache_unit_stride_wide_grants() {
        // 8 consecutive words -> two 4-word accesses.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0, 8, 8));
        assert_eq!(s.port_cycles, 2);
        assert_eq!(s.cache_accesses, 2);
        assert_eq!(s.words, 8);
        assert_eq!(s.words_per_access(), 4.0);
    }

    #[test]
    fn vector_cache_strided_degrades_to_one_per_cycle() {
        // The paper's §3.1 limitation: stride != 1 word -> 1 ref/cycle.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0, 640, 8));
        assert_eq!(s.port_cycles, 8);
        assert_eq!(s.words_per_access(), 1.0);
    }

    #[test]
    fn vector_cache_partial_tail_run() {
        // 6 consecutive words -> 4 + 2.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0, 8, 6));
        assert_eq!(s.port_cycles, 2);
        assert_eq!(s.words, 6);
    }

    #[test]
    fn vector_cache_descending_not_combined() {
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &unit_blocks(0x1000, -8, 4));
        assert_eq!(s.port_cycles, 4);
    }

    #[test]
    fn vector_cache_wide_block_crosses_lines() {
        // A 128-byte block at unaligned base: 16 words consecutive ->
        // 4 accesses of 4 words regardless of alignment.
        let s = schedule_vector_cache(&VectorCacheConfig::default(), &[(0x1F4, 128)]);
        assert_eq!(s.port_cycles, 4);
        assert_eq!(s.words, 16);
    }

    #[test]
    fn schedule_3d_one_line_per_cycle() {
        // 16 blocks of 128 B: one per cycle, 16 words each.
        let blocks: Vec<(u64, u32)> = (0..16).map(|i| (0x1000 + i, 128)).collect();
        let s = schedule_3d(&blocks);
        assert_eq!(s.port_cycles, 16);
        assert_eq!(s.cache_accesses, 16);
        assert_eq!(s.words, 256);
        assert_eq!(s.words_per_access(), 16.0);
    }

    #[test]
    fn schedule_3d_narrow_blocks() {
        let blocks: Vec<(u64, u32)> = (0..4).map(|i| (i * 640, 64)).collect();
        let s = schedule_3d(&blocks);
        assert_eq!(s.port_cycles, 4);
        assert_eq!(s.words, 32);
    }

    #[test]
    fn distinct_lines_dedups_and_spans() {
        // Two overlapping 128-byte blocks 1 byte apart on 128B lines.
        let lines = distinct_lines(&[(0x100, 128), (0x101, 128)], 128);
        assert_eq!(lines, vec![0x100, 0x180]);
        // Strided 8-byte elements far apart: one line each.
        let blocks = unit_blocks(0, 640, 4);
        let lines = distinct_lines(&blocks, 128);
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn distinct_lines_straddle() {
        // 8-byte access straddling a line boundary touches two lines.
        let lines = distinct_lines(&[(0x7C, 8)], 128);
        assert_eq!(lines, vec![0x00, 0x80]);
    }

    #[test]
    fn merge_accumulates() {
        let mut total = PortSchedule::default();
        total.merge(&PortSchedule { port_cycles: 2, cache_accesses: 2, words: 8 });
        total.merge(&PortSchedule { port_cycles: 8, cache_accesses: 8, words: 8 });
        assert_eq!(total.port_cycles, 10);
        assert_eq!(total.words, 16);
        assert!((total.words_per_access() - 1.6).abs() < 1e-9);
    }

    #[test]
    fn bank_mapping() {
        let cfg = BankedConfig::default();
        assert_eq!(cfg.bank_of(0), 0);
        assert_eq!(cfg.bank_of(8), 1);
        assert_eq!(cfg.bank_of(56), 7);
        assert_eq!(cfg.bank_of(64), 0);
    }
}
