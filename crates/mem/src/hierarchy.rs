//! The two-level cache hierarchy with exclusive-bit scalar/vector
//! coherence (§5.3).
//!
//! Scalar accesses flow through the L1; MOM/3D vector accesses bypass the
//! L1 and reference the L2 directly. Because a line can be touched from
//! both sides, the paper adopts "a simple coherence protocol, based on an
//! exclusive-bit policy": we model it by invalidating the L1 copies of
//! any line a vector access touches (write-through L1 means the L2 is
//! always up to date, so invalidation never loses data).

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Latency and geometry configuration of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 geometry (scalar side).
    pub l1: CacheConfig,
    /// L2 geometry (shared).
    pub l2: CacheConfig,
    /// L1 hit latency in cycles (paper: 1).
    pub l1_latency: u32,
    /// L2 hit latency in cycles (paper: 20; swept 20/40/60 in Figure 10).
    pub l2_latency: u32,
    /// Main-memory access latency in cycles.
    pub mem_latency: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1_64kb(),
            l2: CacheConfig::l2_2mb(),
            l1_latency: 1,
            l2_latency: 20,
            mem_latency: 100,
        }
    }
}

impl HierarchyConfig {
    /// Returns the configuration with a different L2 latency (Figure 10's
    /// sweep knob).
    pub fn with_l2_latency(mut self, cycles: u32) -> Self {
        self.l2_latency = cycles;
        self
    }
}

/// Counters accumulated by the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Scalar-side L1 lookups.
    pub l1_accesses: u64,
    /// L2 lookups from the scalar side (L1 misses + write-throughs).
    pub l2_scalar_accesses: u64,
    /// L2 line lookups from the vector side.
    pub l2_vector_accesses: u64,
    /// L2 hits (both sides).
    pub l2_hits: u64,
    /// L2 misses (both sides).
    pub l2_misses: u64,
    /// Lines filled from main memory.
    pub mem_fills: u64,
    /// Dirty lines written back to main memory.
    pub mem_writebacks: u64,
    /// L1 lines invalidated by vector accesses (coherence actions).
    pub coherence_invalidations: u64,
}

impl HierarchyStats {
    /// Total L2 lookups.
    pub fn l2_accesses(&self) -> u64 {
        self.l2_scalar_accesses + self.l2_vector_accesses
    }
}

/// Outcome of a vector-side line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorAccessOutcome {
    /// True when the line was resident in L2.
    pub hit: bool,
    /// Cycles until the data is available (L2 latency, plus memory on a
    /// miss).
    pub latency: u32,
}

/// The L1 + L2 hierarchy.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    stats: HierarchyStats,
}

impl MemHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        MemHierarchy { config, l1: Cache::new(config.l1), l2: Cache::new(config.l2), stats: HierarchyStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Resets all counters (hierarchy and per-cache) without touching
    /// cache contents — used after warming the caches to steady state.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1.reset_stats();
        self.l2.reset_stats();
    }

    /// L1 tag-array statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 tag-array statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Performs a scalar access of `bytes` bytes at `addr` through the
    /// L1, returning the access latency in cycles.
    ///
    /// Write-through, no-write-allocate L1: stores update the L2
    /// unconditionally; loads fill the L1 on a miss. An access straddling
    /// an L1 line boundary touches both lines.
    pub fn scalar_access(&mut self, addr: u64, bytes: u8, is_write: bool) -> u32 {
        let mut latency = self.config.l1_latency;
        let first_line = self.config.l1.line_of(addr);
        let last_line = self.config.l1.line_of(addr + bytes.max(1) as u64 - 1);
        let mut line = first_line;
        loop {
            self.stats.l1_accesses += 1;
            let l1_hit = self.l1.access(line, is_write).hit;
            if is_write {
                // Write-through: the store is forwarded to the L2.
                latency = latency.max(self.l2_line_access(line, true));
            } else if !l1_hit {
                latency = latency.max(self.config.l1_latency + self.l2_line_access(line, false));
            }
            if line == last_line {
                break;
            }
            line += self.config.l1.line_bytes as u64;
        }
        latency
    }

    /// L2 lookup from the scalar side for one line; returns latency.
    fn l2_line_access(&mut self, addr: u64, is_write: bool) -> u32 {
        self.stats.l2_scalar_accesses += 1;
        let r = self.l2.access(addr, is_write);
        self.record_l2(r.hit, r.writeback.is_some());
        if r.hit {
            self.config.l2_latency
        } else {
            self.config.l2_latency + self.config.mem_latency
        }
    }

    /// Performs a vector-side access to the L2 line containing `addr`
    /// (MOM loads/stores and `3dvload` blocks), applying the
    /// exclusive-bit coherence rule: any L1 copies of the line are
    /// invalidated first.
    pub fn vector_line_access(&mut self, addr: u64, is_write: bool) -> VectorAccessOutcome {
        // Invalidate every L1 line overlapping this L2 line.
        let l2_line = self.config.l2.line_of(addr);
        let mut l1_line = l2_line;
        while l1_line < l2_line + self.config.l2.line_bytes as u64 {
            if self.l1.probe(l1_line) {
                // The L1 is write-through, so invalidation never loses
                // data; a dirty return here would indicate a model bug.
                let dirty = self.l1.invalidate(l1_line);
                debug_assert!(dirty.is_none(), "write-through L1 line cannot be dirty");
                self.stats.coherence_invalidations += 1;
            }
            l1_line += self.config.l1.line_bytes as u64;
        }

        self.stats.l2_vector_accesses += 1;
        let r = self.l2.access(l2_line, is_write);
        self.record_l2(r.hit, r.writeback.is_some());
        let latency = if r.hit {
            self.config.l2_latency
        } else {
            self.config.l2_latency + self.config.mem_latency
        };
        VectorAccessOutcome { hit: r.hit, latency }
    }

    fn record_l2(&mut self, hit: bool, writeback: bool) {
        if hit {
            self.stats.l2_hits += 1;
        } else {
            self.stats.l2_misses += 1;
            self.stats.mem_fills += 1;
        }
        if writeback {
            self.stats.mem_writebacks += 1;
        }
    }

    /// Overall L2 hit rate across both sides.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.stats.l2_hits + self.stats.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.stats.l2_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemHierarchy {
        MemHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn scalar_load_l1_hit_is_fast() {
        let mut h = hierarchy();
        let cold = h.scalar_access(0x1000, 8, false);
        assert_eq!(cold, 1 + 20 + 100); // L1 miss, L2 miss, memory
        let warm = h.scalar_access(0x1000, 8, false);
        assert_eq!(warm, 1);
        let l2_only = h.scalar_access(0x1000 + 32, 8, false); // same L2 line, next L1 line
        assert_eq!(l2_only, 1 + 20);
    }

    #[test]
    fn scalar_store_write_through() {
        let mut h = hierarchy();
        h.scalar_access(0x2000, 8, true);
        // Store reached L2 (write-back allocates there).
        assert_eq!(h.stats().l2_scalar_accesses, 1);
        // L1 did not allocate (no-write-allocate).
        let lat = h.scalar_access(0x2000, 8, false);
        assert_eq!(lat, 1 + 20, "read after WT store: L1 miss, L2 hit");
    }

    #[test]
    fn vector_access_bypasses_l1() {
        let mut h = hierarchy();
        let r = h.vector_line_access(0x8000, false);
        assert!(!r.hit);
        assert_eq!(r.latency, 20 + 100);
        let r = h.vector_line_access(0x8000, false);
        assert!(r.hit);
        assert_eq!(r.latency, 20);
        assert_eq!(h.stats().l1_accesses, 0);
    }

    #[test]
    fn exclusive_bit_invalidates_l1_copies() {
        let mut h = hierarchy();
        // Scalar warms four L1 lines inside one L2 line.
        for i in 0..4u64 {
            h.scalar_access(0x4000 + i * 32, 8, false);
        }
        assert_eq!(h.scalar_access(0x4000, 8, false), 1); // L1 hit
        // Vector touches the L2 line -> L1 copies invalidated.
        h.vector_line_access(0x4000, false);
        assert!(h.stats().coherence_invalidations >= 4);
        assert_eq!(h.scalar_access(0x4000, 8, false), 1 + 20); // back to L2
    }

    #[test]
    fn l2_latency_knob() {
        let mut h = MemHierarchy::new(HierarchyConfig::default().with_l2_latency(60));
        h.vector_line_access(0x0, false);
        let r = h.vector_line_access(0x0, false);
        assert_eq!(r.latency, 60);
    }

    #[test]
    fn straddling_scalar_access_touches_two_lines() {
        let mut h = hierarchy();
        h.scalar_access(0x101E, 8, false); // crosses the 32-byte boundary at 0x1020
        assert_eq!(h.stats().l1_accesses, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = hierarchy();
        h.vector_line_access(0x0, false);
        h.vector_line_access(0x80, false);
        h.vector_line_access(0x0, true);
        let s = h.stats();
        assert_eq!(s.l2_vector_accesses, 3);
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.l2_misses, 2);
        assert_eq!(s.l2_accesses(), 3);
        assert!((h.l2_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn vector_store_marks_dirty_and_writes_back() {
        let mut h = hierarchy();
        h.vector_line_access(0x0, true); // dirty line at set 0
        // Evict it by filling the set: lines mapping to set 0 are
        // 0, 4096*128, 2*4096*128, ... (4096 sets x 128B lines).
        let set_stride = 4096u64 * 128;
        for i in 1..=4u64 {
            h.vector_line_access(i * set_stride, false);
        }
        assert_eq!(h.stats().mem_writebacks, 1);
    }
}
