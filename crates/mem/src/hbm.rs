//! A die-stacked wide-interface ("HBM-class") memory backend.
//!
//! Die-stacked DRAM trades the single wide channel of a planar part for
//! *many narrow channels* crossing the stack on TSVs, each with its own
//! small banks (cf. "Design and analysis of die-stacked DRAM caches",
//! arXiv:1608.07485). The first-order consequences for a vector memory
//! port are the opposite of the [`crate::DramBurstBackend`] model:
//!
//! * bandwidth comes from *channel parallelism*, not bursts — every
//!   channel delivers one 64-bit word per cycle, and a vector
//!   instruction's occupancy is the busiest channel's cycle count;
//! * addresses interleave across channels at a fine granularity
//!   ([`HbmConfig::interleave_bytes`]), so dense streams spread evenly
//!   while large strides can camp on one channel;
//! * rows are *small* (the stacked mats are short), so streaming
//!   workloads activate rows far more often — the organization is
//!   activate-energy-heavy, which is exactly the axis the design-space
//!   scoring charges via [`VectorMemoryBackend::activate_row_bytes`].
//!
//! Per word reference: the channel is `(addr / interleave) % channels`;
//! within a channel, the channel-local address selects a bank and a row
//! the same way the planar model does. A reference to its bank's open
//! row occupies the channel for one cycle; any other row pays
//! [`HbmConfig::act_cycles`] extra. Open rows persist across
//! instructions (one instance lives for a whole simulation run).
//!
//! ```
//! use mom3d_mem::{HbmConfig, HbmWideBackend, VectorMemoryBackend};
//!
//! let mut hbm = HbmWideBackend::new(HbmConfig::default());
//! // 32 dense words spread over 8 channels: 4 words each, one cold
//! // activate per channel.
//! let s = hbm.schedule(&[(0, 256)], false);
//! assert_eq!(s.words, 32);
//! assert_eq!(s.port_cycles, 4 + HbmConfig::default().act_cycles);
//! // The rows stay open: the second pass streams at channel rate.
//! let s = hbm.schedule(&[(0, 256)], false);
//! assert_eq!(s.port_cycles, 4);
//! ```

use crate::backend::{BackendId, BackendStats, VectorMemoryBackend};
use crate::ports::PortSchedule;

/// Channel/bank geometry and timing of the [`HbmWideBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbmConfig {
    /// Independent narrow channels (one 64-bit word per cycle each).
    pub channels: usize,
    /// Banks per channel, each with one open-row buffer.
    pub banks: usize,
    /// Row-buffer size in bytes (stacked rows are small).
    pub row_bytes: u64,
    /// Channel interleaving granularity in bytes.
    pub interleave_bytes: u64,
    /// Extra channel cycles to activate a row after a row-buffer miss.
    pub act_cycles: u32,
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig { channels: 8, banks: 4, row_bytes: 256, interleave_bytes: 32, act_cycles: 8 }
    }
}

impl HbmConfig {
    /// Channel owning byte address `addr`.
    #[inline]
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.interleave_bytes) % self.channels as u64) as usize
    }

    /// The address as seen inside its channel (the interleaved slices
    /// of one channel concatenated back together).
    #[inline]
    fn local_of(&self, addr: u64) -> u64 {
        let stripe = self.interleave_bytes * self.channels as u64;
        (addr / stripe) * self.interleave_bytes + addr % self.interleave_bytes
    }

    /// Bank (within the channel) owning byte address `addr`.
    #[inline]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((self.local_of(addr) / self.row_bytes) % self.banks as u64) as usize
    }

    /// Row index of `addr` within its bank.
    #[inline]
    pub fn row_of(&self, addr: u64) -> u64 {
        self.local_of(addr) / (self.row_bytes * self.banks as u64)
    }
}

/// The stateful die-stacked wide-interface backend: per-(channel, bank)
/// open-row buffers, one word per channel-cycle, occupancy set by the
/// busiest channel (see the source-file header for the full model).
#[derive(Debug, Clone)]
pub struct HbmWideBackend {
    cfg: HbmConfig,
    /// Open row per (channel, bank), row-major by channel.
    open_rows: Vec<Option<u64>>,
    /// Busy-cycle accumulator per channel, reset per instruction.
    busy: Vec<u64>,
    stats: BackendStats,
}

impl HbmWideBackend {
    /// A backend with all rows closed. Degenerate geometry is clamped
    /// to the smallest sane value (1 channel, 1 bank, 8 B rows and
    /// interleave) rather than dividing by zero on the first access.
    pub fn new(cfg: HbmConfig) -> Self {
        let cfg = HbmConfig {
            channels: cfg.channels.max(1),
            banks: cfg.banks.max(1),
            row_bytes: cfg.row_bytes.max(8),
            interleave_bytes: cfg.interleave_bytes.max(8),
            act_cycles: cfg.act_cycles,
        };
        HbmWideBackend {
            cfg,
            open_rows: vec![None; cfg.channels * cfg.banks],
            busy: vec![0; cfg.channels],
            stats: BackendStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HbmConfig {
        &self.cfg
    }
}

impl VectorMemoryBackend for HbmWideBackend {
    fn id(&self) -> BackendId {
        BackendId::new("hbm-wide")
    }

    fn display_name(&self) -> &'static str {
        "die-stacked wide HBM"
    }

    fn describe(&self) -> String {
        format!(
            "{} x {}-bank narrow channels, {} B rows, {} B interleave, {}-cycle activate",
            self.cfg.channels,
            self.cfg.banks,
            self.cfg.row_bytes,
            self.cfg.interleave_bytes,
            self.cfg.act_cycles
        )
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        let mut schedule = PortSchedule::default();
        self.busy.fill(0);
        for &(addr, len) in blocks {
            for k in 0..(len as u64).div_ceil(8) {
                let word = addr + 8 * k;
                schedule.words += 1;
                schedule.cache_accesses += 1;
                let channel = self.cfg.channel_of(word);
                let bank = self.cfg.bank_of(word);
                let row = self.cfg.row_of(word);
                let open = &mut self.open_rows[channel * self.cfg.banks + bank];
                if *open == Some(row) {
                    self.stats.row_hits += 1;
                    self.busy[channel] += 1;
                } else {
                    self.stats.row_misses += 1;
                    self.busy[channel] += 1 + self.cfg.act_cycles as u64;
                    *open = Some(row);
                }
            }
        }
        // The channels run in parallel; the port is occupied for as
        // long as the busiest channel.
        schedule.port_cycles =
            self.busy.iter().copied().max().unwrap_or(0).min(u32::MAX as u64) as u32;
        schedule
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn activate_row_bytes(&self) -> u64 {
        self.cfg.row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hbm() -> HbmWideBackend {
        HbmWideBackend::new(HbmConfig::default())
    }

    fn unit_blocks(base: u64, stride: u64, n: usize) -> Vec<(u64, u32)> {
        (0..n as u64).map(|i| (base + stride * i, 8)).collect()
    }

    #[test]
    fn degenerate_geometry_is_clamped_not_divided_by_zero() {
        let mut h = HbmWideBackend::new(HbmConfig {
            channels: 0,
            banks: 0,
            row_bytes: 0,
            interleave_bytes: 0,
            act_cycles: 3,
        });
        assert_eq!(h.config().channels, 1);
        assert_eq!(h.config().banks, 1);
        assert_eq!(h.config().row_bytes, 8);
        assert_eq!(h.config().interleave_bytes, 8);
        // One channel, one-word rows: every word is a serial activate.
        let s = h.schedule(&unit_blocks(0, 8, 4), false);
        assert_eq!(s.port_cycles, 4 * (1 + 3));
    }

    #[test]
    fn channel_and_bank_mapping() {
        let cfg = HbmConfig::default();
        // 32 B interleave over 8 channels.
        assert_eq!(cfg.channel_of(0), 0);
        assert_eq!(cfg.channel_of(32), 1);
        assert_eq!(cfg.channel_of(32 * 8), 0);
        // Channel-local addresses advance one interleave slice per
        // stripe: 256 B rows fill after 8 stripes of 32 B.
        assert_eq!(cfg.bank_of(0), 0);
        assert_eq!(cfg.bank_of(32 * 8 * 8), 1);
        assert_eq!(cfg.row_of(0), 0);
        assert_eq!(cfg.row_of(32 * 8 * 8 * 4), 1);
    }

    #[test]
    fn dense_stream_spreads_over_channels() {
        let mut h = hbm();
        // 32 dense words = 256 B = exactly one 32 B slice per channel:
        // 4 words each, one cold activate each, all in parallel.
        let s = h.schedule(&[(0, 256)], false);
        assert_eq!(s.words, 32);
        assert_eq!(s.cache_accesses, 32);
        assert_eq!(s.port_cycles, 4 + 8);
        assert_eq!(h.stats().row_misses, 8);
        assert_eq!(h.stats().row_hits, 24);
    }

    #[test]
    fn open_rows_persist_across_instructions() {
        let mut h = hbm();
        h.schedule(&[(0, 256)], false);
        assert_eq!(h.stats().row_misses, 8);
        // Same slice again: pure hits, channel rate.
        let s = h.schedule(&[(0, 256)], false);
        assert_eq!(s.port_cycles, 4);
        assert_eq!(h.stats().row_misses, 8);
    }

    #[test]
    fn channel_camping_serializes() {
        let mut h = hbm();
        // A stride of one full interleave stripe (32 B x 8 channels)
        // keeps every reference on channel 0.
        let stripe = 32 * 8;
        let s = h.schedule(&unit_blocks(0, stripe, 8), false);
        assert!(s.port_cycles >= 8, "serialized on one channel");
        // The dense equivalent is at least 8x faster per word.
        let mut dense = hbm();
        let d = dense.schedule(&unit_blocks(0, 8, 8), false);
        assert!(d.port_cycles < s.port_cycles);
    }

    #[test]
    fn small_rows_thrash_sooner_than_dram_burst() {
        // The activate-heavy signature: striding by the 256 B row size
        // inside one channel opens a new row every reference.
        let mut h = hbm();
        let row_set = 32 * 8 * 8 * 4; // one full row set of channel 0
        h.schedule(&unit_blocks(0, row_set, 8), false);
        assert_eq!(h.stats().row_misses, 8);
        assert_eq!(h.stats().row_hits, 0);
    }

    proptest! {
        /// Counter consistency on arbitrary block lists: every word is
        /// one channel access and either a row hit or a miss; occupancy
        /// is bounded by the serial schedule below and perfect channel
        /// parallelism above; words are preserved.
        #[test]
        fn counters_are_consistent(
            blocks in proptest::collection::vec((0u64..0x10_0000, 1u32..300), 1..40),
        ) {
            let mut h = hbm();
            let s = h.schedule(&blocks, false);
            let stats = h.stats();
            prop_assert_eq!(stats.row_hits + stats.row_misses, s.cache_accesses);
            prop_assert_eq!(s.cache_accesses, s.words);
            let expected_words: u64 =
                blocks.iter().map(|&(_, len)| (len as u64).div_ceil(8)).sum();
            prop_assert_eq!(s.words, expected_words);
            let serial = s.words + stats.row_misses * HbmConfig::default().act_cycles as u64;
            prop_assert!(s.port_cycles as u64 <= serial);
            let channels = HbmConfig::default().channels as u64;
            prop_assert!(s.port_cycles as u64 >= s.words.div_ceil(channels));
        }
    }
}
