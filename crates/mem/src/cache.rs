//! Set-associative tag-array cache model.

use std::fmt;

/// Write-allocation policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-through, no write-allocate (the paper's L1).
    WriteThrough,
    /// Write-back, write-allocate (the paper's L2).
    WriteBack,
}

/// Geometry and policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// The paper's L1: 64 KB, 2-way, 32-byte lines, write-through (§5.3).
    pub fn l1_64kb() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            assoc: 2,
            line_bytes: 32,
            write_policy: WritePolicy::WriteThrough,
        }
    }

    /// The paper's L2: 2 MB, 4-way, 128-byte lines, write-back (§5.3).
    pub fn l2_2mb() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            assoc: 4,
            line_bytes: 128,
            write_policy: WritePolicy::WriteBack,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Line-aligned address of the line containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes.is_multiple_of(self.assoc * self.line_bytes),
            "size must be a multiple of assoc * line size"
        );
        assert!(self.sets().is_power_of_two(), "set count must be a power of two");
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// True when the line was resident.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted by this access.
    pub writeback: Option<u64>,
}

/// Hit/miss/traffic counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
    /// Lines filled from the next level.
    pub fills: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.1}% hit, {} writebacks",
            self.accesses,
            self.hit_rate() * 100.0,
            self.writebacks
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

const INVALID_WAY: Way = Way { tag: 0, valid: false, dirty: false, lru: 0 };

/// A set-associative, true-LRU tag array.
///
/// The cache tracks presence and dirtiness only; actual data always lives
/// in [`crate::MainMemory`], which keeps the timing model and the
/// functional emulator decoupled (a standard trace-driven-simulator
/// structure).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not self-consistent (non-power-of-2
    /// sets, zero associativity, ...).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Cache {
            config,
            ways: vec![INVALID_WAY; config.sets() * config.assoc],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.config.line_bytes as u64) % self.config.sets() as u64) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64 / self.config.sets() as u64
    }

    fn set_ways(&mut self, set: usize) -> &mut [Way] {
        let a = self.config.assoc;
        &mut self.ways[set * a..(set + 1) * a]
    }

    /// True when the line containing `addr` is resident (no side effects,
    /// no statistics).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let a = self.config.assoc;
        self.ways[set * a..(set + 1) * a]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Performs one access to the line containing `addr`.
    ///
    /// On a miss the line is filled (for writes under write-through, the
    /// line is *not* allocated, matching no-write-allocate). Returns the
    /// hit flag and any dirty line evicted to make room.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.stats.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let write_policy = self.config.write_policy;
        let line_bytes = self.config.line_bytes as u64;
        let sets = self.config.sets() as u64;
        {
            let ways = self.set_ways(set);
            if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
                w.lru = tick;
                if is_write && write_policy == WritePolicy::WriteBack {
                    w.dirty = true;
                }
                self.stats.hits += 1;
                return AccessResult { hit: true, writeback: None };
            }
        }

        self.stats.misses += 1;
        if is_write && write_policy == WritePolicy::WriteThrough {
            // No-write-allocate: the write goes straight through.
            return AccessResult { hit: false, writeback: None };
        }

        // Fill: choose an invalid way, else the LRU way.
        let writeback = {
            let ways = self.set_ways(set);
            let victim = ways
                .iter_mut()
                .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
                .expect("associativity >= 1");
            let writeback = (victim.valid && victim.dirty).then(|| {
                // Reconstruct the victim's line address from its tag.
                (victim.tag * sets + set as u64) * line_bytes
            });
            *victim = Way {
                tag,
                valid: true,
                dirty: is_write && write_policy == WritePolicy::WriteBack,
                lru: tick,
            };
            writeback
        };
        self.stats.fills += 1;
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        AccessResult { hit: false, writeback }
    }

    /// Invalidates the line containing `addr`, returning its address if
    /// it was resident and dirty (caller must write it back).
    pub fn invalidate(&mut self, addr: u64) -> Option<u64> {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let line = self.config.line_of(addr);
        let ways = self.set_ways(set);
        for w in ways {
            if w.valid && w.tag == tag {
                let was_dirty = w.dirty;
                *w = INVALID_WAY;
                return was_dirty.then_some(line);
            }
        }
        None
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
            line_bytes: 16,
            write_policy: WritePolicy::WriteBack,
        })
    }

    #[test]
    fn paper_geometries() {
        let l1 = CacheConfig::l1_64kb();
        assert_eq!(l1.sets(), 1024);
        let l2 = CacheConfig::l2_2mb();
        assert_eq!(l2.sets(), 4096);
        assert_eq!(l2.line_of(0x1234), 0x1200); // 128-byte aligned
        assert_eq!(l2.line_of(0x127F), 0x1200);
        assert_eq!(l2.line_of(0x1280), 0x1280);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10F, false).hit); // same line
        assert!(!c.access(0x110, false).hit); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines whose (addr/16) % 4 == 0: 0x000, 0x040, 0x080...
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x000, false); // refresh line 0
        c.access(0x080, false); // evicts 0x040 (LRU)
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert!(c.probe(0x080));
    }

    #[test]
    fn writeback_of_dirty_victim() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x040, false);
        let r = c.access(0x080, false); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_does_not_allocate() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
            line_bytes: 16,
            write_policy: WritePolicy::WriteThrough,
        });
        assert!(!c.access(0x0, true).hit);
        assert!(!c.probe(0x0)); // not allocated
        c.access(0x0, false); // read allocates
        assert!(c.probe(0x0));
        let r = c.access(0x0, true); // write hit, but never dirty
        assert!(r.hit);
        c.access(0x40, false);
        let r = c.access(0x80, false);
        assert_eq!(r.writeback, None); // WT lines are never dirty
    }

    #[test]
    fn invalidate_returns_dirty_line() {
        let mut c = tiny();
        c.access(0x000, true);
        assert_eq!(c.invalidate(0x008), Some(0x000)); // same line, dirty
        assert!(!c.probe(0x000));
        c.access(0x040, false);
        assert_eq!(c.invalidate(0x040), None); // clean
        assert_eq!(c.invalidate(0x040), None); // already gone
    }

    #[test]
    fn victim_line_address_reconstruction() {
        // Fill way beyond one set round to force eviction with high tags.
        let mut c = tiny();
        c.access(0x1000, true); // set (0x1000/16)%4 = 0, dirty
        c.access(0x2000, false); // same set 0
        let r = c.access(0x3000, false); // evicts 0x1000
        assert_eq!(r.writeback, Some(0x1000));
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-9);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig {
            size_bytes: 96,
            assoc: 2,
            line_bytes: 12,
            write_policy: WritePolicy::WriteBack,
        });
    }

    #[test]
    fn large_cache_holds_working_set() {
        let mut c = Cache::new(CacheConfig::l2_2mb());
        // A 1 MB working set fits in a 2 MB cache with 4-way assoc.
        for addr in (0..1024 * 1024u64).step_by(128) {
            c.access(addr, false);
        }
        for addr in (0..1024 * 1024u64).step_by(128) {
            assert!(c.probe(addr), "line {addr:#x} should be resident");
        }
    }
}
