//! A memory-side vector-execution ("PIM") backend.
//!
//! Processing-in-memory architectures like VIMA (cf. "A vector
//! instruction set architecture for near-data processing",
//! arXiv:2203.14882) execute vector operations *at the memory side*:
//! the core issues one command naming the operand region, functional
//! units next to the sense amplifiers consume whole rows in place, and
//! only the command/completion handshake crosses the port. For the
//! vector-memory contract of this simulator that means:
//!
//! * **near-zero port traffic** — [`PortSchedule::words`] is zero: no
//!   operand words are moved between the L2 port and a register file;
//! * **a distinct latency curve** — occupancy is a fixed per-command
//!   issue overhead ([`PimConfig::issue_cycles`]) plus one cycle per
//!   internal *row-op slice* of [`PimConfig::row_op_bytes`] bytes
//!   touched, plus an activate penalty whenever consecutive slices
//!   leave the open row: flat for short vectors, shallow-sloped for
//!   long dense ones, and insensitive to stride *within* a slice;
//! * **energy-relevant accesses** — each row-op slice counts as one
//!   [`PortSchedule::cache_accesses`], the in-memory activity the
//!   power model charges.
//!
//! The open-row register persists across instructions (one instance
//! lives for a whole simulation run), so streaming kernels activate
//! each row once while row-hopping ones pay [`PimConfig::act_cycles`]
//! per hop.
//!
//! ```
//! use mom3d_mem::{PimConfig, PimVectorBackend, VectorMemoryBackend};
//!
//! let mut pim = PimVectorBackend::new(PimConfig::default());
//! // One dense 512-byte operand = two 256 B row-op slices in one
//! // (cold) 1024 B row: issue + 2 slices + 1 activate.
//! let s = pim.schedule(&[(0, 512)], false);
//! assert_eq!(s.words, 0, "operands never cross the port");
//! assert_eq!(s.cache_accesses, 2);
//! let cfg = PimConfig::default();
//! assert_eq!(s.port_cycles, cfg.issue_cycles + 2 + cfg.act_cycles);
//! ```

use crate::backend::{BackendId, BackendStats, VectorMemoryBackend};
use crate::ports::PortSchedule;

/// Geometry and timing of the [`PimVectorBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimConfig {
    /// Port cycles to issue the command and collect the completion
    /// (the only cycles the port is busy beyond internal execution).
    pub issue_cycles: u32,
    /// Bytes one internal row operation covers per cycle.
    pub row_op_bytes: u64,
    /// DRAM row size in bytes (activate granularity).
    pub row_bytes: u64,
    /// Extra cycles to activate a row when a slice leaves the open row.
    pub act_cycles: u32,
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig { issue_cycles: 4, row_op_bytes: 256, row_bytes: 1024, act_cycles: 6 }
    }
}

/// The stateful memory-side vector backend: commands instead of word
/// transfers, whole row-op slices per internal cycle, one open-row
/// register (see the source-file header for the full model).
#[derive(Debug, Clone)]
pub struct PimVectorBackend {
    cfg: PimConfig,
    /// The row the sense amplifiers currently hold (`None` = cold).
    open_row: Option<u64>,
    /// The last row-op slice touched, for per-slice deduplication.
    last_slice: Option<u64>,
    stats: BackendStats,
}

impl PimVectorBackend {
    /// A backend with the row closed. Degenerate geometry is clamped to
    /// the smallest sane value (8 B slices and rows) rather than
    /// dividing by zero on the first access.
    pub fn new(cfg: PimConfig) -> Self {
        let cfg = PimConfig {
            issue_cycles: cfg.issue_cycles,
            row_op_bytes: cfg.row_op_bytes.max(8),
            row_bytes: cfg.row_bytes.max(8),
            act_cycles: cfg.act_cycles,
        };
        PimVectorBackend { cfg, open_row: None, last_slice: None, stats: BackendStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }
}

impl VectorMemoryBackend for PimVectorBackend {
    fn id(&self) -> BackendId {
        BackendId::new("pim-vector")
    }

    fn display_name(&self) -> &'static str {
        "memory-side vector (PIM)"
    }

    fn describe(&self) -> String {
        format!(
            "memory-side vector unit: {}-cycle issue, {} B row ops, {} B rows, {}-cycle \
             activate, ~0 port traffic",
            self.cfg.issue_cycles, self.cfg.row_op_bytes, self.cfg.row_bytes, self.cfg.act_cycles
        )
    }

    fn schedule(&mut self, blocks: &[(u64, u32)], _is_3d: bool) -> PortSchedule {
        if blocks.is_empty() {
            return PortSchedule::default();
        }
        let mut schedule =
            PortSchedule { port_cycles: self.cfg.issue_cycles, ..PortSchedule::default() };
        for &(addr, len) in blocks {
            for k in 0..(len as u64).div_ceil(8) {
                let word = addr + 8 * k;
                let slice = word / self.cfg.row_op_bytes;
                // Consecutive words of one slice are covered by the
                // same internal row operation.
                if self.last_slice == Some(slice) {
                    continue;
                }
                self.last_slice = Some(slice);
                schedule.cache_accesses += 1;
                schedule.port_cycles += 1;
                let row = word / self.cfg.row_bytes;
                if self.open_row == Some(row) {
                    self.stats.row_hits += 1;
                } else {
                    self.stats.row_misses += 1;
                    schedule.port_cycles += self.cfg.act_cycles;
                    self.open_row = Some(row);
                }
            }
        }
        schedule
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }

    fn activate_row_bytes(&self) -> u64 {
        self.cfg.row_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pim() -> PimVectorBackend {
        PimVectorBackend::new(PimConfig::default())
    }

    fn unit_blocks(base: u64, stride: u64, n: usize) -> Vec<(u64, u32)> {
        (0..n as u64).map(|i| (base + stride * i, 8)).collect()
    }

    #[test]
    fn degenerate_geometry_is_clamped_not_divided_by_zero() {
        let mut p = PimVectorBackend::new(PimConfig {
            issue_cycles: 1,
            row_op_bytes: 0,
            row_bytes: 0,
            act_cycles: 2,
        });
        assert_eq!(p.config().row_op_bytes, 8);
        assert_eq!(p.config().row_bytes, 8);
        // One-word slices and rows: every word is a slice and a new row.
        let s = p.schedule(&unit_blocks(0, 8, 4), false);
        assert_eq!(s.cache_accesses, 4);
        assert_eq!(s.port_cycles, 1 + 4 * (1 + 2));
    }

    #[test]
    fn empty_schedule_is_free() {
        let mut p = pim();
        assert_eq!(p.schedule(&[], false), PortSchedule::default());
    }

    #[test]
    fn no_words_cross_the_port() {
        let mut p = pim();
        let s = p.schedule(&unit_blocks(0, 8, 64), false);
        assert_eq!(s.words, 0);
        assert!(s.cache_accesses > 0);
    }

    #[test]
    fn short_vectors_pay_mostly_issue_overhead() {
        let mut p = pim();
        // 4 words in one slice, cold row: issue + 1 op + 1 activate.
        let s = p.schedule(&unit_blocks(0, 8, 4), false);
        assert_eq!(s.cache_accesses, 1);
        assert_eq!(s.port_cycles, 4 + 1 + 6);
    }

    #[test]
    fn long_dense_vectors_scale_by_row_ops_not_words() {
        let mut p = pim();
        // A 2048-byte operand: 8 row-op slices over 2 rows.
        let s = p.schedule(&[(0, 2048)], false);
        assert_eq!(s.cache_accesses, 8);
        assert_eq!(s.port_cycles, 4 + 8 + 2 * 6);
        assert_eq!(p.stats(), BackendStats { row_hits: 6, row_misses: 2 });
    }

    #[test]
    fn open_row_persists_across_instructions() {
        let mut p = pim();
        p.schedule(&[(0, 256)], false);
        assert_eq!(p.stats().row_misses, 1);
        // The next slice of the same row: no activate.
        let s = p.schedule(&[(256, 256)], false);
        assert_eq!(s.port_cycles, 4 + 1);
        assert_eq!(p.stats(), BackendStats { row_hits: 1, row_misses: 1 });
    }

    #[test]
    fn row_hopping_pays_activates() {
        let mut p = pim();
        // One word per 1024 B row: every reference activates.
        let s = p.schedule(&unit_blocks(0, 1024, 8), false);
        assert_eq!(s.cache_accesses, 8);
        assert_eq!(s.port_cycles, 4 + 8 * (1 + 6));
        assert_eq!(p.stats().row_misses, 8);
    }

    #[test]
    fn strides_within_a_slice_are_free() {
        let mut p = pim();
        // 4 words strided by 64 B inside one 256 B slice: one row op.
        let s = p.schedule(&unit_blocks(0, 64, 4), false);
        assert_eq!(s.cache_accesses, 1);
    }

    proptest! {
        /// Counter consistency on arbitrary block lists: no port
        /// traffic ever, every row op is a hit or a miss, occupancy is
        /// issue overhead plus ops plus activate stalls, and slices
        /// never exceed the touched words.
        #[test]
        fn counters_are_consistent(
            blocks in proptest::collection::vec((0u64..0x10_0000, 1u32..300), 1..40),
        ) {
            let mut p = pim();
            let s = p.schedule(&blocks, false);
            let stats = p.stats();
            prop_assert_eq!(s.words, 0);
            prop_assert_eq!(stats.row_hits + stats.row_misses, s.cache_accesses);
            let cfg = PimConfig::default();
            prop_assert_eq!(
                s.port_cycles as u64,
                cfg.issue_cycles as u64
                    + s.cache_accesses
                    + stats.row_misses * cfg.act_cycles as u64
            );
            let words: u64 = blocks.iter().map(|&(_, len)| (len as u64).div_ceil(8)).sum();
            prop_assert!(s.cache_accesses <= words);
        }
    }
}
