//! Process-level fault injection for the `mom3d-shard` coordinator and
//! its workers: SIGKILLed workers are respawned and cost no completed
//! cell; a SIGKILLed coordinator resumes from its manifest with
//! `--resume` and never re-simulates journaled work; a corrupted
//! manifest degrades to its valid prefix but never to a wrong cell; and
//! protocol abuse against the coordinator socket costs at most the
//! abuser's own connection. Every merged result is compared per cell
//! against the in-process serial sweep — bit-identity is the contract
//! under every failure mode.

use mom3d_bench::manifest::Manifest;
use mom3d_bench::protocol::{
    read_frame, write_frame, Client, Endpoint, Request, Response, ERR_MALFORMED,
    ERR_PROTOCOL, ERR_UNSUPPORTED, OP_CELL_DONE,
};
use mom3d_bench::{sweep, Runner, SimKey};
use mom3d_cpu::MemorySystemKind;
use mom3d_kernels::{IsaVariant, WorkloadKind};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SEED: u64 = 9;

fn tmp(name: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mom3d-shard-it-{}-{name}.{ext}", std::process::id()))
}

/// The serial ground truth: the full paper grid swept in-process, as a
/// list of per-cell signatures (identity + metrics, timing stripped).
fn serial_signatures() -> Vec<String> {
    let mut runner = Runner::small(SEED);
    let report = sweep::run(&mut runner, &sweep::full_grid(), 4);
    cell_signatures(&report.to_json())
}

/// One comparable string per cell: the identity prefix (workload, ISA,
/// memory, L2) plus the `"metrics"` object. Wall-clock and phase
/// timings legitimately differ between runs and are dropped.
fn cell_signatures(json: &str) -> Vec<String> {
    json.lines()
        .filter(|l| l.contains("\"workload\":"))
        .map(|l| {
            let identity = l.split("\"phases\"").next().expect("cell line has phases");
            let metrics = l.split("\"metrics\": ").nth(1).expect("cell line has metrics");
            format!("{identity}{}", metrics.trim_end_matches(','))
        })
        .collect()
}

/// Pulls `"key": <number>` out of a JSON document (first occurrence).
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = json.find(&needle).unwrap_or_else(|| panic!("{key} missing from JSON"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("number follows the key")
}

/// Sum of per-worker `"cells"` counts in the `"sharding"` block.
fn attributed_cells(json: &str) -> u64 {
    let line = json
        .lines()
        .find(|l| l.contains("\"sharding\": {"))
        .expect("sharded JSON has a sharding line");
    let mut sum = 0;
    let mut rest = line;
    while let Some(at) = rest.find("\"cells\": ") {
        rest = &rest[at + "\"cells\": ".len()..];
        sum += rest
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .expect("number follows cells");
    }
    sum
}

/// Collects a child stream's lines in the background so tests can poll
/// for readiness/pid lines while the process runs.
fn tail(r: impl Read + Send + 'static) -> Arc<Mutex<Vec<String>>> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    std::thread::spawn(move || {
        for line in BufReader::new(r).lines().map_while(Result::ok) {
            sink.lock().unwrap().push(line);
        }
    });
    lines
}

struct Coordinator {
    child: Child,
    stdout: Arc<Mutex<Vec<String>>>,
    stderr: Arc<Mutex<Vec<String>>>,
}

fn start_coordinator(args: &[&str]) -> Coordinator {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mom3d-shard"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("mom3d-shard spawns");
    let stdout = tail(child.stdout.take().expect("stdout piped"));
    let stderr = tail(child.stderr.take().expect("stderr piped"));
    Coordinator { child, stdout, stderr }
}

fn wait_for_line(
    lines: &Arc<Mutex<Vec<String>>>,
    pred: impl Fn(&str) -> bool,
    what: &str,
) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(line) = lines.lock().unwrap().iter().find(|l| pred(l)) {
            return line.clone();
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn wait_success(mut child: Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match child.try_wait().expect("child pollable") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    panic!("{what} did not finish in time");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn worker_pid(line: &str) -> String {
    line.split("(pid ")
        .nth(1)
        .and_then(|s| s.strip_suffix(')'))
        .unwrap_or_else(|| panic!("unparseable spawn line: {line}"))
        .to_string()
}

fn sigkill(pid: &str) {
    let status = Command::new("kill").args(["-9", pid]).status().expect("kill runs");
    assert!(status.success(), "kill -9 {pid} failed");
}

fn read_json(path: &PathBuf) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn a_sigkilled_worker_is_respawned_and_the_sweep_stays_exact() {
    let sock = tmp("kill-worker", "sock");
    let json_path = tmp("kill-worker", "json");
    let manifest = tmp("kill-worker", "mwm");
    let _ = std::fs::remove_file(&manifest);
    let seed = SEED.to_string();
    let coord = start_coordinator(&[
        &seed,
        "--small",
        "--workers",
        "2",
        "--batch",
        "4",
        "--manifest",
        manifest.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
        "--unix",
        sock.to_str().unwrap(),
    ]);

    // SIGKILL worker 0 the moment its pid is announced — before or
    // during its first batch. The supervision loop must respawn it.
    let line =
        wait_for_line(&coord.stdout, |l| l.starts_with("spawned worker 0"), "worker 0 pid");
    sigkill(&worker_pid(&line));
    wait_success(coord.child, "mom3d-shard");

    let spawns = coord
        .stdout
        .lock()
        .unwrap()
        .iter()
        .filter(|l| l.starts_with("spawned worker"))
        .count();
    assert!(spawns >= 3, "expected a respawn beyond the two initial workers: {spawns}");

    let json = read_json(&json_path);
    assert!(json.contains("\"schema\": \"mom3d/sweep/v5\""));
    assert_eq!(cell_signatures(&json), serial_signatures(), "kill changed results");
    // Attribution still partitions the grid: the kill completed no cell
    // twice and lost none.
    assert_eq!(attributed_cells(&json), sweep::full_grid().len() as u64);

    for p in [&sock, &json_path, &manifest] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn a_sigkilled_coordinator_resumes_from_its_manifest() {
    let sock = tmp("kill-coord", "sock");
    let json_path = tmp("kill-coord", "json");
    let manifest = tmp("kill-coord", "mwm");
    let _ = std::fs::remove_file(&manifest);
    let seed = SEED.to_string();
    let args = [
        seed.as_str(),
        "--small",
        "--workers",
        "2",
        "--batch",
        "2",
        "--manifest",
        manifest.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
        "--unix",
        sock.to_str().unwrap(),
    ];

    // First run: SIGKILL the coordinator as soon as the manifest holds
    // at least one journaled cell.
    let mut coord = start_coordinator(&args);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        // Header record is ~50 bytes; any cell record pushes past 200.
        if std::fs::metadata(&manifest).map(|m| m.len() > 200).unwrap_or(false) {
            break;
        }
        assert!(Instant::now() < deadline, "no cell was ever journaled");
        std::thread::sleep(Duration::from_millis(5));
    }
    coord.child.kill().expect("SIGKILL the coordinator");
    let _ = coord.child.wait();

    // Second run: --resume replays the journal and finishes the rest.
    let resume_args: Vec<&str> = args.iter().copied().chain(["--resume"]).collect();
    let coord = start_coordinator(&resume_args);
    wait_success(coord.child, "resumed mom3d-shard");

    let json = read_json(&json_path);
    assert_eq!(cell_signatures(&json), serial_signatures(), "resume changed results");
    let total = sweep::full_grid().len() as u64;
    let resumed = json_u64(&json, "resumed_cells");
    assert!(resumed >= 1, "the journaled cell must be replayed");
    // Zero re-simulation of completed cells: the workers were granted
    // exactly the complement of the journal.
    assert_eq!(attributed_cells(&json), total - resumed);

    for p in [&sock, &json_path, &manifest] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn a_corrupted_manifest_degrades_to_its_valid_prefix_never_to_wrong_cells() {
    let sock = tmp("corrupt", "sock");
    let json_path = tmp("corrupt", "json");
    let manifest = tmp("corrupt", "mwm");
    let _ = std::fs::remove_file(&manifest);

    // A fully complete journal, written the way the coordinator would.
    let grid = sweep::full_grid();
    let mut runner = Runner::small(SEED);
    {
        let mut m = Manifest::create(&manifest, SEED, true, &grid).unwrap();
        for key in &grid {
            let metrics = runner.metrics(key.kind, key.variant, key.memory, key.l2_latency);
            m.append(key, &metrics).unwrap();
        }
    }
    // Storage damage: flip one byte mid-file and tear the final record.
    let mut bytes = std::fs::read(&manifest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    bytes.truncate(bytes.len() - 10);
    std::fs::write(&manifest, &bytes).unwrap();

    let seed = SEED.to_string();
    let coord = start_coordinator(&[
        &seed,
        "--small",
        "--workers",
        "2",
        "--resume",
        "--manifest",
        manifest.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
        "--unix",
        sock.to_str().unwrap(),
    ]);
    wait_success(coord.child, "mom3d-shard over a corrupted manifest");

    let json = read_json(&json_path);
    // Damaged records re-simulate; surviving records replay; nothing is
    // ever wrong.
    assert_eq!(cell_signatures(&json), serial_signatures(), "corruption leaked through");
    let resumed = json_u64(&json, "resumed_cells");
    let total = grid.len() as u64;
    assert!(resumed < total, "the flipped and torn records must not be trusted");
    assert_eq!(attributed_cells(&json), total - resumed);

    for p in [&sock, &json_path, &manifest] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn protocol_abuse_costs_at_most_the_abusers_connection() {
    let sock = tmp("fuzz", "sock");
    let json_path = tmp("fuzz", "json");
    let seed = SEED.to_string();
    // --workers 0: the coordinator serves externally-launched workers,
    // so the abuse below happens while the sweep is genuinely live.
    let coord = start_coordinator(&[
        &seed,
        "--small",
        "--workers",
        "0",
        "--batch",
        "8",
        "--json",
        json_path.to_str().unwrap(),
        "--unix",
        sock.to_str().unwrap(),
    ]);
    wait_for_line(&coord.stdout, |l| l.contains("listening on"), "readiness line");
    let endpoint = Endpoint::Unix(sock.clone());

    // A never-assigned opcode: typed error, connection stays usable.
    let mut stream = Client::connect(&endpoint).unwrap().into_stream();
    write_frame(&mut stream, 0x7F, b"").unwrap();
    let frame = read_frame(&mut stream).expect("coordinator replies");
    let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an error reply");
    };
    assert_eq!(code, ERR_UNSUPPORTED);

    // A torn CELL_DONE payload on the same connection: typed error,
    // still usable.
    write_frame(&mut stream, OP_CELL_DONE, &[1, 2, 3]).unwrap();
    let frame = read_frame(&mut stream).expect("coordinator replies");
    let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an error reply");
    };
    assert_eq!(code, ERR_MALFORMED);

    // A well-formed CELL_DONE for a cell outside the grid: silently
    // dropped (fire-and-forget has no reply channel), never merged.
    let mut client = Client::from_stream(stream);
    let foreign = SimKey {
        kind: WorkloadKind::GsmEncode,
        variant: IsaVariant::Mom,
        memory: MemorySystemKind::VectorCache.into(),
        l2_latency: 9999,
    };
    client
        .send(&Request::CellDone { key: foreign, wall_ns: 1, metrics: Default::default() })
        .unwrap();
    // Simulation opcodes belong to mom3d-serve: typed redirect.
    let Response::Error { code, message } =
        client.round_trip(&Request::Sim(foreign)).unwrap()
    else {
        panic!("expected an error reply");
    };
    assert_eq!(code, ERR_UNSUPPORTED);
    assert!(message.contains("mom3d-serve"), "the error redirects the client: {message}");
    assert!(matches!(client.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));
    drop(client);

    // Frame-level damage: one ERR_PROTOCOL reply, then the coordinator
    // closes that connection (and only that connection).
    let mut stream = Client::connect(&endpoint).unwrap().into_stream();
    stream.write_all(b"NOPE\x01\x00\x00\x00\x00").unwrap();
    stream.flush().unwrap();
    let frame = read_frame(&mut stream).expect("one best-effort error frame");
    let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an error reply");
    };
    assert_eq!(code, ERR_PROTOCOL);
    assert!(read_frame(&mut stream).is_err(), "closed after frame damage");

    // A real worker joins after all that abuse and the sweep completes,
    // bit-identical, with the foreign cell dropped as a duplicate.
    let worker = Command::new(env!("CARGO_BIN_EXE_mom3d-shard-worker"))
        .args(["--unix", sock.to_str().unwrap(), "--id", "0"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("mom3d-shard-worker spawns");
    wait_success(coord.child, "mom3d-shard under protocol abuse");
    wait_success(worker, "mom3d-shard-worker");

    let json = read_json(&json_path);
    assert_eq!(cell_signatures(&json), serial_signatures(), "abuse changed results");
    let note = wait_for_line(
        &coord.stderr,
        |l| l.contains("duplicate result(s) dropped"),
        "the duplicate-drop note",
    );
    assert!(note.contains("1 duplicate"), "exactly the foreign cell: {note}");

    for p in [&sock, &json_path] {
        let _ = std::fs::remove_file(p);
    }
}
