//! The `mom3d-serve` failure surface: a misbehaving client may cost
//! itself its own connection, but never the server, never another
//! client's results, and never the integrity of the resident memo
//! table. Frame-level damage (truncation, absurd lengths, bad magic)
//! closes the one connection; payload-level damage (garbage opcodes,
//! unknown backends, oversized sweeps) costs one error reply and the
//! connection stays usable; a disconnect mid-stream leaves scheduled
//! simulations to complete and memoize for the next requester; and N
//! identical in-flight requests coalesce onto one simulation.

use mom3d_bench::protocol::{
    read_frame, write_frame, Client, Endpoint, Frame, Request, Response, ServeCounters,
    ERR_MALFORMED, ERR_PROTOCOL, ERR_TOO_MANY_CELLS, ERR_UNKNOWN_BACKEND, ERR_UNSUPPORTED,
    MAX_FRAME_PAYLOAD, MAX_SWEEP_CELLS, OP_PONG, OP_SIM, OP_SWEEP, PROTOCOL_MAGIC,
};
use mom3d_bench::serve::{serve, ServeConfig, ServerHandle};
use mom3d_bench::{Runner, SimKey};
use mom3d_cpu::MemorySystemKind;
use mom3d_kernels::{IsaVariant, WorkloadKind};
use std::io::Write;
use std::time::{Duration, Instant};

const SEED: u64 = 9;

fn start(name: &str) -> ServerHandle {
    let path = std::env::temp_dir()
        .join(format!("mom3d-serve-test-{}-{name}.sock", std::process::id()));
    let config = ServeConfig { seed: SEED, small: true, threads: 2, ..ServeConfig::default() };
    serve(Endpoint::Unix(path), config).expect("server binds")
}

fn key(l2_latency: u32) -> SimKey {
    SimKey {
        kind: WorkloadKind::GsmEncode,
        variant: IsaVariant::Mom,
        memory: MemorySystemKind::VectorCache.into(),
        l2_latency,
    }
}

/// Polls the server's counters until `pred` holds (the worker pool is
/// asynchronous, so some assertions need to wait for it to catch up).
fn wait_for_counters(handle: &ServerHandle, pred: impl Fn(&ServeCounters) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let counters = handle.counters();
        if pred(&counters) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting on counters: {counters:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn garbage_opcode_gets_an_error_and_the_connection_stays_usable() {
    let handle = start("garbage-opcode");
    let mut stream = handle.endpoint().connect().unwrap();
    // A perfectly framed request with an opcode the server does not
    // serve (a response opcode, and a never-assigned one).
    for opcode in [OP_PONG, 0x7F] {
        write_frame(&mut stream, opcode, b"").unwrap();
        let frame = read_frame(&mut stream).expect("server replies");
        let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
            panic!("expected an error reply");
        };
        assert_eq!(code, ERR_UNSUPPORTED, "opcode {opcode:#04x}");
    }
    // The connection survived both: a Ping still round-trips.
    let mut client = Client::from_stream(stream);
    assert!(matches!(client.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));
    handle.shutdown();
}

#[test]
fn shard_opcodes_are_unsupported_but_cost_nothing() {
    // The shard opcodes are valid protocol, but they belong to the
    // mom3d-shard coordinator. mom3d-serve must answer each with a
    // typed ERR_UNSUPPORTED naming the right binary — and keep the
    // connection usable (a misdirected worker should learn its
    // mistake, not hang).
    let handle = start("shard-opcodes");
    let mut client = Client::connect(handle.endpoint()).unwrap();
    let requests = [
        Request::ShardClaim { worker: 1 },
        Request::CellDone { key: key(20), wall_ns: 5, metrics: Default::default() },
        Request::ShardFin { completed: 1 },
    ];
    for req in requests {
        let Response::Error { code, message } = client.round_trip(&req).unwrap() else {
            panic!("expected an error reply to {req:?}");
        };
        assert_eq!(code, ERR_UNSUPPORTED, "{req:?}");
        assert!(message.contains("mom3d-shard"), "the error redirects the worker: {message}");
    }
    // Three rejected shard requests later the connection still serves,
    // and nothing was simulated or memoized.
    assert!(matches!(client.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));
    let counters = handle.counters();
    assert_eq!(counters.sims_executed, 0);
    assert_eq!(counters.memo_misses, 0);
    handle.shutdown();
}

#[test]
fn malformed_payloads_get_typed_errors_on_a_live_connection() {
    let handle = start("malformed");
    let mut stream = handle.endpoint().connect().unwrap();

    // SIM with an unknown workload-kind code.
    write_frame(&mut stream, OP_SIM, &[200]).unwrap();
    let frame = read_frame(&mut stream).unwrap();
    let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an error");
    };
    assert_eq!(code, ERR_MALFORMED);

    // SIM naming a backend that is not registered.
    let mut p = vec![0, 0];
    p.extend_from_slice(&20u32.to_le_bytes());
    p.extend_from_slice(&7u16.to_le_bytes());
    p.extend_from_slice(b"badback");
    write_frame(&mut stream, OP_SIM, &p).unwrap();
    let frame = read_frame(&mut stream).unwrap();
    let Response::Error { code, message } = Response::decode(&frame).unwrap() else {
        panic!("expected an error");
    };
    assert_eq!(code, ERR_UNKNOWN_BACKEND);
    assert!(message.contains("badback"), "the error names the backend: {message}");

    // SWEEP claiming more cells than the limit.
    let mut p = Vec::new();
    p.extend_from_slice(&(MAX_SWEEP_CELLS + 1).to_le_bytes());
    write_frame(&mut stream, OP_SWEEP, &p).unwrap();
    let frame = read_frame(&mut stream).unwrap();
    let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an error");
    };
    assert_eq!(code, ERR_TOO_MANY_CELLS);

    // After three rejected requests the connection still works, and no
    // simulation was ever scheduled.
    let mut client = Client::from_stream(stream);
    assert!(matches!(client.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));
    let counters = handle.counters();
    assert_eq!(counters.sims_executed, 0);
    assert_eq!(counters.memo_misses, 0);
    handle.shutdown();
}

#[test]
fn frame_level_damage_closes_only_the_damaged_connection() {
    let handle = start("frame-damage");

    // Absurd length prefix: one ERR_PROTOCOL reply, then close.
    let mut stream = handle.endpoint().connect().unwrap();
    let mut head = Vec::new();
    head.extend_from_slice(&PROTOCOL_MAGIC);
    head.push(OP_SIM);
    head.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    stream.write_all(&head).unwrap();
    stream.flush().unwrap();
    let frame = read_frame(&mut stream).expect("one best-effort error frame");
    let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an error");
    };
    assert_eq!(code, ERR_PROTOCOL);
    assert!(
        read_frame(&mut stream).is_err(),
        "the server must close after frame-level damage"
    );

    // Bad magic: same contract.
    let mut stream = handle.endpoint().connect().unwrap();
    stream.write_all(b"NOPE\x01\x00\x00\x00\x00").unwrap();
    stream.flush().unwrap();
    let frame = read_frame(&mut stream).expect("one best-effort error frame");
    let Response::Error { code, .. } = Response::decode(&frame).unwrap() else {
        panic!("expected an error");
    };
    assert_eq!(code, ERR_PROTOCOL);
    assert!(read_frame(&mut stream).is_err());

    // Truncated frame: the header promises payload that never comes.
    // Nothing to reply to — the server just drops the connection.
    let mut stream = handle.endpoint().connect().unwrap();
    let mut partial = Vec::new();
    partial.extend_from_slice(&PROTOCOL_MAGIC);
    partial.push(OP_SIM);
    partial.extend_from_slice(&100u32.to_le_bytes());
    partial.extend_from_slice(b"only a few bytes");
    stream.write_all(&partial).unwrap();
    stream.flush().unwrap();
    stream.shutdown_write();
    assert!(read_frame(&mut stream).is_err(), "no valid reply to a truncated frame");

    wait_for_counters(&handle, |c| c.protocol_errors >= 3);
    // The server itself is unharmed: a fresh client gets served.
    let mut client = Client::connect(handle.endpoint()).unwrap();
    assert!(matches!(client.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));
    handle.shutdown();
}

#[test]
fn disconnect_mid_stream_leaves_completed_work_memoized() {
    let handle = start("disconnect");
    let cells: Vec<SimKey> = (0..4).map(|i| key(18 + i)).collect();

    // Request a sweep and vanish without reading a single result.
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.send(&Request::Sweep(cells.clone())).unwrap();
    drop(client);

    // The scheduled simulations complete anyway and stay memoized.
    let unique = cells.len() as u64;
    wait_for_counters(&handle, |c| c.sims_executed >= unique);

    // A second client sweeping the same grid is served entirely from
    // the memo table — nothing re-simulates.
    let mut client = Client::connect(handle.endpoint()).unwrap();
    client.send(&Request::Sweep(cells.clone())).unwrap();
    let mut results = 0u32;
    loop {
        match client.recv().unwrap() {
            Response::Result(r) => {
                assert!(r.memo_hit, "{:?} must be served from the memo table", r.key);
                results += 1;
            }
            Response::Done { results: n } => {
                assert_eq!(n, results);
                break;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(results as usize, cells.len());
    assert_eq!(handle.counters().sims_executed, unique, "nothing re-simulated");
    handle.shutdown();
}

#[test]
fn identical_inflight_requests_coalesce_onto_one_simulation() {
    let handle = start("coalesce");
    let key = key(20);
    const CLIENTS: usize = 8;

    // N clients fire the same cold key as simultaneously as a barrier
    // can make them. Exactly one simulation may run; everyone gets the
    // same bits.
    let barrier = std::sync::Barrier::new(CLIENTS);
    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = &barrier;
                let endpoint = handle.endpoint();
                scope.spawn(move || {
                    let mut client = Client::connect(endpoint).unwrap();
                    barrier.wait();
                    let Response::Result(r) = client.round_trip(&Request::Sim(key)).unwrap()
                    else {
                        panic!("expected a result");
                    };
                    r
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(replies.len(), CLIENTS);
    let first = &replies[0];
    for r in &replies {
        assert_eq!(r.key, key);
        assert_eq!(r.metrics, first.metrics, "every coalesced reply is bit-identical");
    }
    // ... and bit-identical to direct in-process execution.
    let mut runner = Runner::small(SEED);
    let direct = runner.metrics(key.kind, key.variant, key.memory, key.l2_latency);
    assert_eq!(first.metrics, direct);

    let counters = handle.counters();
    assert_eq!(counters.sims_executed, 1, "N identical requests must run one simulation");
    assert_eq!(
        counters.memo_misses, 1,
        "exactly one request claims the cell; the rest coalesce or memo-hit"
    );
    assert_eq!(
        counters.memo_hits + counters.memo_coalesced + counters.memo_misses,
        CLIENTS as u64
    );
    assert_eq!(counters.results_streamed, CLIENTS as u64);
    handle.shutdown();
}

#[test]
fn raw_frame_damage_is_rejected_before_any_allocation() {
    // Pure codec-level checks over an in-memory buffer: the absurd
    // length prefix is rejected from the 9-byte header alone — no
    // payload read, no `Vec` sized by attacker-controlled bytes.
    let mut buf = Vec::new();
    buf.extend_from_slice(&PROTOCOL_MAGIC);
    buf.push(OP_SIM);
    buf.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(read_frame(&mut buf.as_slice()).is_err());

    // A maximal-length claim just over the limit is equally dead.
    let mut buf = Vec::new();
    buf.extend_from_slice(&PROTOCOL_MAGIC);
    buf.push(OP_SIM);
    buf.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    assert!(read_frame(&mut buf.as_slice()).is_err());

    // At the limit the length itself is fine; the frame then dies on
    // truncation (no payload follows), not on the bound.
    let mut buf = Vec::new();
    buf.extend_from_slice(&PROTOCOL_MAGIC);
    buf.push(OP_SIM);
    buf.extend_from_slice(&MAX_FRAME_PAYLOAD.to_le_bytes());
    assert!(read_frame(&mut buf.as_slice()).is_err());

    // And a well-formed frame still decodes, proving the checks above
    // rejected damage, not the codec.
    let mut buf = Vec::new();
    write_frame(&mut buf, OP_SIM, b"payload").unwrap();
    assert_eq!(
        read_frame(&mut buf.as_slice()).unwrap(),
        Frame { opcode: OP_SIM, payload: b"payload".to_vec() }
    );
}
