//! Criterion benchmark of the out-of-order timing simulator: simulated
//! instructions per host second, per memory system.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mom3d_cpu::{MemorySystemKind, Processor, ProcessorConfig};
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};

fn bench_timing(c: &mut Criterion) {
    let wl = Workload::build_small(WorkloadKind::Mpeg2Encode, IsaVariant::Mom, 1).unwrap();
    let wl3 = Workload::build_small(WorkloadKind::Mpeg2Encode, IsaVariant::Mom3d, 1).unwrap();

    let mut g = c.benchmark_group("timing_sim");
    g.throughput(Throughput::Elements(wl.trace().len() as u64));
    for mem in [
        MemorySystemKind::Ideal,
        MemorySystemKind::MultiBanked,
        MemorySystemKind::VectorCache,
    ] {
        g.bench_function(format!("mom_{mem:?}"), |b| {
            let p = Processor::new(
                ProcessorConfig::mom().with_memory(mem).with_warm_caches(true),
            );
            b.iter(|| p.run(wl.trace()).expect("runs").cycles)
        });
    }
    g.bench_function("mom3d_VectorCache3d", |b| {
        let p = Processor::new(
            ProcessorConfig::mom()
                .with_memory(MemorySystemKind::VectorCache3d)
                .with_warm_caches(true),
        );
        b.iter(|| p.run(wl3.trace()).expect("runs").cycles)
    });
    g.finish();
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
