//! Criterion micro-benchmarks of the packed-arithmetic kernels that
//! every simulated µSIMD/MOM instruction executes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mom3d_simd::{add_sat_u, madd_s16, pack_s16_to_u8_sat, sad_u8, Width};

fn bench_simd(c: &mut Criterion) {
    let a: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    let b: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)).collect();

    let mut g = c.benchmark_group("simd_ops");
    g.throughput(Throughput::Elements(a.len() as u64));

    g.bench_function("add_sat_u8", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in a.iter().zip(&b) {
                acc ^= add_sat_u(black_box(x), black_box(y), Width::B8);
            }
            acc
        })
    });
    g.bench_function("sad_u8", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in a.iter().zip(&b) {
                acc += sad_u8(black_box(x), black_box(y));
            }
            acc
        })
    });
    g.bench_function("madd_s16", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in a.iter().zip(&b) {
                acc ^= madd_s16(black_box(x), black_box(y));
            }
            acc
        })
    });
    g.bench_function("packuswb", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in a.iter().zip(&b) {
                acc ^= pack_s16_to_u8_sat(black_box(x), black_box(y));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simd);
criterion_main!(benches);
