//! Paired benchmark of the emulator's two execution strategies: the
//! trace-specializing executor (`Emulator::run_decoded`, the production
//! `run` path) against the per-instruction interpreter oracle
//! (`Emulator::run_interp`, compiled in through the `interp-oracle`
//! feature). Cases cover the three real kernel traces the old
//! emulation bench timed plus two synthetic extremes — a dense
//! straight-line ALU trace (maximum dispatch overhead per unit of
//! work, where run detection and scalar fusion pay) and a strided 2D
//! vector trace (where the page-batched memory accessors pay).
//!
//! Besides the human-readable report, every run writes
//! `BENCH_emu.json` (schema `mom3d-emu/v1`) next to the crate
//! manifest: per case, ns/instruction down both paths and the
//! interp/jit speedup ratio, in fixed declaration order so diffs
//! between runs never depend on wall-clock ordering. `cargo bench` in
//! a `MOM3D_BENCH_SMOKE=1` environment runs one iteration per case
//! and still emits the full JSON surface (CI greps it).

use mom3d_emu::{DecodedTrace, Emulator, Machine};
use mom3d_isa::{Gpr, IntOp, MomReg, Trace, TraceBuilder, UsimdOp, Width};
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Case {
    id: String,
    machine: Machine,
    trace: Trace,
}

fn kernel_case(kind: WorkloadKind, variant: IsaVariant) -> Case {
    let wl = Workload::build_small(kind, variant, 1).expect("workload builds");
    Case {
        id: format!("{kind}-{variant}").replace(' ', "_"),
        machine: wl.machine(),
        trace: wl.trace().clone(),
    }
}

/// A long straight-line integer trace: one run, no memory traffic, the
/// worst case for per-instruction dispatch overhead and the best case
/// for pre-decoded operands plus adjacent-pair fusion.
fn dense_alu_case() -> Case {
    let mut tb = TraceBuilder::new();
    for r in 0..8 {
        tb.li(Gpr::new(r), (r as i64).wrapping_mul(0x9e37_79b9) + 1);
    }
    let ops = [
        IntOp::Add,
        IntOp::Xor,
        IntOp::And,
        IntOp::Or,
        IntOp::Sub,
        IntOp::Mul,
        IntOp::SltU,
        IntOp::SltS,
    ];
    for i in 0..4096usize {
        let d = Gpr::new((i % 8) as u8);
        let a = Gpr::new(((i + 1) % 8) as u8);
        let b = Gpr::new(((i + 3) % 8) as u8);
        tb.alu(ops[i % ops.len()], d, a, b);
    }
    Case { id: "dense_alu".into(), machine: Machine::new(), trace: tb.finish() }
}

/// A strided 2D vector trace: VL=16 rows at a 256-byte stride per
/// access, load/load/compute/store over a small working set. Element
/// traffic dominates, so this measures the page-batched memory path
/// against the interpreter's per-byte accesses.
fn strided_vector_case() -> Case {
    const SRC: u64 = 0x1_0000;
    const DST: u64 = 0x2_0000;
    const STRIDE: i64 = 256;
    let mut machine = Machine::new();
    for row in 0..16u64 {
        for col in 0..8u64 {
            let addr = SRC + row * STRIDE as u64 + col * 8;
            machine.mem.write_u64(addr, addr.wrapping_mul(0x2545_f491_4f6c_dd1d));
        }
    }
    let mut tb = TraceBuilder::new();
    tb.set_vl(16);
    tb.set_vs(STRIDE);
    let base = tb.li(Gpr::new(1), 0);
    for i in 0..512u64 {
        let col = (i % 7) * 8;
        tb.vload(MomReg::new(0), base, SRC + col);
        tb.vload(MomReg::new(1), base, SRC + col + 8);
        tb.vop2(UsimdOp::AddWrap(Width::B8), MomReg::new(2), MomReg::new(0), MomReg::new(1));
        tb.vstore(MomReg::new(2), base, DST + col);
    }
    Case { id: "strided_vector".into(), machine, trace: tb.finish() }
}

fn smoke_mode() -> bool {
    std::env::var_os("MOM3D_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Times repeated calls of `one_run`, returning mean ns per call.
/// Calibrates a ~300 ms measurement window from a first timed call
/// (smoke mode stops after that first call).
fn time_path(mut one_run: impl FnMut(), smoke: bool) -> f64 {
    let t0 = Instant::now();
    one_run();
    let first = t0.elapsed();
    if smoke {
        return first.as_nanos() as f64;
    }
    let per = first.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(300).as_nanos() / per.as_nanos()).clamp(1, 1_000_000) as u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        one_run();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

struct Row {
    id: String,
    instructions: u64,
    interp_ns_per_instr: f64,
    jit_ns_per_instr: f64,
    speedup: f64,
}

fn bench_case(case: &Case, smoke: bool) -> Row {
    // Instruction count from one verifying run (both paths must agree).
    let mut emu = Emulator::with_machine(case.machine.clone());
    emu.run(&case.trace).expect("trace executes");
    let instructions = emu.executed();
    let mut oracle = Emulator::with_machine(case.machine.clone());
    oracle.run_interp(&case.trace).expect("trace executes");
    assert_eq!(oracle.executed(), instructions, "{}: paths disagree on executed count", case.id);
    assert_eq!(
        oracle.machine(),
        emu.machine(),
        "{}: paths disagree on architectural state",
        case.id
    );

    // Both paths re-execute on the evolved machine state (these traces
    // have no data-dependent control flow, so cost is state-independent
    // and neither path pays per-iteration machine clones). The JIT side
    // decodes once and reuses the `DecodedTrace` — the hot-trace shape
    // this executor exists for.
    let interp_ns = {
        let mut emu = Emulator::with_machine(case.machine.clone());
        time_path(|| emu.run_interp(&case.trace).expect("trace executes"), smoke)
    };
    let jit_ns = {
        let decoded = DecodedTrace::decode(&case.trace);
        let mut emu = Emulator::with_machine(case.machine.clone());
        time_path(|| emu.run_decoded(&decoded).expect("trace executes"), smoke)
    };

    let interp_ns_per_instr = interp_ns / instructions as f64;
    let jit_ns_per_instr = jit_ns / instructions as f64;
    Row {
        id: case.id.clone(),
        instructions,
        interp_ns_per_instr,
        jit_ns_per_instr,
        speedup: interp_ns_per_instr / jit_ns_per_instr,
    }
}

fn write_json(rows: &[Row], smoke: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"mom3d-emu/v1\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    s.push_str("  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"instructions\": {}, \
             \"interp_ns_per_instr\": {:.3}, \"jit_ns_per_instr\": {:.3}, \
             \"speedup\": {:.2}}}",
            r.id, r.instructions, r.interp_ns_per_instr, r.jit_ns_per_instr, r.speedup
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let smoke = smoke_mode();
    let cases = [
        kernel_case(WorkloadKind::GsmEncode, IsaVariant::Mom),
        kernel_case(WorkloadKind::GsmEncode, IsaVariant::Mom3d),
        kernel_case(WorkloadKind::Mpeg2Encode, IsaVariant::Mmx),
        dense_alu_case(),
        strided_vector_case(),
    ];

    println!("\ngroup: emulation (jit vs interpreter oracle)");
    let rows: Vec<Row> = cases
        .iter()
        .map(|case| {
            let row = bench_case(case, smoke);
            println!(
                "  {}: interp {:.1} ns/instr, jit {:.1} ns/instr ({:.2}x, {} instrs){}",
                row.id,
                row.interp_ns_per_instr,
                row.jit_ns_per_instr,
                row.speedup,
                row.instructions,
                if smoke { " [smoke]" } else { "" }
            );
            row
        })
        .collect();

    let json = write_json(&rows, smoke);
    let path = "BENCH_emu.json";
    std::fs::write(path, &json).expect("BENCH_emu.json writes");
    println!("  wrote {path}");
}
