//! Criterion benchmark of the functional emulator: dynamic instructions
//! per second over real kernel traces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mom3d_emu::Emulator;
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};

fn bench_emulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulation");
    for (kind, variant) in [
        (WorkloadKind::GsmEncode, IsaVariant::Mom),
        (WorkloadKind::GsmEncode, IsaVariant::Mom3d),
        (WorkloadKind::Mpeg2Encode, IsaVariant::Mmx),
    ] {
        let wl = Workload::build_small(kind, variant, 1).expect("builds");
        g.throughput(Throughput::Elements(wl.trace().len() as u64));
        g.bench_function(format!("{kind}-{variant}").replace(' ', "_"), |b| {
            b.iter(|| {
                let mut emu = Emulator::with_machine(wl.machine());
                emu.run(wl.trace()).expect("executes");
                emu.executed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_emulation);
criterion_main!(benches);
