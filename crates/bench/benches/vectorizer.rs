//! Criterion benchmark of the §5.1 memory-vectorizer pass itself
//! (compile-time cost of the analysis + rewrite).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mom3d_core::{vectorize, VectorizeConfig};
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};

fn bench_vectorizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("vectorizer");
    for kind in [WorkloadKind::Mpeg2Encode, WorkloadKind::GsmEncode, WorkloadKind::JpegDecode] {
        let wl = Workload::build_small(kind, IsaVariant::Mom, 1).expect("builds");
        g.throughput(Throughput::Elements(wl.trace().len() as u64));
        g.bench_function(kind.to_string().replace(' ', "_"), |b| {
            b.iter(|| vectorize(wl.trace(), &VectorizeConfig::default()).1)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_vectorizer);
criterion_main!(benches);
