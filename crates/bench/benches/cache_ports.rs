//! Criterion micro-benchmarks of the three vector-port schedulers on the
//! paper's characteristic access patterns.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mom3d_mem::{
    schedule_3d, schedule_multibanked, schedule_vector_cache, BankedConfig, VectorCacheConfig,
};

fn strided(base: u64, stride: i64, vl: usize) -> Vec<(u64, u32)> {
    (0..vl).map(|i| ((base as i64 + stride * i as i64) as u64, 8)).collect()
}

fn bench_ports(c: &mut Criterion) {
    let banked = BankedConfig::default();
    let vc = VectorCacheConfig::default();
    let strided_me = strided(0x1_0000, 352, 8); // motion-estimation rows
    let dense = strided(0x1_0000, 8, 16); // jpeg-decode rows
    let blocks_3d: Vec<(u64, u32)> = (0..8u64).map(|e| (0x1_0000 + 352 * e, 128)).collect();

    let mut g = c.benchmark_group("cache_ports");
    g.bench_function("multibanked_strided", |b| {
        b.iter(|| schedule_multibanked(black_box(&banked), black_box(&strided_me)))
    });
    g.bench_function("multibanked_dense", |b| {
        b.iter(|| schedule_multibanked(black_box(&banked), black_box(&dense)))
    });
    g.bench_function("vector_cache_strided", |b| {
        b.iter(|| schedule_vector_cache(black_box(&vc), black_box(&strided_me)))
    });
    g.bench_function("vector_cache_dense", |b| {
        b.iter(|| schedule_vector_cache(black_box(&vc), black_box(&dense)))
    });
    g.bench_function("wide_3d", |b| b.iter(|| schedule_3d(black_box(&blocks_3d))));
    g.finish();
}

criterion_group!(benches, bench_ports);
criterion_main!(benches);
