//! Experiment implementations and their textual reports.

use crate::runner::Runner;
use mom3d_cpu::{BackendRegistry, MemorySystemKind, ProcessorConfig};
use mom3d_kernels::{IsaVariant, WorkloadKind};
use mom3d_power::{average_power_watts, ConfigArea, L2Params, ProcessParams, RegFileSpec};
use std::fmt;

const WORKLOADS: [WorkloadKind; 5] = WorkloadKind::ALL;

/// A named series of per-workload slowdown values (Figures 3 and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownReport {
    /// Figure title.
    pub title: &'static str,
    /// Configuration labels.
    pub configs: Vec<&'static str>,
    /// `rows[w][c]` = slowdown of configuration `c` on workload `w`.
    pub rows: Vec<(WorkloadKind, Vec<f64>)>,
}

impl SlowdownReport {
    /// Arithmetic mean slowdown of configuration `c` across workloads.
    pub fn average(&self, c: usize) -> f64 {
        self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / self.rows.len() as f64
    }

    /// Slowdown of `config` on `workload`.
    pub fn value(&self, workload: WorkloadKind, config: &str) -> f64 {
        let c = self.configs.iter().position(|&n| n == config).expect("known config");
        self.rows.iter().find(|(k, _)| *k == workload).expect("known workload").1[c]
    }
}

impl fmt::Display for SlowdownReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        write!(f, "{:<14}", "workload")?;
        for c in &self.configs {
            write!(f, " {c:>24}")?;
        }
        writeln!(f)?;
        for (w, vals) in &self.rows {
            write!(f, "{:<14}", w.to_string())?;
            for v in vals {
                write!(f, " {v:>23.3}x")?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<14}", "average")?;
        for c in 0..self.configs.len() {
            write!(f, " {:>23.3}x", self.average(c))?;
        }
        writeln!(f)
    }
}

/// Figure 3: performance slowdown of realistic MOM memory systems
/// relative to MOM with idealistic memory.
pub fn fig3(r: &mut Runner) -> SlowdownReport {
    let mut rows = Vec::new();
    for kind in WORKLOADS {
        let base = r.mom_ideal_cycles(kind);
        let mb = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::MultiBanked, 20);
        let vc = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20);
        rows.push((kind, vec![mb.slowdown_vs(base), vc.slowdown_vs(base)]));
    }
    SlowdownReport {
        title: "Figure 3: performance slowdown for realistic memory systems (vs MOM ideal)",
        configs: vec!["MOM multi-banked", "MOM vector cache"],
        rows,
    }
}

/// Figure 9: slowdown across ISA styles and memory systems.
pub fn fig9(r: &mut Runner) -> SlowdownReport {
    let mut rows = Vec::new();
    for kind in WORKLOADS {
        let base = r.mom_ideal_cycles(kind);
        let mmx_mb = r.metrics(kind, IsaVariant::Mmx, MemorySystemKind::MultiBanked, 20);
        let mmx_ideal = r.metrics(kind, IsaVariant::Mmx, MemorySystemKind::Ideal, 20);
        let mom_mb = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::MultiBanked, 20);
        let mom_vc = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20);
        let m3d = r.metrics(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20);
        rows.push((
            kind,
            vec![
                mmx_mb.slowdown_vs(base),
                mmx_ideal.slowdown_vs(base),
                mom_mb.slowdown_vs(base),
                mom_vc.slowdown_vs(base),
                m3d.slowdown_vs(base),
            ],
        ));
    }
    SlowdownReport {
        title: "Figure 9: performance slowdown across ISA and memory systems (vs MOM ideal)",
        configs: vec![
            "MMX multi-banked",
            "MMX ideal",
            "MOM multi-banked",
            "MOM vector cache",
            "MOM+3D vector cache",
        ],
        rows,
    }
}

/// Figure 6 data: effective bandwidth in 64-bit words per cache access.
pub fn fig6(r: &mut Runner) -> SlowdownReport {
    let mut rows = Vec::new();
    for kind in WORKLOADS {
        let mb = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::MultiBanked, 20);
        let vc = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20);
        let m3d = r.metrics(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20);
        rows.push((
            kind,
            vec![mb.effective_bandwidth(), vc.effective_bandwidth(), m3d.effective_bandwidth()],
        ));
    }
    SlowdownReport {
        title: "Figure 6: effective memory bandwidth (64-bit words per access)",
        configs: vec!["MOM multi-banked", "MOM vector cache", "MOM+3D vector cache"],
        rows,
    }
}

/// Figure 7 data: traffic reduction (%) per workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReport {
    /// `(workload, 2D words, 3D words, reduction %)`.
    pub rows: Vec<(WorkloadKind, u64, u64, f64)>,
}

impl TrafficReport {
    /// Reduction percentage for one workload.
    pub fn reduction(&self, kind: WorkloadKind) -> f64 {
        self.rows.iter().find(|(k, ..)| *k == kind).expect("known workload").3
    }
}

impl fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: vector cache traffic reduction with 3D vectorization")?;
        writeln!(
            f,
            "{:<14} {:>14} {:>14} {:>12}",
            "workload", "MOM words", "MOM+3D words", "reduction"
        )?;
        for (w, w2d, w3d, pct) in &self.rows {
            writeln!(f, "{:<14} {w2d:>14} {w3d:>14} {pct:>11.1}%", w.to_string())?;
        }
        Ok(())
    }
}

/// Figure 7: 64-bit words moved between the vector cache and the
/// register files, MOM vs MOM+3D (both on the vector cache).
pub fn fig7(r: &mut Runner) -> TrafficReport {
    let rows = WORKLOADS
        .iter()
        .map(|&kind| {
            let w2d = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20).vec_words;
            let w3d = r
                .metrics(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20)
                .vec_words;
            let pct = if w2d == 0 { 0.0 } else { 100.0 * (1.0 - w3d as f64 / w2d as f64) };
            (kind, w2d, w3d, pct)
        })
        .collect();
    TrafficReport { rows }
}

/// Figure 10 data: normalized execution time vs L2 latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// Latencies swept (cycles).
    pub latencies: Vec<u32>,
    /// `(workload, MOM times, MOM+3D times)`, each normalized to MOM at
    /// the first latency.
    pub rows: Vec<(WorkloadKind, Vec<f64>, Vec<f64>)>,
}

impl Fig10 {
    /// Relative speedup of MOM+3D over MOM at the given latency.
    pub fn speedup_at(&self, kind: WorkloadKind, latency: u32) -> f64 {
        let li = self.latencies.iter().position(|&l| l == latency).expect("swept latency");
        let (_, mom, m3d) = self.rows.iter().find(|(k, ..)| *k == kind).expect("workload");
        mom[li] / m3d[li]
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10: normalized execution time vs L2 latency")?;
        write!(f, "{:<14} {:<8}", "workload", "config")?;
        for l in &self.latencies {
            write!(f, " {l:>8}cy")?;
        }
        writeln!(f)?;
        for (w, mom, m3d) in &self.rows {
            write!(f, "{:<14} {:<8}", w.to_string(), "MOM")?;
            for v in mom {
                write!(f, " {v:>10.3}")?;
            }
            writeln!(f)?;
            write!(f, "{:<14} {:<8}", "", "MOM+3D")?;
            for v in m3d {
                write!(f, " {v:>10.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Figure 10: the four workloads the paper sweeps, at 20/40/60 cycles.
pub fn fig10(r: &mut Runner) -> Fig10 {
    let latencies = vec![20, 40, 60];
    let kinds = [
        WorkloadKind::Mpeg2Decode,
        WorkloadKind::Mpeg2Encode,
        WorkloadKind::GsmEncode,
        WorkloadKind::JpegEncode,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let base = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20).cycles;
        let mom: Vec<f64> = latencies
            .iter()
            .map(|&l| {
                r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, l).cycles as f64
                    / base as f64
            })
            .collect();
        let m3d: Vec<f64> = latencies
            .iter()
            .map(|&l| {
                r.metrics(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, l).cycles
                    as f64
                    / base as f64
            })
            .collect();
        rows.push((kind, mom, m3d));
    }
    Fig10 { latencies, rows }
}

/// Figure 11 data: average power of the L2 (+ 3D register file).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// `(workload, multi-banked L2 W, vector-cache L2 W, 3D config L2 W,
    /// 3D register file W)`.
    pub rows: Vec<(WorkloadKind, f64, f64, f64, f64)>,
}

impl Fig11 {
    /// L2 power saving of the 3D configuration vs the plain vector cache.
    pub fn l2_saving(&self, kind: WorkloadKind) -> f64 {
        let row = self.rows.iter().find(|(k, ..)| *k == kind).expect("workload");
        1.0 - row.3 / row.2
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 11: memory sub-system average power (watts)")?;
        writeln!(
            f,
            "{:<14} {:>14} {:>14} {:>14} {:>10}",
            "workload", "multi-banked", "vector cache", "vc+3D (L2)", "3D RF"
        )?;
        for (w, mb, vc, v3, rf) in &self.rows {
            writeln!(
                f,
                "{:<14} {mb:>13.3}W {vc:>13.3}W {v3:>13.3}W {rf:>9.3}W",
                w.to_string()
            )?;
        }
        Ok(())
    }
}

/// Figure 11: power from the Rixner-style energy models at 0.18 µm,
/// 1 GHz, 32 L2 sub-arrays.
pub fn fig11(r: &mut Runner) -> Fig11 {
    let process = ProcessParams::default();
    let e_l2 = L2Params::default().access_energy(&process);
    let e_rf = process.regfile_access_energy(&RegFileSpec::dreg_3d());
    let rows = WORKLOADS
        .iter()
        .map(|&kind| {
            let mb = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::MultiBanked, 20);
            let vc = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20);
            let v3 = r.metrics(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20);
            let p = |m: mom3d_cpu::Metrics| {
                average_power_watts(m.total_l2_activity(), e_l2, m.cycles, process.freq_hz)
            };
            // 3D RF: one lane write per fetched element + one lane read
            // per moved word.
            let rf_accesses = v3.d3_writes + v3.mov3d_words;
            let rf = average_power_watts(rf_accesses, e_rf, v3.cycles, process.freq_hz);
            (kind, p(mb), p(vc), p(v3), rf)
        })
        .collect();
    Fig11 { rows }
}

/// Per-dimension vector lengths of a MOM variant: `(d1, d2)`.
pub type MomDims = (f64, f64);
/// Per-dimension vector lengths of a MOM+3D variant:
/// `(d1, d2, d3 avg, d3 max)`.
pub type Mom3dDims = (f64, f64, Option<f64>, u64);

/// Table 1 data: memory-instruction vector length per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// `(workload, MOM dims, MOM+3D dims)`.
    pub rows: Vec<(WorkloadKind, MomDims, Mom3dDims)>,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: memory instruction vector length per dimension")?;
        writeln!(
            f,
            "{:<14} | {:>6} {:>6} | {:>6} {:>6} {:>12}",
            "workload", "1st", "2nd", "1st", "2nd", "3rd (max)"
        )?;
        writeln!(f, "{:<14} | {:^13} | {:^26}", "", "MOM", "MOM + 3D")?;
        for (w, (d1, d2), (e1, e2, d3, mx)) in &self.rows {
            let third = match d3 {
                Some(v) => format!("{v:.1} ({mx})"),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "{:<14} | {d1:>6.1} {d2:>6.1} | {e1:>6.1} {e2:>6.1} {third:>12}",
                w.to_string()
            )?;
        }
        Ok(())
    }
}

/// Table 1: computed from the trace statistics of the MOM and MOM+3D
/// workload variants.
pub fn table1(r: &mut Runner) -> Table1 {
    let rows = WORKLOADS
        .iter()
        .map(|&kind| {
            let s2 = r.workload(kind, IsaVariant::Mom).trace().stats();
            let s3 = r.workload(kind, IsaVariant::Mom3d).trace().stats();
            (
                kind,
                (s2.avg_dim1(), s2.avg_dim2()),
                (s3.avg_dim1(), s3.avg_dim2(), s3.avg_dim3(), s3.dim3_vl_max),
            )
        })
        .collect();
    Table1 { rows }
}

/// Registry-driven backend comparison: the slowdown of *every*
/// registered non-ideal backend versus the MOM-ideal baseline, each
/// under its native ISA variant (MOM+3D when the backend has a 3D
/// register file, plain MOM otherwise).
///
/// Columns come from [`BackendRegistry::entries`], so a backend
/// registered at startup — the built-in `dram-burst` model, or anything
/// added by [`BackendRegistry::register`] — appears without this crate
/// naming it anywhere.
pub fn backend_matrix(r: &mut Runner) -> SlowdownReport {
    let entries: Vec<_> =
        BackendRegistry::entries().into_iter().filter(|e| !e.is_ideal).collect();
    let mut rows = Vec::new();
    for kind in WORKLOADS {
        let base = r.mom_ideal_cycles(kind);
        let vals = entries
            .iter()
            .map(|e| {
                let variant = if e.has_3d { IsaVariant::Mom3d } else { IsaVariant::Mom };
                r.metrics(kind, variant, e.backend_id(), 20).slowdown_vs(base)
            })
            .collect();
        rows.push((kind, vals));
    }
    SlowdownReport {
        title: "Backend matrix: slowdown of every registered memory backend (vs MOM ideal)",
        configs: entries.iter().map(|e| e.display_name).collect(),
        rows,
    }
}

/// Table 2: the two processor configurations, as a formatted report.
pub fn table2() -> String {
    let mmx = ProcessorConfig::mmx();
    let mom = ProcessorConfig::mom();
    let mut s = String::from("Table 2: processor configurations\n");
    let mut row = |name: &str, a: String, b: String| {
        s.push_str(&format!("{name:<24} {a:>8} {b:>8}\n"));
    };
    row("", "MMX".into(), "MOM".into());
    row("fetch rate", mmx.fetch_rate.to_string(), mom.fetch_rate.to_string());
    row("graduation window", mmx.window.to_string(), mom.window.to_string());
    row("load/store queue", mmx.lsq.to_string(), mom.lsq.to_string());
    row("INTEGER issue", mmx.int_issue.to_string(), mom.int_issue.to_string());
    row("INTEGER FUs", mmx.int_units.to_string(), mom.int_units.to_string());
    row("SIMD issue", mmx.simd_issue.to_string(), mom.simd_issue.to_string());
    row(
        "SIMD FUs",
        format!("{}", mmx.simd_units),
        format!("{}x{}", mom.simd_units, mom.simd_lanes),
    );
    row("memory issue", mmx.mem_issue.to_string(), mom.mem_issue.to_string());
    row("L1 memory ports", mmx.l1_ports.to_string(), mom.l1_ports.to_string());
    row(
        "L2 vector memory ports",
        "n/a".into(),
        format!("1x{}", mom.vector_cache.width_words),
    );
    // The organizations themselves come from the backend registry, so
    // this section grows with it; descriptions use the MOM column's
    // actual port parameters, matching the geometry printed above.
    s.push_str("\nvector memory organizations (registered backends):\n");
    let params = mom.backend_params();
    for entry in BackendRegistry::entries() {
        let backend = (entry.build)(&params);
        s.push_str(&format!("  {:<18} {}\n", entry.id, backend.describe()));
    }
    s
}

/// Table 3: register-file areas — reproduced exactly from the wire-track
/// model.
pub fn table3() -> String {
    let mut s = String::from("Table 3: multimedia register file configurations (areas)\n");
    for spec in [
        RegFileSpec::mmx(),
        RegFileSpec::mom(),
        RegFileSpec::accumulator(),
        RegFileSpec::dreg_3d(),
        RegFileSpec::pointer_3d(),
    ] {
        s.push_str(&format!(
            "{:<28} {:>4} regs x {:>5} bits, {:>2}R/{:>2}W: {:>10} wt^2\n",
            spec.name,
            spec.registers,
            spec.bits_per_register,
            spec.read_ports,
            spec.write_ports,
            spec.area_wire_tracks()
        ));
    }
    for cfg in [ConfigArea::mmx(), ConfigArea::mom(), ConfigArea::mom_3d()] {
        s.push_str(&format!(
            "{:<28} total {:>10} wt^2  (normalized {:.2})\n",
            cfg.name,
            cfg.total_wire_tracks(),
            cfg.normalized_to_mmx()
        ));
    }
    s
}

/// Table 4 data: L2 cache activity in accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// `(workload, multi-banked, vector cache, vector cache + 3D)`.
    pub rows: Vec<(WorkloadKind, u64, u64, u64)>,
}

impl Table4 {
    /// Average activity reduction of the vector cache vs multi-banked.
    pub fn vc_reduction(&self) -> f64 {
        avg_reduction(self.rows.iter().map(|(_, mb, vc, _)| (*mb, *vc)))
    }

    /// Average additional reduction of 3D vs the plain vector cache.
    pub fn d3_reduction(&self) -> f64 {
        avg_reduction(self.rows.iter().map(|(_, _, vc, d3)| (*vc, *d3)))
    }
}

fn avg_reduction(pairs: impl Iterator<Item = (u64, u64)>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (base, new) in pairs {
        if base > 0 {
            total += 1.0 - new as f64 / base as f64;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4: L2 cache activity (accesses)")?;
        writeln!(
            f,
            "{:<14} {:>14} {:>14} {:>18}",
            "workload", "multi-banked", "vector cache", "vc + 3D reg file"
        )?;
        for (w, mb, vc, d3) in &self.rows {
            writeln!(f, "{:<14} {mb:>14} {vc:>14} {d3:>18}", w.to_string())?;
        }
        writeln!(
            f,
            "average reduction: vector cache vs multi-banked {:.0}%, +3D vs vector cache {:.0}%",
            self.vc_reduction() * 100.0,
            self.d3_reduction() * 100.0
        )
    }
}

/// Table 4: L2 activity per memory system.
pub fn table4(r: &mut Runner) -> Table4 {
    let rows = WORKLOADS
        .iter()
        .map(|&kind| {
            let mb = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::MultiBanked, 20);
            let vc = r.metrics(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20);
            let d3 = r.metrics(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20);
            (kind, mb.total_l2_activity(), vc.total_l2_activity(), d3.total_l2_activity())
        })
        .collect();
    Table4 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2's organizations section is registry-driven: every
    /// registered backend — including the ones no binary names — shows
    /// up with its id and self-description.
    #[test]
    fn table2_enrolls_every_registered_backend() {
        let t = table2();
        for entry in BackendRegistry::entries() {
            let line = format!("  {:<18} ", entry.id);
            assert!(t.contains(&line), "table2 must list backend {:?}:\n{t}", entry.id);
        }
        // The two registry-only backends specifically, by id.
        for id in ["hbm-wide", "pim-vector"] {
            assert!(t.contains(id), "table2 must mention {id}:\n{t}");
        }
    }

    /// The backend matrix auto-enrolls every non-ideal backend: one
    /// column per registry entry under its native ISA variant, with a
    /// finite slowdown on every workload.
    #[test]
    fn backend_matrix_enrolls_registry_only_backends() {
        let mut r = Runner::small(5);
        let m = backend_matrix(&mut r);
        for name in ["die-stacked wide HBM", "memory-side vector (PIM)"] {
            assert!(m.configs.contains(&name), "matrix must have a {name} column: {:?}", m.configs);
        }
        assert!(!m.configs.contains(&"ideal"), "ideal is the baseline, not a column");
        assert_eq!(m.rows.len(), WORKLOADS.len());
        for (kind, vals) in &m.rows {
            assert_eq!(vals.len(), m.configs.len(), "{kind}: one slowdown per backend");
            for (name, v) in m.configs.iter().zip(vals) {
                assert!(v.is_finite() && *v > 0.0, "{kind}/{name}: slowdown {v}");
            }
        }
    }
}
