//! Parallel sweep engine for the experiment matrix.
//!
//! The paper's evaluation is a cross-product of workloads × ISA variants
//! × memory systems × L2 latencies, and every cell of that product is an
//! independent pure computation: build + verify a workload (once per
//! `(workload, variant)` pair), then run one deterministic timing
//! simulation. This module exploits that independence:
//!
//! 1. [`prebuild_workloads`] builds and verifies the needed workloads in
//!    parallel (building dominates the cold-start cost — each build runs
//!    the functional emulator against the scalar reference);
//! 2. [`run`] partitions the simulation cells over [`std::thread::scope`]
//!    workers pulling from an atomic work queue, sharing the verified
//!    workloads read-only behind [`Arc`];
//! 3. the per-worker [`Metrics`] are merged back into the [`Runner`]
//!    cache in deterministic (enumeration) order, so the figure/table
//!    formatters downstream see exactly what a serial run would have
//!    computed — bit-identical, since each cell's simulation is pure and
//!    its configuration is derived from the same [`SimKey::config`].
//!
//! Worker count comes from [`threads_from_env`] (`MOM3D_SWEEP_THREADS`,
//! default: all available cores). [`SweepReport::write_json`] emits a
//! machine-readable `BENCH_sweep.json` with wall-clock per cell.
//!
//! ```no_run
//! use mom3d_bench::{fig9, sweep, Runner};
//!
//! let mut r = Runner::new(7);
//! let report = sweep::run(&mut r, &sweep::full_grid(), sweep::threads_from_env());
//! println!("{} cells in {:?}", report.cells.len(), report.wall);
//! print!("{}", fig9(&mut r)); // served entirely from the cache
//! report.write_json(&sweep::json_path_from_env()).unwrap();
//! ```

use crate::cache::CacheStats;
use crate::json::json_string;
use crate::runner::{simulate, verify_timed, Runner, SimKey, WorkloadTiming};
use crate::stats::Percentiles;
use mom3d_cpu::{BackendId, BackendRegistry, MemorySystemKind, Metrics};
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// The sweep hands workloads and metrics across threads; keep that a
// compile-time fact rather than a runtime surprise.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Workload>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<SimKey>();
};

/// One simulated cell of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Which cell.
    pub key: SimKey,
    /// The simulation's metrics (bit-identical to a serial run).
    pub metrics: Metrics,
    /// Wall-clock of this cell's simulation phase ([`Duration::ZERO`]
    /// when the cell was served from the runner's cache).
    pub wall: Duration,
    /// Build/verify wall-clock of the cell's workload. The workload is
    /// built once and shared, so cells over the same
    /// `(workload, variant)` pair repeat the same phase numbers; cells
    /// whose workload was already cached before the sweep report zero.
    pub workload: WorkloadTiming,
    /// True when the cell was already cached and not re-simulated.
    pub reused: bool,
}

/// What one worker process contributed to a distributed sweep
/// ([`crate::shard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// The worker's id (`--id` of `mom3d-shard-worker`).
    pub id: u32,
    /// Cells this worker completed (first-completion wins; a cell a
    /// worker re-simulated after losing the race is not counted).
    pub cells: u64,
    /// Wall-clock between the worker's first claim and its last
    /// completed cell, as observed by the coordinator.
    pub wall: Duration,
    /// p50/p99/max of this worker's per-cell simulation wall-clock, in
    /// nanoseconds (summarized by [`crate::stats::percentiles`], the
    /// same nearest-rank convention as the load generator's report).
    pub cell_ns: Percentiles,
}

/// The distributed-execution block of a sharded sweep's report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sharding {
    /// Per-worker contribution, sorted by worker id.
    pub workers: Vec<WorkerStats>,
    /// Shard re-partitions: batches stolen from a straggler's grant and
    /// re-issued to an idle worker.
    pub steals: u64,
    /// Cells replayed from the crash-resume manifest instead of being
    /// re-simulated (`0` on a fresh run).
    pub resumed_cells: u64,
}

/// Everything one [`run`] call did, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The runner's data seed.
    pub seed: u64,
    /// True when reduced-geometry workloads were swept.
    pub small: bool,
    /// Worker threads actually spawned for the simulation phase (the
    /// requested count, clamped to the number of uncached cells — 1
    /// when everything was served from the cache).
    pub threads: usize,
    /// End-to-end wall-clock of the sweep (workload building included).
    pub wall: Duration,
    /// Workload-image cache counters, when the runner has a cache
    /// attached (`None` = uncached run). The counters are the cache's
    /// cumulative totals at the end of this run, so on a warm start a
    /// hit count equal to the workload count proves every build was
    /// skipped.
    pub workload_cache: Option<CacheStats>,
    /// Distributed-execution statistics when the sweep ran sharded over
    /// worker processes ([`crate::shard::coordinate`]); `None` for an
    /// in-process [`run`].
    pub sharding: Option<Sharding>,
    /// Per-cell results, in enumeration order.
    pub cells: Vec<CellResult>,
}

impl SweepReport {
    /// Roll-up of every cell's counters (via [`Metrics::merge`]):
    /// aggregate simulated cycles, instructions, activity across the
    /// whole sweep.
    pub fn total(&self) -> Metrics {
        let mut total = Metrics::default();
        for cell in &self.cells {
            total.merge(&cell.metrics);
        }
        total
    }

    /// Cells actually simulated by this run (not served from cache).
    pub fn fresh_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.reused).count()
    }

    /// The report as a JSON document (the `BENCH_sweep.json` schema,
    /// `mom3d/sweep/v5`).
    ///
    /// v3 replaced the per-cell `wall_ns` of v2 with a `phases` object
    /// breaking the cell's cost into workload build, verification and
    /// simulation wall-clock; v4 added the top-level `workload_cache`
    /// object (enabled flag plus hit/miss/rejected counters of the
    /// cross-invocation workload-image cache), so a warm start is
    /// machine-checkable: `hits` equals the workload count and every
    /// cell's `build_ns`/`verify_ns` collapses to the image-load time;
    /// v5 adds the top-level `sharding` block (`null` for in-process
    /// sweeps): per-worker cell counts, wall-clock and per-cell latency
    /// percentiles, plus work-steal and manifest-resume counters of a
    /// distributed [`crate::shard`] run.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024 + 512 * self.cells.len());
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mom3d/sweep/v5\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"small\": {},\n", self.small));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"wall_ns\": {},\n", self.wall.as_nanos()));
        let cache = self.workload_cache.unwrap_or_default();
        s.push_str(&format!(
            "  \"workload_cache\": {{\"enabled\": {}, \"hits\": {}, \"misses\": {}, \
             \"rejected\": {}}},\n",
            self.workload_cache.is_some(),
            cache.hits,
            cache.misses,
            cache.rejected
        ));
        match &self.sharding {
            None => s.push_str("  \"sharding\": null,\n"),
            Some(sh) => {
                let workers: Vec<String> = sh
                    .workers
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"id\": {}, \"cells\": {}, \"wall_ns\": {}, \
                             \"cell_p50_ns\": {}, \"cell_p99_ns\": {}, \"cell_max_ns\": {}}}",
                            w.id,
                            w.cells,
                            w.wall.as_nanos(),
                            w.cell_ns.p50,
                            w.cell_ns.p99,
                            w.cell_ns.max
                        )
                    })
                    .collect();
                s.push_str(&format!(
                    "  \"sharding\": {{\"workers\": [{}], \"steals\": {}, \
                     \"resumed_cells\": {}}},\n",
                    workers.join(", "),
                    sh.steals,
                    sh.resumed_cells
                ));
            }
        }
        s.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            // Workload labels and backend ids are arbitrary strings (any
            // registered backend is sweepable), so they are escaped —
            // a backend id containing `"` or `\` must not corrupt the
            // document.
            s.push_str(&format!(
                "    {{\"workload\": {}, \"isa\": {}, \"memory\": {}, \
                 \"l2_latency\": {}, \"phases\": {{\"build_ns\": {}, \"verify_ns\": {}, \
                 \"sim_ns\": {}}}, \"reused\": {}, \"metrics\": {}}}{}\n",
                json_string(&cell.key.kind.to_string()),
                json_string(&cell.key.variant.to_string()),
                json_string(&cell.key.memory.to_string()),
                cell.key.l2_latency,
                cell.workload.build.as_nanos(),
                cell.workload.verify.as_nanos(),
                cell.wall.as_nanos(),
                cell.reused,
                metrics_json(&cell.metrics),
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"totals\": {}\n", metrics_json(&self.total())));
        s.push_str("}\n");
        s
    }

    /// Writes [`SweepReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn metrics_json(m: &Metrics) -> String {
    format!(
        "{{\"cycles\": {}, \"instructions\": {}, \"packed_ops\": {}, \
         \"vec_mem_instrs\": {}, \"scalar_mem_instrs\": {}, \"port_accesses\": {}, \
         \"l2_activity\": {}, \"vec_words\": {}, \"mov3d_instrs\": {}, \
         \"mov3d_words\": {}, \"d3_writes\": {}, \"l2_scalar_accesses\": {}, \
         \"l2_hits\": {}, \"l2_misses\": {}, \"l1_accesses\": {}, \
         \"coherence_invalidations\": {}, \"dram_row_hits\": {}, \
         \"dram_row_misses\": {}}}",
        m.cycles,
        m.instructions,
        m.packed_ops,
        m.vec_mem_instrs,
        m.scalar_mem_instrs,
        m.port_accesses,
        m.l2_activity,
        m.vec_words,
        m.mov3d_instrs,
        m.mov3d_words,
        m.d3_writes,
        m.l2_scalar_accesses,
        m.l2_hits,
        m.l2_misses,
        m.l1_accesses,
        m.coherence_invalidations,
        m.dram_row_hits,
        m.dram_row_misses,
    )
}

/// The default worker-thread count: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Worker-thread count: `MOM3D_SWEEP_THREADS` when set to a positive
/// integer, otherwise every available core. A set-but-invalid value
/// (zero, non-numeric, non-unicode) falls back to the default with a
/// warning on stderr — printed once per process, not once per call
/// (every experiment binary consults this several times) — rather than
/// being silently ignored.
pub fn threads_from_env() -> usize {
    threads_from_value(std::env::var_os("MOM3D_SWEEP_THREADS").as_deref())
}

/// Once-flag for the invalid-`MOM3D_SWEEP_THREADS` warning (the same
/// dedupe idiom as `WorkloadCache::store_warned`).
static THREADS_WARNED: AtomicBool = AtomicBool::new(false);

/// The parsing/fallback policy behind [`threads_from_env`], separated
/// from the environment so it can be tested without `set_var` (which
/// is unsound next to concurrent `getenv` calls in a parallel test
/// binary).
fn threads_from_value(raw: Option<&std::ffi::OsStr>) -> usize {
    let Some(raw) = raw else {
        return default_threads();
    };
    match raw.to_str().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => {
            let fallback = default_threads();
            if !THREADS_WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: MOM3D_SWEEP_THREADS={raw:?} is not a positive integer; \
                     using the default ({fallback} threads)"
                );
            }
            fallback
        }
    }
}

/// Where the JSON report goes: `MOM3D_SWEEP_JSON` when set, otherwise
/// `BENCH_sweep.json` in the working directory.
pub fn json_path_from_env() -> PathBuf {
    std::env::var_os("MOM3D_SWEEP_JSON").map_or_else(|| PathBuf::from("BENCH_sweep.json"), PathBuf::from)
}

/// What one worker produced for one `(workload, variant)` pair.
type PreparedWorkload = (usize, Workload, WorkloadTiming, bool);

/// Shared state of the prebuild pipeline (guarded by one mutex; a
/// condvar wakes idle workers when verify jobs appear or the pipeline
/// drains).
struct PrebuildState {
    /// Next index of `todo` to claim for the cache-load/build stage.
    next_build: usize,
    /// Built-but-unverified workloads waiting for a verify worker:
    /// `(index, workload, build wall-clock)`.
    verify_q: Vec<(usize, Workload, Duration)>,
    /// Finished pairs: `(index, workload, timing, from_cache)`.
    done: Vec<PreparedWorkload>,
    /// Pairs not yet in `done`.
    remaining: usize,
    /// A worker panicked; everyone else should stop waiting.
    failed: bool,
}

/// Makes every listed workload available in the runner's in-memory
/// cache, using all of `threads` scoped workers for the cold path and
/// the runner's workload-image cache (when attached) to skip it.
///
/// The cold path is a two-stage pipeline over one worker pool rather
/// than a fused build+verify per pair: a worker that finishes **building**
/// a workload pushes it onto a verify queue and moves on, and any idle
/// worker picks the verification up. Build and emulator-verify of
/// *different ISA variants of the same workload* (and of different
/// workloads) therefore overlap freely — previously a pair's
/// verification was stuck behind its own build on the same worker, so
/// the slowest build+verify chain bounded the cold start.
///
/// With an image cache attached, each pair first attempts a cache load
/// (in parallel too); hits skip both stages, misses flow down the
/// pipeline and are persisted after their verification passes.
///
/// # Panics
///
/// Panics if any workload fails to build or verify (see
/// [`Runner::build_workload`]), or if a worker thread panics.
pub fn prebuild_workloads(
    runner: &mut Runner,
    pairs: &[(WorkloadKind, IsaVariant)],
    threads: usize,
) {
    let mut seen = HashSet::new();
    let todo: Vec<(WorkloadKind, IsaVariant)> = pairs
        .iter()
        .copied()
        .filter(|&(k, v)| seen.insert((k, v)) && !runner.has_workload(k, v))
        .collect();
    if todo.is_empty() {
        return;
    }
    let shared: &Runner = runner;
    let state = Mutex::new(PrebuildState {
        next_build: 0,
        verify_q: Vec::new(),
        done: Vec::with_capacity(todo.len()),
        remaining: todo.len(),
        failed: false,
    });
    let cvar = Condvar::new();
    std::thread::scope(|s| {
        // Each pair runs at most one stage (build or verify) at a time,
        // so more than one worker per pair can never be simultaneously
        // busy.
        let workers = threads.clamp(1, todo.len());
        for _ in 0..workers {
            s.spawn(|| {
                let mut guard = state.lock().expect("prebuild state poisoned");
                loop {
                    if guard.failed {
                        break;
                    }
                    // Verification first: it retires pairs and keeps the
                    // queue from growing unboundedly.
                    if let Some((i, wl, build)) = guard.verify_q.pop() {
                        drop(guard);
                        let step = run_step(&state, &cvar, || {
                            let (digest, verify) = verify_timed(&wl);
                            if let Some(cache) = shared.cache() {
                                let key = shared.image_key(wl.kind(), wl.variant());
                                cache.store(&wl, &key, digest);
                            }
                            verify
                        });
                        guard = state.lock().expect("prebuild state poisoned");
                        guard.done.push((i, wl, WorkloadTiming { build, verify: step }, false));
                        guard.remaining -= 1;
                        cvar.notify_all();
                        continue;
                    }
                    if guard.next_build < todo.len() {
                        let i = guard.next_build;
                        guard.next_build += 1;
                        drop(guard);
                        let (kind, variant) = todo[i];
                        let outcome = run_step(&state, &cvar, || {
                            if let Some(cache) = shared.cache() {
                                let t0 = Instant::now();
                                if let Some(wl) = cache.load(&shared.image_key(kind, variant)) {
                                    return (wl, t0.elapsed(), true);
                                }
                            }
                            let (wl, build) = shared.build_workload_unverified(kind, variant);
                            (wl, build, false)
                        });
                        guard = state.lock().expect("prebuild state poisoned");
                        match outcome {
                            (wl, load, true) => {
                                let timing =
                                    WorkloadTiming { build: load, verify: Duration::ZERO };
                                guard.done.push((i, wl, timing, true));
                                guard.remaining -= 1;
                            }
                            (wl, build, false) => guard.verify_q.push((i, wl, build)),
                        }
                        cvar.notify_all();
                        continue;
                    }
                    if guard.remaining == 0 {
                        break;
                    }
                    // Nothing to do yet: another worker's build will feed
                    // the verify queue (or finish the pipeline).
                    guard = cvar.wait(guard).expect("prebuild state poisoned");
                }
            });
        }
    });
    let mut done = state.into_inner().expect("prebuild state poisoned").done;
    done.sort_by_key(|&(i, ..)| i);
    for (_, wl, timing, _) in done {
        runner.insert_workload_timed(Arc::new(wl), timing);
    }
}

/// Runs one pipeline stage outside the lock, making sure a panicking
/// stage wakes every waiting worker (otherwise the scope would deadlock
/// joining workers parked on the condvar) before the panic propagates.
fn run_step<T>(
    state: &Mutex<PrebuildState>,
    cvar: &Condvar,
    step: impl FnOnce() -> T,
) -> T {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(step)) {
        Ok(v) => v,
        Err(payload) => {
            if let Ok(mut guard) = state.lock() {
                guard.failed = true;
            }
            cvar.notify_all();
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs a sweep: simulates every not-yet-cached cell of `cells` on
/// `threads` worker threads and merges the metrics into the runner's
/// cache, returning per-cell results (cached cells included, flagged
/// `reused`) in first-occurrence enumeration order.
///
/// Workers pull cells from a shared atomic queue (cells differ wildly in
/// cost — `mpeg2 encode` dwarfs `gsm encode` — so static partitioning
/// would idle most threads); determinism is unaffected because every
/// cell is an independent pure simulation and results are published in
/// enumeration order.
///
/// # Panics
///
/// Panics if a workload fails to build/verify, a simulation fails, or a
/// worker thread panics.
pub fn run(runner: &mut Runner, cells: &[SimKey], threads: usize) -> SweepReport {
    let start = Instant::now();
    let threads = threads.max(1);

    let mut seen = HashSet::new();
    let unique: Vec<SimKey> = cells.iter().copied().filter(|&c| seen.insert(c)).collect();

    // Phase 1: make every needed workload available behind an Arc.
    let pairs: Vec<(WorkloadKind, IsaVariant)> = unique
        .iter()
        .filter(|c| runner.cached_metrics(c).is_none())
        .map(|c| (c.kind, c.variant))
        .collect();
    prebuild_workloads(runner, &pairs, threads);

    // Phase 2: simulate the uncached cells.
    let mut jobs: Vec<(SimKey, Arc<Workload>)> = Vec::new();
    for &c in &unique {
        if runner.cached_metrics(&c).is_none() {
            jobs.push((c, runner.workload_arc(c.kind, c.variant)));
        }
    }
    let next = AtomicUsize::new(0);
    let mut fresh: Vec<(usize, Metrics, Duration)> = Vec::with_capacity(jobs.len());
    let workers = threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((key, wl)) = jobs.get(i) else { break };
                        let t0 = Instant::now();
                        let metrics = simulate(key, wl);
                        out.push((i, metrics, t0.elapsed()));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            fresh.extend(h.join().expect("sweep worker panicked"));
        }
    });

    // Phase 3: publish into the runner cache in enumeration order.
    fresh.sort_by_key(|&(i, ..)| i);
    let mut walls: HashMap<SimKey, Duration> = HashMap::with_capacity(fresh.len());
    for (i, metrics, wall) in fresh {
        runner.insert_metrics(jobs[i].0, metrics);
        walls.insert(jobs[i].0, wall);
    }

    let cells = unique
        .into_iter()
        .map(|key| {
            let metrics = runner.cached_metrics(&key).expect("cell simulated or cached");
            let workload = runner.workload_timing(key.kind, key.variant);
            match walls.get(&key) {
                Some(&wall) => CellResult { key, metrics, wall, workload, reused: false },
                None => {
                    CellResult { key, metrics, wall: Duration::ZERO, workload, reused: true }
                }
            }
        })
        .collect();
    SweepReport {
        seed: runner.seed(),
        small: runner.is_small(),
        threads: workers,
        wall: start.elapsed(),
        workload_cache: runner.cache().map(|c| c.stats()),
        sharding: None,
        cells,
    }
}

fn cell(
    kind: WorkloadKind,
    variant: IsaVariant,
    memory: impl Into<BackendId>,
    l2_latency: u32,
) -> SimKey {
    SimKey { kind, variant, memory: memory.into(), l2_latency }
}

/// Figure 3 cells: MOM on ideal (baseline), multi-banked and vector
/// cache, all workloads, 20-cycle L2.
pub fn cells_fig3() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for kind in WorkloadKind::ALL {
        for memory in [
            MemorySystemKind::Ideal,
            MemorySystemKind::MultiBanked,
            MemorySystemKind::VectorCache,
        ] {
            cells.push(cell(kind, IsaVariant::Mom, memory, 20));
        }
    }
    cells
}

/// Figure 6 / Figure 11 / Table 4 cells: the three realistic memory
/// systems under their native ISA variants.
pub fn cells_fig6() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for kind in WorkloadKind::ALL {
        cells.push(cell(kind, IsaVariant::Mom, MemorySystemKind::MultiBanked, 20));
        cells.push(cell(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20));
        cells.push(cell(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20));
    }
    cells
}

/// Figure 7 cells: MOM vs MOM+3D traffic on the vector cache only (the
/// multi-banked column of [`cells_fig6`] is not read by the Figure 7
/// formatter).
pub fn cells_fig7() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for kind in WorkloadKind::ALL {
        cells.push(cell(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20));
        cells.push(cell(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20));
    }
    cells
}

/// Figure 9 cells: the full ISA × memory-system slowdown matrix.
pub fn cells_fig9() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for kind in WorkloadKind::ALL {
        cells.push(cell(kind, IsaVariant::Mom, MemorySystemKind::Ideal, 20));
        cells.push(cell(kind, IsaVariant::Mmx, MemorySystemKind::MultiBanked, 20));
        cells.push(cell(kind, IsaVariant::Mmx, MemorySystemKind::Ideal, 20));
        cells.push(cell(kind, IsaVariant::Mom, MemorySystemKind::MultiBanked, 20));
        cells.push(cell(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, 20));
        cells.push(cell(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, 20));
    }
    cells
}

/// Figure 10 cells: the L2-latency sweep (20/40/60 cycles) on the four
/// workloads the paper plots.
pub fn cells_fig10() -> Vec<SimKey> {
    let kinds = [
        WorkloadKind::Mpeg2Decode,
        WorkloadKind::Mpeg2Encode,
        WorkloadKind::GsmEncode,
        WorkloadKind::JpegEncode,
    ];
    let mut cells = Vec::new();
    for kind in kinds {
        for l2 in [20, 40, 60] {
            cells.push(cell(kind, IsaVariant::Mom, MemorySystemKind::VectorCache, l2));
            cells.push(cell(kind, IsaVariant::Mom3d, MemorySystemKind::VectorCache3d, l2));
        }
    }
    cells
}

/// Workload pairs Table 1 needs (trace statistics only — no simulation).
pub fn pairs_table1() -> Vec<(WorkloadKind, IsaVariant)> {
    WorkloadKind::ALL
        .into_iter()
        .flat_map(|k| [(k, IsaVariant::Mom), (k, IsaVariant::Mom3d)])
        .collect()
}

/// Every cell any figure or table binary needs — the `all` binary's
/// sweep, and the full-geometry Figure 9 reproduction grid.
pub fn full_grid() -> Vec<SimKey> {
    let mut cells = Vec::new();
    cells.extend(cells_fig3());
    cells.extend(cells_fig6());
    cells.extend(cells_fig9());
    cells.extend(cells_fig10());
    let mut seen = HashSet::new();
    cells.retain(|&c| seen.insert(c));
    cells
}

/// Cells for every registered backend *beyond* the four paper
/// organizations (the opt-in extra-backend sweep dimension): each extra
/// backend runs every workload under the MOM ISA — plus MOM+3D when the
/// backend has a 3D register file — at the default L2 latency. Purely
/// registry-driven: a backend registered at startup shows up here (and
/// in the [`crate::backend_matrix`] report) without any hand-listing.
pub fn cells_extra_backends() -> Vec<SimKey> {
    let mut cells = Vec::new();
    for entry in BackendRegistry::entries() {
        if MemorySystemKind::parse(entry.id).is_some() {
            continue; // the paper grid already covers these
        }
        for kind in WorkloadKind::ALL {
            cells.push(cell(kind, IsaVariant::Mom, entry.backend_id(), 20));
            if entry.has_3d {
                cells.push(cell(kind, IsaVariant::Mom3d, entry.backend_id(), 20));
            }
        }
    }
    cells
}

/// [`full_grid`] plus [`cells_extra_backends`] — what
/// `all --all-backends` sweeps. The two are disjoint by construction
/// (the extras skip every paper id, and the paper grid emits nothing
/// else), so no dedup is needed; [`run`] deduplicates defensively
/// anyway.
pub fn extended_grid() -> Vec<SimKey> {
    let mut cells = full_grid();
    cells.extend(cells_extra_backends());
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_has_no_duplicates_and_covers_figures() {
        let grid = full_grid();
        let set: HashSet<_> = grid.iter().copied().collect();
        assert_eq!(set.len(), grid.len());
        for cells in [cells_fig3(), cells_fig6(), cells_fig7(), cells_fig9(), cells_fig10()] {
            for c in cells {
                assert!(set.contains(&c), "{c:?} missing from full grid");
            }
        }
        // 5 workloads x 6 fig9 configs + fig10 extras; everything else
        // overlaps.
        assert_eq!(grid.len(), 30 + 4 * 2 * 2);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = SweepReport {
            seed: 7,
            small: true,
            threads: 2,
            wall: Duration::from_nanos(5),
            workload_cache: Some(CacheStats { hits: 2, misses: 1, rejected: 0 }),
            sharding: Some(Sharding {
                workers: vec![WorkerStats {
                    id: 1,
                    cells: 2,
                    wall: Duration::from_nanos(9),
                    cell_ns: Percentiles { p50: 4, p99: 5, max: 5 },
                }],
                steals: 1,
                resumed_cells: 3,
            }),
            cells: vec![
                CellResult {
                    key: cell(
                        WorkloadKind::GsmEncode,
                        IsaVariant::Mom,
                        MemorySystemKind::VectorCache,
                        20,
                    ),
                    metrics: Metrics { cycles: 1, ..Default::default() },
                    wall: Duration::from_nanos(3),
                    workload: WorkloadTiming {
                        build: Duration::from_nanos(11),
                        verify: Duration::from_nanos(7),
                    },
                    reused: false,
                },
                // A hostile registered-backend name: quotes, backslash
                // and a control byte must come out escaped, not raw.
                CellResult {
                    key: cell(
                        WorkloadKind::GsmEncode,
                        IsaVariant::Mom,
                        BackendId::new("evil\"back\\slash\nbackend"),
                        20,
                    ),
                    metrics: Metrics::default(),
                    wall: Duration::ZERO,
                    workload: WorkloadTiming::default(),
                    reused: false,
                },
            ],
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema\": \"mom3d/sweep/v5\""));
        assert!(json.contains(
            "\"workload_cache\": {\"enabled\": true, \"hits\": 2, \"misses\": 1, \"rejected\": 0}"
        ));
        // v5 sharding block: per-worker stats plus steal/resume counters.
        assert!(json.contains(
            "\"sharding\": {\"workers\": [{\"id\": 1, \"cells\": 2, \"wall_ns\": 9, \
             \"cell_p50_ns\": 4, \"cell_p99_ns\": 5, \"cell_max_ns\": 5}], \
             \"steals\": 1, \"resumed_cells\": 3}"
        ));
        // An in-process sweep reports the block as null, not absent.
        let mut serial = report.clone();
        serial.sharding = None;
        assert!(serial.to_json().contains("\"sharding\": null"));
        assert!(json.contains("\"dram_row_hits\": 0"));
        assert!(json.contains("\"workload\": \"gsm encode\""));
        assert!(json.contains("\"memory\": \"vector-cache\""));
        // v3 per-cell phase breakdown: build, verify and sim wall-clock.
        assert!(json.contains(
            "\"phases\": {\"build_ns\": 11, \"verify_ns\": 7, \"sim_ns\": 3}"
        ));
        assert!(json.contains("\"cycles\": 1"));
        // The hostile backend name is escaped into a single valid JSON
        // string: no raw quote/backslash/newline survives inside it.
        assert!(json.contains("\"memory\": \"evil\\\"back\\\\slash\\nbackend\""));
        assert!(!json.contains("evil\"back"));
    }

    #[test]
    fn sweep_records_phase_breakdown() {
        let mut r = Runner::small(3);
        let cells = [cell(WorkloadKind::GsmEncode, IsaVariant::Mom, MemorySystemKind::Ideal, 20)];
        let report = run(&mut r, &cells, 1);
        let c = &report.cells[0];
        assert!(!c.reused);
        assert!(c.workload.build > Duration::ZERO, "build phase must be timed");
        assert!(c.wall > Duration::ZERO, "sim phase must be timed");
        // A second sweep over the same cell reuses both the workload and
        // the metrics: the sim phase reports zero, the workload phases
        // keep their recorded cost.
        let again = run(&mut r, &cells, 1);
        assert!(again.cells[0].reused);
        assert_eq!(again.cells[0].wall, Duration::ZERO);
        assert_eq!(again.cells[0].workload, c.workload);
    }

    #[test]
    fn threads_env_parsing() {
        // Exercised through the pure value parser: mutating the real
        // environment here would race the concurrent `getenv` calls of
        // other tests in this binary.
        let default = default_threads();
        let parse = |v: Option<&str>| threads_from_value(v.map(std::ffi::OsStr::new));
        assert_eq!(parse(None), default);
        assert_eq!(parse(Some("3")), 3);
        assert_eq!(parse(Some(" 8 ")), 8, "surrounding whitespace is tolerated");
        // Invalid values fall back to the default (with a warning on
        // stderr) instead of being silently ignored.
        for bad in ["0", "-2", "lots", "", " "] {
            assert_eq!(parse(Some(bad)), default, "MOM3D_SWEEP_THREADS={bad:?}");
        }
        assert!(threads_from_env() >= 1);
    }

    #[test]
    fn extra_backend_cells_cover_registry_only_backends() {
        let extras = cells_extra_backends();
        // dram-burst, hbm-wide and pim-vector are registered but not
        // paper organizations, so the extended grid must pick each up
        // for every workload — with no figure binary naming any of them.
        for id in ["dram-burst", "hbm-wide", "pim-vector"] {
            let backend = BackendId::new(id);
            for kind in WorkloadKind::ALL {
                assert!(
                    extras.contains(&cell(kind, IsaVariant::Mom, backend, 20)),
                    "{kind:?} on {id} missing from the extra-backend cells"
                );
            }
        }
        // No paper backend sneaks in.
        for c in &extras {
            assert_eq!(MemorySystemKind::parse(c.memory.as_str()), None, "{c:?}");
        }
        // The extended grid is the full grid plus the extras, deduped.
        let ext = extended_grid();
        let set: HashSet<_> = ext.iter().copied().collect();
        assert_eq!(set.len(), ext.len());
        for c in full_grid().into_iter().chain(extras) {
            assert!(set.contains(&c));
        }
    }
}
