//! Cross-invocation workload cache: persists built-and-verified
//! workload images on disk so the next binary invocation starts warm.
//!
//! Building a full-geometry workload (code generation + a complete
//! functional-emulator verification run) dominates the cold start of
//! every experiment binary. [`WorkloadCache`] stores each verified
//! [`Workload`] as a versioned binary image (see
//! [`mom3d_kernels::encode_workload`]) keyed by workload kind, ISA
//! variant, geometry, seed and format version, and serves it back to
//! later invocations through [`crate::Runner`]'s `load_or_build` path.
//!
//! The cache is **fail-open in every direction**:
//!
//! * no directory configured → no cache, everything builds as before;
//! * the directory cannot be created or written → a warning on stderr
//!   and no cache (never an error);
//! * a cached image is truncated, bit-flipped, written by another
//!   format version or misfiled → the image is rejected (and deleted
//!   best-effort) and the workload rebuilds from scratch.
//!
//! A corrupt cache can therefore cost time, never correctness.
//!
//! Configuration: the `MOM3D_WORKLOAD_CACHE` environment variable or
//! the `--cache-dir PATH` flag every experiment binary accepts (the
//! flag wins). Hit/miss/rejected counters are exposed via
//! [`WorkloadCache::stats`]; the `all` binary prints them on stderr and
//! embeds them in `BENCH_sweep.json`.

use crate::faults::{ShimFile, WriteFault};
use mom3d_kernels::{decode_workload, encode_workload, ImageKey, Workload, WORKLOAD_IMAGE_VERSION};
use std::ffi::OsStr;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Images loaded successfully.
    pub hits: u64,
    /// Lookups that found no image (plus rejected images — every
    /// rejection is also a miss, since the workload rebuilds).
    pub misses: u64,
    /// Images found but rejected (corrupt, stale version, misfiled).
    pub rejected: u64,
}

/// A directory of workload images with hit/miss accounting.
///
/// All methods take `&self` — the sweep engine's worker pool loads and
/// stores images concurrently — so the counters are atomics and stores
/// go through a write-to-temp-then-rename dance that keeps concurrent
/// writers from ever exposing a half-written image under the final
/// name.
#[derive(Debug)]
pub struct WorkloadCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    store_warned: AtomicBool,
    /// One-shot injected write fault consumed by the next
    /// [`WorkloadCache::store`] (chaos tests only; `None` in
    /// production).
    store_fault: Mutex<Option<WriteFault>>,
}

impl WorkloadCache {
    /// Opens (creating if needed) a cache directory, probing that it is
    /// actually writable. Returns `None` — with a warning on stderr —
    /// when the directory cannot be created or written, so callers fall
    /// back to uncached builds instead of erroring out.
    pub fn open(dir: impl Into<PathBuf>) -> Option<WorkloadCache> {
        let dir = dir.into();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!(
                "warning: workload cache disabled: cannot create {}: {e}",
                dir.display()
            );
            return None;
        }
        // Probe writability up front: a read-only directory should cost
        // one warning, not one failed write per workload.
        let probe = dir.join(format!(".probe-{}", std::process::id()));
        if let Err(e) = std::fs::write(&probe, b"probe") {
            eprintln!(
                "warning: workload cache disabled: {} is not writable: {e}",
                dir.display()
            );
            return None;
        }
        let _ = std::fs::remove_file(&probe);
        Some(WorkloadCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            store_warned: AtomicBool::new(false),
            store_fault: Mutex::new(None),
        })
    }

    /// Cache from the `MOM3D_WORKLOAD_CACHE` environment variable:
    /// unset → no cache; set but empty → warning and no cache; set to a
    /// path → [`WorkloadCache::open`] (which itself falls back with a
    /// warning when the path is unusable).
    pub fn from_env() -> Option<WorkloadCache> {
        Self::from_env_value(std::env::var_os("MOM3D_WORKLOAD_CACHE").as_deref())
    }

    /// The parsing/fallback policy behind [`WorkloadCache::from_env`],
    /// separated from the environment so it can be tested without
    /// `set_var` (unsound next to concurrent `getenv` in a parallel
    /// test binary).
    pub fn from_env_value(raw: Option<&OsStr>) -> Option<WorkloadCache> {
        let raw = raw?;
        if raw.is_empty() {
            eprintln!(
                "warning: MOM3D_WORKLOAD_CACHE is set but empty; running without a workload cache"
            );
            return None;
        }
        Self::open(PathBuf::from(raw))
    }

    /// Resolves the effective cache: the `--cache-dir` flag when given,
    /// else the environment. A flag pointing at an unusable directory
    /// still degrades to no-cache (with the warning), mirroring the
    /// env-var policy.
    pub fn resolve(flag: Option<&Path>) -> Option<WorkloadCache> {
        match flag {
            Some(dir) => Self::open(dir),
            None => Self::from_env(),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// The image file name for a key. The format version is part of the
    /// name, so a version bump leaves old images behind as dead files
    /// instead of forcing every reader through their headers.
    pub fn file_name(key: &ImageKey) -> String {
        let kind = key.kind.name().replace(' ', "-");
        let variant = match key.variant {
            mom3d_kernels::IsaVariant::Mmx => "mmx",
            mom3d_kernels::IsaVariant::Mom => "mom",
            mom3d_kernels::IsaVariant::Mom3d => "mom3d",
        };
        let geom = if key.small { "small" } else { "full" };
        format!("{kind}_{variant}_{geom}_s{}_v{}.mwl", key.seed, WORKLOAD_IMAGE_VERSION)
    }

    /// Full path of a key's image.
    pub fn image_path(&self, key: &ImageKey) -> PathBuf {
        self.dir.join(Self::file_name(key))
    }

    /// Attempts to load a cached workload. Any failure — missing file,
    /// truncation, checksum/digest mismatch, stale format version —
    /// counts as a miss and returns `None`; rejected images are
    /// additionally counted, warned about on stderr, and evicted via a
    /// quarantine-rename (compare-then-delete) so a concurrent writer's
    /// fresh image is never deleted by mistake.
    pub fn load(&self, key: &ImageKey) -> Option<Workload> {
        let path = self.image_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_workload(&bytes, key) {
            Ok(wl) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(wl)
            }
            Err(e) => {
                eprintln!(
                    "warning: rejecting cached workload image {}: {e}; rebuilding",
                    path.display()
                );
                self.evict_rejected(&path, &bytes);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Evicts a rejected image without racing concurrent writers.
    ///
    /// An unconditional `remove_file` here would lose a *good* image: a
    /// concurrent [`WorkloadCache::store`] can rename a fresh, valid
    /// image into place between this reader's failed decode and its
    /// delete. Instead the file is atomically renamed into a unique
    /// quarantine name and re-read there: bytes identical to the
    /// rejected read are the corrupt image (delete the quarantine);
    /// different bytes mean a writer refreshed the path after our read,
    /// so the quarantined file is the fresh image and is renamed back.
    fn evict_rejected(&self, path: &Path, rejected: &[u8]) {
        let mut quarantine = path.as_os_str().to_os_string();
        quarantine.push(format!(".reject-{}-{:p}", std::process::id(), rejected.as_ptr()));
        let quarantine = PathBuf::from(quarantine);
        if std::fs::rename(path, &quarantine).is_err() {
            // Already gone — another reader evicted it first.
            return;
        }
        match std::fs::read(&quarantine) {
            Ok(current) if current == rejected => {
                let _ = std::fs::remove_file(&quarantine);
            }
            Ok(_) => {
                // A writer replaced the image after our read; what we
                // quarantined is its fresh copy — restore it. (Images
                // are deterministic per key, so racing an even newer
                // writer's rename is byte-equivalent either way.)
                let _ = std::fs::rename(&quarantine, path);
            }
            Err(_) => {
                let _ = std::fs::remove_file(&quarantine);
            }
        }
    }

    /// Arms a one-shot [`WriteFault`] consumed by the next
    /// [`WorkloadCache::store`]: that store's temp-file write fails
    /// after the fault's byte budget, exercising the fail-open path
    /// (warn once, never a half-written image under the final name)
    /// without filling a disk or revoking permissions.
    pub fn arm_store_fault(&self, fault: WriteFault) {
        *self.store_fault.lock().expect("store-fault lock poisoned") = Some(fault);
    }

    /// Stores a built-and-verified workload. `verify_digest` must come
    /// from the [`Workload::verify_digested`] run that just passed.
    /// Write failures warn (once) and are otherwise ignored — the cache
    /// is an accelerator, not a dependency.
    pub fn store(&self, wl: &Workload, key: &ImageKey, verify_digest: u64) {
        let bytes = encode_workload(wl, key, verify_digest);
        let path = self.image_path(key);
        // Unique temp name per writer: concurrent stores of the same key
        // (two binaries racing) each rename a complete image into place.
        let tmp = self.dir.join(format!(
            "{}.tmp-{}-{:p}",
            Self::file_name(key),
            std::process::id(),
            &bytes as *const _
        ));
        let fault = self.store_fault.lock().expect("store-fault lock poisoned").take();
        let result = (|| {
            let file = std::fs::File::create(&tmp)?;
            // All image bytes go through the injectable shim, so chaos
            // tests can stage a disk-full / crash-mid-write store.
            let mut shim = match fault {
                Some(fault) => ShimFile::with_fault(file, fault),
                None => ShimFile::new(file),
            };
            shim.write_all(&bytes)?;
            shim.flush()?;
            drop(shim);
            std::fs::rename(&tmp, &path)
        })();
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            if !self.store_warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: could not persist workload image {}: {e} \
                     (continuing without caching)",
                    path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom3d_kernels::{IsaVariant, WorkloadKind};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mom3d-cache-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn env_value_policy() {
        // Unset: silently no cache.
        assert!(WorkloadCache::from_env_value(None).is_none());
        // Empty: warns (on stderr) and runs uncached instead of erroring.
        assert!(WorkloadCache::from_env_value(Some(OsStr::new(""))).is_none());
        // A usable path opens.
        let dir = temp_dir("env");
        let cache = WorkloadCache::from_env_value(Some(dir.as_os_str()));
        assert!(cache.is_some());
        assert_eq!(cache.unwrap().dir(), dir.as_path());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dir_falls_back_to_no_cache() {
        // A path that routes through an existing *file* cannot become a
        // directory, so open() must warn and return None.
        let file = temp_dir("blocker");
        std::fs::create_dir_all(file.parent().unwrap()).unwrap();
        std::fs::write(&file, b"not a directory").unwrap();
        assert!(WorkloadCache::open(file.join("sub")).is_none());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn file_names_are_key_unique_and_versioned() {
        let a = ImageKey {
            kind: WorkloadKind::JpegEncode,
            variant: IsaVariant::Mom,
            seed: 7,
            small: false,
        };
        let b = ImageKey { variant: IsaVariant::Mom3d, ..a };
        let c = ImageKey { small: true, ..a };
        let d = ImageKey { seed: 8, ..a };
        let names: Vec<String> =
            [a, b, c, d].iter().map(WorkloadCache::file_name).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(n.contains(&format!("v{WORKLOAD_IMAGE_VERSION}")), "{n}");
            for (j, m) in names.iter().enumerate() {
                assert_eq!(i == j, n == m, "{n} vs {m}");
            }
        }
        assert_eq!(names[0], "jpeg-encode_mom_full_s7_v1.mwl");
    }

    #[test]
    fn eviction_deletes_corrupt_but_preserves_refreshed_images() {
        let dir = temp_dir("evict");
        let cache = WorkloadCache::open(&dir).unwrap();
        let path = dir.join("img.mwl");

        // Plain case: the file still holds the bytes we rejected — gone.
        std::fs::write(&path, b"corrupt bytes").unwrap();
        cache.evict_rejected(&path, b"corrupt bytes");
        assert!(!path.exists(), "the corrupt image must be deleted");

        // Race case: between the failed decode and the eviction, a
        // writer renamed a fresh image into place. The fresh image must
        // survive the eviction.
        std::fs::write(&path, b"fresh valid image").unwrap();
        cache.evict_rejected(&path, b"corrupt bytes");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"fresh valid image",
            "a concurrently refreshed image must not be deleted"
        );

        // Already-evicted case: nothing at the path, nothing to do.
        let _ = std::fs::remove_file(&path);
        cache.evict_rejected(&path, b"whatever");
        assert!(!path.exists());

        // No quarantine debris is left behind in any case.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".reject-"))
            .collect();
        assert!(leftovers.is_empty(), "quarantine files must not accumulate: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_armed_store_fault_fails_open_and_is_one_shot() {
        let dir = temp_dir("storefault");
        let cache = WorkloadCache::open(&dir).unwrap();
        let key = ImageKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            seed: 3,
            small: true,
        };
        let wl = mom3d_kernels::Workload::build_small(key.kind, key.variant, key.seed).unwrap();
        let digest = wl.verify_digested().expect("small workload verifies");

        // The faulted store must leave nothing under the final name and
        // no temp debris — the cache is an accelerator, not a
        // dependency.
        cache.arm_store_fault(WriteFault { fail_after: 16 });
        cache.store(&wl, &key, digest);
        assert!(cache.load(&key).is_none(), "no half-written image may be served");
        let debris: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(debris.is_empty(), "temp files must be cleaned up: {debris:?}");

        // The fault is one-shot: the next store lands intact.
        cache.store(&wl, &key, digest);
        assert!(cache.load(&key).is_some(), "the retried store must succeed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_image_counts_a_miss() {
        let dir = temp_dir("miss");
        let cache = WorkloadCache::open(&dir).unwrap();
        let key = ImageKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            seed: 1,
            small: true,
        };
        assert!(cache.load(&key).is_none());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1, rejected: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
