//! The `mom3d-serve` wire protocol: length-prefixed, checksummed binary
//! frames over TCP or unix-domain sockets.
//!
//! The protocol is hand-rolled over [`std::net`]/[`std::os::unix::net`]
//! (no tokio, no serde — the build environment vendors everything) and
//! reuses the codec idiom of the workload-image format
//! (`mom3d_kernels::image`): little-endian fixed-width integers, a
//! magic, explicit length prefixes, and an FNV-1a checksum
//! ([`mom3d_emu::checksum64`]) so a damaged frame is detected instead
//! of misinterpreted.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"M3S1" (protocol version folded in)
//! 4       1     opcode
//! 5       4     payload length (LE; at most MAX_FRAME_PAYLOAD)
//! 9       n     payload
//! 9+n     8     checksum64(payload) (LE)
//! ```
//!
//! Frame-level damage (bad magic, oversized length, checksum mismatch)
//! is unrecoverable — the receiver cannot re-synchronize the stream —
//! so the server answers with one [`ERR_PROTOCOL`] error frame
//! (best-effort) and closes the connection. *Payload*-level problems in
//! a well-framed request (unknown workload kind, unregistered backend
//! id, too many sweep cells) are answered with an error frame and the
//! connection stays usable.
//!
//! # Requests and responses
//!
//! | Request    | Payload                        | Reply |
//! |------------|--------------------------------|-------|
//! | `PING`     | —                              | `PONG` (server seed + geometry) |
//! | `SIM`      | one [`SimKey`]                 | one `RESULT` |
//! | `SWEEP`    | cell count + that many keys    | `RESULT` per unique cell, **in completion order**, then `DONE` |
//! | `STATS`    | —                              | `STATS_REPLY` ([`ServeCounters`]) |
//! | `SHUTDOWN` | —                              | `BYE`, then the server stops accepting |
//!
//! A `RESULT` carries the echoed [`SimKey`] (streams complete out of
//! order), a memo-hit flag and the full [`Metrics`] — bit-identical to
//! what an in-process [`crate::Runner`] computes for the same key.
//!
//! The distributed-sweep opcodes ([`crate::shard`]) ride the same
//! framing; they are served by the `mom3d-shard` coordinator (and
//! answered with [`ERR_UNSUPPORTED`] by `mom3d-serve`):
//!
//! | Request       | Payload                          | Reply |
//! |---------------|----------------------------------|-------|
//! | `SHARD_CLAIM` | worker id                        | `SHARD_GRANT` (seed + geometry + cell batch; an empty batch means "sweep complete, exit") |
//! | `CELL_DONE`   | key + sim wall-clock + [`Metrics`] | — (fire-and-forget stream) |
//! | `SHARD_FIN`   | cells completed in this grant    | `DONE` (ack; carries cells still pending coordinator-side) |

use crate::faults::{Backoff, ChaosConfig, ChaosStream, FaultPlan};
use crate::runner::SimKey;
use mom3d_cpu::{BackendRegistry, Metrics};
use mom3d_kernels::{IsaVariant, WorkloadKind};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Magic bytes opening every frame; the digit is the protocol version.
pub const PROTOCOL_MAGIC: [u8; 4] = *b"M3S1";

/// Upper bound on a frame's payload. Large enough for a maximal sweep
/// response, small enough that an absurd length prefix (attack or
/// corruption) is rejected before any allocation happens.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;

/// Upper bound on the cells of one `SWEEP` request.
pub const MAX_SWEEP_CELLS: u32 = 4096;

/// Request opcodes (client → server).
pub const OP_PING: u8 = 0x01;
/// Simulate one cell.
pub const OP_SIM: u8 = 0x02;
/// Simulate a grid, streaming per-cell results.
pub const OP_SWEEP: u8 = 0x03;
/// Server counter snapshot.
pub const OP_STATS: u8 = 0x04;
/// Stop accepting connections and exit.
pub const OP_SHUTDOWN: u8 = 0x05;
/// A shard worker asking the coordinator for a batch of cells.
pub const OP_SHARD_CLAIM: u8 = 0x06;
/// A shard worker streaming one completed cell back (no reply frame —
/// completions are fire-and-forget on the worker's one connection).
pub const OP_CELL_DONE: u8 = 0x07;
/// A shard worker reporting its current grant finished.
pub const OP_SHARD_FIN: u8 = 0x08;

/// Response opcodes (server → client).
pub const OP_PONG: u8 = 0x81;
/// One cell's metrics.
pub const OP_RESULT: u8 = 0x82;
/// End of a `SWEEP` stream.
pub const OP_DONE: u8 = 0x83;
/// Counter snapshot reply.
pub const OP_STATS_REPLY: u8 = 0x84;
/// Request- or frame-level error.
pub const OP_ERROR: u8 = 0x85;
/// Shutdown acknowledged.
pub const OP_BYE: u8 = 0x86;
/// Reply to `SHARD_CLAIM`: the worker's next batch of cells (empty =
/// the sweep is complete, the worker should exit).
pub const OP_SHARD_GRANT: u8 = 0x87;

/// Error code: request payload failed to decode (wrong length, unknown
/// kind/variant code, non-UTF-8 backend id, …).
pub const ERR_MALFORMED: u8 = 1;
/// Error code: the backend id is not in the [`BackendRegistry`].
pub const ERR_UNKNOWN_BACKEND: u8 = 2;
/// Error code: the simulation (or its workload build) panicked
/// server-side; the cell is un-claimed and may be retried.
pub const ERR_SIM_FAILED: u8 = 3;
/// Error code: frame-level damage; the server closes the connection.
pub const ERR_PROTOCOL: u8 = 4;
/// Error code: well-formed frame with an opcode the server does not
/// serve (e.g. a response opcode sent as a request).
pub const ERR_UNSUPPORTED: u8 = 5;
/// Error code: a `SWEEP` request with more than [`MAX_SWEEP_CELLS`]
/// cells.
pub const ERR_TOO_MANY_CELLS: u8 = 6;
/// Error code: the server's pending-work queue (or connection table) is
/// full; the request was shed without scheduling anything. Retryable by
/// construction — every request is a [`SimKey`] and replies are
/// memoized, so clients back off and resend.
pub const ERR_OVERLOADED: u8 = 7;
/// Error code: a per-request deadline expired server-side before the
/// result was ready. The cell may still complete in the background;
/// retrying later typically hits the memo table.
pub const ERR_TIMEOUT: u8 = 8;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream before any frame byte (normal disconnect).
    Closed,
    /// The stream died mid-frame (truncated frame or I/O failure).
    Io(io::Error),
    /// The first four bytes are not [`PROTOCOL_MAGIC`].
    BadMagic([u8; 4]),
    /// The length prefix exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// The payload checksum does not match.
    Checksum,
    /// A read deadline expired ([`Stream::set_read_timeout`]). A
    /// timeout can strike mid-frame, so the stream is unsynchronized
    /// and must be discarded — recovery is reconnect-and-retry.
    TimedOut,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "truncated frame: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::Oversized(n) => {
                write!(f, "frame payload of {n} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte limit")
            }
            FrameError::Checksum => write!(f, "frame checksum mismatch"),
            FrameError::TimedOut => write!(f, "read deadline elapsed"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame: opcode + raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's opcode byte (not yet validated against the known
    /// opcodes — that is the message layer's job).
    pub opcode: u8,
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
}

/// Writes one frame. Flushes, so a streamed result is visible to the
/// peer immediately.
///
/// # Errors
///
/// Propagates the underlying I/O error (a disconnected peer surfaces
/// here as a broken pipe).
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD as usize);
    let mut buf = Vec::with_capacity(17 + payload.len());
    buf.extend_from_slice(&PROTOCOL_MAGIC);
    buf.push(opcode);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&mom3d_emu::checksum64(payload).to_le_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// True for the two `io::ErrorKind`s an expired socket deadline
/// surfaces as (unix sockets report `WouldBlock`, TCP either).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| {
        if is_timeout(&e) {
            FrameError::TimedOut
        } else {
            FrameError::Io(e)
        }
    })
}

/// Reads and validates one frame header, returning `(opcode, len)`.
fn read_frame_header(r: &mut impl Read) -> Result<(u8, u32), FrameError> {
    let mut head = [0u8; 9];
    // Distinguish "peer closed between frames" from "died mid-frame"
    // from "deadline expired".
    match r.read_exact(&mut head) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
        Err(e) if is_timeout(&e) => return Err(FrameError::TimedOut),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let magic: [u8; 4] = head[0..4].try_into().expect("4 bytes");
    if magic != PROTOCOL_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let opcode = head[4];
    let len = u32::from_le_bytes(head[5..9].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    Ok((opcode, len))
}

/// Reads a frame's payload + checksum trailer after its header.
fn read_frame_body(r: &mut impl Read, opcode: u8, len: u32) -> Result<Frame, FrameError> {
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload)?;
    let mut sum = [0u8; 8];
    read_exact_or(r, &mut sum)?;
    if u64::from_le_bytes(sum) != mom3d_emu::checksum64(&payload) {
        return Err(FrameError::Checksum);
    }
    Ok(Frame { opcode, payload })
}

/// Reads one frame, validating magic, length bound and checksum.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean disconnect between frames; every
/// other variant marks the stream as unusable (framing is lost).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let (opcode, len) = read_frame_header(r)?;
    read_frame_body(r, opcode, len)
}

/// Once a frame header has arrived, the rest of the frame must follow
/// within this deadline. Senders write whole frames in one flush, so a
/// long mid-frame gap means the length prefix lies (a bit-flipped
/// header claims bytes the peer never sent) or the path died — without
/// this bound such a reader blocks for its full *idle* timeout, the
/// checksum trailer powerless because it is read after the payload.
pub const MID_FRAME_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// [`read_frame`] with a two-phase deadline: waits up to `idle` for the
/// header (the normal between-requests patience), then caps the wait
/// for payload + trailer at [`MID_FRAME_TIMEOUT`] (tighter of the two).
/// The stream's read timeout is restored to `idle` before returning.
///
/// # Errors
///
/// As [`read_frame`]; a mid-frame stall surfaces as
/// [`FrameError::TimedOut`] and the stream must be discarded.
pub fn read_frame_deadlined(
    stream: &mut Stream,
    idle: Option<std::time::Duration>,
) -> Result<Frame, FrameError> {
    read_frame_deadlined_with(stream, idle, MID_FRAME_TIMEOUT)
}

fn read_frame_deadlined_with(
    stream: &mut Stream,
    idle: Option<std::time::Duration>,
    mid: std::time::Duration,
) -> Result<Frame, FrameError> {
    let (opcode, len) = read_frame_header(stream)?;
    stream.set_read_timeout(Some(idle.map_or(mid, |t| t.min(mid))));
    let result = read_frame_body(stream, opcode, len);
    stream.set_read_timeout(idle);
    result
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// A payload-level decode failure, carrying the wire error code and a
/// human-readable message the server echoes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One of the `ERR_*` codes.
    pub code: u8,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    fn malformed(msg: &str) -> Self {
        WireError { code: ERR_MALFORMED, message: msg.to_string() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (code {})", self.message, self.code)
    }
}

impl std::error::Error for WireError {}

pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WireError::malformed("truncated payload"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::malformed("trailing bytes in payload"))
        }
    }
}

fn kind_code(k: WorkloadKind) -> u8 {
    WorkloadKind::ALL.iter().position(|&x| x == k).expect("kind in ALL") as u8
}

fn variant_code(v: IsaVariant) -> u8 {
    IsaVariant::ALL.iter().position(|&x| x == v).expect("variant in ALL") as u8
}

/// Appends a [`SimKey`] to `out`: kind, variant, L2 latency, then the
/// backend id as a length-prefixed UTF-8 string (ids are open-ended —
/// any registered backend is addressable).
pub fn put_sim_key(out: &mut Vec<u8>, key: &SimKey) {
    out.push(kind_code(key.kind));
    out.push(variant_code(key.variant));
    out.extend_from_slice(&key.l2_latency.to_le_bytes());
    let id = key.memory.as_str().as_bytes();
    out.extend_from_slice(&(id.len() as u16).to_le_bytes());
    out.extend_from_slice(id);
}

pub(crate) fn read_sim_key(c: &mut Cursor<'_>) -> Result<SimKey, WireError> {
    let kind = *WorkloadKind::ALL
        .get(c.u8()? as usize)
        .ok_or_else(|| WireError::malformed("unknown workload kind code"))?;
    let variant = *IsaVariant::ALL
        .get(c.u8()? as usize)
        .ok_or_else(|| WireError::malformed("unknown ISA variant code"))?;
    let l2_latency = c.u32()?;
    let id_len = c.u16()? as usize;
    let id = std::str::from_utf8(c.take(id_len)?)
        .map_err(|_| WireError::malformed("non-UTF-8 backend id"))?;
    let memory = BackendRegistry::parse(id).ok_or_else(|| WireError {
        code: ERR_UNKNOWN_BACKEND,
        message: format!("backend {id:?} is not registered on this server"),
    })?;
    Ok(SimKey { kind, variant, memory, l2_latency })
}

/// All 18 [`Metrics`] counters, in declaration order. The exhaustive
/// destructuring makes a new counter a compile error here — the
/// reminder to extend the wire format in both directions.
pub fn put_metrics(out: &mut Vec<u8>, m: &Metrics) {
    let Metrics {
        cycles,
        instructions,
        packed_ops,
        vec_mem_instrs,
        scalar_mem_instrs,
        port_accesses,
        l2_activity,
        vec_words,
        mov3d_instrs,
        mov3d_words,
        d3_writes,
        l2_scalar_accesses,
        l2_hits,
        l2_misses,
        l1_accesses,
        coherence_invalidations,
        dram_row_hits,
        dram_row_misses,
    } = *m;
    for v in [
        cycles,
        instructions,
        packed_ops,
        vec_mem_instrs,
        scalar_mem_instrs,
        port_accesses,
        l2_activity,
        vec_words,
        mov3d_instrs,
        mov3d_words,
        d3_writes,
        l2_scalar_accesses,
        l2_hits,
        l2_misses,
        l1_accesses,
        coherence_invalidations,
        dram_row_hits,
        dram_row_misses,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn read_metrics(c: &mut Cursor<'_>) -> Result<Metrics, WireError> {
    Ok(Metrics {
        cycles: c.u64()?,
        instructions: c.u64()?,
        packed_ops: c.u64()?,
        vec_mem_instrs: c.u64()?,
        scalar_mem_instrs: c.u64()?,
        port_accesses: c.u64()?,
        l2_activity: c.u64()?,
        vec_words: c.u64()?,
        mov3d_instrs: c.u64()?,
        mov3d_words: c.u64()?,
        d3_writes: c.u64()?,
        l2_scalar_accesses: c.u64()?,
        l2_hits: c.u64()?,
        l2_misses: c.u64()?,
        l1_accesses: c.u64()?,
        coherence_invalidations: c.u64()?,
        dram_row_hits: c.u64()?,
        dram_row_misses: c.u64()?,
    })
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness + server-identity probe.
    Ping,
    /// Simulate one cell.
    Sim(SimKey),
    /// Simulate a grid, streaming results.
    Sweep(Vec<SimKey>),
    /// Counter snapshot.
    Stats,
    /// Stop the server.
    Shutdown,
    /// A shard worker asking the coordinator for its next cell batch.
    ShardClaim {
        /// The worker's self-reported id (attributes per-worker stats).
        worker: u32,
    },
    /// One completed cell streamed back to the coordinator.
    CellDone {
        /// Which cell.
        key: SimKey,
        /// Wall-clock of the cell's simulation, nanoseconds.
        wall_ns: u64,
        /// The cell's metrics, bit-identical to in-process execution.
        metrics: Metrics,
    },
    /// The worker finished its current grant (every `CELL_DONE` of the
    /// batch was streamed); the coordinator acks with `DONE`.
    ShardFin {
        /// Cells the worker completed in this grant.
        completed: u32,
    },
}

impl Request {
    /// Encodes the request as `(opcode, payload)` for [`write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Ping => (OP_PING, Vec::new()),
            Request::Sim(key) => {
                let mut p = Vec::with_capacity(32);
                put_sim_key(&mut p, key);
                (OP_SIM, p)
            }
            Request::Sweep(cells) => {
                let mut p = Vec::with_capacity(8 + 32 * cells.len());
                p.extend_from_slice(&(cells.len() as u32).to_le_bytes());
                for key in cells {
                    put_sim_key(&mut p, key);
                }
                (OP_SWEEP, p)
            }
            Request::Stats => (OP_STATS, Vec::new()),
            Request::Shutdown => (OP_SHUTDOWN, Vec::new()),
            Request::ShardClaim { worker } => (OP_SHARD_CLAIM, worker.to_le_bytes().to_vec()),
            Request::CellDone { key, wall_ns, metrics } => {
                let mut p = Vec::with_capacity(32 + 8 + 18 * 8);
                put_sim_key(&mut p, key);
                p.extend_from_slice(&wall_ns.to_le_bytes());
                put_metrics(&mut p, metrics);
                (OP_CELL_DONE, p)
            }
            Request::ShardFin { completed } => (OP_SHARD_FIN, completed.to_le_bytes().to_vec()),
        }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] with [`ERR_UNSUPPORTED`] for non-request opcodes,
    /// [`ERR_TOO_MANY_CELLS`] for an oversized sweep, and
    /// [`ERR_MALFORMED`]/[`ERR_UNKNOWN_BACKEND`] for bad payloads; the
    /// server echoes the code and message back to the client.
    pub fn decode(frame: &Frame) -> Result<Request, WireError> {
        let mut c = Cursor { bytes: &frame.payload, pos: 0 };
        let req = match frame.opcode {
            OP_PING => Request::Ping,
            OP_SIM => Request::Sim(read_sim_key(&mut c)?),
            OP_SWEEP => {
                let n = c.u32()?;
                if n > MAX_SWEEP_CELLS {
                    return Err(WireError {
                        code: ERR_TOO_MANY_CELLS,
                        message: format!(
                            "sweep of {n} cells exceeds the {MAX_SWEEP_CELLS}-cell limit"
                        ),
                    });
                }
                let mut cells = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    cells.push(read_sim_key(&mut c)?);
                }
                Request::Sweep(cells)
            }
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_SHARD_CLAIM => Request::ShardClaim { worker: c.u32()? },
            OP_CELL_DONE => {
                let key = read_sim_key(&mut c)?;
                let wall_ns = c.u64()?;
                let metrics = read_metrics(&mut c)?;
                Request::CellDone { key, wall_ns, metrics }
            }
            OP_SHARD_FIN => Request::ShardFin { completed: c.u32()? },
            op => {
                return Err(WireError {
                    code: ERR_UNSUPPORTED,
                    message: format!("opcode {op:#04x} is not a request"),
                })
            }
        };
        c.finish()?;
        Ok(req)
    }
}

/// The `PONG` payload: enough server identity for a client to replay
/// the server's work locally (the load generator's bit-identity check
/// needs the seed and geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The server's workload data seed.
    pub seed: u64,
    /// True when the server simulates reduced-geometry workloads.
    pub small: bool,
    /// Simulation worker threads.
    pub threads: u32,
}

/// One streamed cell result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellReply {
    /// The echoed cell key (sweep streams complete out of order).
    pub key: SimKey,
    /// True when the metrics came straight from the resident memo table
    /// (no simulation scheduled by this request).
    pub memo_hit: bool,
    /// The cell's metrics, bit-identical to in-process execution.
    pub metrics: Metrics,
}

/// Server counters, as reported by `STATS` (cumulative since boot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Connections accepted.
    pub connections: u64,
    /// Well-formed requests served.
    pub requests: u64,
    /// Cells answered from the resident memo table.
    pub memo_hits: u64,
    /// Cells that scheduled a fresh simulation.
    pub memo_misses: u64,
    /// Cells that attached to an identical in-flight simulation instead
    /// of scheduling their own.
    pub memo_coalesced: u64,
    /// Simulations actually executed by the worker pool.
    pub sims_executed: u64,
    /// Workloads built (or image-cache-loaded) into residence.
    pub workloads_built: u64,
    /// Frame-level protocol errors (connection dropped each time).
    pub protocol_errors: u64,
    /// `RESULT` frames streamed.
    pub results_streamed: u64,
    /// Requests shed with [`ERR_OVERLOADED`] (queue full or draining).
    pub shed: u64,
    /// Connections refused at accept time (connection cap reached).
    pub refused_connections: u64,
}

impl ServeCounters {
    fn fields(&self) -> [u64; 11] {
        let ServeCounters {
            connections,
            requests,
            memo_hits,
            memo_misses,
            memo_coalesced,
            sims_executed,
            workloads_built,
            protocol_errors,
            results_streamed,
            shed,
            refused_connections,
        } = *self;
        [
            connections,
            requests,
            memo_hits,
            memo_misses,
            memo_coalesced,
            sims_executed,
            workloads_built,
            protocol_errors,
            results_streamed,
            shed,
            refused_connections,
        ]
    }
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `PING`.
    Pong(Hello),
    /// One cell's result (replies to `SIM`; streamed for `SWEEP`).
    Result(CellReply),
    /// End of a `SWEEP` stream; carries the number of `RESULT` frames
    /// that preceded it.
    Done {
        /// `RESULT` frames streamed for this sweep.
        results: u32,
    },
    /// Reply to `STATS`.
    Stats(ServeCounters),
    /// An error, at request level (connection still usable) or protocol
    /// level ([`ERR_PROTOCOL`] — the server closes after sending).
    Error {
        /// One of the `ERR_*` codes.
        code: u8,
        /// Human-readable description.
        message: String,
    },
    /// Shutdown acknowledged.
    Bye,
    /// Reply to `SHARD_CLAIM`: the worker's next batch. The seed and
    /// geometry ride along so a worker needs **no** configuration beyond
    /// the coordinator's address — it builds its [`crate::Runner`] from
    /// the grant. An empty batch means the sweep is complete and the
    /// worker should exit.
    ShardGrant {
        /// The coordinator's workload data seed.
        seed: u64,
        /// True when reduced-geometry workloads are swept.
        small: bool,
        /// The granted cells (empty = no more work, exit).
        cells: Vec<SimKey>,
    },
}

impl Response {
    /// Encodes the response as `(opcode, payload)` for [`write_frame`].
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Pong(h) => {
                let mut p = Vec::with_capacity(13);
                p.extend_from_slice(&h.seed.to_le_bytes());
                p.push(h.small as u8);
                p.extend_from_slice(&h.threads.to_le_bytes());
                (OP_PONG, p)
            }
            Response::Result(r) => {
                let mut p = Vec::with_capacity(32 + 18 * 8);
                put_sim_key(&mut p, &r.key);
                p.push(r.memo_hit as u8);
                put_metrics(&mut p, &r.metrics);
                (OP_RESULT, p)
            }
            Response::Done { results } => (OP_DONE, results.to_le_bytes().to_vec()),
            Response::Stats(s) => {
                let fields = s.fields();
                let mut p = Vec::with_capacity(4 + 8 * fields.len());
                p.extend_from_slice(&(fields.len() as u32).to_le_bytes());
                for v in fields {
                    p.extend_from_slice(&v.to_le_bytes());
                }
                (OP_STATS_REPLY, p)
            }
            Response::Error { code, message } => {
                let mut p = Vec::with_capacity(5 + message.len());
                p.push(*code);
                let msg = message.as_bytes();
                p.extend_from_slice(&(msg.len() as u32).to_le_bytes());
                p.extend_from_slice(msg);
                (OP_ERROR, p)
            }
            Response::Bye => (OP_BYE, Vec::new()),
            Response::ShardGrant { seed, small, cells } => {
                let mut p = Vec::with_capacity(13 + 32 * cells.len());
                p.extend_from_slice(&seed.to_le_bytes());
                p.push(*small as u8);
                p.extend_from_slice(&(cells.len() as u32).to_le_bytes());
                for key in cells {
                    put_sim_key(&mut p, key);
                }
                (OP_SHARD_GRANT, p)
            }
        }
    }

    /// Decodes a response frame (the client side of the codec).
    ///
    /// # Errors
    ///
    /// [`WireError`] when the frame is not a valid response.
    pub fn decode(frame: &Frame) -> Result<Response, WireError> {
        let mut c = Cursor { bytes: &frame.payload, pos: 0 };
        let resp = match frame.opcode {
            OP_PONG => {
                let seed = c.u64()?;
                let small = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::malformed("non-boolean geometry flag")),
                };
                let threads = c.u32()?;
                Response::Pong(Hello { seed, small, threads })
            }
            OP_RESULT => {
                let key = read_sim_key(&mut c)?;
                let memo_hit = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::malformed("non-boolean memo-hit flag")),
                };
                let metrics = read_metrics(&mut c)?;
                Response::Result(CellReply { key, memo_hit, metrics })
            }
            OP_DONE => Response::Done { results: c.u32()? },
            OP_STATS_REPLY => {
                let n = c.u32()? as usize;
                // Forward-compatible: a newer server may append counters;
                // read the ones this build knows and skip the rest.
                let mut fields = [0u64; 11];
                for (i, f) in fields.iter_mut().enumerate() {
                    if i < n {
                        *f = c.u64()?;
                    }
                }
                for _ in fields.len()..n {
                    c.u64()?;
                }
                let [connections, requests, memo_hits, memo_misses, memo_coalesced, sims_executed, workloads_built, protocol_errors, results_streamed, shed, refused_connections] =
                    fields;
                Response::Stats(ServeCounters {
                    connections,
                    requests,
                    memo_hits,
                    memo_misses,
                    memo_coalesced,
                    sims_executed,
                    workloads_built,
                    protocol_errors,
                    results_streamed,
                    shed,
                    refused_connections,
                })
            }
            OP_ERROR => {
                let code = c.u8()?;
                let len = c.u32()? as usize;
                let message = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| WireError::malformed("non-UTF-8 error message"))?
                    .to_string();
                Response::Error { code, message }
            }
            OP_BYE => Response::Bye,
            OP_SHARD_GRANT => {
                let seed = c.u64()?;
                let small = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::malformed("non-boolean geometry flag")),
                };
                let n = c.u32()?;
                if n > MAX_SWEEP_CELLS {
                    return Err(WireError {
                        code: ERR_TOO_MANY_CELLS,
                        message: format!(
                            "grant of {n} cells exceeds the {MAX_SWEEP_CELLS}-cell limit"
                        ),
                    });
                }
                let mut cells = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    cells.push(read_sim_key(&mut c)?);
                }
                Response::ShardGrant { seed, small, cells }
            }
            op => {
                return Err(WireError::malformed(match op {
                    OP_PING | OP_SIM | OP_SWEEP | OP_STATS | OP_SHUTDOWN | OP_SHARD_CLAIM
                    | OP_CELL_DONE | OP_SHARD_FIN => "request opcode in a response stream",
                    _ => "unknown response opcode",
                }))
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// Where a server listens / a client connects: a TCP address or a
/// unix-domain socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP, e.g. `127.0.0.1:7733`.
    Tcp(String),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Connects a client stream.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// True when this is a TCP endpoint with a resolvable address.
    pub fn is_tcp(&self) -> bool {
        matches!(self, Endpoint::Tcp(_))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A connected byte stream over either transport — optionally wrapped
/// in the deterministic fault injector ([`crate::faults::ChaosStream`])
/// so the chaos layer composes with everything built on [`Stream`].
#[derive(Debug)]
pub enum Stream {
    /// TCP connection (Nagle disabled — frames are latency-sensitive).
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
    /// A stream with a seeded fault plan spliced in.
    Chaos(Box<crate::faults::ChaosStream>),
}

impl Stream {
    /// Half-closes the write side, signalling end-of-requests.
    pub fn shutdown_write(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
            Stream::Chaos(c) => return c.inner().shutdown_write(),
        };
    }

    /// Tears the connection down in both directions (used by the chaos
    /// layer's `drop`/`truncate` faults and by error paths that must
    /// unstick a peer blocked on the other half).
    pub fn shutdown_all(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Chaos(c) => return c.inner().shutdown_all(),
        };
    }

    /// Deadline for blocking reads; `None` blocks forever. Expiry
    /// surfaces as [`FrameError::TimedOut`] from [`read_frame`], after
    /// which the stream must be discarded (framing may be lost).
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) {
        let _ = match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Chaos(c) => return c.inner().set_read_timeout(timeout),
        };
    }

    /// Deadline for blocking writes; `None` blocks forever. A
    /// black-holed peer that never drains its socket surfaces here
    /// instead of wedging the writer thread.
    pub fn set_write_timeout(&self, timeout: Option<std::time::Duration>) {
        let _ = match self {
            Stream::Tcp(s) => s.set_write_timeout(timeout),
            Stream::Unix(s) => s.set_write_timeout(timeout),
            Stream::Chaos(c) => return c.inner().set_write_timeout(timeout),
        };
    }

    /// A second handle to the same connection (the chaos proxy pumps
    /// each direction from its own thread). Chaos-wrapped streams do
    /// not clone — the fault plan is single-threaded by design.
    ///
    /// # Errors
    ///
    /// Propagates the OS error; `InvalidInput` for a chaos stream.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Chaos(_) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a chaos-wrapped stream cannot be cloned",
            )),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
            Stream::Chaos(c) => c.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
            Stream::Chaos(c) => c.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
            Stream::Chaos(c) => c.flush(),
        }
    }
}

/// A blocking request/response client over a [`Stream`].
///
/// The load generator, the smoke tests and ad-hoc tooling all speak
/// through this; raw [`write_frame`]/[`read_frame`] stay available for
/// tests that need to send deliberately damaged bytes.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
    io_timeout: std::cell::Cell<Option<std::time::Duration>>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Client> {
        Ok(Client::from_stream(endpoint.connect()?))
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: Stream) -> Client {
        Client { stream, io_timeout: std::cell::Cell::new(None) }
    }

    /// Arms one deadline on both directions of the connection. Expiry
    /// surfaces from [`Client::recv`] as `io::ErrorKind::TimedOut`; the
    /// client must then be discarded (a timeout can strike mid-frame).
    /// Mid-frame reads are additionally capped at
    /// [`MID_FRAME_TIMEOUT`], so a lying length prefix cannot hold the
    /// client for the full idle deadline.
    pub fn set_io_timeout(&self, timeout: Option<std::time::Duration>) {
        self.io_timeout.set(timeout);
        self.stream.set_read_timeout(timeout);
        self.stream.set_write_timeout(timeout);
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let (opcode, payload) = req.encode();
        write_frame(&mut self.stream, opcode, &payload)
    }

    /// Reads one response frame.
    ///
    /// # Errors
    ///
    /// [`FrameError`] for transport/framing problems, mapped into the
    /// same `io::Error` space; a [`WireError`] payload problem is
    /// `InvalidData`.
    pub fn recv(&mut self) -> io::Result<Response> {
        let idle = self.io_timeout.get();
        let frame = read_frame_deadlined(&mut self.stream, idle).map_err(|e| match e {
            FrameError::Io(io) => io,
            FrameError::Closed => {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
            }
            FrameError::TimedOut => {
                io::Error::new(io::ErrorKind::TimedOut, "read deadline elapsed")
            }
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        Response::decode(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// One request/response round trip.
    ///
    /// # Errors
    ///
    /// See [`Client::send`] and [`Client::recv`].
    pub fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// The underlying stream (e.g. to drop it mid-conversation).
    pub fn into_stream(self) -> Stream {
        self.stream
    }
}

// ---------------------------------------------------------------------------
// Retrying client
// ---------------------------------------------------------------------------

/// How a [`RetryClient`] paces itself: per-frame I/O deadline, retry
/// budget, and the seeded backoff schedule ([`Backoff`]) it sleeps by.
/// Retries are idempotent by construction — every request is a
/// [`SimKey`] and server replies are memoized — so the only cost of a
/// retry is latency.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Consecutive attempts without progress before giving up. Progress
    /// (any new cell received) resets the count, so a long sweep can
    /// survive many spread-out faults while a dead server still fails
    /// in bounded time.
    pub attempts: u32,
    /// First backoff rung.
    pub base_delay: Duration,
    /// Backoff saturation.
    pub max_delay: Duration,
    /// Per-frame read/write deadline on every connection
    /// ([`Client::set_io_timeout`]); `None` trusts the peer forever.
    pub io_timeout: Option<Duration>,
    /// Seed of the jitter stream (and of client-side chaos lanes).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            // Generous: a cold full-geometry cell can simulate for a
            // while before its first RESULT frame appears.
            io_timeout: Some(Duration::from_secs(120)),
            seed: 0x4d4f_4d33, // "MOM3"
        }
    }
}

/// Fault-class counters a [`RetryClient`] accumulates — the load
/// generator merges these into `BENCH_serve.json`'s `faults` block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Read/write deadlines that expired (connection discarded each
    /// time).
    pub timeouts: u64,
    /// Re-attempts after any failure (reconnects included).
    pub retries: u64,
    /// [`ERR_OVERLOADED`] replies absorbed.
    pub sheds: u64,
    /// Requests that were shed at least once and later completed —
    /// the backpressure loop working as designed.
    pub shed_then_succeeded: u64,
}

enum Attempt {
    /// The request completed (possibly with partial progress recorded).
    Done(Response),
    /// Server shed the request ([`ERR_OVERLOADED`]); connection usable.
    Shed,
    /// Transient failure (the connection was already discarded by
    /// [`RetryClient::fail`] when framing was lost).
    Retry { error: io::Error },
}

/// A [`Client`] wrapped in deadlines, reconnects and seeded
/// exponential backoff: the resilience half of the chaos layer. Used by
/// the load generator, the tuner's remote executor and ad-hoc tooling;
/// the shard worker implements the same discipline over its
/// claim/stream conversation in [`crate::shard`].
///
/// With a [`ChaosConfig`] attached ([`RetryClient::with_chaos`]), every
/// connection it dials is wrapped in a [`ChaosStream`] whose fault lane
/// is the connection's sequence number — so a same-seed run dials the
/// same connections, suffers the same faults and recovers through the
/// same path, making the fault counters reproducible.
#[derive(Debug)]
pub struct RetryClient {
    endpoint: Endpoint,
    policy: RetryPolicy,
    chaos: Option<ChaosConfig>,
    conn_seq: u64,
    client: Option<Client>,
    backoff: Backoff,
    counters: FaultCounters,
}

impl RetryClient {
    /// A retrying client for `endpoint`.
    pub fn new(endpoint: Endpoint, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            endpoint,
            policy,
            chaos: None,
            conn_seq: 0,
            client: None,
            backoff: Backoff::new(policy.seed, policy.base_delay, policy.max_delay),
            counters: FaultCounters::default(),
        }
    }

    /// Like [`RetryClient::new`], with client-side fault injection on
    /// every dialed connection.
    pub fn with_chaos(
        endpoint: Endpoint,
        policy: RetryPolicy,
        chaos: Option<ChaosConfig>,
    ) -> RetryClient {
        RetryClient { chaos, ..RetryClient::new(endpoint, policy) }
    }

    /// The dialed endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Fault counters accumulated so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    fn connected(&mut self) -> io::Result<&mut Client> {
        if self.client.is_none() {
            let mut stream = self.endpoint.connect()?;
            if let Some(chaos) = &self.chaos {
                let plan = FaultPlan::new(chaos, self.conn_seq);
                stream = Stream::Chaos(Box::new(ChaosStream::wrap(stream, plan)));
            }
            self.conn_seq += 1;
            let client = Client::from_stream(stream);
            client.set_io_timeout(self.policy.io_timeout);
            self.client = Some(client);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    fn fail(&mut self, error: io::Error, drop_conn: bool) -> Attempt {
        if is_timeout(&error) {
            self.counters.timeouts += 1;
        }
        if drop_conn {
            self.client = None;
        }
        Attempt::Retry { error }
    }

    /// Classifies one response within a request conversation. Typed
    /// errors that keep the connection usable retry in place; framing
    /// loss ([`ERR_PROTOCOL`], [`ERR_TIMEOUT`]) reconnects first.
    /// [`ERR_UNSUPPORTED`] also reconnects and retries: the frame
    /// checksum does not cover the header, so wire damage can rewrite
    /// an opcode into a well-formed garbage request — indistinguishable
    /// from a misdirected client. Against a server that genuinely does
    /// not speak the opcode, the bounded attempt budget surfaces the
    /// redirect error anyway.
    fn classify(&mut self, resp: Response) -> Attempt {
        match resp {
            Response::Error { code: ERR_OVERLOADED, .. } => {
                self.counters.sheds += 1;
                Attempt::Shed
            }
            Response::Error { code: ERR_SIM_FAILED, message } => {
                self.fail(io::Error::other(format!("server: {message}")), false)
            }
            Response::Error {
                code: code @ (ERR_PROTOCOL | ERR_TIMEOUT | ERR_UNSUPPORTED),
                message,
            } => self.fail(io::Error::other(format!("server: {message} (code {code})")), true),
            other => Attempt::Done(other),
        }
    }

    fn one_round_trip(&mut self, req: &Request) -> Attempt {
        let client = match self.connected() {
            Ok(c) => c,
            Err(e) => return self.fail(e, true),
        };
        match client.round_trip(req) {
            Ok(resp) => self.classify(resp),
            Err(e) => self.fail(e, true),
        }
    }

    /// One request/response exchange with deadlines, reconnects and
    /// backoff. Fatal replies (unknown backend, malformed, …) are
    /// returned as responses — only transport faults, shed requests and
    /// transient server failures retry.
    ///
    /// # Errors
    ///
    /// The last transport error once the retry budget is spent.
    pub fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        let mut shed_pending = false;
        let mut strikes = 0u32;
        loop {
            let error = match self.one_round_trip(req) {
                Attempt::Done(resp) => {
                    if shed_pending {
                        self.counters.shed_then_succeeded += 1;
                    }
                    self.backoff.reset();
                    return Ok(resp);
                }
                Attempt::Shed => {
                    shed_pending = true;
                    io::Error::other("server overloaded")
                }
                Attempt::Retry { error, .. } => error,
            };
            strikes += 1;
            if strikes >= self.policy.attempts {
                return Err(error);
            }
            self.counters.retries += 1;
            std::thread::sleep(self.backoff.next_delay());
        }
    }

    /// Pings the server, retrying, and returns its identity.
    ///
    /// # Errors
    ///
    /// Transport exhaustion, or `InvalidData` for a non-`PONG` reply.
    pub fn ping(&mut self) -> io::Result<Hello> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong(hello) => Ok(hello),
            other => Err(unexpected_reply("PING", &other)),
        }
    }

    /// Server counter snapshot, retrying.
    ///
    /// # Errors
    ///
    /// Transport exhaustion, or `InvalidData` for a non-stats reply.
    pub fn stats(&mut self) -> io::Result<ServeCounters> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(counters) => Ok(counters),
            other => Err(unexpected_reply("STATS", &other)),
        }
    }

    /// Simulates one cell, retrying until the reply arrives or the
    /// budget is spent.
    ///
    /// # Errors
    ///
    /// Transport exhaustion, or `Other` with the server's message for a
    /// fatal typed error.
    pub fn sim(&mut self, key: &SimKey) -> io::Result<CellReply> {
        match self.round_trip(&Request::Sim(*key))? {
            Response::Result(reply) => Ok(reply),
            Response::Error { code, message } => {
                Err(io::Error::other(format!("server refused SIM: {message} (code {code})")))
            }
            other => Err(unexpected_reply("SIM", &other)),
        }
    }

    /// Sweeps `cells`, resuming across reconnects: after any fault only
    /// the still-undelivered cells are re-requested (the memoized
    /// server answers the rest for free), so a mid-`SWEEP` reconnect
    /// costs latency, never duplicated simulation. Oversized grids are
    /// chunked by [`MAX_SWEEP_CELLS`]. Replies come back in `cells`
    /// order (first occurrence, for duplicated keys).
    ///
    /// # Errors
    ///
    /// Transport exhaustion with no progress, or a fatal typed error.
    pub fn sweep(&mut self, cells: &[SimKey]) -> io::Result<Vec<CellReply>> {
        // Dedup preserving first-occurrence order; the server streams
        // unique cells only.
        let mut order: Vec<SimKey> = Vec::with_capacity(cells.len());
        for key in cells {
            if !order.contains(key) {
                order.push(*key);
            }
        }
        let mut got: HashMap<SimKey, CellReply> = HashMap::with_capacity(order.len());
        for chunk in order.chunks(MAX_SWEEP_CELLS as usize) {
            self.sweep_chunk(chunk, &mut got)?;
        }
        Ok(order.iter().map(|key| got[key]).collect())
    }

    fn sweep_chunk(
        &mut self,
        chunk: &[SimKey],
        got: &mut HashMap<SimKey, CellReply>,
    ) -> io::Result<()> {
        let mut shed_pending = false;
        let mut strikes = 0u32;
        loop {
            let remaining: Vec<SimKey> =
                chunk.iter().filter(|k| !got.contains_key(k)).copied().collect();
            if remaining.is_empty() {
                break;
            }
            let (progress, outcome) = self.sweep_once(&remaining, got);
            if progress {
                self.backoff.reset();
                strikes = 0;
                if shed_pending {
                    self.counters.shed_then_succeeded += 1;
                    shed_pending = false;
                }
            }
            let error = match outcome {
                Ok(()) if progress => continue,
                // A clean stream that delivered nothing means every
                // remaining cell failed server-side. Re-requesting is
                // still right (the failure may be transient), but it
                // must burn a strike with backoff: a deterministically
                // failing cell would otherwise spin this loop — and the
                // server's simulator — forever.
                Ok(()) => io::Error::other(format!(
                    "server failed all {} remaining sweep cell(s)",
                    remaining.len()
                )),
                Err(Attempt::Done(resp)) => return Err(unexpected_reply("SWEEP", &resp)),
                Err(Attempt::Shed) => {
                    shed_pending = true;
                    io::Error::other("server overloaded")
                }
                Err(Attempt::Retry { error, .. }) => error,
            };
            strikes += 1;
            if strikes >= self.policy.attempts {
                return Err(error);
            }
            self.counters.retries += 1;
            std::thread::sleep(self.backoff.next_delay());
        }
        Ok(())
    }

    /// One `SWEEP` conversation over the current connection. Returns
    /// whether any new cell arrived, and `Ok` when the stream finished
    /// cleanly (some cells may still be missing — e.g. individual
    /// `ERR_SIM_FAILED` replies — and are re-requested by the caller).
    fn sweep_once(
        &mut self,
        remaining: &[SimKey],
        got: &mut HashMap<SimKey, CellReply>,
    ) -> (bool, Result<(), Attempt>) {
        let mut progress = false;
        let client = match self.connected() {
            Ok(c) => c,
            Err(e) => return (false, Err(self.fail(e, true))),
        };
        if let Err(e) = client.send(&Request::Sweep(remaining.to_vec())) {
            return (false, Err(self.fail(e, true)));
        }
        loop {
            let resp = match self.client.as_mut().expect("connected above").recv() {
                Ok(resp) => resp,
                Err(e) => return (progress, Err(self.fail(e, true))),
            };
            match resp {
                Response::Result(reply) => {
                    if remaining.contains(&reply.key) {
                        got.insert(reply.key, reply);
                        progress = true;
                    }
                }
                Response::Done { .. } => return (progress, Ok(())),
                Response::Error { code: ERR_SIM_FAILED, .. } => {
                    // One cell failed transiently; the stream carries on
                    // and the caller re-requests the stragglers.
                }
                other => return (progress, Err(self.classify(other))),
            }
        }
    }

    /// Asks the server to shut down (single shot — a dying server often
    /// cannot ack, so no retry loop).
    ///
    /// # Errors
    ///
    /// Propagates the transport error.
    pub fn request_shutdown(&mut self) -> io::Result<()> {
        let client = self.connected()?;
        let _ = client.round_trip(&Request::Shutdown)?;
        self.client = None;
        Ok(())
    }
}

fn unexpected_reply(context: &str, resp: &Response) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected reply to {context}: {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom3d_cpu::MemorySystemKind;

    fn key() -> SimKey {
        SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 20,
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_PING, &[]).unwrap();
        write_frame(&mut buf, OP_SIM, b"payload").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Frame { opcode: OP_PING, payload: vec![] });
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Frame { opcode: OP_SIM, payload: b"payload".to_vec() }
        );
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn damaged_frames_are_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_SIM, b"some payload bytes").unwrap();

        // Truncation mid-frame.
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut { cut }), Err(FrameError::Io(_))));

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(FrameError::BadMagic(_))));

        // Absurd length prefix.
        let mut huge = buf.clone();
        huge[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_frame(&mut huge.as_slice()), Err(FrameError::Oversized(_))));

        // Payload bit flip.
        let mut flipped = buf;
        flipped[12] ^= 0x10;
        assert!(matches!(read_frame(&mut flipped.as_slice()), Err(FrameError::Checksum)));
    }

    #[test]
    fn a_lying_length_prefix_cannot_block_past_the_mid_frame_deadline() {
        use std::time::{Duration, Instant};
        // A header whose length field claims 64 payload bytes, followed
        // by only 3 — the on-the-wire shape of a bit-flipped length
        // prefix. The checksum trailer cannot catch this (it is read
        // *after* the payload), so only the mid-frame deadline can.
        let (reader, writer) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut reader = Stream::Unix(reader);
        let idle = Some(Duration::from_secs(30));
        reader.set_read_timeout(idle);
        let mut lying = Vec::new();
        lying.extend_from_slice(&PROTOCOL_MAGIC);
        lying.push(OP_PING);
        lying.extend_from_slice(&64u32.to_le_bytes());
        lying.extend_from_slice(&[1, 2, 3]);
        (&writer).write_all(&lying).unwrap();

        let start = Instant::now();
        let err = read_frame_deadlined_with(&mut reader, idle, Duration::from_millis(50))
            .expect_err("the claimed payload never arrives");
        assert!(matches!(err, FrameError::TimedOut), "got {err:?}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "the reader blocked for the idle window, not the mid-frame bound"
        );
        drop(writer);
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Sim(key()),
            Request::Sweep(vec![key(), SimKey { l2_latency: 40, ..key() }]),
            Request::Stats,
            Request::Shutdown,
            Request::ShardClaim { worker: 3 },
            Request::CellDone {
                key: key(),
                wall_ns: 123_456,
                metrics: Metrics { cycles: 9, l2_misses: 2, ..Default::default() },
            },
            Request::ShardFin { completed: 17 },
        ];
        for req in reqs {
            let (opcode, payload) = req.encode();
            let back = Request::decode(&Frame { opcode, payload }).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Pong(Hello { seed: 7, small: true, threads: 4 }),
            Response::Result(CellReply {
                key: key(),
                memo_hit: true,
                metrics: Metrics { cycles: 123, dram_row_misses: 9, ..Default::default() },
            }),
            Response::Done { results: 42 },
            Response::Stats(ServeCounters {
                connections: 1,
                requests: 2,
                memo_hits: 3,
                memo_misses: 4,
                memo_coalesced: 5,
                sims_executed: 6,
                workloads_built: 7,
                protocol_errors: 8,
                results_streamed: 9,
                shed: 10,
                refused_connections: 11,
            }),
            Response::Error { code: ERR_MALFORMED, message: "nope".into() },
            Response::Bye,
            Response::ShardGrant { seed: 11, small: false, cells: vec![key()] },
            Response::ShardGrant { seed: 11, small: true, cells: vec![] },
        ];
        for resp in resps {
            let (opcode, payload) = resp.encode();
            let back = Response::decode(&Frame { opcode, payload }).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn bad_payloads_are_typed_errors() {
        // Unknown backend id.
        let mut p = Vec::new();
        p.push(0);
        p.push(0);
        p.extend_from_slice(&20u32.to_le_bytes());
        p.extend_from_slice(&7u16.to_le_bytes());
        p.extend_from_slice(b"badback");
        let err = Request::decode(&Frame { opcode: OP_SIM, payload: p }).unwrap_err();
        assert_eq!(err.code, ERR_UNKNOWN_BACKEND);

        // Unknown kind code.
        let err = Request::decode(&Frame { opcode: OP_SIM, payload: vec![200] }).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);

        // Truncated SIM payload.
        let err = Request::decode(&Frame { opcode: OP_SIM, payload: vec![0] }).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);

        // Trailing bytes.
        let (opcode, mut payload) = Request::Sim(key()).encode();
        payload.push(0xAA);
        let err = Request::decode(&Frame { opcode, payload }).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);

        // Oversized sweep.
        let mut p = Vec::new();
        p.extend_from_slice(&(MAX_SWEEP_CELLS + 1).to_le_bytes());
        let err = Request::decode(&Frame { opcode: OP_SWEEP, payload: p }).unwrap_err();
        assert_eq!(err.code, ERR_TOO_MANY_CELLS);

        // Response opcode sent as a request.
        let err = Request::decode(&Frame { opcode: OP_PONG, payload: vec![] }).unwrap_err();
        assert_eq!(err.code, ERR_UNSUPPORTED);
    }

    #[test]
    fn bad_shard_payloads_are_typed_errors() {
        // Truncated CLAIM (worker id cut short).
        let err =
            Request::decode(&Frame { opcode: OP_SHARD_CLAIM, payload: vec![1, 2] }).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);

        // CELL_DONE cut off inside the metrics block.
        let (opcode, mut payload) = Request::CellDone {
            key: key(),
            wall_ns: 1,
            metrics: Metrics::default(),
        }
        .encode();
        payload.truncate(payload.len() - 5);
        let err = Request::decode(&Frame { opcode, payload }).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);

        // Trailing bytes after a FIN.
        let err = Request::decode(&Frame { opcode: OP_SHARD_FIN, payload: vec![0; 5] }).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);

        // A grant claiming more cells than the sweep bound.
        let mut p = Vec::new();
        p.extend_from_slice(&7u64.to_le_bytes());
        p.push(0);
        p.extend_from_slice(&(MAX_SWEEP_CELLS + 1).to_le_bytes());
        let err = Response::decode(&Frame { opcode: OP_SHARD_GRANT, payload: p }).unwrap_err();
        assert_eq!(err.code, ERR_TOO_MANY_CELLS);

        // A grant whose cell list lies about its length.
        let mut p = Vec::new();
        p.extend_from_slice(&7u64.to_le_bytes());
        p.push(1);
        p.extend_from_slice(&3u32.to_le_bytes());
        let err = Response::decode(&Frame { opcode: OP_SHARD_GRANT, payload: p }).unwrap_err();
        assert_eq!(err.code, ERR_MALFORMED);
    }

    #[test]
    fn stats_reply_skips_unknown_future_counters() {
        // A newer server appending a 12th counter must not break this
        // client: the extra field is skipped.
        let mut p = Vec::new();
        p.extend_from_slice(&12u32.to_le_bytes());
        for v in 1..=12u64 {
            p.extend_from_slice(&v.to_le_bytes());
        }
        let resp = Response::decode(&Frame { opcode: OP_STATS_REPLY, payload: p }).unwrap();
        let Response::Stats(s) = resp else { panic!("expected stats") };
        assert_eq!(s.connections, 1);
        assert_eq!(s.results_streamed, 9);
        assert_eq!(s.shed, 10);
        assert_eq!(s.refused_connections, 11);
    }

    #[test]
    fn an_older_stats_reply_zero_fills_the_new_counters() {
        // A 9-counter reply from a pre-backpressure server decodes with
        // shed/refused at zero.
        let mut p = Vec::new();
        p.extend_from_slice(&9u32.to_le_bytes());
        for v in 1..=9u64 {
            p.extend_from_slice(&v.to_le_bytes());
        }
        let resp = Response::decode(&Frame { opcode: OP_STATS_REPLY, payload: p }).unwrap();
        let Response::Stats(s) = resp else { panic!("expected stats") };
        assert_eq!(s.results_streamed, 9);
        assert_eq!(s.shed, 0);
        assert_eq!(s.refused_connections, 0);
    }
}
