//! # mom3d-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Binary | Paper result |
//! |--------|--------------|
//! | `fig3` | slowdown of realistic memory systems (MOM) |
//! | `fig6` | effective memory bandwidth (words/access) |
//! | `fig7` | vector-cache traffic reduction from 3D reuse |
//! | `fig9` | slowdown across ISA × memory-system configurations |
//! | `fig10` | normalized execution time vs. L2 latency (20/40/60) |
//! | `fig11` | L2 + 3D-RF average power per memory system |
//! | `table1` | per-dimension vector lengths of memory instructions |
//! | `table2` | processor configurations |
//! | `table3` | register-file areas (exact reproduction) |
//! | `table4` | L2 cache activity |
//! | `all` | everything above in paper order |
//! | `ablation` | beyond-paper ablations + a registry-driven sweep of every memory backend |
//!
//! Every binary accepts an optional seed argument
//! (`cargo run -p mom3d-bench --bin fig9 -- 42`). Workloads are verified
//! against their scalar references before being timed, so the harness
//! can only report numbers produced by functionally correct traces.
//!
//! Cold starts are cacheable across invocations: with `--cache-dir
//! PATH` (or `MOM3D_WORKLOAD_CACHE`), built-and-verified workloads are
//! persisted as versioned binary images and later invocations load
//! them instead of rebuilding ([`WorkloadCache`], [`Runner`]'s
//! `load_or_build`). Corrupt or stale images always fall back to a
//! rebuild. On a cache miss the cold path itself is pipelined: workload
//! builds and their emulator verify runs fan out as separate work items
//! over the sweep worker pool ([`sweep::prebuild_workloads`]).
//!
//! Every cell of the experiment matrix is an independent simulation, so
//! the binaries fill the [`Runner`] cache through the parallel [`sweep`]
//! engine (worker count: `--threads` on `all`, else
//! `MOM3D_SWEEP_THREADS`, default all cores) and only then format their
//! reports; `all` additionally writes the machine-readable
//! `BENCH_sweep.json` with wall-clock per cell (`--json`/
//! `MOM3D_SWEEP_JSON`).
//!
//! Memory systems are open-ended: cells are keyed by
//! [`mom3d_cpu::BackendId`], so any backend in the
//! [`mom3d_cpu::BackendRegistry`] can be swept. `all --all-backends`
//! extends the paper grid to every registered backend
//! ([`sweep::extended_grid`]) and prints the registry-driven
//! [`backend_matrix`] comparison.
//!
//! The harness is also servable: `mom3d-serve` keeps one [`Runner`],
//! the verified workloads and the `SimKey → Metrics` memo table
//! resident in a long-lived process and answers simulation requests
//! over a length-prefixed binary [`protocol`] (TCP or unix sockets),
//! deduplicating identical in-flight cells ([`memo`]) and streaming
//! sweep results as they complete ([`serve`]); `mom3d-load` replays
//! thousands of concurrent mixed requests against it, verifies every
//! reply bit-for-bit against in-process execution and writes
//! `BENCH_serve.json` with p50/p99 latency and requests/sec
//! ([`load`]).
//!
//! The design space is searchable: `mom3d-tune` explores backend
//! family × family parameters × L2 latency × ISA variant per workload
//! ([`tune`]) — exhaustively when a family's space fits the budget,
//! otherwise by deterministic seeded hill-climbing with restarts —
//! scoring every point on cycles, a capacitance-model energy estimate
//! and register-file area at once, and writes the non-dominated Pareto
//! frontier as `BENCH_tune.json` (schema `mom3d-tune/v1`, free of
//! wall-clock fields so same-seed runs are byte-identical). Evaluations
//! run through the local [`sweep`] engine or, with `--coordinator`, a
//! resident `mom3d-serve` process.
//!
//! Sweeps also scale out across processes: `mom3d-shard` partitions a
//! grid over worker processes that hydrate workloads from the shared
//! on-disk cache and stream per-cell metrics back over the same frame
//! [`protocol`] ([`shard`]). Completed cells are journaled to a
//! durable, checksummed [`manifest`], so a run killed at any point —
//! SIGKILL included — resumes without re-simulating finished cells,
//! and the merged report is bit-identical to a single-process sweep.
//!
//! The whole distributed stack is hostile-tested: [`faults`] is a
//! deterministic, seeded chaos layer (an in-process proxy plus stream
//! and file shims, reachable via `--chaos-seed`/`--chaos-profile` on
//! the server binaries) that drops, delays, stalls, truncates,
//! bit-flips and black-holes traffic from a SplitMix64 schedule, and
//! the stack survives it by construction: deadlines on every socket, a
//! retrying client with seeded backoff ([`protocol::RetryClient`]),
//! grant leases in the shard coordinator, and backpressure with typed
//! `ERR_OVERLOADED` shedding in the server — always bit-identical
//! metrics or a typed error, never a wrong answer, never a hang.
//!
//! **Place in the dataflow**: the top of the stack — the only crate
//! that depends on everything. It owns the experiment loop
//! (build → verify → time → report), the in-memory [`Runner`] cache,
//! the on-disk [`WorkloadCache`], the parallel [`sweep`] engine and
//! the resident simulation server; the committed `RESULTS.md`
//! paper-fidelity record is produced by its `all` binary.

mod cache;
pub mod cli;
pub mod faults;
pub mod json;
pub mod load;
pub mod manifest;
pub mod memo;
pub mod protocol;
mod report;
mod runner;
pub mod serve;
pub mod shard;
pub mod stats;
pub mod sweep;
pub mod tune;

pub use cache::{CacheStats, WorkloadCache};
pub use report::{
    backend_matrix, fig10, fig11, fig3, fig6, fig7, fig9, table1, table2, table3, table4, Fig10,
    Fig11, SlowdownReport, Table1, Table4, TrafficReport,
};
pub use runner::{Runner, SimKey, WorkloadTiming};

/// The standard entry point of the figure/table binaries: parses the
/// shared `[SEED] [--cache-dir PATH]` grammar from [`std::env::args`]
/// and returns a full-geometry [`Runner`] with the workload-image cache
/// resolved (flag, else `MOM3D_WORKLOAD_CACHE`, else none). Prints
/// usage and exits with status 2 on a parse error.
pub fn runner_from_args() -> Runner {
    match cli::parse_common_args(std::env::args().skip(1)) {
        Ok(args) => Runner::new(args.seed()).with_cache(args.cache()),
        Err(e) => {
            eprintln!("error: {e}\n{}", cli::COMMON_USAGE);
            std::process::exit(2);
        }
    }
}
