//! # mom3d-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Binary | Paper result |
//! |--------|--------------|
//! | `fig3` | slowdown of realistic memory systems (MOM) |
//! | `fig6` | effective memory bandwidth (words/access) |
//! | `fig7` | vector-cache traffic reduction from 3D reuse |
//! | `fig9` | slowdown across ISA × memory-system configurations |
//! | `fig10` | normalized execution time vs. L2 latency (20/40/60) |
//! | `fig11` | L2 + 3D-RF average power per memory system |
//! | `table1` | per-dimension vector lengths of memory instructions |
//! | `table2` | processor configurations |
//! | `table3` | register-file areas (exact reproduction) |
//! | `table4` | L2 cache activity |
//! | `all` | everything above in paper order |
//! | `ablation` | beyond-paper ablations + a registry-driven sweep of every memory backend |
//!
//! Every binary accepts an optional seed argument
//! (`cargo run -p mom3d-bench --bin fig9 -- 42`). Workloads are verified
//! against their scalar references before being timed, so the harness
//! can only report numbers produced by functionally correct traces.
//!
//! Every cell of the experiment matrix is an independent simulation, so
//! the binaries fill the [`Runner`] cache through the parallel [`sweep`]
//! engine (worker count: `--threads` on `all`, else
//! `MOM3D_SWEEP_THREADS`, default all cores) and only then format their
//! reports; `all` additionally writes the machine-readable
//! `BENCH_sweep.json` with wall-clock per cell (`--json`/
//! `MOM3D_SWEEP_JSON`).
//!
//! Memory systems are open-ended: cells are keyed by
//! [`mom3d_cpu::BackendId`], so any backend in the
//! [`mom3d_cpu::BackendRegistry`] can be swept. `all --all-backends`
//! extends the paper grid to every registered backend
//! ([`sweep::extended_grid`]) and prints the registry-driven
//! [`backend_matrix`] comparison.

pub mod cli;
mod report;
mod runner;
pub mod sweep;

pub use report::{
    backend_matrix, fig10, fig11, fig3, fig6, fig7, fig9, table1, table2, table3, table4, Fig10,
    Fig11, SlowdownReport, Table1, Table4, TrafficReport,
};
pub use runner::{Runner, SimKey, WorkloadTiming};

/// Parses the conventional single optional CLI seed argument.
pub fn seed_from_args() -> u64 {
    std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7)
}
