//! Argument parsing for the experiment binaries.
//!
//! `all` grew beyond the conventional single seed argument: thread
//! count and JSON path used to be controllable only through the
//! `MOM3D_SWEEP_THREADS`/`MOM3D_SWEEP_JSON` environment variables; the
//! `--threads`/`--json` flags now expose them directly (flags win over
//! the environment), `--all-backends` opts into sweeping every
//! registered memory backend instead of just the paper grid, and
//! `--cache-dir` points the cross-invocation workload-image cache at a
//! directory (overriding `MOM3D_WORKLOAD_CACHE`).
//!
//! The figure/table binaries share the smaller `[SEED] [--cache-dir
//! PATH]` grammar ([`parse_common_args`]).

use crate::cache::WorkloadCache;
use crate::faults::ChaosConfig;
use crate::protocol::Endpoint;
use crate::shard::{ShardConfig, WorkerConfig};
use std::path::PathBuf;

/// Parsed `all` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AllArgs {
    /// Workload data seed (positional; default 7).
    pub seed: Option<u64>,
    /// `--threads N`: sweep worker count (overrides
    /// `MOM3D_SWEEP_THREADS`).
    pub threads: Option<usize>,
    /// `--json PATH`: sweep report path (overrides `MOM3D_SWEEP_JSON`).
    pub json: Option<PathBuf>,
    /// `--all-backends`: sweep and report every registered backend, not
    /// just the four paper organizations.
    pub all_backends: bool,
    /// `--small`: sweep reduced-geometry workloads (the integration-test
    /// geometry) — a fast smoke of the whole pipeline, e.g. for CI
    /// schema checks of `BENCH_sweep.json`.
    pub small: bool,
    /// `--cache-dir PATH`: workload-image cache directory (overrides
    /// `MOM3D_WORKLOAD_CACHE`).
    pub cache_dir: Option<PathBuf>,
}

impl AllArgs {
    /// The seed to use.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(7)
    }

    /// Effective worker count: the flag, else the environment/default
    /// ([`crate::sweep::threads_from_env`]).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(crate::sweep::threads_from_env)
    }

    /// Effective JSON path: the flag, else the environment/default
    /// ([`crate::sweep::json_path_from_env`]).
    pub fn json_path(&self) -> PathBuf {
        self.json.clone().unwrap_or_else(crate::sweep::json_path_from_env)
    }

    /// Effective workload-image cache: the `--cache-dir` flag, else the
    /// `MOM3D_WORKLOAD_CACHE` environment variable, else none. An
    /// unusable directory degrades to no-cache with a warning (see
    /// [`WorkloadCache`]).
    pub fn cache(&self) -> Option<WorkloadCache> {
        WorkloadCache::resolve(self.cache_dir.as_deref())
    }
}

/// Usage string printed on parse errors.
pub const ALL_USAGE: &str = "usage: all [SEED] [--threads N] [--json PATH] [--all-backends] \
                             [--small] [--cache-dir PATH]";

/// Parses the `all` binary's arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing or
/// malformed flag values, and duplicate positional seeds.
pub fn parse_all_args<I>(args: I) -> Result<AllArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut parsed = AllArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--threads {v:?}: not an integer"))?;
                if n == 0 {
                    // Same policy as MOM3D_SWEEP_THREADS=0: zero is not
                    // a thread count, so warn and fall back to the
                    // environment/default instead of erroring — the two
                    // knobs configure the same thing and must not
                    // diverge.
                    eprintln!(
                        "warning: --threads 0 is not a thread count; \
                         using MOM3D_SWEEP_THREADS or the default"
                    );
                    parsed.threads = None;
                } else {
                    parsed.threads = Some(n);
                }
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a path")?;
                parsed.json = Some(PathBuf::from(v));
            }
            "--all-backends" => parsed.all_backends = true,
            "--small" => parsed.small = true,
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                parsed.cache_dir = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            positional => {
                if parsed.seed.is_some() {
                    return Err(format!("unexpected second positional argument {positional:?}"));
                }
                let seed: u64 =
                    positional.parse().map_err(|_| format!("seed {positional:?}: not an integer"))?;
                parsed.seed = Some(seed);
            }
        }
    }
    Ok(parsed)
}

/// Arguments shared by every figure/table binary: the conventional
/// optional seed plus the workload-image cache directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommonArgs {
    /// Workload data seed (positional; default 7).
    pub seed: Option<u64>,
    /// `--cache-dir PATH`: workload-image cache directory (overrides
    /// `MOM3D_WORKLOAD_CACHE`).
    pub cache_dir: Option<PathBuf>,
}

impl CommonArgs {
    /// The seed to use.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(7)
    }

    /// Effective workload-image cache (see [`AllArgs::cache`]).
    pub fn cache(&self) -> Option<WorkloadCache> {
        WorkloadCache::resolve(self.cache_dir.as_deref())
    }
}

/// Usage string for the shared figure/table grammar.
pub const COMMON_USAGE: &str = "usage: <binary> [SEED] [--cache-dir PATH]";

/// Parses the shared `[SEED] [--cache-dir PATH]` grammar (without the
/// program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing flag
/// values, malformed seeds and duplicate positional seeds.
pub fn parse_common_args<I>(args: I) -> Result<CommonArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut parsed = CommonArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                parsed.cache_dir = Some(PathBuf::from(v));
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?}"));
            }
            positional => {
                if parsed.seed.is_some() {
                    return Err(format!("unexpected second positional argument {positional:?}"));
                }
                let seed: u64 = positional
                    .parse()
                    .map_err(|_| format!("seed {positional:?}: not an integer"))?;
                parsed.seed = Some(seed);
            }
        }
    }
    Ok(parsed)
}

/// Parsed `mom3d-shard` arguments.
#[derive(Debug, Clone)]
pub struct ShardArgs {
    /// Everything [`crate::shard::coordinate`] needs.
    pub config: ShardConfig,
    /// `--grid extended`: sweep every registered backend
    /// ([`crate::sweep::extended_grid`]) instead of the paper grid.
    pub extended: bool,
    /// `--tcp ADDR | --unix PATH` (default: TCP with a kernel-assigned
    /// port).
    pub endpoint: Option<Endpoint>,
    /// `--json PATH`: merged-report path (overrides `MOM3D_SWEEP_JSON`).
    pub json: Option<PathBuf>,
}

impl ShardArgs {
    /// Effective endpoint: the flag, else loopback TCP on a
    /// kernel-assigned port (the readiness line reports the resolved
    /// address).
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone().unwrap_or_else(|| Endpoint::Tcp("127.0.0.1:0".into()))
    }

    /// Effective JSON path: the flag, else the environment/default.
    pub fn json_path(&self) -> PathBuf {
        self.json.clone().unwrap_or_else(crate::sweep::json_path_from_env)
    }
}

/// Usage string printed on `mom3d-shard` parse errors.
pub const SHARD_USAGE: &str = "usage: mom3d-shard [SEED] [--workers N] [--worker-threads N] \
                               [--batch N] [--grid full|extended] [--small] [--manifest PATH] \
                               [--resume] [--json PATH] [--cache-dir PATH] \
                               [--tcp ADDR | --unix PATH] \
                               [--chaos-seed N] [--chaos-profile P]";

/// Parses the `mom3d-shard` arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing or
/// malformed values, duplicate endpoints/seeds, an unknown `--grid`
/// name, and `--resume` without `--manifest`.
pub fn parse_shard_args<I>(args: I) -> Result<ShardArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut config = ShardConfig::default();
    let mut parsed =
        ShardArgs { config: ShardConfig::default(), extended: false, endpoint: None, json: None };
    let mut seed: Option<u64> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_profile: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                config.workers =
                    v.parse().map_err(|_| format!("--workers {v:?}: not an integer"))?;
            }
            "--worker-threads" => {
                let v = it.next().ok_or("--worker-threads needs a value")?;
                config.worker_threads =
                    v.parse().map_err(|_| format!("--worker-threads {v:?}: not an integer"))?;
            }
            "--batch" => {
                let v = it.next().ok_or("--batch needs a value")?;
                config.batch = v.parse().map_err(|_| format!("--batch {v:?}: not an integer"))?;
            }
            "--grid" => {
                let v = it.next().ok_or("--grid needs full|extended")?;
                parsed.extended = match v.as_str() {
                    "full" => false,
                    "extended" => true,
                    other => return Err(format!("--grid {other:?}: expected full or extended")),
                };
            }
            "--small" => config.small = true,
            "--manifest" => {
                let v = it.next().ok_or("--manifest needs a path")?;
                config.manifest = Some(PathBuf::from(v));
            }
            "--resume" => config.resume = true,
            "--json" => {
                let v = it.next().ok_or("--json needs a path")?;
                parsed.json = Some(PathBuf::from(v));
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                config.cache_dir = Some(PathBuf::from(v));
            }
            "--tcp" => {
                let v = it.next().ok_or("--tcp needs an address")?;
                set_endpoint(&mut parsed.endpoint, Endpoint::Tcp(v))?;
            }
            "--unix" => {
                let v = it.next().ok_or("--unix needs a path")?;
                set_endpoint(&mut parsed.endpoint, Endpoint::Unix(PathBuf::from(v)))?;
            }
            "--chaos-seed" => {
                let v = it.next().ok_or("--chaos-seed needs a value")?;
                chaos_seed =
                    Some(v.parse().map_err(|_| format!("--chaos-seed {v:?}: not an integer"))?);
            }
            "--chaos-profile" => {
                chaos_profile = Some(it.next().ok_or("--chaos-profile needs a profile")?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                if seed.is_some() {
                    return Err(format!("unexpected second positional argument {positional:?}"));
                }
                seed = Some(
                    positional
                        .parse()
                        .map_err(|_| format!("seed {positional:?}: not an integer"))?,
                );
            }
        }
    }
    if config.resume && config.manifest.is_none() {
        return Err("--resume requires --manifest PATH (there is nothing to resume from)".into());
    }
    config.seed = seed.unwrap_or(7);
    config.chaos = ChaosConfig::from_cli(chaos_seed, chaos_profile.as_deref())?;
    parsed.config = config;
    Ok(parsed)
}

/// Parsed `mom3d-shard-worker` arguments.
#[derive(Debug, Clone)]
pub struct ShardWorkerArgs {
    /// The coordinator's address (mandatory — a worker without one has
    /// nothing to do).
    pub endpoint: Endpoint,
    /// Everything [`crate::shard::run_worker`] needs.
    pub config: WorkerConfig,
}

/// Usage string printed on `mom3d-shard-worker` parse errors.
pub const SHARD_WORKER_USAGE: &str = "usage: mom3d-shard-worker (--tcp ADDR | --unix PATH) \
                                      [--id N] [--threads N] [--cache-dir PATH] \
                                      [--abort-after N]";

/// Parses the `mom3d-shard-worker` arguments (without the program
/// name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing or
/// malformed values, and a missing endpoint.
pub fn parse_shard_worker_args<I>(args: I) -> Result<ShardWorkerArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut endpoint: Option<Endpoint> = None;
    let mut config = WorkerConfig::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => {
                let v = it.next().ok_or("--tcp needs an address")?;
                set_endpoint(&mut endpoint, Endpoint::Tcp(v))?;
            }
            "--unix" => {
                let v = it.next().ok_or("--unix needs a path")?;
                set_endpoint(&mut endpoint, Endpoint::Unix(PathBuf::from(v)))?;
            }
            "--id" => {
                let v = it.next().ok_or("--id needs a value")?;
                config.id = v.parse().map_err(|_| format!("--id {v:?}: not an integer"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                config.threads =
                    v.parse().map_err(|_| format!("--threads {v:?}: not an integer"))?;
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                config.cache_dir = Some(PathBuf::from(v));
            }
            "--abort-after" => {
                let v = it.next().ok_or("--abort-after needs a value")?;
                config.abort_after =
                    Some(v.parse().map_err(|_| format!("--abort-after {v:?}: not an integer"))?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                return Err(format!("unexpected positional argument {positional:?}"));
            }
        }
    }
    let endpoint = endpoint.ok_or("a worker needs --tcp ADDR or --unix PATH")?;
    Ok(ShardWorkerArgs { endpoint, config })
}

/// Parsed `mom3d-tune` arguments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TuneArgs {
    /// Workload data seed (positional; default 7).
    pub seed: Option<u64>,
    /// `--tune-seed N`: search seed (default: the data seed).
    pub tune_seed: Option<u64>,
    /// `--budget N`: max fresh evaluations per `(workload, family)`.
    pub budget: Option<usize>,
    /// `--smoke`: reduced geometry + tiny budget (the CI configuration).
    pub smoke: bool,
    /// `--small`: reduced-geometry workloads at the normal budget.
    pub small: bool,
    /// `--threads N`: local sweep worker count.
    pub threads: Option<usize>,
    /// `--json PATH`: report path (default `BENCH_tune.json`).
    pub json: Option<PathBuf>,
    /// `--backend ID`: restrict the search to one family.
    pub backend: Option<String>,
    /// `--params K=V,...`: baseline overrides for the `--backend`
    /// family (malformed values warn and fall back, never panic).
    pub params: Option<String>,
    /// `--cache-dir PATH`: workload-image cache directory.
    pub cache_dir: Option<PathBuf>,
    /// `--coordinator ADDR`: evaluate on a resident `mom3d-serve`
    /// (an ADDR containing `/` is a unix socket path, else TCP).
    pub coordinator: Option<Endpoint>,
}

impl TuneArgs {
    /// The data seed to use.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(7)
    }

    /// Effective worker count (see [`AllArgs::threads`]).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(crate::sweep::threads_from_env)
    }

    /// Effective JSON path.
    pub fn json_path(&self) -> PathBuf {
        self.json.clone().unwrap_or_else(|| PathBuf::from("BENCH_tune.json"))
    }

    /// Effective workload-image cache (see [`AllArgs::cache`]).
    pub fn cache(&self) -> Option<WorkloadCache> {
        WorkloadCache::resolve(self.cache_dir.as_deref())
    }

    /// The search configuration these arguments describe. `--smoke`
    /// supplies the small-geometry/small-budget defaults; explicit
    /// flags still win over it.
    pub fn tune_config(&self) -> crate::tune::TuneConfig {
        let base = if self.smoke {
            crate::tune::TuneConfig::smoke(self.seed())
        } else {
            crate::tune::TuneConfig { seed: self.seed(), ..Default::default() }
        };
        let start_params = match (&self.backend, &self.params) {
            (Some(backend), Some(raw)) => crate::tune::resolve_start_params(backend, raw),
            _ => Vec::new(),
        };
        crate::tune::TuneConfig {
            tune_seed: self.tune_seed.unwrap_or(self.seed()),
            small: base.small || self.small,
            budget: self.budget.unwrap_or(base.budget),
            backend: self.backend.clone(),
            start_params,
            ..base
        }
    }
}

/// Usage string printed on `mom3d-tune` parse errors.
pub const TUNE_USAGE: &str = "usage: mom3d-tune [SEED] [--tune-seed N] [--budget N] [--smoke] \
                              [--small] [--threads N] [--json PATH] [--backend ID] \
                              [--params K=V,...] [--cache-dir PATH] [--coordinator ADDR]";

/// Parses the `mom3d-tune` arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing or
/// malformed flag values, duplicate positional seeds, a zero budget,
/// and `--params` without `--backend`.
pub fn parse_tune_args<I>(args: I) -> Result<TuneArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut parsed = TuneArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tune-seed" => {
                let v = it.next().ok_or("--tune-seed needs a value")?;
                parsed.tune_seed =
                    Some(v.parse().map_err(|_| format!("--tune-seed {v:?}: not an integer"))?);
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--budget {v:?}: not an integer"))?;
                if n == 0 {
                    return Err("--budget 0: at least one evaluation per family is needed".into());
                }
                parsed.budget = Some(n);
            }
            "--smoke" => parsed.smoke = true,
            "--small" => parsed.small = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--threads {v:?}: not an integer"))?;
                if n == 0 {
                    // Same policy as `all --threads 0` (and the
                    // environment variable): warn and fall back.
                    eprintln!(
                        "warning: --threads 0 is not a thread count; \
                         using MOM3D_SWEEP_THREADS or the default"
                    );
                    parsed.threads = None;
                } else {
                    parsed.threads = Some(n);
                }
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a path")?;
                parsed.json = Some(PathBuf::from(v));
            }
            "--backend" => {
                let v = it.next().ok_or("--backend needs a backend id")?;
                parsed.backend = Some(v);
            }
            "--params" => {
                let v = it.next().ok_or("--params needs key=value,...")?;
                parsed.params = Some(v);
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                parsed.cache_dir = Some(PathBuf::from(v));
            }
            "--coordinator" => {
                let v = it.next().ok_or("--coordinator needs an address")?;
                let ep = if v.contains('/') {
                    Endpoint::Unix(PathBuf::from(v))
                } else {
                    Endpoint::Tcp(v)
                };
                if parsed.coordinator.is_some() {
                    return Err("at most one --coordinator".into());
                }
                parsed.coordinator = Some(ep);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                if parsed.seed.is_some() {
                    return Err(format!("unexpected second positional argument {positional:?}"));
                }
                parsed.seed = Some(
                    positional
                        .parse()
                        .map_err(|_| format!("seed {positional:?}: not an integer"))?,
                );
            }
        }
    }
    if parsed.params.is_some() && parsed.backend.is_none() {
        return Err("--params requires --backend ID (whose parameters to override)".into());
    }
    Ok(parsed)
}

fn set_endpoint(slot: &mut Option<Endpoint>, ep: Endpoint) -> Result<(), String> {
    if slot.is_some() {
        return Err("at most one of --tcp/--unix".into());
    }
    *slot = Some(ep);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<AllArgs, String> {
        parse_all_args(args.iter().map(|s| s.to_string()))
    }

    fn parse_common(args: &[&str]) -> Result<CommonArgs, String> {
        parse_common_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn empty_is_all_defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, AllArgs::default());
        assert_eq!(a.seed(), 7);
        assert!(!a.all_backends);
    }

    #[test]
    fn seed_and_flags_in_any_order() {
        let a = parse(&["42", "--threads", "3", "--json", "out.json", "--all-backends"]).unwrap();
        assert_eq!(a.seed(), 42);
        assert_eq!(a.threads, Some(3));
        assert_eq!(a.json, Some(PathBuf::from("out.json")));
        assert!(a.all_backends);
        assert!(!a.small);
        let b = parse(&["--json", "out.json", "--all-backends", "--threads", "3", "42"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn small_flag_parses() {
        let a = parse(&["--small", "5"]).unwrap();
        assert!(a.small);
        assert_eq!(a.seed(), 5);
    }

    #[test]
    fn flags_win_over_env() {
        // threads() prefers the flag; with no flag it falls back to
        // threads_from_env (>= 1 whatever the environment says).
        let a = parse(&["--threads", "5"]).unwrap();
        assert_eq!(a.threads(), 5);
        let b = parse(&[]).unwrap();
        assert!(b.threads() >= 1);
        let c = parse(&["--json", "x.json"]).unwrap();
        assert_eq!(c.json_path(), PathBuf::from("x.json"));
    }

    #[test]
    fn threads_zero_warns_and_falls_back() {
        // `--threads 0` follows the env-var policy (warn + fall back)
        // instead of erroring: the parse succeeds with no override, and
        // the effective count is the environment/default (>= 1).
        let a = parse(&["--threads", "0"]).unwrap();
        assert_eq!(a.threads, None);
        assert!(a.threads() >= 1);
        // A later valid flag still wins.
        let b = parse(&["--threads", "0", "--threads", "2"]).unwrap();
        assert_eq!(a.seed(), 7);
        assert_eq!(b.threads, Some(2));
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&["--threads"]).unwrap_err().contains("--threads"));
        assert!(parse(&["--threads", "zero"]).unwrap_err().contains("not an integer"));
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["7", "8"]).unwrap_err().contains("second positional"));
        assert!(parse(&["sevenish"]).unwrap_err().contains("not an integer"));
        assert!(parse(&["--cache-dir"]).unwrap_err().contains("--cache-dir"));
    }

    #[test]
    fn cache_dir_flag_parses() {
        let a = parse(&["--cache-dir", "images", "3"]).unwrap();
        assert_eq!(a.cache_dir, Some(PathBuf::from("images")));
        assert_eq!(a.seed(), 3);
        assert_eq!(parse(&[]).unwrap().cache_dir, None);
    }

    #[test]
    fn common_args_grammar() {
        assert_eq!(parse_common(&[]).unwrap(), CommonArgs::default());
        assert_eq!(parse_common(&[]).unwrap().seed(), 7);
        let a = parse_common(&["42", "--cache-dir", "imgs"]).unwrap();
        assert_eq!(a.seed(), 42);
        assert_eq!(a.cache_dir, Some(PathBuf::from("imgs")));
        let b = parse_common(&["--cache-dir", "imgs", "42"]).unwrap();
        assert_eq!(a, b, "flag/positional order must not matter");
        assert!(parse_common(&["--cache-dir"]).unwrap_err().contains("--cache-dir"));
        assert!(parse_common(&["--nope"]).unwrap_err().contains("unknown flag"));
        assert!(parse_common(&["1", "2"]).unwrap_err().contains("second positional"));
        assert!(parse_common(&["x"]).unwrap_err().contains("not an integer"));
    }

    fn parse_shard(args: &[&str]) -> Result<ShardArgs, String> {
        parse_shard_args(args.iter().map(|s| s.to_string()))
    }

    fn parse_worker(args: &[&str]) -> Result<ShardWorkerArgs, String> {
        parse_shard_worker_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn shard_defaults_and_full_grammar() {
        let a = parse_shard(&[]).unwrap();
        assert_eq!(a.config.seed, 7);
        assert_eq!(a.config.workers, 2);
        assert_eq!(a.config.batch, 0);
        assert!(!a.extended && !a.config.small && !a.config.resume);
        assert_eq!(a.endpoint(), Endpoint::Tcp("127.0.0.1:0".into()));

        let b = parse_shard(&[
            "42", "--workers", "3", "--worker-threads", "2", "--batch", "5", "--grid", "extended",
            "--small", "--manifest", "m.mwm", "--resume", "--json", "out.json", "--cache-dir",
            "imgs", "--unix", "/tmp/s.sock",
        ])
        .unwrap();
        assert_eq!(b.config.seed, 42);
        assert_eq!(b.config.workers, 3);
        assert_eq!(b.config.worker_threads, 2);
        assert_eq!(b.config.batch, 5);
        assert!(b.extended && b.config.small && b.config.resume);
        assert_eq!(b.config.manifest, Some(PathBuf::from("m.mwm")));
        assert_eq!(b.json_path(), PathBuf::from("out.json"));
        assert_eq!(b.config.cache_dir, Some(PathBuf::from("imgs")));
        assert_eq!(b.endpoint(), Endpoint::Unix(PathBuf::from("/tmp/s.sock")));
    }

    #[test]
    fn shard_chaos_flags_parse_and_default_each_other() {
        assert!(parse_shard(&[]).unwrap().config.chaos.is_none());
        let a = parse_shard(&["--chaos-seed", "9"]).unwrap();
        let chaos = a.config.chaos.expect("one chaos flag arms both");
        assert_eq!(chaos.seed, 9);
        assert!(chaos.profile.any(), "the default profile must inject something");
        let b = parse_shard(&["--chaos-profile", "heavy"]).unwrap();
        assert!(b.config.chaos.is_some());
        assert!(parse_shard(&["--chaos-profile", "bogus"])
            .unwrap_err()
            .contains("unknown chaos class"));
        assert!(parse_shard(&["--chaos-seed", "x"]).unwrap_err().contains("not an integer"));
    }

    #[test]
    fn shard_grammar_errors_are_descriptive() {
        assert!(parse_shard(&["--resume"]).unwrap_err().contains("--manifest"));
        assert!(parse_shard(&["--grid", "tiny"]).unwrap_err().contains("full or extended"));
        assert!(parse_shard(&["--workers", "two"]).unwrap_err().contains("not an integer"));
        assert!(parse_shard(&["--tcp", "a:1", "--unix", "p"])
            .unwrap_err()
            .contains("at most one"));
        assert!(parse_shard(&["--frobnicate"]).unwrap_err().contains("unknown flag"));
        assert!(parse_shard(&["1", "2"]).unwrap_err().contains("second positional"));
    }

    fn parse_tune(args: &[&str]) -> Result<TuneArgs, String> {
        parse_tune_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn tune_defaults_and_full_grammar() {
        let a = parse_tune(&[]).unwrap();
        assert_eq!(a, TuneArgs::default());
        assert_eq!(a.seed(), 7);
        assert_eq!(a.json_path(), PathBuf::from("BENCH_tune.json"));
        let cfg = a.tune_config();
        assert_eq!((cfg.seed, cfg.tune_seed, cfg.small, cfg.budget), (7, 7, false, 60));
        assert_eq!(cfg.l2_latencies, vec![20, 40, 60]);

        let b = parse_tune(&[
            "42", "--tune-seed", "9", "--budget", "5", "--small", "--threads", "3", "--json",
            "t.json", "--backend", "dram-burst", "--params", "row=512", "--cache-dir", "imgs",
            "--coordinator", "127.0.0.1:9000",
        ])
        .unwrap();
        assert_eq!(b.seed(), 42);
        assert_eq!(b.json_path(), PathBuf::from("t.json"));
        assert_eq!(b.coordinator, Some(Endpoint::Tcp("127.0.0.1:9000".into())));
        let cfg = b.tune_config();
        assert_eq!((cfg.seed, cfg.tune_seed, cfg.small, cfg.budget), (42, 9, true, 5));
        assert_eq!(cfg.backend.as_deref(), Some("dram-burst"));
        assert_eq!(cfg.start_params, vec![("row", 512)]);
    }

    #[test]
    fn tune_smoke_and_coordinator_forms() {
        let a = parse_tune(&["--smoke", "3"]).unwrap();
        let cfg = a.tune_config();
        assert!(cfg.small);
        assert_eq!((cfg.seed, cfg.budget), (3, 12));
        // Explicit flags still win over the smoke defaults.
        let b = parse_tune(&["--smoke", "3", "--budget", "2"]).unwrap();
        assert_eq!(b.tune_config().budget, 2);
        // A slash means a unix socket path.
        let c = parse_tune(&["--coordinator", "/tmp/serve.sock"]).unwrap();
        assert_eq!(c.coordinator, Some(Endpoint::Unix(PathBuf::from("/tmp/serve.sock"))));
    }

    #[test]
    fn tune_grammar_errors_are_descriptive() {
        assert!(parse_tune(&["--params", "row=512"]).unwrap_err().contains("--backend"));
        assert!(parse_tune(&["--budget", "0"]).unwrap_err().contains("--budget 0"));
        assert!(parse_tune(&["--budget", "lots"]).unwrap_err().contains("not an integer"));
        assert!(parse_tune(&["--tune-seed"]).unwrap_err().contains("--tune-seed"));
        assert!(parse_tune(&["--frobnicate"]).unwrap_err().contains("unknown flag"));
        assert!(parse_tune(&["1", "2"]).unwrap_err().contains("second positional"));
        assert!(parse_tune(&["--coordinator", "a:1", "--coordinator", "b:2"])
            .unwrap_err()
            .contains("at most one"));
        // --threads 0 warns and falls back instead of erroring.
        let a = parse_tune(&["--threads", "0"]).unwrap();
        assert_eq!(a.threads, None);
        assert!(a.threads() >= 1);
        // A malformed --params value does not fail the parse: it warns
        // at resolution time and falls back to the family defaults.
        let b = parse_tune(&["--backend", "dram-burst", "--params", "bogus=1"]).unwrap();
        assert_eq!(b.tune_config().start_params, Vec::new());
    }

    #[test]
    fn shard_worker_grammar() {
        let a = parse_worker(&["--tcp", "127.0.0.1:7", "--id", "3", "--threads", "2",
            "--cache-dir", "imgs", "--abort-after", "4"])
        .unwrap();
        assert_eq!(a.endpoint, Endpoint::Tcp("127.0.0.1:7".into()));
        assert_eq!(a.config.id, 3);
        assert_eq!(a.config.threads, 2);
        assert_eq!(a.config.cache_dir, Some(PathBuf::from("imgs")));
        assert_eq!(a.config.abort_after, Some(4));

        // The endpoint is mandatory; everything else defaults.
        let b = parse_worker(&["--unix", "/tmp/s.sock"]).unwrap();
        assert_eq!(b.config.id, 0);
        assert_eq!(b.config.abort_after, None);
        assert!(parse_worker(&[]).unwrap_err().contains("--tcp ADDR or --unix PATH"));
        assert!(parse_worker(&["--tcp"]).unwrap_err().contains("--tcp"));
        assert!(parse_worker(&["--tcp", "a:1", "7"]).unwrap_err().contains("positional"));
        assert!(parse_worker(&["--tcp", "a:1", "--id", "x"])
            .unwrap_err()
            .contains("not an integer"));
    }
}
