//! A resident, coalescing memo table: `key → value` with single-flight
//! computation.
//!
//! The simulation server keeps two of these alive for the life of the
//! process — `SimKey → Metrics` and `(workload, variant) →
//! Arc<Workload>` — so repeated requests are answered from memory and
//! *identical in-flight* requests are deduplicated: the first requester
//! claims the key and computes, every concurrent requester for the same
//! key parks on a condvar and receives the same value when it is
//! published. A claimant that fails (panicking simulation, dropped
//! connection before enqueueing) un-claims the key so waiters retry or
//! error out instead of hanging forever — the table can therefore never
//! be wedged or corrupted by a misbehaving request.
//!
//! The table is deliberately append-only (no eviction): a `SimKey`'s
//! metrics are a pure function of the key, so entries never go stale,
//! and the value payloads are small (18 counters). Restarting the
//! server is the eviction policy.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
enum Slot<V> {
    /// Claimed: a computation is in flight.
    Pending,
    /// Published value.
    Ready(V),
}

/// Counter snapshot of a [`MemoTable`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from a `Ready` slot.
    pub hits: u64,
    /// Lookups that claimed the key (caller computes).
    pub misses: u64,
    /// Lookups that attached to an in-flight claim.
    pub coalesced: u64,
    /// Claims abandoned via [`MemoTable::fail`].
    pub failed: u64,
}

/// What [`MemoTable::schedule`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule<V> {
    /// The value is resident.
    Ready(V),
    /// Someone else is computing it; wait for the publication.
    InFlight,
    /// This caller claimed the key and **must** eventually call
    /// [`MemoTable::publish`] or [`MemoTable::fail`] for it.
    Claimed,
}

/// The in-flight computation a waiter was parked on was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeFailed;

impl std::fmt::Display for ComputeFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the in-flight computation for this key was abandoned")
    }
}

impl std::error::Error for ComputeFailed {}

/// See the [module docs](self).
#[derive(Debug, Default)]
pub struct MemoTable<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
    published: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    failed: AtomicU64,
}

impl<K: Eq + Hash + Copy, V: Clone> MemoTable<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        MemoTable {
            slots: Mutex::new(HashMap::new()),
            published: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }

    /// Published entries (in-flight claims excluded).
    pub fn len_ready(&self) -> usize {
        let slots = self.slots.lock().expect("memo table poisoned");
        slots.values().filter(|s| matches!(s, Slot::Ready(_))).count()
    }

    /// The value, if already published (no claiming, no counters).
    pub fn peek(&self, key: &K) -> Option<V> {
        let slots = self.slots.lock().expect("memo table poisoned");
        match slots.get(key) {
            Some(Slot::Ready(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Looks the key up without blocking: a published value is a hit, an
    /// in-flight claim means "wait via [`MemoTable::wait`]", an empty
    /// slot is claimed for this caller.
    pub fn schedule(&self, key: K) -> Schedule<V> {
        let mut slots = self.slots.lock().expect("memo table poisoned");
        match slots.get(&key) {
            Some(Slot::Ready(v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Schedule::Ready(v.clone())
            }
            Some(Slot::Pending) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Schedule::InFlight
            }
            None => {
                slots.insert(key, Slot::Pending);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Schedule::Claimed
            }
        }
    }

    /// Publishes a claimed key's value and wakes every waiter.
    pub fn publish(&self, key: K, value: V) {
        let mut slots = self.slots.lock().expect("memo table poisoned");
        slots.insert(key, Slot::Ready(value));
        drop(slots);
        self.published.notify_all();
    }

    /// Abandons a claim: the key becomes empty again (a later
    /// [`MemoTable::schedule`] re-claims it) and every waiter is woken
    /// to observe the failure. Publishing nothing after claiming would
    /// park waiters forever; this is the mandatory escape hatch.
    pub fn fail(&self, key: &K) {
        let mut slots = self.slots.lock().expect("memo table poisoned");
        if matches!(slots.get(key), Some(Slot::Pending)) {
            slots.remove(key);
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        drop(slots);
        self.published.notify_all();
    }

    /// Blocks until `key` is published, returning its value — or
    /// [`ComputeFailed`] if the claim was abandoned (the caller may
    /// re-[`schedule`](MemoTable::schedule) to retry).
    ///
    /// # Errors
    ///
    /// [`ComputeFailed`] when the in-flight computation was abandoned
    /// before publishing.
    pub fn wait(&self, key: &K) -> Result<V, ComputeFailed> {
        let mut slots = self.slots.lock().expect("memo table poisoned");
        loop {
            match slots.get(key) {
                Some(Slot::Ready(v)) => return Ok(v.clone()),
                Some(Slot::Pending) => {
                    slots = self.published.wait(slots).expect("memo table poisoned");
                }
                None => return Err(ComputeFailed),
            }
        }
    }

    /// Blocks until *any* of `pending` publishes, removes that key from
    /// `pending` and returns it with its value. Keys whose claims were
    /// abandoned are returned as the `Err` variant (and removed), so a
    /// streaming caller can report the failure and keep waiting on the
    /// rest.
    ///
    /// # Errors
    ///
    /// The failed key, when one of `pending`'s claims was abandoned.
    ///
    /// # Panics
    ///
    /// Panics if `pending` is empty — there would be nothing to wait
    /// for.
    pub fn wait_any(&self, pending: &mut Vec<K>) -> Result<(K, V), (K, ComputeFailed)> {
        assert!(!pending.is_empty(), "wait_any needs at least one pending key");
        let mut slots = self.slots.lock().expect("memo table poisoned");
        loop {
            for (i, key) in pending.iter().enumerate() {
                match slots.get(key) {
                    Some(Slot::Ready(v)) => {
                        let v = v.clone();
                        let key = pending.swap_remove(i);
                        return Ok((key, v));
                    }
                    Some(Slot::Pending) => {}
                    None => {
                        let key = pending.swap_remove(i);
                        return Err((key, ComputeFailed));
                    }
                }
            }
            slots = self.published.wait(slots).expect("memo table poisoned");
        }
    }

    /// Deadline-bounded [`wait_any`](MemoTable::wait_any): identical
    /// semantics, but returns `None` once `timeout` elapses without any
    /// of `pending` publishing or failing (`pending` is left intact).
    /// This is what lets a server handler put a hard ceiling on "waiting
    /// for a simulation someone else claimed" and answer with a typed
    /// timeout error instead of parking forever.
    ///
    /// # Errors
    ///
    /// The failed key, when one of `pending`'s claims was abandoned.
    ///
    /// # Panics
    ///
    /// Panics if `pending` is empty — there would be nothing to wait
    /// for.
    #[allow(clippy::type_complexity)]
    pub fn wait_any_for(
        &self,
        pending: &mut Vec<K>,
        timeout: Duration,
    ) -> Option<Result<(K, V), (K, ComputeFailed)>> {
        assert!(!pending.is_empty(), "wait_any_for needs at least one pending key");
        let deadline = Instant::now() + timeout;
        let mut slots = self.slots.lock().expect("memo table poisoned");
        loop {
            for (i, key) in pending.iter().enumerate() {
                match slots.get(key) {
                    Some(Slot::Ready(v)) => {
                        let v = v.clone();
                        let key = pending.swap_remove(i);
                        return Some(Ok((key, v)));
                    }
                    Some(Slot::Pending) => {}
                    None => {
                        let key = pending.swap_remove(i);
                        return Some(Err((key, ComputeFailed)));
                    }
                }
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            // On wakeup — timed out or not — loop back and re-scan
            // under the lock: a publish may have raced the timeout, and
            // the deadline check above settles expiry.
            let (guard, _) =
                self.published.wait_timeout(slots, left).expect("memo table poisoned");
            slots = guard;
        }
    }
}

/// Drop guard for a [`Schedule::Claimed`] claim: unless defused by
/// [`ClaimGuard::publish`], dropping it abandons the claim — so a panic
/// (or early return) between claiming and publishing can never park
/// waiters forever.
#[derive(Debug)]
pub struct ClaimGuard<'a, K: Eq + Hash + Copy, V: Clone> {
    table: &'a MemoTable<K, V>,
    key: K,
    armed: bool,
}

impl<'a, K: Eq + Hash + Copy, V: Clone> ClaimGuard<'a, K, V> {
    /// Guards a fresh claim on `key`.
    pub fn new(table: &'a MemoTable<K, V>, key: K) -> Self {
        ClaimGuard { table, key, armed: true }
    }

    /// Publishes the value and defuses the guard.
    pub fn publish(mut self, value: V) {
        self.armed = false;
        self.table.publish(self.key, value);
    }
}

impl<K: Eq + Hash + Copy, V: Clone> Drop for ClaimGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            self.table.fail(&self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn hit_miss_coalesce_lifecycle() {
        let t: MemoTable<u32, String> = MemoTable::new();
        assert_eq!(t.schedule(1), Schedule::Claimed);
        assert_eq!(t.schedule(1), Schedule::InFlight);
        t.publish(1, "one".into());
        assert_eq!(t.schedule(1), Schedule::Ready("one".into()));
        assert_eq!(t.peek(&1), Some("one".into()));
        assert_eq!(t.peek(&2), None);
        assert_eq!(t.len_ready(), 1);
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.coalesced, s.failed), (1, 1, 1, 0));
    }

    #[test]
    fn failed_claims_wake_waiters_and_allow_retry() {
        let t: Arc<MemoTable<u32, u64>> = Arc::new(MemoTable::new());
        assert_eq!(t.schedule(7), Schedule::Claimed);
        let waiter = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || t.wait(&7))
        };
        // Give the waiter a moment to park, then abandon the claim.
        std::thread::sleep(std::time::Duration::from_millis(20));
        t.fail(&7);
        assert_eq!(waiter.join().unwrap(), Err(ComputeFailed));
        // The key is claimable again.
        assert_eq!(t.schedule(7), Schedule::Claimed);
        t.publish(7, 49);
        assert_eq!(t.wait(&7), Ok(49));
        assert_eq!(t.stats().failed, 1);
    }

    #[test]
    fn claim_guard_fails_on_panic_and_publishes_on_success() {
        let t: MemoTable<u32, u64> = MemoTable::new();
        assert_eq!(t.schedule(1), Schedule::Claimed);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = ClaimGuard::new(&t, 1);
            panic!("computation exploded");
        }));
        assert!(caught.is_err());
        assert_eq!(t.wait(&1), Err(ComputeFailed), "panicked claim must be abandoned");

        assert_eq!(t.schedule(1), Schedule::Claimed);
        ClaimGuard::new(&t, 1).publish(11);
        assert_eq!(t.wait(&1), Ok(11));
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let t: Arc<MemoTable<u32, u64>> = Arc::new(MemoTable::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let n = 16;
        let mut handles = Vec::new();
        for _ in 0..n {
            let t = Arc::clone(&t);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || loop {
                match t.schedule(42) {
                    Schedule::Ready(v) => return v,
                    Schedule::InFlight => match t.wait(&42) {
                        Ok(v) => return v,
                        Err(ComputeFailed) => continue,
                    },
                    Schedule::Claimed => {
                        // Simulate a slow computation so others coalesce.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        computed.fetch_add(1, Ordering::Relaxed);
                        t.publish(42, 4242);
                        return 4242;
                    }
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 4242, "every requester sees the same value");
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one computation runs");
    }

    #[test]
    fn wait_any_for_times_out_and_then_delivers() {
        let t: Arc<MemoTable<u32, u64>> = Arc::new(MemoTable::new());
        assert_eq!(t.schedule(9), Schedule::Claimed);
        let mut pending = vec![9];
        // Nothing publishes: the bounded wait must expire, leaving the
        // pending set intact.
        let verdict = t.wait_any_for(&mut pending, std::time::Duration::from_millis(30));
        assert_eq!(verdict, None);
        assert_eq!(pending, vec![9]);
        // A publish from another thread is delivered well inside the
        // (generous) deadline.
        let publisher = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                t.publish(9, 81);
            })
        };
        let verdict = t.wait_any_for(&mut pending, std::time::Duration::from_secs(30));
        assert_eq!(verdict, Some(Ok((9, 81))));
        assert!(pending.is_empty());
        publisher.join().unwrap();
    }

    #[test]
    fn wait_any_returns_completions_in_publish_order() {
        let t: Arc<MemoTable<u32, u64>> = Arc::new(MemoTable::new());
        for k in [1, 2, 3] {
            assert_eq!(t.schedule(k), Schedule::Claimed);
        }
        let publisher = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for k in [2, 3] {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    t.publish(k, u64::from(k) * 10);
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                t.fail(&1);
            })
        };
        let mut pending = vec![1, 2, 3];
        let first = t.wait_any(&mut pending).unwrap();
        assert_eq!(first, (2, 20));
        let second = t.wait_any(&mut pending).unwrap();
        assert_eq!(second, (3, 30));
        // The abandoned key surfaces as an error, not a hang.
        assert_eq!(t.wait_any(&mut pending), Err((1, ComputeFailed)));
        assert!(pending.is_empty());
        publisher.join().unwrap();
    }
}
