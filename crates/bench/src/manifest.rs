//! The durable shard manifest: crash-resume for distributed sweeps.
//!
//! The coordinator ([`crate::shard`]) appends one record per completed
//! cell to an on-disk manifest. A run killed at any point — coordinator
//! or worker, SIGKILL included — can then resume: completed cells are
//! replayed from the manifest instead of being re-simulated, and only
//! the remainder of the grid is handed back out.
//!
//! # Format
//!
//! The file reuses the wire protocol's checksummed frame codec
//! ([`crate::protocol::write_frame`]) — magic, record type, length
//! prefix, payload, FNV-1a trailer — so damage detection is the same
//! machinery the sockets and the workload-image cache already trust:
//!
//! ```text
//! frame 'M'  header: version, seed, geometry flag,
//!            checksum64 over the encoded grid, grid length
//! frame 'C'  one completed cell: SimKey + all 18 Metrics counters
//! frame 'C'  …
//! ```
//!
//! # Trust policy (never a wrong cell)
//!
//! * A missing file is a fresh start.
//! * A bad/mismatched **header** (different seed, geometry or grid,
//!   stale version, or damage) rejects the whole file: every cell is
//!   re-simulated. A manifest written for a different grid must never
//!   leak cells into this one.
//! * A damaged **record** ends the readable prefix: framing is lost, so
//!   the valid prefix is kept and everything after it is re-queued.
//!   The checksum trailer makes a bit-flipped record indistinguishable
//!   from a truncated one — both are dropped, neither is decoded.
//! * A record that decodes but does not belong (not in the grid, or a
//!   duplicate) is dropped individually; the stream stays in sync.
//!
//! On resume the file is compacted: the surviving records are rewritten
//! through a temp file + atomic rename (the workload-image cache's
//! store idiom), so a crashed run's corrupt tail does not keep
//! re-triggering recovery on every subsequent resume.

use crate::faults::{ShimFile, WriteFault};
use crate::protocol::{
    put_metrics, put_sim_key, read_frame, read_metrics, read_sim_key, write_frame, Cursor,
    FrameError,
};
use crate::runner::SimKey;
use mom3d_cpu::Metrics;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Bumped when the record layout changes; a manifest from another
/// version is rejected wholesale (cells are cheap to re-simulate,
/// misread cells are not).
pub const MANIFEST_VERSION: u32 = 1;

/// Record type of the identity header (first frame of the file).
const REC_HEADER: u8 = b'M';
/// Record type of one completed cell.
const REC_CELL: u8 = b'C';

/// Identity fingerprint of a sweep grid: checksum64 over every cell's
/// wire encoding, in enumeration order. Two runs may only share a
/// manifest when seed, geometry **and** this checksum agree.
pub fn grid_checksum(grid: &[SimKey]) -> u64 {
    let mut buf = Vec::with_capacity(32 * grid.len());
    for key in grid {
        put_sim_key(&mut buf, key);
    }
    mom3d_emu::checksum64(&buf)
}

fn header_payload(seed: u64, small: bool, grid: &[SimKey]) -> Vec<u8> {
    let mut p = Vec::with_capacity(25);
    p.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    p.extend_from_slice(&seed.to_le_bytes());
    p.push(small as u8);
    p.extend_from_slice(&grid_checksum(grid).to_le_bytes());
    p.extend_from_slice(&(grid.len() as u32).to_le_bytes());
    p
}

fn cell_payload(key: &SimKey, metrics: &Metrics) -> Vec<u8> {
    let mut p = Vec::with_capacity(32 + 18 * 8);
    put_sim_key(&mut p, key);
    put_metrics(&mut p, metrics);
    p
}

/// What [`resume`] recovered (and what it had to throw away).
#[derive(Debug, Default)]
pub struct Resume {
    /// Completed cells replayed from the manifest: valid records whose
    /// key is in the grid, first occurrence each.
    pub cells: Vec<(SimKey, Metrics)>,
    /// Records individually dropped while the stream stayed readable
    /// (duplicates, keys outside the grid, undecodable payloads).
    pub dropped_records: u64,
    /// True when a damaged record ended the readable prefix early
    /// (truncation, bit flip — everything after it was re-queued).
    pub truncated: bool,
    /// True when the whole file was rejected (bad header, wrong
    /// identity, stale version) and the run starts from zero.
    pub rejected: bool,
}

/// An open, append-only shard manifest.
///
/// Created fresh by [`Manifest::create`] or recovered by [`resume`];
/// every [`Manifest::append`] writes one checksummed record and flushes
/// it to the OS, so a SIGKILL of the writing process never loses an
/// acknowledged cell.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    // Every append goes through the injectable fault shim, so tests can
    // stage the exact on-disk state a crash mid-record leaves behind.
    file: BufWriter<ShimFile>,
}

impl Manifest {
    /// Starts a fresh manifest at `path` (truncating anything there) for
    /// the given sweep identity.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn create(path: &Path, seed: u64, small: bool, grid: &[SimKey]) -> io::Result<Manifest> {
        Manifest::create_with_fault(path, seed, small, grid, None)
    }

    /// [`Manifest::create`] with an optional injected [`WriteFault`]:
    /// after the fault's byte budget the file behaves like the writing
    /// process died mid-record (short write, then errors). Production
    /// callers pass `None`; the chaos tests use this to pin the
    /// valid-prefix trust policy without killing a process.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn create_with_fault(
        path: &Path,
        seed: u64,
        small: bool,
        grid: &[SimKey],
        fault: Option<WriteFault>,
    ) -> io::Result<Manifest> {
        let raw = File::create(path)?;
        let shim = match fault {
            Some(fault) => ShimFile::with_fault(raw, fault),
            None => ShimFile::new(raw),
        };
        let mut file = BufWriter::new(shim);
        write_frame(&mut file, REC_HEADER, &header_payload(seed, small, grid))?;
        Ok(Manifest { path: path.to_path_buf(), file })
    }

    /// Appends one completed cell and flushes it through to the OS.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn append(&mut self, key: &SimKey, metrics: &Metrics) -> io::Result<()> {
        write_frame(&mut self.file, REC_CELL, &cell_payload(key, metrics))
    }

    /// Where this manifest lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads the valid prefix of an existing manifest, without rewriting.
fn read_valid(path: &Path, seed: u64, small: bool, grid: &[SimKey]) -> io::Result<Resume> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Resume::default()),
        Err(e) => return Err(e),
    };
    let mut r = BufReader::new(file);
    let mut out = Resume::default();

    // Header: any problem here rejects the whole file.
    let reject = |why: &str| {
        eprintln!(
            "warning: shard manifest {} rejected ({why}); every cell will be re-simulated",
            path.display()
        );
    };
    match read_frame(&mut r) {
        Ok(frame) if frame.opcode == REC_HEADER => {
            let mut c = Cursor { bytes: &frame.payload, pos: 0 };
            let ok = (|| {
                let version = c.u32().ok()?;
                let h_seed = c.u64().ok()?;
                let h_small = c.u8().ok()?;
                let h_checksum = c.u64().ok()?;
                let h_len = c.u32().ok()?;
                c.finish().ok()?;
                (version == MANIFEST_VERSION
                    && h_seed == seed
                    && h_small == small as u8
                    && h_checksum == grid_checksum(grid)
                    && h_len == grid.len() as u32)
                    .then_some(())
            })()
            .is_some();
            if !ok {
                reject("different sweep identity or stale version");
                out.rejected = true;
                return Ok(out);
            }
        }
        _ => {
            reject("missing or damaged header");
            out.rejected = true;
            return Ok(out);
        }
    }

    let grid_set: HashSet<SimKey> = grid.iter().copied().collect();
    let mut seen: HashSet<SimKey> = HashSet::new();
    loop {
        match read_frame(&mut r) {
            Ok(frame) if frame.opcode == REC_CELL => {
                let mut c = Cursor { bytes: &frame.payload, pos: 0 };
                let decoded = read_sim_key(&mut c)
                    .and_then(|key| read_metrics(&mut c).map(|m| (key, m)))
                    .and_then(|km| c.finish().map(|()| km));
                match decoded {
                    Ok((key, metrics)) if grid_set.contains(&key) && seen.insert(key) => {
                        out.cells.push((key, metrics));
                    }
                    // Duplicate, outside the grid, or undecodable (e.g. a
                    // backend not registered here): drop the record; the
                    // frame stream itself is still in sync.
                    _ => out.dropped_records += 1,
                }
            }
            Ok(_) => {
                // An unknown record type is future/foreign data we must
                // not guess at; treat like damage and stop.
                out.truncated = true;
                break;
            }
            Err(FrameError::Closed) => break, // clean end of file
            Err(_) => {
                // Truncated or bit-flipped record: framing is lost, keep
                // the valid prefix only.
                out.truncated = true;
                break;
            }
        }
    }
    if out.truncated || out.dropped_records > 0 {
        eprintln!(
            "warning: shard manifest {} recovered partially: {} cell(s) kept, {} record(s) \
             dropped{}; dropped cells will be re-simulated",
            path.display(),
            out.cells.len(),
            out.dropped_records,
            if out.truncated { ", damaged tail discarded" } else { "" }
        );
    }
    Ok(out)
}

/// Recovers a manifest for resumption: reads the valid prefix (see the
/// module docs for the trust policy), compacts the file to exactly that
/// prefix via temp-file + atomic rename, and reopens it for appending.
///
/// A missing file — or a rejected one — yields an empty [`Resume`] and
/// a fresh manifest; resuming is therefore always safe to request.
///
/// # Errors
///
/// Propagates filesystem errors (damaged *content* is handled by the
/// trust policy and is not an error).
pub fn resume(
    path: &Path,
    seed: u64,
    small: bool,
    grid: &[SimKey],
) -> io::Result<(Manifest, Resume)> {
    let recovered = read_valid(path, seed, small, grid)?;
    // Compact: rewrite the surviving content and atomically replace the
    // file, so a damaged tail is recovered exactly once.
    let tmp = path.with_extension("mwm.tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        write_frame(&mut w, REC_HEADER, &header_payload(seed, small, grid))?;
        for (key, metrics) in &recovered.cells {
            write_frame(&mut w, REC_CELL, &cell_payload(key, metrics))?;
        }
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    let file = BufWriter::new(ShimFile::new(OpenOptions::new().append(true).open(path)?));
    Ok((Manifest { path: path.to_path_buf(), file }, recovered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom3d_cpu::MemorySystemKind;
    use mom3d_kernels::{IsaVariant, WorkloadKind};

    fn grid() -> Vec<SimKey> {
        let mut cells = Vec::new();
        for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
            cells.push(SimKey {
                kind,
                variant: IsaVariant::Mom,
                memory: MemorySystemKind::VectorCache.into(),
                l2_latency: 20 + i as u32,
            });
        }
        cells
    }

    fn metrics(n: u64) -> Metrics {
        Metrics { cycles: n, instructions: n * 3, ..Default::default() }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mom3d-manifest-{}-{name}.mwm", std::process::id()))
    }

    #[test]
    fn round_trip_and_repeated_resume() {
        let path = tmp_path("roundtrip");
        let grid = grid();
        {
            let mut m = Manifest::create(&path, 7, true, &grid).unwrap();
            m.append(&grid[0], &metrics(1)).unwrap();
            m.append(&grid[1], &metrics(2)).unwrap();
        }
        let (mut m, r) = resume(&path, 7, true, &grid).unwrap();
        assert_eq!(r.cells, vec![(grid[0], metrics(1)), (grid[1], metrics(2))]);
        assert_eq!(r.dropped_records, 0);
        assert!(!r.truncated && !r.rejected);
        // Appending after a resume keeps accumulating.
        m.append(&grid[2], &metrics(3)).unwrap();
        drop(m);
        let (_, r2) = resume(&path, 7, true, &grid).unwrap();
        assert_eq!(r2.cells.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        let (_, r) = resume(&path, 7, true, &grid()).unwrap();
        assert!(r.cells.is_empty());
        assert!(!r.rejected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_keeps_the_valid_prefix() {
        let path = tmp_path("truncate");
        let grid = grid();
        {
            let mut m = Manifest::create(&path, 7, true, &grid).unwrap();
            for (i, key) in grid.iter().enumerate() {
                m.append(key, &metrics(i as u64)).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (_, r) = resume(&path, 7, true, &grid).unwrap();
        assert!(r.truncated);
        assert_eq!(r.cells.len(), grid.len() - 1, "only the cut record is lost");
        assert_eq!(r.cells[0], (grid[0], metrics(0)));
        // The compaction rewrote a clean file: a second resume sees no
        // damage and the same cells.
        let (_, r2) = resume(&path, 7, true, &grid).unwrap();
        assert!(!r2.truncated);
        assert_eq!(r2.cells.len(), grid.len() - 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_never_yields_a_wrong_cell() {
        let grid = grid();
        // Flip one byte at every offset in turn; whatever survives must
        // be a byte-exact prefix of what was written — never altered
        // metrics.
        let path = tmp_path("bitflip");
        {
            let mut m = Manifest::create(&path, 7, true, &grid).unwrap();
            for (i, key) in grid.iter().enumerate().take(3) {
                m.append(key, &metrics(100 + i as u64)).unwrap();
            }
        }
        let pristine = std::fs::read(&path).unwrap();
        for offset in (0..pristine.len()).step_by(11) {
            let mut damaged = pristine.clone();
            damaged[offset] ^= 0x40;
            std::fs::write(&path, &damaged).unwrap();
            let r = read_valid(&path, 7, true, &grid).unwrap();
            for (key, m) in &r.cells {
                let i = grid.iter().position(|k| k == key).expect("key from the grid");
                assert_eq!(*m, metrics(100 + i as u64), "flip at {offset} altered a cell");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_identity_rejects_the_whole_file() {
        let grid = grid();
        let path = tmp_path("identity");
        {
            let mut m = Manifest::create(&path, 7, true, &grid).unwrap();
            m.append(&grid[0], &metrics(1)).unwrap();
        }
        // Different seed.
        let (_, r) = resume(&path, 8, true, &grid).unwrap();
        assert!(r.rejected && r.cells.is_empty());
        // (The rejected resume rewrote the file for seed 8; recreate.)
        {
            let mut m = Manifest::create(&path, 7, true, &grid).unwrap();
            m.append(&grid[0], &metrics(1)).unwrap();
        }
        // Different geometry flag.
        let (_, r) = resume(&path, 7, false, &grid).unwrap();
        assert!(r.rejected && r.cells.is_empty());
        {
            let mut m = Manifest::create(&path, 7, true, &grid).unwrap();
            m.append(&grid[0], &metrics(1)).unwrap();
        }
        // Different grid (a cell replaced).
        let mut other = grid.clone();
        other[0].l2_latency += 100;
        let (_, r) = resume(&path, 7, true, &other).unwrap();
        assert!(r.rejected && r.cells.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_and_duplicate_records_are_dropped_individually() {
        let grid = grid();
        let subset = &grid[..2];
        let path = tmp_path("foreign");
        {
            // Written against the FULL grid identity? No — write against
            // the subset so the header matches, then smuggle in records
            // outside it and duplicates.
            let mut m = Manifest::create(&path, 7, true, subset).unwrap();
            m.append(&subset[0], &metrics(1)).unwrap();
            m.append(&grid[4], &metrics(9)).unwrap(); // not in the subset grid
            m.append(&subset[0], &metrics(2)).unwrap(); // duplicate: first wins
            m.append(&subset[1], &metrics(3)).unwrap();
        }
        let (_, r) = resume(&path, 7, true, subset).unwrap();
        assert_eq!(r.cells, vec![(subset[0], metrics(1)), (subset[1], metrics(3))]);
        assert_eq!(r.dropped_records, 2);
        assert!(!r.truncated && !r.rejected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn an_injected_short_write_trusts_exactly_the_valid_prefix() {
        let grid = grid();
        // Measure the on-disk size of header + 2 full records with a
        // fault-free manifest, so the injected budget can be aimed
        // mid-way through the THIRD record.
        let path = tmp_path("shortwrite");
        {
            let mut m = Manifest::create(&path, 7, true, &grid).unwrap();
            m.append(&grid[0], &metrics(1)).unwrap();
            m.append(&grid[1], &metrics(2)).unwrap();
        }
        let two_records = std::fs::read(&path).unwrap().len() as u64;

        // Same sequence through the fault shim: the writer "crashes"
        // 30 bytes into record three.
        let fault = WriteFault { fail_after: two_records + 30 };
        let mut m = Manifest::create_with_fault(&path, 7, true, &grid, Some(fault)).unwrap();
        m.append(&grid[0], &metrics(1)).unwrap();
        m.append(&grid[1], &metrics(2)).unwrap();
        let err = m.append(&grid[2], &metrics(3)).expect_err("budget exhausted mid-record");
        assert!(err.to_string().contains("injected write fault"), "got: {err}");
        drop(m);
        assert_eq!(
            std::fs::read(&path).unwrap().len() as u64,
            two_records + 30,
            "the shim left a short third record on disk"
        );

        // Resume trusts exactly the valid prefix and re-queues the rest.
        let (_, r) = resume(&path, 7, true, &grid).unwrap();
        assert!(r.truncated, "the short record must read as damage");
        assert!(!r.rejected);
        assert_eq!(r.cells, vec![(grid[0], metrics(1)), (grid[1], metrics(2))]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grid_checksum_is_order_and_content_sensitive() {
        let grid = grid();
        let mut reversed = grid.clone();
        reversed.reverse();
        assert_ne!(grid_checksum(&grid), grid_checksum(&reversed));
        assert_ne!(grid_checksum(&grid), grid_checksum(&grid[..3]));
        assert_eq!(grid_checksum(&grid), grid_checksum(&grid.clone()));
    }
}
