//! Workload + simulation cache shared by the experiment binaries.

use mom3d_cpu::{MemorySystemKind, Metrics, Processor, ProcessorConfig};
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SimKey {
    kind: WorkloadKind,
    variant: IsaVariant,
    memory: MemorySystemKind,
    l2_latency: u32,
}

/// Builds workloads (verifying each against its scalar reference) and
/// runs timing simulations, caching both so that figures sharing
/// configurations do not recompute them.
#[derive(Debug, Default)]
pub struct Runner {
    seed: u64,
    small: bool,
    workloads: HashMap<(WorkloadKind, IsaVariant), Workload>,
    sims: HashMap<SimKey, Metrics>,
}

impl Runner {
    /// Full-size workloads (the experiment binaries).
    pub fn new(seed: u64) -> Self {
        Runner { seed, small: false, ..Default::default() }
    }

    /// Reduced workloads (fast integration tests).
    pub fn small(seed: u64) -> Self {
        Runner { seed, small: true, ..Default::default() }
    }

    /// The data seed in use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns (building and verifying on first use) a workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails verification against its scalar
    /// reference — a harness that times broken traces would be
    /// meaningless.
    pub fn workload(&mut self, kind: WorkloadKind, variant: IsaVariant) -> &Workload {
        let (seed, small) = (self.seed, self.small);
        self.workloads.entry((kind, variant)).or_insert_with(|| {
            let wl = if small {
                Workload::build_small(kind, variant, seed)
            } else {
                Workload::build(kind, variant, seed)
            }
            .unwrap_or_else(|e| panic!("building {kind} {variant}: {e}"));
            wl.verify().unwrap_or_else(|e| panic!("verifying {kind} {variant}: {e}"));
            wl
        })
    }

    /// Simulates a workload on a processor/memory configuration at the
    /// given L2 latency, with caching.
    pub fn metrics(
        &mut self,
        kind: WorkloadKind,
        variant: IsaVariant,
        memory: MemorySystemKind,
        l2_latency: u32,
    ) -> Metrics {
        let key = SimKey { kind, variant, memory, l2_latency };
        if let Some(m) = self.sims.get(&key) {
            return *m;
        }
        let base = match variant {
            IsaVariant::Mmx => ProcessorConfig::mmx(),
            IsaVariant::Mom | IsaVariant::Mom3d => ProcessorConfig::mom(),
        };
        let config = base.with_memory(memory).with_l2_latency(l2_latency).with_warm_caches(true);
        let trace = self.workload(kind, variant).trace().clone();
        let metrics = Processor::new(config)
            .run(&trace)
            .unwrap_or_else(|e| panic!("simulating {kind} {variant} on {memory:?}: {e}"));
        self.sims.insert(key, metrics);
        metrics
    }

    /// Cycles of the MOM + ideal-memory configuration — the paper's
    /// normalization baseline for Figures 3 and 9.
    pub fn mom_ideal_cycles(&mut self, kind: WorkloadKind) -> u64 {
        self.metrics(kind, IsaVariant::Mom, MemorySystemKind::Ideal, 20).cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_identical_metrics() {
        let mut r = Runner::small(1);
        let a = r.metrics(
            WorkloadKind::GsmEncode,
            IsaVariant::Mom,
            MemorySystemKind::VectorCache,
            20,
        );
        let b = r.metrics(
            WorkloadKind::GsmEncode,
            IsaVariant::Mom,
            MemorySystemKind::VectorCache,
            20,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn ideal_is_fastest() {
        let mut r = Runner::small(1);
        let ideal = r.mom_ideal_cycles(WorkloadKind::Mpeg2Encode);
        let vc = r
            .metrics(
                WorkloadKind::Mpeg2Encode,
                IsaVariant::Mom,
                MemorySystemKind::VectorCache,
                20,
            )
            .cycles;
        assert!(ideal < vc);
    }
}
