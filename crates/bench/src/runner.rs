//! Workload + simulation cache shared by the experiment binaries.

use crate::cache::WorkloadCache;
use mom3d_cpu::{BackendId, Metrics, Processor, ProcessorConfig};
#[cfg(test)]
use mom3d_cpu::MemorySystemKind;
use mom3d_kernels::{ImageKey, IsaVariant, Workload, WorkloadKind};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock phase breakdown of preparing one workload: trace
/// generation (the functional emulator run included) and verification
/// against the scalar reference. Together with the per-cell simulation
/// wall-clock this is what `BENCH_sweep.json` (schema v4) reports, so
/// the cost of every phase of the harness is machine-readable. For a
/// workload served from the image cache, `build` is the image-load
/// time and `verify` is zero (the image proves a verification that
/// already happened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadTiming {
    /// Building the workload (data generation + trace emission).
    pub build: Duration,
    /// Verifying the built workload against its scalar reference.
    pub verify: Duration,
}

/// One point of the experiment matrix: which workload trace runs on
/// which processor/memory configuration. The key of the [`Runner`]
/// simulation cache and the unit of work of the [`crate::sweep`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// Benchmark.
    pub kind: WorkloadKind,
    /// ISA variant the trace was generated for.
    pub variant: IsaVariant,
    /// Vector memory backend backing the processor (any id registered
    /// with [`mom3d_cpu::BackendRegistry`]).
    pub memory: BackendId,
    /// L2 hit latency in cycles.
    pub l2_latency: u32,
}

impl SimKey {
    /// The processor configuration this key simulates under — the single
    /// source of truth shared by the serial path ([`Runner::metrics`])
    /// and the parallel sweep workers, so both produce bit-identical
    /// metrics.
    pub fn config(&self) -> ProcessorConfig {
        let base = match self.variant {
            IsaVariant::Mmx => ProcessorConfig::mmx(),
            IsaVariant::Mom | IsaVariant::Mom3d => ProcessorConfig::mom(),
        };
        base.with_memory(self.memory).with_l2_latency(self.l2_latency).with_warm_caches(true)
    }
}

/// Builds workloads (verifying each against its scalar reference) and
/// runs timing simulations, caching both so that figures sharing
/// configurations do not recompute them.
///
/// Workloads are stored behind [`Arc`] so the parallel sweep engine can
/// hand the same verified trace to several worker threads without
/// cloning it.
#[derive(Debug, Default)]
pub struct Runner {
    seed: u64,
    small: bool,
    cache: Option<WorkloadCache>,
    workloads: HashMap<(WorkloadKind, IsaVariant), Arc<Workload>>,
    timings: HashMap<(WorkloadKind, IsaVariant), WorkloadTiming>,
    sims: HashMap<SimKey, Metrics>,
}

impl Runner {
    /// Full-size workloads (the experiment binaries).
    pub fn new(seed: u64) -> Self {
        Runner { seed, small: false, ..Default::default() }
    }

    /// Reduced workloads (fast integration tests).
    pub fn small(seed: u64) -> Self {
        Runner { seed, small: true, ..Default::default() }
    }

    /// The data seed in use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when this runner builds reduced-geometry workloads.
    pub fn is_small(&self) -> bool {
        self.small
    }

    /// Attaches (or detaches) a persistent workload-image cache:
    /// [`Runner::load_or_build`] then serves workloads from disk when a
    /// valid image exists, and persists every fresh build. `None`
    /// leaves the runner uncached (the prior behavior).
    pub fn with_cache(mut self, cache: Option<WorkloadCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The attached workload-image cache, if any.
    pub fn cache(&self) -> Option<&WorkloadCache> {
        self.cache.as_ref()
    }

    /// The on-disk identity of one of this runner's workloads (its
    /// kind/variant plus the runner's seed and geometry).
    pub fn image_key(&self, kind: WorkloadKind, variant: IsaVariant) -> ImageKey {
        ImageKey { kind, variant, seed: self.seed, small: self.small }
    }

    /// Builds and verifies one workload for this runner's seed/geometry
    /// without touching the cache (the sweep engine builds off-thread
    /// and inserts the results afterwards).
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to build or fails verification
    /// against its scalar reference — a harness that times broken traces
    /// would be meaningless.
    pub fn build_workload(&self, kind: WorkloadKind, variant: IsaVariant) -> Workload {
        self.build_workload_timed(kind, variant).0
    }

    /// Like [`Runner::build_workload`], but also reports how long the
    /// build and verification phases took (what the sweep engine records
    /// into `BENCH_sweep.json`).
    ///
    /// # Panics
    ///
    /// See [`Runner::build_workload`].
    pub fn build_workload_timed(
        &self,
        kind: WorkloadKind,
        variant: IsaVariant,
    ) -> (Workload, WorkloadTiming) {
        let (wl, build) = self.build_workload_unverified(kind, variant);
        let (_digest, verify) = verify_timed(&wl);
        (wl, WorkloadTiming { build, verify })
    }

    /// The build phase alone — code generation without verification.
    /// The sweep engine's cold-path pipeline uses this so the emulator
    /// verify runs can fan out over the worker pool as separate work
    /// items instead of staying fused to their build.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to build.
    pub fn build_workload_unverified(
        &self,
        kind: WorkloadKind,
        variant: IsaVariant,
    ) -> (Workload, Duration) {
        let t0 = Instant::now();
        let wl = if self.small {
            Workload::build_small(kind, variant, self.seed)
        } else {
            Workload::build(kind, variant, self.seed)
        }
        .unwrap_or_else(|e| panic!("building {kind} {variant}: {e}"));
        (wl, t0.elapsed())
    }

    /// Loads the workload from the attached image cache, or builds,
    /// verifies and (when a cache is attached) persists it. Returns the
    /// workload, its phase timing — for a cache hit, `build` is the
    /// image load time and `verify` is zero, since a valid image proves
    /// a verification that already happened — and whether it was served
    /// from the cache.
    ///
    /// Cache problems never propagate: a missing, corrupt or stale
    /// image falls back to the build path, and a failed store is a
    /// warning (see [`WorkloadCache`]).
    ///
    /// # Panics
    ///
    /// See [`Runner::build_workload`].
    pub fn load_or_build(
        &self,
        kind: WorkloadKind,
        variant: IsaVariant,
    ) -> (Workload, WorkloadTiming, bool) {
        if let Some(cache) = &self.cache {
            let t0 = Instant::now();
            if let Some(wl) = cache.load(&self.image_key(kind, variant)) {
                let timing = WorkloadTiming { build: t0.elapsed(), verify: Duration::ZERO };
                return (wl, timing, true);
            }
        }
        let (wl, build) = self.build_workload_unverified(kind, variant);
        let (digest, verify) = verify_timed(&wl);
        if let Some(cache) = &self.cache {
            cache.store(&wl, &self.image_key(kind, variant), digest);
        }
        (wl, WorkloadTiming { build, verify }, false)
    }

    /// Builds (and caches) the workload if it is not cached yet.
    fn ensure_workload(&mut self, kind: WorkloadKind, variant: IsaVariant) {
        if !self.workloads.contains_key(&(kind, variant)) {
            let (wl, timing, _) = self.load_or_build(kind, variant);
            self.workloads.insert((kind, variant), Arc::new(wl));
            self.timings.insert((kind, variant), timing);
        }
    }

    /// Returns (building and verifying on first use) a workload.
    ///
    /// # Panics
    ///
    /// See [`Runner::build_workload`].
    pub fn workload(&mut self, kind: WorkloadKind, variant: IsaVariant) -> &Workload {
        self.ensure_workload(kind, variant);
        &self.workloads[&(kind, variant)]
    }

    /// Like [`Runner::workload`], but hands out the shared [`Arc`]
    /// (what the sweep engine distributes to its workers).
    ///
    /// # Panics
    ///
    /// See [`Runner::build_workload`].
    pub fn workload_arc(&mut self, kind: WorkloadKind, variant: IsaVariant) -> Arc<Workload> {
        self.ensure_workload(kind, variant);
        Arc::clone(&self.workloads[&(kind, variant)])
    }

    /// Inserts an externally built (and verified) workload into the
    /// cache. Later [`Runner::workload`] calls return it instead of
    /// rebuilding.
    pub fn insert_workload(&mut self, wl: Arc<Workload>) {
        self.workloads.insert((wl.kind(), wl.variant()), wl);
    }

    /// Inserts an externally built workload together with its recorded
    /// phase timings (how the parallel prebuild publishes its results).
    pub fn insert_workload_timed(&mut self, wl: Arc<Workload>, timing: WorkloadTiming) {
        self.timings.insert((wl.kind(), wl.variant()), timing);
        self.insert_workload(wl);
    }

    /// The recorded build/verify wall-clock of a cached workload.
    /// Zero-duration when the workload was inserted without timings or
    /// is not cached at all.
    pub fn workload_timing(&self, kind: WorkloadKind, variant: IsaVariant) -> WorkloadTiming {
        self.timings.get(&(kind, variant)).copied().unwrap_or_default()
    }

    /// True when the workload is already built and cached.
    pub fn has_workload(&self, kind: WorkloadKind, variant: IsaVariant) -> bool {
        self.workloads.contains_key(&(kind, variant))
    }

    /// The cached metrics for `key`, if that cell was already simulated.
    pub fn cached_metrics(&self, key: &SimKey) -> Option<Metrics> {
        self.sims.get(key).copied()
    }

    /// Inserts an externally simulated cell into the cache (how the
    /// sweep engine publishes its workers' results).
    pub fn insert_metrics(&mut self, key: SimKey, metrics: Metrics) {
        self.sims.insert(key, metrics);
    }

    /// Simulates a workload on a processor/memory configuration at the
    /// given L2 latency, with caching. `memory` accepts a
    /// [`mom3d_cpu::MemorySystemKind`] or any [`BackendId`].
    pub fn metrics(
        &mut self,
        kind: WorkloadKind,
        variant: IsaVariant,
        memory: impl Into<BackendId>,
        l2_latency: u32,
    ) -> Metrics {
        let key = SimKey { kind, variant, memory: memory.into(), l2_latency };
        if let Some(m) = self.sims.get(&key) {
            return *m;
        }
        let wl = self.workload_arc(kind, variant);
        let metrics = simulate(&key, &wl);
        self.sims.insert(key, metrics);
        metrics
    }

    /// Cycles of the MOM + ideal-memory configuration — the paper's
    /// normalization baseline for Figures 3 and 9.
    pub fn mom_ideal_cycles(&mut self, kind: WorkloadKind) -> u64 {
        self.metrics(kind, IsaVariant::Mom, BackendId::new("ideal"), 20).cycles
    }
}

/// Runs one simulation cell. Pure apart from the panic on simulator
/// errors; called from the serial [`Runner::metrics`] path and from the
/// sweep worker threads alike.
///
/// # Panics
///
/// Panics if the simulator rejects the trace.
pub(crate) fn simulate(key: &SimKey, wl: &Workload) -> Metrics {
    Processor::new(key.config())
        .run(wl.trace())
        .unwrap_or_else(|e| panic!("simulating {} {} on {:?}: {e}", key.kind, key.variant, key.memory))
}

/// Verifies a freshly built workload, timing the emulator run and
/// keeping the digest the image cache persists.
///
/// # Panics
///
/// Panics on verification failure — a harness that times broken traces
/// would be meaningless.
pub(crate) fn verify_timed(wl: &Workload) -> (u64, Duration) {
    let t0 = Instant::now();
    let digest = wl
        .verify_digested()
        .unwrap_or_else(|e| panic!("verifying {} {}: {e}", wl.kind(), wl.variant()));
    (digest, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_identical_metrics() {
        let mut r = Runner::small(1);
        let a = r.metrics(
            WorkloadKind::GsmEncode,
            IsaVariant::Mom,
            MemorySystemKind::VectorCache,
            20,
        );
        let b = r.metrics(
            WorkloadKind::GsmEncode,
            IsaVariant::Mom,
            MemorySystemKind::VectorCache,
            20,
        );
        assert_eq!(a, b);
        let key = SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 20,
        };
        assert_eq!(r.cached_metrics(&key), Some(a));
    }

    #[test]
    fn ideal_is_fastest() {
        let mut r = Runner::small(1);
        let ideal = r.mom_ideal_cycles(WorkloadKind::Mpeg2Encode);
        let vc = r
            .metrics(
                WorkloadKind::Mpeg2Encode,
                IsaVariant::Mom,
                MemorySystemKind::VectorCache,
                20,
            )
            .cycles;
        assert!(ideal < vc);
    }

    #[test]
    fn workload_phase_timings_are_recorded() {
        let mut r = Runner::small(1);
        let key = (WorkloadKind::GsmEncode, IsaVariant::Mom);
        assert_eq!(r.workload_timing(key.0, key.1), WorkloadTiming::default());
        r.workload(key.0, key.1);
        let t = r.workload_timing(key.0, key.1);
        assert!(t.build > Duration::ZERO, "building must take measurable time");
        // Publishing an external build records its timing too.
        let (wl, timing) = r.build_workload_timed(WorkloadKind::JpegDecode, IsaVariant::Mom);
        r.insert_workload_timed(Arc::new(wl), timing);
        assert_eq!(r.workload_timing(WorkloadKind::JpegDecode, IsaVariant::Mom), timing);
    }

    #[test]
    fn inserted_metrics_shadow_simulation() {
        let mut r = Runner::small(1);
        let key = SimKey {
            kind: WorkloadKind::JpegDecode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::Ideal.into(),
            l2_latency: 20,
        };
        let sentinel = Metrics { cycles: 42, ..Default::default() };
        r.insert_metrics(key, sentinel);
        assert_eq!(r.metrics(key.kind, key.variant, key.memory, key.l2_latency), sentinel);
    }
}
