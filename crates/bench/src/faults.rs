//! Deterministic, seeded fault injection for the distributed stack.
//!
//! PR 7's manifest proved the stack survives *process death*; this
//! module extends the fault model to the network and the disk. It is
//! the attack half of the repo's resilience contract — **never a wrong
//! answer, never a hang: always bit-identical metrics or a typed
//! error** — and everything in it is reachable both from tests and
//! from the binaries via `--chaos-seed` / `--chaos-profile`.
//!
//! Three injection points:
//!
//! * **[`ChaosStream`]** wraps any frame-protocol [`Stream`] and
//!   damages traffic in-line (the client side of a connection);
//! * **[`ChaosProxy`]** is an in-process man-in-the-middle that
//!   forwards bytes between a listener and an upstream endpoint,
//!   damaging them per direction (either side of a connection, no
//!   cooperation from the peer needed);
//! * **[`ShimFile`]** wraps a [`File`] with a write budget so a crash
//!   mid-record (short write, then reopen) can be staged against the
//!   manifest and the workload-image cache.
//!
//! Every fault is drawn from a [`FaultPlan`] — a SplitMix64 stream
//! seeded from `(chaos seed, connection lane)` — so the *schedule* of
//! faults is a pure function of the seed: same seed, same damage, same
//! recovery path, byte-identical fault counters. The fault taxonomy:
//!
//! | Fault       | On a write              | On a read                  |
//! |-------------|-------------------------|----------------------------|
//! | `delay`     | short sleep, then write | short sleep, then read     |
//! | `stall`     | long pause, then write  | long pause, then read      |
//! | `drop`      | connection torn down    | connection torn down       |
//! | `truncate`  | half the bytes, close   | (write-side only)          |
//! | `bitflip`   | one bit corrupted       | one bit corrupted          |
//! | `blackhole` | absorbed forever        | blocks, then times out     |
//!
//! The recovery half lives next door: [`Backoff`] is the seeded
//! exponential-backoff-with-jitter schedule used by
//! [`crate::protocol::RetryClient`], the shard worker and the tuner's
//! remote executor, and [`WarnOnce`]/[`FrameWarnings`] are the
//! once-per-class warning latches (the `store_warned` idiom from the
//! workload cache) that keep a garbage-spewing peer from flooding
//! stderr.

use crate::protocol::{Endpoint, FrameError, Stream};
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// SplitMix64 — the same mixer the load generator uses for its request
/// mix: tiny, seedable, and with a long enough period for any schedule
/// drawn here.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A mixer starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn draw(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.draw() % n
    }
}

// ---------------------------------------------------------------------------
// Chaos configuration
// ---------------------------------------------------------------------------

/// Which fault classes are armed, and how often one fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Short sleeps (1–4 ms) injected before an operation.
    pub delay: bool,
    /// Connections torn down mid-conversation.
    pub drop: bool,
    /// Long pauses (≈120 ms) injected before an operation.
    pub stall: bool,
    /// A frame cut in half, then the connection closed.
    pub truncate: bool,
    /// One bit corrupted (the frame checksum catches it downstream).
    pub bitflip: bool,
    /// Traffic absorbed forever while the connection stays open.
    pub blackhole: bool,
    /// Roughly one in `rate` operations is faulted.
    pub rate: u32,
}

impl ChaosProfile {
    /// The inert profile: no class armed.
    pub const fn none() -> ChaosProfile {
        ChaosProfile {
            delay: false,
            drop: false,
            stall: false,
            truncate: false,
            bitflip: false,
            blackhole: false,
            rate: 12,
        }
    }

    /// True when at least one fault class is armed.
    pub fn any(&self) -> bool {
        self.delay || self.drop || self.stall || self.truncate || self.bitflip || self.blackhole
    }

    /// Parses a profile string: a preset name (`light` = delay only,
    /// `mixed` = delay+drop+truncate+bitflip, `heavy` = everything) or
    /// a comma list of class names with an optional `rate=N` element,
    /// e.g. `delay,drop,rate=8`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unknown class.
    pub fn parse(spec: &str) -> Result<ChaosProfile, String> {
        let mut p = ChaosProfile::none();
        match spec {
            "none" | "off" => return Ok(p),
            "light" => {
                p.delay = true;
                p.rate = 8;
                return Ok(p);
            }
            "mixed" => {
                p.delay = true;
                p.drop = true;
                p.truncate = true;
                p.bitflip = true;
                return Ok(p);
            }
            "heavy" => {
                p.delay = true;
                p.drop = true;
                p.stall = true;
                p.truncate = true;
                p.bitflip = true;
                p.blackhole = true;
                p.rate = 6;
                return Ok(p);
            }
            _ => {}
        }
        for part in spec.split(',') {
            let part = part.trim();
            match part {
                "delay" => p.delay = true,
                "drop" => p.drop = true,
                "stall" => p.stall = true,
                "truncate" => p.truncate = true,
                "bitflip" => p.bitflip = true,
                "blackhole" => p.blackhole = true,
                _ => {
                    if let Some(n) = part.strip_prefix("rate=") {
                        p.rate = n
                            .parse::<u32>()
                            .ok()
                            .filter(|&r| r > 0)
                            .ok_or_else(|| format!("bad chaos rate {n:?} (want a positive integer)"))?;
                    } else {
                        return Err(format!(
                            "unknown chaos class {part:?} (know delay, drop, stall, truncate, \
                             bitflip, blackhole, rate=N, or the presets light/mixed/heavy)"
                        ));
                    }
                }
            }
        }
        Ok(p)
    }
}

impl fmt::Display for ChaosProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (on, name) in [
            (self.delay, "delay"),
            (self.drop, "drop"),
            (self.stall, "stall"),
            (self.truncate, "truncate"),
            (self.bitflip, "bitflip"),
            (self.blackhole, "blackhole"),
        ] {
            if on {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "none")?;
        } else {
            write!(f, ",rate={}", self.rate)?;
        }
        Ok(())
    }
}

/// A complete chaos specification: the master seed plus the armed
/// profile. Everything injected downstream is a pure function of this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Master seed; per-connection lanes are derived from it.
    pub seed: u64,
    /// The armed fault classes.
    pub profile: ChaosProfile,
}

impl ChaosConfig {
    /// Resolves the `--chaos-seed N` / `--chaos-profile SPEC` flag pair
    /// the three binaries share: both absent means no chaos; either one
    /// alone defaults the other (seed 1, profile `mixed`).
    ///
    /// # Errors
    ///
    /// Propagates the [`ChaosProfile::parse`] message.
    pub fn from_cli(
        seed: Option<u64>,
        profile: Option<&str>,
    ) -> Result<Option<ChaosConfig>, String> {
        match (seed, profile) {
            (None, None) => Ok(None),
            (seed, profile) => Ok(Some(ChaosConfig {
                seed: seed.unwrap_or(1),
                profile: ChaosProfile::parse(profile.unwrap_or("mixed"))?,
            })),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// One concrete injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this long, then perform the operation normally.
    Delay(Duration),
    /// Like `Delay`, but long enough to be felt by a deadline.
    Stall(Duration),
    /// Tear the connection down.
    Drop,
    /// Forward half the bytes, then tear the connection down.
    Truncate,
    /// Corrupt one bit of the payload in flight.
    BitFlip,
    /// Absorb all further traffic while keeping the connection open.
    BlackHole,
}

/// How long a `stall` fault pauses.
const STALL_PAUSE: Duration = Duration::from_millis(120);
/// How long a black-holed read pretends to block before reporting a
/// timeout. Fixed — not tied to the real socket deadline — so the
/// fault *outcome* is deterministic regardless of wall-clock jitter.
const BLACKHOLE_READ_PAUSE: Duration = Duration::from_millis(40);

/// The deterministic per-connection fault schedule: a SplitMix64 stream
/// seeded from `(config.seed, lane)`, consulted once per I/O operation.
/// Two plans with the same seed and lane draw the same faults at the
/// same operation indices, forever.
#[derive(Debug)]
pub struct FaultPlan {
    mix: SplitMix64,
    profile: ChaosProfile,
}

impl FaultPlan {
    /// The plan for one connection (or pump direction). `lane` is any
    /// stable discriminator — connection sequence number, or
    /// `2*conn + direction` for a proxy.
    pub fn new(config: &ChaosConfig, lane: u64) -> FaultPlan {
        FaultPlan {
            mix: SplitMix64::new(
                config.seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(lane),
            ),
            profile: config.profile,
        }
    }

    /// Draws the fault (if any) for the next I/O operation.
    pub fn draw(&mut self) -> Option<FaultKind> {
        if !self.profile.any() || self.mix.below(self.profile.rate as u64) != 0 {
            return None;
        }
        let armed: Vec<FaultKind> = [
            (self.profile.delay, FaultKind::Delay(Duration::ZERO)),
            (self.profile.drop, FaultKind::Drop),
            (self.profile.stall, FaultKind::Stall(STALL_PAUSE)),
            (self.profile.truncate, FaultKind::Truncate),
            (self.profile.bitflip, FaultKind::BitFlip),
            (self.profile.blackhole, FaultKind::BlackHole),
        ]
        .into_iter()
        .filter_map(|(on, kind)| on.then_some(kind))
        .collect();
        let kind = armed[self.mix.below(armed.len() as u64) as usize];
        Some(match kind {
            FaultKind::Delay(_) => {
                FaultKind::Delay(Duration::from_millis(1 + self.mix.below(4)))
            }
            other => other,
        })
    }

    /// A raw draw for auxiliary decisions (which byte to flip, …).
    fn below(&mut self, n: u64) -> u64 {
        self.mix.below(n)
    }
}

// ---------------------------------------------------------------------------
// ChaosStream: in-line damage on one endpoint's own connection
// ---------------------------------------------------------------------------

/// What a torn-down chaos connection reports from then on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosState {
    Live,
    /// Torn down: every further operation is `ConnectionReset`.
    Dropped,
    /// Black-holed: writes are absorbed, reads block then time out.
    BlackHoled,
}

/// A [`Stream`] wrapper that injects faults from a [`FaultPlan`] on the
/// wrapping endpoint's own traffic. Used by the load generator and the
/// retry client (`--chaos-seed` on `mom3d-load`): because the faults
/// fire by operation index and never consult the real clock for their
/// *outcome*, a same-seed run takes the same recovery path and reports
/// the same fault counters.
#[derive(Debug)]
pub struct ChaosStream {
    inner: Stream,
    plan: FaultPlan,
    state: ChaosState,
    injected: u64,
}

impl ChaosStream {
    /// Wraps `inner`, drawing faults from `plan`.
    pub fn wrap(inner: Stream, plan: FaultPlan) -> ChaosStream {
        ChaosStream { inner, plan, state: ChaosState::Live, injected: 0 }
    }

    /// Faults injected so far on this connection.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped stream (timeouts and shutdown delegate to it).
    pub fn inner(&self) -> &Stream {
        &self.inner
    }

    fn torn_down(&mut self) -> io::Error {
        self.inner.shutdown_all();
        self.state = ChaosState::Dropped;
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection dropped")
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.state {
            ChaosState::Dropped => {
                return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: dropped"))
            }
            ChaosState::BlackHoled => {
                thread::sleep(BLACKHOLE_READ_PAUSE);
                return Err(io::Error::new(io::ErrorKind::TimedOut, "chaos: black-holed"));
            }
            ChaosState::Live => {}
        }
        match self.plan.draw() {
            None => self.inner.read(buf),
            Some(FaultKind::Delay(d)) | Some(FaultKind::Stall(d)) => {
                self.injected += 1;
                thread::sleep(d);
                self.inner.read(buf)
            }
            Some(FaultKind::Drop) | Some(FaultKind::Truncate) => {
                self.injected += 1;
                Err(self.torn_down())
            }
            Some(FaultKind::BitFlip) => {
                self.injected += 1;
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let idx = self.plan.below(n as u64) as usize;
                    buf[idx] ^= 1 << self.plan.below(8);
                }
                Ok(n)
            }
            Some(FaultKind::BlackHole) => {
                self.injected += 1;
                self.state = ChaosState::BlackHoled;
                thread::sleep(BLACKHOLE_READ_PAUSE);
                Err(io::Error::new(io::ErrorKind::TimedOut, "chaos: black-holed"))
            }
        }
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.state {
            ChaosState::Dropped => {
                return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: dropped"))
            }
            // A black hole swallows writes silently — the caller only
            // finds out when its next read deadline expires.
            ChaosState::BlackHoled => return Ok(buf.len()),
            ChaosState::Live => {}
        }
        match self.plan.draw() {
            None => self.inner.write(buf),
            Some(FaultKind::Delay(d)) | Some(FaultKind::Stall(d)) => {
                self.injected += 1;
                thread::sleep(d);
                self.inner.write(buf)
            }
            Some(FaultKind::Drop) => {
                self.injected += 1;
                Err(self.torn_down())
            }
            Some(FaultKind::Truncate) => {
                self.injected += 1;
                let _ = self.inner.write(&buf[..buf.len() / 2]);
                let _ = self.inner.flush();
                self.torn_down();
                // Pretend success: the peer sees a torn frame, the
                // caller finds out on its next read — exactly a mid-
                // frame crash of the path between them.
                Ok(buf.len())
            }
            Some(FaultKind::BitFlip) => {
                self.injected += 1;
                let mut copy = buf.to_vec();
                let idx = self.plan.below(copy.len().max(1) as u64) as usize;
                if !copy.is_empty() {
                    copy[idx] ^= 1 << self.plan.below(8);
                }
                self.inner.write_all(&copy)?;
                Ok(buf.len())
            }
            Some(FaultKind::BlackHole) => {
                self.injected += 1;
                self.state = ChaosState::BlackHoled;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.state {
            ChaosState::Live => self.inner.flush(),
            _ => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// ChaosProxy: a man-in-the-middle for whole deployments
// ---------------------------------------------------------------------------

/// An in-process chaos proxy: listens on its own endpoint, dials the
/// upstream for every accepted connection, and pumps bytes both ways
/// through per-direction [`FaultPlan`]s. The peers need no cooperation
/// — `tests/chaos.rs` runs unmodified workers and clients through it —
/// and `mom3d-serve`/`mom3d-shard` use the same fault plans directly on
/// their accepted streams for `--chaos-seed`.
#[derive(Debug)]
pub struct ChaosProxy {
    endpoint: Endpoint,
    unix_path: Option<PathBuf>,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

/// Read deadline on proxy pump sockets, so an idle pump re-checks the
/// proxy's shutdown latch instead of blocking forever.
const PUMP_POLL: Duration = Duration::from_millis(200);

impl ChaosProxy {
    /// Binds `listen`, forwarding every accepted connection to
    /// `upstream` with faults drawn from `config`. `Tcp` endpoints may
    /// use port 0; the resolved endpoint is [`ChaosProxy::endpoint`].
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn spawn(
        listen: Endpoint,
        upstream: Endpoint,
        config: ChaosConfig,
    ) -> io::Result<ChaosProxy> {
        enum ProxyListener {
            Tcp(std::net::TcpListener),
            Unix(std::os::unix::net::UnixListener),
        }
        let (listener, endpoint, unix_path) = match &listen {
            Endpoint::Tcp(addr) => {
                let l = std::net::TcpListener::bind(addr.as_str())?;
                let resolved = Endpoint::Tcp(l.local_addr()?.to_string());
                (ProxyListener::Tcp(l), resolved, None)
            }
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l = std::os::unix::net::UnixListener::bind(path)?;
                (ProxyListener::Unix(l), listen.clone(), Some(path.clone()))
            }
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            thread::Builder::new().name("mom3d-chaos-accept".into()).spawn(move || {
                let mut conn: u64 = 0;
                loop {
                    let client = match &listener {
                        ProxyListener::Tcp(l) => l.accept().map(|(s, _)| {
                            let _ = s.set_nodelay(true);
                            Stream::Tcp(s)
                        }),
                        ProxyListener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = client else { break };
                    let Ok(server) = upstream.connect() else {
                        // Upstream gone: refuse by closing; the client's
                        // own retry policy decides what happens next.
                        client.shutdown_all();
                        continue;
                    };
                    Self::splice(client, server, &config, conn, &shutdown);
                    conn += 1;
                }
            })?
        };
        Ok(ChaosProxy { endpoint, unix_path, shutdown, accept: Some(accept) })
    }

    /// The (resolved) endpoint clients should dial.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn splice(client: Stream, server: Stream, config: &ChaosConfig, conn: u64, stop: &Arc<AtomicBool>) {
        let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
            client.shutdown_all();
            server.shutdown_all();
            return;
        };
        for (src, dst, lane) in [(client_r, server, 2 * conn), (server_r, client, 2 * conn + 1)] {
            let plan = FaultPlan::new(config, lane);
            let stop = Arc::clone(stop);
            let _ = thread::Builder::new()
                .name(format!("mom3d-chaos-pump-{conn}"))
                .spawn(move || Self::pump(src, dst, plan, &stop));
        }
    }

    fn pump(mut src: Stream, mut dst: Stream, mut plan: FaultPlan, stop: &AtomicBool) {
        src.set_read_timeout(Some(PUMP_POLL));
        let mut buf = [0u8; 8192];
        let mut absorbing = false;
        loop {
            let n = match src.read(&mut buf) {
                Ok(0) => {
                    // Propagate the half-close; the reverse pump keeps
                    // draining replies already in flight.
                    dst.shutdown_write();
                    return;
                }
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            };
            if absorbing {
                continue;
            }
            match plan.draw() {
                None => {
                    if dst.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                Some(FaultKind::Delay(d)) | Some(FaultKind::Stall(d)) => {
                    thread::sleep(d);
                    if dst.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                Some(FaultKind::Drop) => break,
                Some(FaultKind::Truncate) => {
                    let _ = dst.write_all(&buf[..n / 2]);
                    let _ = dst.flush();
                    break;
                }
                Some(FaultKind::BitFlip) => {
                    let idx = plan.below(n as u64) as usize;
                    buf[idx] ^= 1 << plan.below(8);
                    if dst.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                Some(FaultKind::BlackHole) => {
                    // Keep draining the source (so its sender never
                    // blocks) but never forward another byte.
                    absorbing = true;
                }
            }
        }
        src.shutdown_all();
        dst.shutdown_all();
    }

    /// Stops accepting and unlinks the proxy's unix socket (if any).
    /// Existing pumps wind down on their own poll deadlines.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = self.endpoint.connect(); // unblock the blocking accept
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Seeded backoff
// ---------------------------------------------------------------------------

/// Seeded exponential backoff with jitter: delay `i` is uniform in
/// `[cap/2, cap]` where `cap = min(base · 2^i, max)`. The jitter comes
/// from a [`SplitMix64`] stream, so a same-seed client backs off by the
/// same schedule every run — retries stay deterministic end to end.
#[derive(Debug, Clone)]
pub struct Backoff {
    mix: SplitMix64,
    base: Duration,
    max: Duration,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule.
    pub fn new(seed: u64, base: Duration, max: Duration) -> Backoff {
        Backoff { mix: SplitMix64::new(seed), base, max, attempt: 0 }
    }

    /// The next delay (and advances the schedule).
    pub fn next_delay(&mut self) -> Duration {
        let cap = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.max)
            .max(Duration::from_millis(1));
        self.attempt = self.attempt.saturating_add(1);
        let cap_us = cap.as_micros() as u64;
        Duration::from_micros(cap_us / 2 + self.mix.below(cap_us / 2 + 1))
    }

    /// Back to the first rung (call after any successful operation).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

// ---------------------------------------------------------------------------
// Injectable I/O shim for manifest/cache writes
// ---------------------------------------------------------------------------

/// A write fault: the file accepts exactly `fail_after` more bytes,
/// then every write fails — the on-disk state a crash mid-record
/// leaves behind (a short final record).
#[derive(Debug, Clone, Copy)]
pub struct WriteFault {
    /// Bytes accepted before the injected failure.
    pub fail_after: u64,
}

/// The injectable file shim the manifest (and the workload-image cache
/// probe tests) write through: a plain [`File`] passthrough until a
/// [`WriteFault`]'s budget runs out, after which writes are cut short
/// and then refused. With no fault armed it is a zero-cost wrapper.
#[derive(Debug)]
pub struct ShimFile {
    file: File,
    budget: Option<u64>,
}

impl ShimFile {
    /// A passthrough shim (no fault armed).
    pub fn new(file: File) -> ShimFile {
        ShimFile { file, budget: None }
    }

    /// A shim that fails after `fault.fail_after` bytes.
    pub fn with_fault(file: File, fault: WriteFault) -> ShimFile {
        ShimFile { file, budget: Some(fault.fail_after) }
    }
}

impl Write for ShimFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match &mut self.budget {
            None => self.file.write(buf),
            Some(budget) => {
                let allowed = (*budget).min(buf.len() as u64) as usize;
                if allowed == 0 {
                    return Err(io::Error::other("injected write fault: budget exhausted"));
                }
                let n = self.file.write(&buf[..allowed])?;
                *budget -= n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

// ---------------------------------------------------------------------------
// Once-per-class warnings
// ---------------------------------------------------------------------------

/// A warning latch: the first [`WarnOnce::warn`] prints, every later
/// one is suppressed — the `store_warned` once-flag idiom from the
/// workload cache, packaged so the serve/shard connection handlers can
/// log protocol damage without letting a garbage-spewing client flood
/// stderr.
#[derive(Debug, Default)]
pub struct WarnOnce(AtomicBool);

impl WarnOnce {
    /// A fresh (unfired) latch.
    pub const fn new() -> WarnOnce {
        WarnOnce(AtomicBool::new(false))
    }

    /// Prints `warning: {message} (repeats suppressed)` the first time;
    /// returns whether this call printed.
    pub fn warn(&self, message: impl fmt::Display) -> bool {
        if self.0.swap(true, Ordering::Relaxed) {
            return false;
        }
        eprintln!("warning: {message} (repeats of this class suppressed)");
        true
    }

    /// True once a warning fired.
    pub fn fired(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// One [`WarnOnce`] latch per frame-damage class, shared by all of a
/// server's connection handlers.
#[derive(Debug, Default)]
pub struct FrameWarnings {
    io: WarnOnce,
    bad_magic: WarnOnce,
    oversized: WarnOnce,
    checksum: WarnOnce,
    timeout: WarnOnce,
}

impl FrameWarnings {
    /// Fresh latches.
    pub const fn new() -> FrameWarnings {
        FrameWarnings {
            io: WarnOnce::new(),
            bad_magic: WarnOnce::new(),
            oversized: WarnOnce::new(),
            checksum: WarnOnce::new(),
            timeout: WarnOnce::new(),
        }
    }

    /// Logs `err` from `who` once per damage class. `Closed` (a normal
    /// disconnect) is never logged.
    pub fn note(&self, who: &str, err: &FrameError) {
        let latch = match err {
            FrameError::Closed => return,
            FrameError::Io(_) => &self.io,
            FrameError::BadMagic(_) => &self.bad_magic,
            FrameError::Oversized(_) => &self.oversized,
            FrameError::Checksum => &self.checksum,
            FrameError::TimedOut => &self.timeout,
        };
        latch.warn(format_args!("{who}: {err}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_parse_and_round_trip() {
        assert!(!ChaosProfile::parse("none").unwrap().any());
        let light = ChaosProfile::parse("light").unwrap();
        assert!(light.delay && !light.drop && light.rate == 8);
        let mixed = ChaosProfile::parse("mixed").unwrap();
        assert!(mixed.delay && mixed.drop && mixed.truncate && mixed.bitflip);
        assert!(!mixed.stall && !mixed.blackhole);
        let heavy = ChaosProfile::parse("heavy").unwrap();
        assert!(heavy.blackhole && heavy.stall && heavy.rate == 6);

        let custom = ChaosProfile::parse("delay, drop ,rate=5").unwrap();
        assert!(custom.delay && custom.drop && custom.rate == 5);
        assert_eq!(custom.to_string(), "delay,drop,rate=5");
        // Display output re-parses to the same profile.
        assert_eq!(ChaosProfile::parse(&custom.to_string()).unwrap(), custom);

        assert!(ChaosProfile::parse("gremlins").is_err());
        assert!(ChaosProfile::parse("rate=0").is_err());
        assert_eq!(ChaosProfile::none().to_string(), "none");
    }

    #[test]
    fn cli_pair_defaults_each_other() {
        assert!(ChaosConfig::from_cli(None, None).unwrap().is_none());
        let c = ChaosConfig::from_cli(Some(42), None).unwrap().unwrap();
        assert_eq!(c.seed, 42);
        assert!(c.profile.drop); // mixed default
        let c = ChaosConfig::from_cli(None, Some("light")).unwrap().unwrap();
        assert_eq!(c.seed, 1);
        assert!(c.profile.delay && !c.profile.drop);
        assert!(ChaosConfig::from_cli(Some(1), Some("wat")).is_err());
    }

    #[test]
    fn fault_schedules_are_deterministic_per_lane() {
        let config = ChaosConfig { seed: 99, profile: ChaosProfile::parse("heavy").unwrap() };
        let draw = |lane: u64| -> Vec<Option<FaultKind>> {
            let mut plan = FaultPlan::new(&config, lane);
            (0..256).map(|_| plan.draw()).collect()
        };
        // Same seed + lane: identical schedule. Different lane: different.
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
        // The armed classes all eventually fire at heavy's rate.
        let fired: Vec<FaultKind> = draw(7).into_iter().flatten().collect();
        assert!(!fired.is_empty());
        assert!(fired.len() < 256 / 2, "rate limiter must leave most ops clean");
    }

    #[test]
    fn an_inert_profile_never_fires() {
        let config = ChaosConfig { seed: 5, profile: ChaosProfile::none() };
        let mut plan = FaultPlan::new(&config, 0);
        assert!((0..1000).all(|_| plan.draw().is_none()));
    }

    #[test]
    fn backoff_grows_is_jittered_and_deterministic() {
        let base = Duration::from_millis(4);
        let max = Duration::from_millis(64);
        let mut a = Backoff::new(11, base, max);
        let mut b = Backoff::new(11, base, max);
        let delays: Vec<Duration> = (0..8).map(|_| a.next_delay()).collect();
        assert_eq!(delays, (0..8).map(|_| b.next_delay()).collect::<Vec<_>>());
        // Every delay is within [cap/2, cap] and the cap saturates at max.
        for (i, d) in delays.iter().enumerate() {
            let cap = base.saturating_mul(1 << i.min(16)).min(max);
            assert!(*d >= cap / 2 && *d <= cap, "delay {d:?} outside [{:?}, {cap:?}]", cap / 2);
        }
        assert!(delays[7] >= max / 2);
        a.reset();
        assert!(a.next_delay() <= base);
    }

    #[test]
    fn the_write_shim_enforces_its_budget() {
        let path = std::env::temp_dir()
            .join(format!("mom3d-shim-{}-{:?}", std::process::id(), std::thread::current().id()));
        let file = File::create(&path).unwrap();
        let mut shim = ShimFile::with_fault(file, WriteFault { fail_after: 10 });
        assert_eq!(shim.write(b"0123456").unwrap(), 7);
        // Only 3 budget bytes left: the write is cut short.
        assert_eq!(shim.write(b"89abcdef").unwrap(), 3);
        assert!(shim.write(b"x").is_err());
        drop(shim);
        assert_eq!(std::fs::read(&path).unwrap(), b"012345689a");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warnings_fire_once_per_class() {
        let w = WarnOnce::new();
        assert!(!w.fired());
        assert!(w.warn("first"));
        assert!(!w.warn("second"));
        assert!(w.fired());

        let frames = FrameWarnings::new();
        frames.note("test", &FrameError::Checksum);
        frames.note("test", &FrameError::Checksum);
        assert!(frames.checksum.fired());
        // A clean disconnect is not damage — never latched, never logged.
        frames.note("test", &FrameError::Closed);
        assert!(!frames.io.fired());
    }
}
