//! Regenerates Figure 6: effective memory bandwidth (words/access).

use mom3d_bench::{fig6, runner_from_args, sweep};

fn main() {
    let mut r = runner_from_args();
    sweep::run(&mut r, &sweep::cells_fig6(), sweep::threads_from_env());
    print!("{}", fig6(&mut r));
}
