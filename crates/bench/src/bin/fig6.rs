//! Regenerates Figure 6: effective memory bandwidth (words/access).

use mom3d_bench::{fig6, seed_from_args, sweep, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    sweep::run(&mut r, &sweep::cells_fig6(), sweep::threads_from_env());
    print!("{}", fig6(&mut r));
}
