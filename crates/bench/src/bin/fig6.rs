//! Regenerates Figure 6: effective memory bandwidth (words/access).

use mom3d_bench::{fig6, seed_from_args, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    print!("{}", fig6(&mut r));
}
