//! The resident simulation server.
//!
//! Keeps verified workloads and the `SimKey → Metrics` memo table alive
//! in one long-lived process and serves simulation requests over the
//! binary frame protocol, on TCP or a unix-domain socket:
//!
//! ```text
//! mom3d-serve [SEED] [--tcp ADDR | --unix PATH] [--small] [--threads N]
//!             [--cache-dir PATH] [--prebuild]
//!             [--chaos-seed N] [--chaos-profile P]
//! ```
//!
//! Defaults: seed 7, `--tcp 127.0.0.1:7733`, full geometry, one
//! simulation worker per core. `--cache-dir` (or
//! `MOM3D_WORKLOAD_CACHE`) hydrates workloads from the on-disk image
//! cache; `--prebuild` builds every paper workload at boot so the first
//! request is already warm. The process runs until a client sends
//! `SHUTDOWN` (e.g. `mom3d-load` in `--stop` mode, or any protocol
//! client).
//!
//! `--chaos-seed`/`--chaos-profile` wrap every accepted connection in
//! the deterministic fault injector (`mom3d_bench::faults`): frames are
//! delayed, dropped, truncated, bit-flipped or black-holed from a
//! seeded schedule, so retrying clients can be soak-tested against a
//! hostile server. Either flag defaults the other (seed 1, profile
//! `mixed`).
//!
//! A readiness line (`listening on …`) is printed to stdout once the
//! socket is bound — CI waits for it before starting the load.

use mom3d_bench::faults::ChaosConfig;
use mom3d_bench::protocol::Endpoint;
use mom3d_bench::serve::{serve, ServeConfig};
use mom3d_bench::WorkloadCache;
use std::path::PathBuf;

const USAGE: &str = "usage: mom3d-serve [SEED] [--tcp ADDR | --unix PATH] [--small] \
                     [--threads N] [--cache-dir PATH] [--prebuild] \
                     [--chaos-seed N] [--chaos-profile P]";

struct Args {
    endpoint: Endpoint,
    config: ServeConfig,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut seed: Option<u64> = None;
    let mut config = ServeConfig::default();
    let mut cache_dir: Option<PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_profile: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => {
                let v = it.next().ok_or("--tcp needs an address")?;
                set_endpoint(&mut endpoint, Endpoint::Tcp(v))?;
            }
            "--unix" => {
                let v = it.next().ok_or("--unix needs a path")?;
                set_endpoint(&mut endpoint, Endpoint::Unix(PathBuf::from(v)))?;
            }
            "--small" => config.small = true,
            "--prebuild" => config.prebuild = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("--threads {v:?}: not an integer"))?;
                // 0 follows the same warn-and-fallback policy as
                // MOM3D_SWEEP_THREADS (ServeConfig treats 0 as "default").
                if n == 0 {
                    eprintln!("warning: --threads 0 is not a thread count; using all cores");
                }
                config.threads = n;
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                cache_dir = Some(PathBuf::from(v));
            }
            "--chaos-seed" => {
                let v = it.next().ok_or("--chaos-seed needs a value")?;
                chaos_seed =
                    Some(v.parse().map_err(|_| format!("--chaos-seed {v:?}: not an integer"))?);
            }
            "--chaos-profile" => {
                chaos_profile = Some(it.next().ok_or("--chaos-profile needs a profile")?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            positional => {
                if seed.is_some() {
                    return Err(format!("unexpected second positional argument {positional:?}"));
                }
                seed = Some(
                    positional
                        .parse()
                        .map_err(|_| format!("seed {positional:?}: not an integer"))?,
                );
            }
        }
    }
    config.seed = seed.unwrap_or(7);
    config.cache = WorkloadCache::resolve(cache_dir.as_deref());
    config.chaos = ChaosConfig::from_cli(chaos_seed, chaos_profile.as_deref())?;
    Ok(Args {
        endpoint: endpoint.unwrap_or_else(|| Endpoint::Tcp("127.0.0.1:7733".into())),
        config,
    })
}

fn set_endpoint(slot: &mut Option<Endpoint>, ep: Endpoint) -> Result<(), String> {
    if slot.is_some() {
        return Err("at most one of --tcp/--unix".into());
    }
    *slot = Some(ep);
    Ok(())
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let seed = args.config.seed;
    let small = args.config.small;
    let chaos = args.config.chaos;
    let handle = match serve(args.endpoint, args.config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: could not bind: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "mom3d-serve listening on {} (seed {seed}, {} geometry)",
        handle.endpoint(),
        if small { "small" } else { "full" }
    );
    if let Some(chaos) = chaos {
        eprintln!(
            "mom3d-serve: fault injection ARMED (seed {}, profile {}) — \
             every connection will be damaged on purpose",
            chaos.seed, chaos.profile
        );
    }
    handle.wait();
    eprintln!("mom3d-serve: shutdown requested, bye");
}
