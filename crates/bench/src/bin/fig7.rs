//! Regenerates Figure 7: vector-cache traffic reduction from 3D reuse.

use mom3d_bench::{fig7, seed_from_args, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    print!("{}", fig7(&mut r));
}
