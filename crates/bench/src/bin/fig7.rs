//! Regenerates Figure 7: vector-cache traffic reduction from 3D reuse.

use mom3d_bench::{fig7, runner_from_args, sweep};

fn main() {
    let mut r = runner_from_args();
    sweep::run(&mut r, &sweep::cells_fig7(), sweep::threads_from_env());
    print!("{}", fig7(&mut r));
}
