//! Regenerates Figure 7: vector-cache traffic reduction from 3D reuse.

use mom3d_bench::{fig7, seed_from_args, sweep, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    sweep::run(&mut r, &sweep::cells_fig7(), sweep::threads_from_env());
    print!("{}", fig7(&mut r));
}
