//! Regenerates Table 4: L2 cache activity.

use mom3d_bench::{runner_from_args, sweep, table4};

fn main() {
    let mut r = runner_from_args();
    sweep::run(&mut r, &sweep::cells_fig6(), sweep::threads_from_env());
    print!("{}", table4(&mut r));
}
