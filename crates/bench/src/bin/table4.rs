//! Regenerates Table 4: L2 cache activity.

use mom3d_bench::{seed_from_args, table4, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    print!("{}", table4(&mut r));
}
