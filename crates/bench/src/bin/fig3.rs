//! Regenerates Figure 3: slowdown of realistic MOM memory systems.

use mom3d_bench::{fig3, seed_from_args, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    print!("{}", fig3(&mut r));
}
