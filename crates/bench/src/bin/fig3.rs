//! Regenerates Figure 3: slowdown of realistic MOM memory systems.

use mom3d_bench::{fig3, runner_from_args, sweep};

fn main() {
    let mut r = runner_from_args();
    sweep::run(&mut r, &sweep::cells_fig3(), sweep::threads_from_env());
    print!("{}", fig3(&mut r));
}
