//! The load generator for `mom3d-serve`.
//!
//! Replays a deterministic mixed request stream (memo-hot cells,
//! memo-cold cells, streamed sweeps, malformed frames, mid-stream
//! disconnects) from many concurrent connections, verifies every
//! observed `Metrics` bit-for-bit against in-process execution, and
//! writes `BENCH_serve.json` with p50/p99 latency and requests/sec:
//!
//! ```text
//! mom3d-load (--tcp ADDR | --unix PATH) [--clients N] [--requests N]
//!            [--mix-seed N] [--smoke] [--no-verify] [--json PATH] [--stop]
//!            [--chaos-seed N] [--chaos-profile P]
//! ```
//!
//! Defaults: 32 clients × 32 requests (≥ 1000 mixed requests) with
//! verification on. `--smoke` is the small CI preset (6 × 12, still
//! every request class). `--stop` additionally sends `SHUTDOWN` after
//! the run, stopping the server. Exits non-zero when any correctness
//! check failed — a lying server fails CI, not just a slow one.
//!
//! `--chaos-seed`/`--chaos-profile` wrap every well-formed connection
//! in the deterministic client-side fault injector and drive it through
//! the retry layer; the report's `faults` block counts the timeouts,
//! retries and `ERR_OVERLOADED` sheds absorbed. Bit-identity is still
//! asserted — chaos may cost latency, never correctness.

use mom3d_bench::faults::ChaosConfig;
use mom3d_bench::load::{run_load, LoadConfig};
use mom3d_bench::protocol::{Client, Endpoint, Request};
use std::path::PathBuf;

const USAGE: &str = "usage: mom3d-load (--tcp ADDR | --unix PATH) [--clients N] [--requests N] \
                     [--mix-seed N] [--smoke] [--no-verify] [--json PATH] [--stop] \
                     [--chaos-seed N] [--chaos-profile P]";

struct Args {
    config: LoadConfig,
    json: PathBuf,
    stop: bool,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut smoke = false;
    let mut clients: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut mix_seed: Option<u64> = None;
    let mut verify = true;
    let mut json: Option<PathBuf> = None;
    let mut stop = false;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_profile: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => {
                let v = it.next().ok_or("--tcp needs an address")?;
                set_endpoint(&mut endpoint, Endpoint::Tcp(v))?;
            }
            "--unix" => {
                let v = it.next().ok_or("--unix needs a path")?;
                set_endpoint(&mut endpoint, Endpoint::Unix(PathBuf::from(v)))?;
            }
            "--smoke" => smoke = true,
            "--no-verify" => verify = false,
            "--stop" => stop = true,
            "--clients" => clients = Some(positive(&mut it, "--clients")?),
            "--requests" => requests = Some(positive(&mut it, "--requests")?),
            "--mix-seed" => {
                let v = it.next().ok_or("--mix-seed needs a value")?;
                mix_seed =
                    Some(v.parse().map_err(|_| format!("--mix-seed {v:?}: not an integer"))?);
            }
            "--json" => {
                let v = it.next().ok_or("--json needs a path")?;
                json = Some(PathBuf::from(v));
            }
            "--chaos-seed" => {
                let v = it.next().ok_or("--chaos-seed needs a value")?;
                chaos_seed =
                    Some(v.parse().map_err(|_| format!("--chaos-seed {v:?}: not an integer"))?);
            }
            "--chaos-profile" => {
                chaos_profile = Some(it.next().ok_or("--chaos-profile needs a profile")?);
            }
            flag => return Err(format!("unknown argument {flag:?}")),
        }
    }
    let endpoint = endpoint.ok_or("an endpoint is required (--tcp ADDR or --unix PATH)")?;
    let mut config =
        if smoke { LoadConfig::smoke(endpoint) } else { LoadConfig::bench(endpoint) };
    if let Some(n) = clients {
        config.clients = n;
    }
    if let Some(n) = requests {
        config.requests_per_client = n;
    }
    if let Some(s) = mix_seed {
        config.mix_seed = s;
    }
    config.verify = verify;
    config.chaos = ChaosConfig::from_cli(chaos_seed, chaos_profile.as_deref())?;
    Ok(Args { config, json: json.unwrap_or_else(|| PathBuf::from("BENCH_serve.json")), stop })
}

fn set_endpoint(slot: &mut Option<Endpoint>, ep: Endpoint) -> Result<(), String> {
    if slot.is_some() {
        return Err("at most one of --tcp/--unix".into());
    }
    *slot = Some(ep);
    Ok(())
}

fn positive(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    let n: usize = v.parse().map_err(|_| format!("{flag} {v:?}: not an integer"))?;
    if n == 0 {
        return Err(format!("{flag} 0: must be at least 1"));
    }
    Ok(n)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let report = match run_load(&args.config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: load run against {} failed: {e}", args.config.endpoint);
            std::process::exit(1);
        }
    };
    println!(
        "mom3d-load: {} requests from {} clients in {:.2?} ({:.0} req/s)",
        report.requests_sent, report.clients, report.elapsed, report.requests_per_sec
    );
    println!(
        "  results {}  memo hits {}  provoked errors {}  disconnects {}  verified cells {}",
        report.results_received,
        report.memo_hits,
        report.expected_errors,
        report.disconnects,
        report.verified_cells
    );
    println!("  latency p50 {}us  p99 {}us  max {}us", report.p50_us, report.p99_us, report.max_us);
    if let Some(chaos) = &report.chaos {
        println!(
            "  chaos seed {} profile {}  absorbed: {} timeout(s), {} retry(ies), {} shed(s) \
             ({} later succeeded)",
            chaos.seed,
            chaos.profile,
            report.faults.timeouts,
            report.faults.retries,
            report.faults.sheds,
            report.faults.shed_then_succeeded
        );
    }
    for failure in &report.failures {
        eprintln!("FAIL: {failure}");
    }
    match std::fs::write(&args.json, report.to_json()) {
        Ok(()) => eprintln!("load report written to {}", args.json.display()),
        Err(e) => eprintln!("could not write {}: {e}", args.json.display()),
    }
    if args.stop {
        request_shutdown(&args.config.endpoint);
    }
    if !report.ok() {
        eprintln!("mom3d-load: {} correctness check(s) FAILED", report.failures.len());
        std::process::exit(1);
    }
}

/// Asks the server to shut down, retrying with a bounded budget: under
/// fault injection a single `SHUTDOWN` frame (or its `BYE` ack) can be
/// damaged in flight, and an unstopped server would leave the caller's
/// `wait` hanging. A connect that fails outright means the server is
/// already gone — that is success, not an error.
fn request_shutdown(endpoint: &Endpoint) {
    let mut last_err = None;
    for attempt in 0..8u32 {
        let mut client = match Client::connect(endpoint) {
            Ok(client) => client,
            Err(_) => {
                eprintln!("server shutdown confirmed (endpoint no longer accepts)");
                return;
            }
        };
        // Bounded wait: a fault that swallows the ack must not wedge us.
        client.set_io_timeout(Some(std::time::Duration::from_secs(5)));
        match client.round_trip(&Request::Shutdown) {
            Ok(_) => {
                eprintln!("server shutdown requested");
                return;
            }
            Err(e) => last_err = Some(e),
        }
        std::thread::sleep(std::time::Duration::from_millis(50 << attempt.min(4)));
    }
    if let Some(e) = last_err {
        eprintln!("could not request shutdown: {e}");
    }
}
