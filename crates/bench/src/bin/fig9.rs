//! Regenerates Figure 9: slowdown across ISA and memory configurations.

use mom3d_bench::{fig9, seed_from_args, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    print!("{}", fig9(&mut r));
}
