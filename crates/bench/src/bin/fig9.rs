//! Regenerates Figure 9: slowdown across ISA and memory configurations.

use mom3d_bench::{fig9, runner_from_args, sweep};

fn main() {
    let mut r = runner_from_args();
    sweep::run(&mut r, &sweep::cells_fig9(), sweep::threads_from_env());
    print!("{}", fig9(&mut r));
}
