//! Regenerates Table 1: vector lengths per memory dimension.

use mom3d_bench::{runner_from_args, sweep, table1};

fn main() {
    let mut r = runner_from_args();
    sweep::prebuild_workloads(&mut r, &sweep::pairs_table1(), sweep::threads_from_env());
    print!("{}", table1(&mut r));
}
