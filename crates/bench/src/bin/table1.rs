//! Regenerates Table 1: vector lengths per memory dimension.

use mom3d_bench::{seed_from_args, table1, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    print!("{}", table1(&mut r));
}
