//! Runs the complete experiment matrix in paper order — the input for
//! `EXPERIMENTS.md`.
//!
//! The whole matrix is simulated up front by the parallel sweep engine
//! (`MOM3D_SWEEP_THREADS` workers, default all cores); the figure and
//! table formatters below then read the pre-filled cache. A
//! machine-readable report with wall-clock per cell is written to
//! `BENCH_sweep.json` (override with `MOM3D_SWEEP_JSON`).

use mom3d_bench::{
    fig10, fig11, fig3, fig6, fig7, fig9, seed_from_args, sweep, table1, table2, table3, table4,
    Runner,
};

fn main() {
    let seed = seed_from_args();
    let mut r = Runner::new(seed);
    println!("mom3d full experiment matrix (seed {seed})");
    println!("=========================================\n");

    // full_grid() covers every (workload, variant) pair table1 needs, so
    // its internal prebuild batches all 15 workload builds at once.
    let threads = sweep::threads_from_env();
    let report = sweep::run(&mut r, &sweep::full_grid(), threads);
    eprintln!(
        "sweep: {} cells ({} simulated) on {} threads in {:.2?}",
        report.cells.len(),
        report.fresh_cells(),
        report.threads,
        report.wall
    );

    print!("{}", table2());
    println!();
    print!("{}", fig3(&mut r));
    println!();
    print!("{}", fig6(&mut r));
    println!();
    print!("{}", fig7(&mut r));
    println!();
    print!("{}", table1(&mut r));
    println!();
    print!("{}", table3());
    println!();
    print!("{}", fig9(&mut r));
    println!();
    print!("{}", fig10(&mut r));
    println!();
    print!("{}", table4(&mut r));
    println!();
    print!("{}", fig11(&mut r));

    let path = sweep::json_path_from_env();
    match report.write_json(&path) {
        Ok(()) => eprintln!("sweep report written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
