//! Runs the complete experiment matrix in paper order — the input for
//! `EXPERIMENTS.md`.

use mom3d_bench::{
    fig10, fig11, fig3, fig6, fig7, fig9, seed_from_args, table1, table2, table3, table4, Runner,
};

fn main() {
    let seed = seed_from_args();
    let mut r = Runner::new(seed);
    println!("mom3d full experiment matrix (seed {seed})");
    println!("=========================================\n");
    print!("{}", table2());
    println!();
    print!("{}", fig3(&mut r));
    println!();
    print!("{}", fig6(&mut r));
    println!();
    print!("{}", fig7(&mut r));
    println!();
    print!("{}", table1(&mut r));
    println!();
    print!("{}", table3());
    println!();
    print!("{}", fig9(&mut r));
    println!();
    print!("{}", fig10(&mut r));
    println!();
    print!("{}", table4(&mut r));
    println!();
    print!("{}", fig11(&mut r));
}
