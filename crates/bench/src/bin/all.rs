//! Runs the complete experiment matrix in paper order — the run behind
//! the committed `RESULTS.md` paper-fidelity record.
//!
//! The whole matrix is simulated up front by the parallel sweep engine;
//! the figure and table formatters below then read the pre-filled
//! cache. A machine-readable report with wall-clock per cell is written
//! to `BENCH_sweep.json`.
//!
//! ```text
//! all [SEED] [--threads N] [--json PATH] [--all-backends] [--small] [--cache-dir PATH]
//! ```
//!
//! `--threads` and `--json` override the `MOM3D_SWEEP_THREADS` and
//! `MOM3D_SWEEP_JSON` environment variables; `--all-backends` extends
//! the sweep to every backend in the memory-backend registry and
//! appends the registry-driven backend matrix to the report;
//! `--small` sweeps the reduced integration-test geometry (a fast
//! whole-pipeline smoke, e.g. for CI checks of the JSON schema);
//! `--cache-dir` (or `MOM3D_WORKLOAD_CACHE`) enables the
//! cross-invocation workload-image cache, so a warm start skips every
//! workload build+verify — the hit/miss counters are printed on stderr
//! and embedded in the JSON report.

use mom3d_bench::cli::{parse_all_args, ALL_USAGE};
use mom3d_bench::{
    backend_matrix, fig10, fig11, fig3, fig6, fig7, fig9, sweep, table1, table2, table3, table4,
    Runner,
};

fn main() {
    let args = match parse_all_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{ALL_USAGE}");
            std::process::exit(2);
        }
    };
    let seed = args.seed();
    let mut r = if args.small { Runner::small(seed) } else { Runner::new(seed) };
    r = r.with_cache(args.cache());
    println!("mom3d full experiment matrix (seed {seed})");
    println!("=========================================\n");

    // The grid covers every (workload, variant) pair table1 needs, so
    // its internal prebuild batches all workload builds at once.
    let grid = if args.all_backends { sweep::extended_grid() } else { sweep::full_grid() };
    let report = sweep::run(&mut r, &grid, args.threads());
    eprintln!(
        "sweep: {} cells ({} simulated) on {} threads in {:.2?}",
        report.cells.len(),
        report.fresh_cells(),
        report.threads,
        report.wall
    );
    if let Some(cache) = r.cache() {
        let stats = cache.stats();
        eprintln!(
            "workload cache: {} hits, {} misses, {} rejected (dir {})",
            stats.hits,
            stats.misses,
            stats.rejected,
            cache.dir().display()
        );
    }

    print!("{}", table2());
    println!();
    print!("{}", fig3(&mut r));
    println!();
    print!("{}", fig6(&mut r));
    println!();
    print!("{}", fig7(&mut r));
    println!();
    print!("{}", table1(&mut r));
    println!();
    print!("{}", table3());
    println!();
    print!("{}", fig9(&mut r));
    println!();
    print!("{}", fig10(&mut r));
    println!();
    print!("{}", table4(&mut r));
    println!();
    print!("{}", fig11(&mut r));
    if args.all_backends {
        println!();
        print!("{}", backend_matrix(&mut r));
    }

    let path = args.json_path();
    match report.write_json(&path) {
        Ok(()) => eprintln!("sweep report written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
