//! Ablation study of the two design choices the reproduction had to
//! pin down beyond the paper's text:
//!
//! * the **vector cache port width** (the paper evaluates 4 × 64 bit —
//!   what would 2 or 8 words have bought?);
//! * the number of **outstanding vector transactions** (the paper's
//!   latency-tolerance results imply a bound; we default to 4).
//!
//! Run on the most memory-bound workload (mpeg2 encode) for MOM and
//! MOM+3D.

use mom3d_bench::{runner_from_args, sweep};
use mom3d_cpu::{BackendRegistry, MemorySystemKind, Processor, ProcessorConfig};
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};
use mom3d_mem::VectorCacheConfig;

fn main() {
    let mut r = runner_from_args();
    let seed = r.seed();
    // Build + verify the two trace variants concurrently (both are
    // full-size mpeg2 encode, the most expensive workload to verify) —
    // or load them straight from the workload-image cache.
    sweep::prebuild_workloads(
        &mut r,
        &[
            (WorkloadKind::Mpeg2Encode, IsaVariant::Mom),
            (WorkloadKind::Mpeg2Encode, IsaVariant::Mom3d),
        ],
        sweep::threads_from_env(),
    );
    let mom = r.workload_arc(WorkloadKind::Mpeg2Encode, IsaVariant::Mom);
    let m3d = r.workload_arc(WorkloadKind::Mpeg2Encode, IsaVariant::Mom3d);

    println!("Ablation: vector cache width (mpeg2 encode, cycles)");
    println!("{:>12} {:>12} {:>12}", "width", "MOM", "MOM+3D");
    for width_words in [2usize, 4, 8] {
        let run = |wl: &Workload, mem| {
            let mut cfg = ProcessorConfig::mom().with_memory(mem).with_warm_caches(true);
            cfg.vector_cache = VectorCacheConfig { width_words, line_bytes: 128 };
            Processor::new(cfg).run(wl.trace()).unwrap().cycles
        };
        println!(
            "{:>9}x64b {:>12} {:>12}",
            width_words,
            run(&mom, MemorySystemKind::VectorCache),
            run(&m3d, MemorySystemKind::VectorCache3d)
        );
    }
    println!(
        "\n(Strided 2D loads cannot use the width at all; the 3D path fetches\n\
         whole lines regardless — the width mainly helps dense streams,\n\
         which is why the paper settles on a modest 4x64b port.)\n"
    );

    println!("Ablation: outstanding vector transactions (mpeg2 encode, cycles)");
    println!("{:>12} {:>12} {:>12} {:>14} {:>14}", "buffers", "MOM@20", "MOM@60", "MOM+3D@20", "MOM+3D@60");
    for buffers in [1usize, 2, 4, 8] {
        let run = |wl: &Workload, mem, l2| {
            let mut cfg = ProcessorConfig::mom()
                .with_memory(mem)
                .with_l2_latency(l2)
                .with_warm_caches(true);
            cfg.vec_outstanding = buffers;
            Processor::new(cfg).run(wl.trace()).unwrap().cycles
        };
        println!(
            "{buffers:>12} {:>12} {:>12} {:>14} {:>14}",
            run(&mom, MemorySystemKind::VectorCache, 20),
            run(&mom, MemorySystemKind::VectorCache, 60),
            run(&m3d, MemorySystemKind::VectorCache3d, 20),
            run(&m3d, MemorySystemKind::VectorCache3d, 60)
        );
    }
    println!(
        "\n(With one buffer every access serializes against the L2 latency;\n\
         beyond ~4 the port bandwidth is the binding constraint — the\n\
         Figure 10 sensitivity lives in this knob.)\n"
    );

    // §7 related work: the vector shift&mask register trick vs. real 3D
    // memory vectorization.
    let trick = mom3d_kernels::mpeg2_encode_shift_trick(
        &mom3d_kernels::Mpeg2EncodeParams::with_seed(seed),
    );
    trick.verify().unwrap();
    let run = |wl: &Workload, mem| {
        Processor::new(ProcessorConfig::mom().with_memory(mem).with_warm_caches(true))
            .run(wl.trace())
            .unwrap()
    };
    let m_plain = run(&mom, MemorySystemKind::VectorCache);
    let m_trick = run(&trick, MemorySystemKind::VectorCache);
    let m_3d = run(&m3d, MemorySystemKind::VectorCache3d);
    println!("Related work (§7): shift&mask register trick vs 3D (mpeg2 encode)");
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12}",
        "coding", "cycles", "instrs", "words moved", "eff bw"
    );
    for (name, m) in [("MOM reload", m_plain), ("MOM shift&mask", m_trick), ("MOM+3D", m_3d)] {
        println!(
            "{name:<22} {:>10} {:>12} {:>14} {:>11.2}",
            m.cycles,
            m.instructions,
            m.vec_words,
            m.effective_bandwidth()
        );
    }
    println!(
        "\n(The trick halves the loads but adds three vector ops per candidate\n\
         and still fetches one strided column per step — it cannot exploit\n\
         wide-block fetches, which is the paper's argument for real 3D\n\
         memory vectorization.)\n"
    );

    // Registry sweep: every registered memory backend on the same
    // workload, with no backend named in this binary — backends
    // registered at startup (like the DRAM-burst model, or anything a
    // custom build adds) appear here automatically.
    println!("Ablation: every registered memory backend (mpeg2 encode, warm caches)");
    println!(
        "{:<22} {:>6} {:>10} {:>14} {:>10} {:>16}",
        "backend", "ISA", "cycles", "words moved", "eff bw", "row hits/misses"
    );
    for entry in BackendRegistry::entries() {
        // 3D-capable backends run the MOM+3D variant, others plain MOM.
        let (wl, isa) = if entry.has_3d { (&m3d, "MOM+3D") } else { (&mom, "MOM") };
        let m = Processor::new(
            ProcessorConfig::mom().with_memory(entry.backend_id()).with_warm_caches(true),
        )
        .run(wl.trace())
        .unwrap();
        let rows = if m.dram_row_hits + m.dram_row_misses > 0 {
            format!("{}/{}", m.dram_row_hits, m.dram_row_misses)
        } else {
            "-".to_string()
        };
        // The ideal memory bypasses the port schedulers entirely, so it
        // has no accesses to divide by — not zero bandwidth.
        let eff_bw = if m.port_accesses > 0 {
            format!("{:.2}", m.effective_bandwidth())
        } else {
            "-".to_string()
        };
        println!(
            "{:<22} {:>6} {:>10} {:>14} {:>10} {:>16}",
            entry.display_name,
            isa,
            m.cycles,
            m.vec_words,
            eff_bw,
            rows
        );
    }
}
