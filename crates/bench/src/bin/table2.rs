//! Regenerates Table 2: processor configurations.

use mom3d_bench::table2;

fn main() {
    print!("{}", table2());
}
