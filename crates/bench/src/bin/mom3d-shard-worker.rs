//! One distributed-sweep worker process.
//!
//! A plain protocol client of the `mom3d-shard` coordinator: claims
//! cell batches, hydrates workloads from the shared image cache,
//! simulates over the standard `Runner`/sweep paths and streams every
//! result back, until the coordinator grants an empty batch:
//!
//! ```text
//! mom3d-shard-worker (--tcp ADDR | --unix PATH) [--id N] [--threads N]
//!                    [--cache-dir PATH] [--abort-after N]
//! ```
//!
//! Everything else (seed, geometry, which cells) comes over the wire in
//! the grant. `--abort-after N` is fault injection for the kill-resume
//! tests: the worker drops its connection and exits mid-shard after N
//! cells, like a crash.

use mom3d_bench::cli::{parse_shard_worker_args, SHARD_WORKER_USAGE};
use mom3d_bench::shard::run_worker;

fn main() {
    let args = match parse_shard_worker_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{SHARD_WORKER_USAGE}");
            std::process::exit(2);
        }
    };
    match run_worker(&args.endpoint, &args.config) {
        Ok(summary) => {
            eprintln!(
                "mom3d-shard-worker {}: {} cell(s) over {} grant(s), bye",
                args.config.id, summary.cells, summary.grants
            );
        }
        Err(e) => {
            eprintln!("error: worker {} failed: {e}", args.config.id);
            std::process::exit(1);
        }
    }
}
