//! Regenerates Figure 11: L2 + 3D register file average power.

use mom3d_bench::{fig11, runner_from_args, sweep};

fn main() {
    let mut r = runner_from_args();
    sweep::run(&mut r, &sweep::cells_fig6(), sweep::threads_from_env());
    print!("{}", fig11(&mut r));
}
