//! Regenerates Figure 11: L2 + 3D register file average power.

use mom3d_bench::{fig11, seed_from_args, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    print!("{}", fig11(&mut r));
}
