//! Regenerates Figure 11: L2 + 3D register file average power.

use mom3d_bench::{fig11, seed_from_args, sweep, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    sweep::run(&mut r, &sweep::cells_fig6(), sweep::threads_from_env());
    print!("{}", fig11(&mut r));
}
