//! Regenerates Figure 10: normalized execution time vs L2 latency.

use mom3d_bench::{fig10, runner_from_args, sweep};

fn main() {
    let mut r = runner_from_args();
    sweep::run(&mut r, &sweep::cells_fig10(), sweep::threads_from_env());
    print!("{}", fig10(&mut r));
}
