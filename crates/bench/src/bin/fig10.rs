//! Regenerates Figure 10: normalized execution time vs L2 latency.

use mom3d_bench::{fig10, seed_from_args, sweep, Runner};

fn main() {
    let mut r = Runner::new(seed_from_args());
    sweep::run(&mut r, &sweep::cells_fig10(), sweep::threads_from_env());
    print!("{}", fig10(&mut r));
}
