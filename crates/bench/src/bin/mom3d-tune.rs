//! The design-space autotuner.
//!
//! Searches backend family × family parameters × L2 latency × ISA
//! variant per workload, scores every visited point on simulated
//! cycles, estimated energy and register-file area, and writes the
//! non-dominated Pareto frontier as `BENCH_tune.json` (schema
//! `mom3d-tune/v1` — no wall-clock fields, so same-seed runs are
//! byte-identical):
//!
//! ```text
//! mom3d-tune [SEED] [--tune-seed N] [--budget N] [--smoke] [--small]
//!            [--threads N] [--json PATH] [--backend ID]
//!            [--params K=V,...] [--cache-dir PATH]
//!            [--coordinator ADDR]
//! ```
//!
//! Defaults: seed 7, full geometry, budget 60 per `(workload, family)`,
//! every non-ideal registered backend, L2 latencies 20/40/60. `--smoke`
//! is the CI configuration (reduced geometry, budget 12). `--backend`
//! restricts the search to one family and `--params` overrides that
//! family's baseline design point (malformed values warn on stderr and
//! fall back to the defaults — the run never dies on a typo).
//! `--coordinator` evaluates on a resident `mom3d-serve` process (an
//! address containing `/` is a unix socket path, else `host:port`)
//! after verifying the server runs the same seed and geometry.

use mom3d_bench::cli::{parse_tune_args, TUNE_USAGE};
use mom3d_bench::tune::{tune, Executor, LocalExec, RemoteExec, TuneReport};
use mom3d_bench::Runner;

fn main() {
    let args = match parse_tune_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{TUNE_USAGE}");
            std::process::exit(2);
        }
    };
    let cfg = args.tune_config();
    let report: Result<TuneReport, String> = match &args.coordinator {
        Some(endpoint) => match RemoteExec::connect(endpoint, cfg.seed, cfg.small) {
            Ok(mut exec) => {
                println!("tuning via {}", exec.describe());
                tune(&cfg, &mut exec)
            }
            Err(e) => Err(e),
        },
        None => {
            let mut runner =
                if cfg.small { Runner::small(cfg.seed) } else { Runner::new(cfg.seed) }
                    .with_cache(args.cache());
            let mut exec = LocalExec { runner: &mut runner, threads: args.threads() };
            println!("tuning via {}", exec.describe());
            tune(&cfg, &mut exec)
        }
    };
    let report = match report {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: tuning failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.frontier_table());
    let path = args.json_path();
    if let Err(e) = report.write_json(&path) {
        eprintln!("error: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", path.display());
}
