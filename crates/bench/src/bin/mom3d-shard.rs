//! The distributed-sweep coordinator.
//!
//! Partitions a sweep grid over `mom3d-shard-worker` processes,
//! journals completed cells to a durable manifest for crash-resume, and
//! writes the merged schema-v5 `BENCH_sweep.json` — bit-identical (per
//! cell) to a single-process `all` run over the same grid:
//!
//! ```text
//! mom3d-shard [SEED] [--workers N] [--worker-threads N] [--batch N]
//!             [--grid full|extended] [--small] [--manifest PATH]
//!             [--resume] [--json PATH] [--cache-dir PATH]
//!             [--tcp ADDR | --unix PATH]
//! ```
//!
//! Defaults: seed 7, 2 workers, the paper's full grid, `--tcp
//! 127.0.0.1:0` (kernel-assigned port). `--resume` requires
//! `--manifest` and replays its completed cells instead of
//! re-simulating them. `--workers 0` spawns nothing and serves
//! externally-launched workers only.
//!
//! A readiness line (`listening on …`) and one `spawned worker N
//! (pid P)` line per worker are printed to stdout — the kill-resume
//! tests and CI parse the pids to SIGKILL a worker mid-run.

use mom3d_bench::cli::{parse_shard_args, SHARD_USAGE};
use mom3d_bench::shard::coordinate;
use mom3d_bench::sweep;

fn main() {
    let args = match parse_shard_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n{SHARD_USAGE}");
            std::process::exit(2);
        }
    };
    let grid = if args.extended { sweep::extended_grid() } else { sweep::full_grid() };
    let report = match coordinate(args.endpoint(), &grid, &args.config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: sharded sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let sharding = report.sharding.as_ref().expect("coordinate fills the sharding block");
    println!(
        "swept {} cells ({} fresh, {} resumed) over {} worker(s), {} steal(s), in {:?}",
        report.cells.len(),
        report.fresh_cells(),
        sharding.resumed_cells,
        sharding.workers.len(),
        sharding.steals,
        report.wall
    );
    for w in &sharding.workers {
        println!(
            "  worker {}: {} cell(s), p50 {} ns, p99 {} ns",
            w.id, w.cells, w.cell_ns.p50, w.cell_ns.p99
        );
    }
    let path = args.json_path();
    if let Err(e) = report.write_json(&path) {
        eprintln!("error: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}
