//! Regenerates Table 3: register-file areas (exact).

use mom3d_bench::table3;

fn main() {
    print!("{}", table3());
}
