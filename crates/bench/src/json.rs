//! Minimal JSON string escaping for the hand-rolled report writers.
//!
//! `BENCH_sweep.json` and `BENCH_serve.json` are assembled with
//! `format!` (no serde in this environment), which is fine for numbers
//! and booleans but silently produced invalid JSON whenever a string
//! field contained a `"` or `\` — and backend ids/display names are
//! arbitrary `&'static str`s per [`mom3d_cpu::BackendRegistry`], so a
//! hostile (or merely creative) backend name could corrupt the report.
//! Every string interpolated into a JSON document goes through
//! [`json_escape`] (or the quoting wrapper [`json_string`]) now.

use std::fmt::Write;

/// Escapes `s` for inclusion inside a JSON string literal (between the
/// quotes): `"` and `\` are backslash-escaped, control characters
/// become `\n`/`\r`/`\t` or `\u00XX`. Everything else — including
/// non-ASCII UTF-8 — passes through unchanged, which every JSON parser
/// accepts.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out
}

/// `s` as a complete JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through() {
        assert_eq!(json_escape("gsm encode"), "gsm encode");
        assert_eq!(json_escape("vector-cache-3d"), "vector-cache-3d");
        assert_eq!(json_string("dram-burst"), "\"dram-burst\"");
    }

    #[test]
    fn hostile_names_escape_to_valid_json() {
        assert_eq!(json_escape("evil\"name"), "evil\\\"name");
        assert_eq!(json_escape("back\\slash"), "back\\\\slash");
        assert_eq!(json_escape("a\"b\\c\"d"), "a\\\"b\\\\c\\\"d");
        // A field built from a hostile name balances its quotes.
        let field = format!("{{\"memory\": {}}}", json_string("quo\"te\\ba\"ck"));
        assert_eq!(field.matches('"').count() % 2, 0);
        assert_eq!(field, "{\"memory\": \"quo\\\"te\\\\ba\\\"ck\"}");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(json_escape("\u{1}\u{1f}"), "\\u0001\\u001f");
        // Non-ASCII is legal inside JSON strings and passes through.
        assert_eq!(json_escape("café"), "café");
    }
}
