//! Small shared statistics helpers.
//!
//! The load generator and the shard coordinator both summarize latency
//! samples into p50/p99/max; the logic lives here once instead of being
//! re-derived (slightly differently) at each report site.

/// Nearest-rank percentile over an **already sorted** sample slice.
///
/// `p` is in percent (`50.0` = median). An empty slice reports 0 — the
/// caller is summarizing "nothing happened", not an error — and `p`
/// values outside `[0, 100]` clamp to the extremes instead of indexing
/// out of bounds.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.max(0.0) / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A p50/p99/max roll-up of one latency sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (nearest-rank).
    pub p50: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// Sorts `samples` in place and summarizes them. Empty input reports
/// all-zero (no panic): a worker that completed no cells still gets a
/// row in the shard report.
pub fn percentiles(samples: &mut [u64]) -> Percentiles {
    samples.sort_unstable();
    Percentiles {
        p50: percentile(samples, 50.0),
        p99: percentile(samples, 99.0),
        max: samples.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_reports_zero_not_panic() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentiles(&mut []), Percentiles::default());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        assert_eq!(percentile(&[7], 0.0), 7);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[7], 100.0), 7);
        assert_eq!(percentiles(&mut [7]), Percentiles { p50: 7, p99: 7, max: 7 });
    }

    #[test]
    fn odd_length_median_is_the_middle_sample() {
        // Nearest-rank on an odd-length sorted run picks the exact
        // middle element, not an interpolation.
        assert_eq!(percentile(&[1, 2, 3], 50.0), 2);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 50.0), 3);
        let mut v = [5, 1, 3, 2, 4];
        assert_eq!(percentiles(&mut v), Percentiles { p50: 3, p99: 5, max: 5 });
    }

    #[test]
    fn nearest_rank_matches_the_load_reports_convention() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    fn out_of_range_p_clamps() {
        let v: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&v, -5.0), 1);
        assert_eq!(percentile(&v, 250.0), 10);
    }
}
