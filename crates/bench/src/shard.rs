//! Distributed sharded sweeps: a coordinator/worker pair that scales
//! the [`crate::sweep`] engine across processes with crash-resume.
//!
//! One **coordinator** ([`coordinate`]) owns a sweep grid. It binds an
//! [`Endpoint`], optionally spawns `mom3d-shard-worker` child
//! processes, and hands out batches of [`SimKey`]s on demand. Each
//! **worker** ([`run_worker`]) is a plain protocol client: it claims a
//! batch (`SHARD_CLAIM` → `SHARD_GRANT`), hydrates workloads from the
//! shared on-disk image cache, simulates over the existing
//! [`crate::Runner`]/[`crate::sweep`] paths, streams every result back
//! (`CELL_DONE`, fire-and-forget) and closes the batch with
//! `SHARD_FIN`. The grant carries the seed and geometry, so a worker
//! needs no configuration beyond the coordinator's address — the wire
//! protocol is what a multi-machine deployment would speak.
//!
//! Correctness invariants, pinned by `tests/shard_determinism.rs` and
//! `crates/bench/tests/shard.rs`:
//!
//! * **Bit-identity.** Every cell is a pure deterministic simulation
//!   keyed by [`SimKey`], so the merged [`SweepReport`] is bit-identical
//!   to a single-process [`sweep::run`] regardless of worker count,
//!   scheduling, steals or crashes.
//! * **Crash-resume.** Completed cells are journaled to a durable
//!   checksummed [`crate::manifest`]; a killed run resumes with those
//!   cells replayed (`reused: true`, counted in
//!   [`Sharding::resumed_cells`]) and never re-simulated.
//! * **First completion wins.** Work stealing and worker crashes can
//!   put one cell in flight twice; the first `CELL_DONE` is recorded
//!   (and journaled), later duplicates are counted and dropped.
//! * **Failure containment.** A worker that dies mid-shard only
//!   returns its outstanding cells to the queue (and is respawned, with
//!   a bounded budget, when the coordinator owns the process). Frame
//!   damage costs one connection after an [`ERR_PROTOCOL`] reply;
//!   non-shard requests get [`ERR_UNSUPPORTED`] on a usable connection.
//! * **Grant leases.** Every claim and `CELL_DONE` is a heartbeat; a
//!   connection holding a grant that goes silent past the lease
//!   (`DEFAULT_LEASE`, configurable via [`ShardConfig::lease`]) has
//!   its grant requeued — a stalled-but-alive worker can delay a sweep
//!   but never wedge it. Workers reconnect with seeded backoff
//!   ([`crate::faults::Backoff`]) and re-claim; first-completion-wins
//!   makes the overlap harmless.

use crate::faults::{Backoff, ChaosConfig, ChaosStream, FaultPlan, FrameWarnings};
use crate::manifest::{self, Manifest};
use crate::protocol::{
    read_frame_deadlined, write_frame, Client, Endpoint, FrameError, Hello, Request, Response,
    Stream,
    ERR_PROTOCOL, ERR_UNSUPPORTED, MAX_SWEEP_CELLS,
};
use crate::runner::{Runner, SimKey, WorkloadTiming};
use crate::stats;
use crate::sweep::{self, CellResult, Sharding, SweepReport, WorkerStats};
use crate::WorkloadCache;
use mom3d_cpu::Metrics;
use mom3d_kernels::{IsaVariant, WorkloadKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Crashed-worker respawn budget per worker slot.
const RESPAWN_LIMIT: u32 = 5;

/// Grant lease when [`ShardConfig::lease`] is zero: a connection
/// holding granted cells whose last claim/completion is older than
/// this has its grant requeued. Generous — `CELL_DONE` arrives per
/// cell, so any live worker refreshes its lease far more often.
const DEFAULT_LEASE: Duration = Duration::from_secs(120);

/// Coordinator-handler read deadline. Workers are silent only while
/// simulating one cell, so this is sized like the lease, not like a
/// request/response gap.
const HANDLER_IDLE_TIMEOUT: Duration = Duration::from_secs(600);

/// Coordinator-handler write deadline (grants and FIN acks are small;
/// a worker that never drains its socket is dead).
const HANDLER_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Bound on consecutive reconnect-and-no-progress sessions before a
/// worker gives up (guards against retry-looping at a dead or
/// perpetually hostile coordinator).
const WORKER_SESSION_STRIKES: u32 = 20;

/// How a [`coordinate`] run is configured.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Workload data seed (rides along in every grant).
    pub seed: u64,
    /// Sweep reduced-geometry workloads.
    pub small: bool,
    /// Worker **processes** to spawn and supervise. `0` = spawn none
    /// and serve externally-launched workers only (how the in-process
    /// tests drive [`run_worker`] threads).
    pub workers: usize,
    /// `--threads` passed to each spawned worker (0 = worker default:
    /// all cores).
    pub worker_threads: usize,
    /// Cells per grant (0 = auto: about four grants per worker, so
    /// stragglers leave stealable tails without per-cell claim
    /// round-trips).
    pub batch: usize,
    /// Durable manifest path for crash-resume journaling (`None` = no
    /// journal).
    pub manifest: Option<PathBuf>,
    /// Resume from an existing manifest instead of truncating it.
    pub resume: bool,
    /// Workload-image cache directory passed to spawned workers (the
    /// shared hydration source).
    pub cache_dir: Option<PathBuf>,
    /// Grant lease (`DEFAULT_LEASE` when zero): a worker connection
    /// that stops claiming/completing for this long has its granted
    /// cells requeued, so a stalled-but-alive worker cannot wedge the
    /// sweep. Claims and `CELL_DONE`s are the heartbeats.
    pub lease: Duration,
    /// Coordinator-side fault injection: wrap every accepted worker
    /// connection in a seeded [`ChaosStream`] (lane = connection
    /// ordinal).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            seed: 7,
            small: false,
            workers: 2,
            worker_threads: 0,
            batch: 0,
            manifest: None,
            resume: false,
            cache_dir: None,
            lease: Duration::ZERO,
            chaos: None,
        }
    }
}

/// Per-worker-id bookkeeping for the report's [`WorkerStats`].
struct WorkerAccount {
    cells: u64,
    walls: Vec<u64>,
    first: Instant,
    last: Instant,
}

/// Everything behind the coordinator's one mutex.
struct Queue {
    /// Cells not yet granted to anyone.
    pending: VecDeque<SimKey>,
    /// Cells granted per connection and not yet completed; requeued
    /// wholesale when the connection dies, halved by a steal.
    granted: HashMap<u64, Vec<SimKey>>,
    /// Which worker id each connection claimed as (stats attribution).
    conn_worker: HashMap<u64, u32>,
    /// First recorded result per cell.
    done: HashMap<SimKey, Metrics>,
    /// Simulation wall-clock (ns) per freshly-completed cell.
    walls: HashMap<SimKey, u64>,
    manifest: Option<Manifest>,
    /// One append failed; warn once and stop pretending the journal is
    /// complete.
    manifest_broken: bool,
    workers: HashMap<u32, WorkerAccount>,
    steals: u64,
    /// Results dropped because the cell was already done (stealing and
    /// crash-requeue both make this legal) or outside the grid.
    duplicates: u64,
    /// Last request (claim / `CELL_DONE` / fin / ping) per connection —
    /// the heartbeat the lease is checked against.
    activity: HashMap<u64, Instant>,
    /// Grants requeued because their connection went silent past the
    /// lease.
    lease_expiries: u64,
}

struct CoordState {
    queue: Mutex<Queue>,
    /// Notified on every completion, requeue and shutdown — wakes both
    /// claim-waiters and the supervision loop.
    changed: Condvar,
    total: usize,
    grid: HashSet<SimKey>,
    batch: usize,
    hello: Hello,
    shutdown: AtomicBool,
    endpoint: Endpoint,
    lease: Duration,
    chaos: Option<ChaosConfig>,
    warnings: FrameWarnings,
}

impl CoordState {
    /// Refreshes `conn_id`'s lease heartbeat.
    fn touch(&self, conn_id: u64) {
        let mut q = self.queue.lock().expect("shard queue poisoned");
        q.activity.insert(conn_id, Instant::now());
    }

    /// Requeues the grants of every connection whose heartbeat is older
    /// than the lease. The connection itself is left alone: if the
    /// stalled worker revives, its late results still dedupe through
    /// first-completion-wins, and its next claim re-registers it.
    fn expire_leases(&self) {
        let now = Instant::now();
        let mut q = self.queue.lock().expect("shard queue poisoned");
        let expired: Vec<u64> = q
            .granted
            .iter()
            .filter(|(_, cells)| !cells.is_empty())
            .filter(|(id, _)| {
                q.activity.get(id).is_none_or(|&t| now.duration_since(t) > self.lease)
            })
            .map(|(&id, _)| id)
            .collect();
        if expired.is_empty() {
            return;
        }
        for id in expired {
            let Some(cells) = q.granted.remove(&id) else { continue };
            let mut requeued = 0usize;
            for key in cells.into_iter().rev() {
                if !q.done.contains_key(&key) {
                    q.pending.push_front(key);
                    requeued += 1;
                }
            }
            q.lease_expiries += 1;
            eprintln!(
                "warning: worker connection {id} went silent past its lease ({:.1}s); \
                 {requeued} granted cell(s) requeued",
                self.lease.as_secs_f64()
            );
        }
        drop(q);
        self.changed.notify_all();
    }
}

fn respond(stream: &mut Stream, resp: &Response) -> io::Result<()> {
    let (opcode, payload) = resp.encode();
    write_frame(stream, opcode, &payload)
}

/// Serves one `SHARD_CLAIM`: pop a pending batch, else steal half of
/// the largest outstanding grant, else wait for either to become
/// possible. Empty return = the sweep is complete (or shutting down)
/// and the worker should exit.
fn claim(state: &CoordState, conn_id: u64, worker: u32) -> Vec<SimKey> {
    let mut q = state.queue.lock().expect("shard queue poisoned");
    q.conn_worker.insert(conn_id, worker);
    q.workers.entry(worker).or_insert_with(|| {
        let now = Instant::now();
        WorkerAccount { cells: 0, walls: Vec::new(), first: now, last: now }
    });
    loop {
        if q.done.len() >= state.total || state.shutdown.load(Ordering::SeqCst) {
            return Vec::new();
        }
        if !q.pending.is_empty() {
            let n = state.batch.min(q.pending.len());
            let cells: Vec<SimKey> = q.pending.drain(..n).collect();
            q.granted.entry(conn_id).or_default().extend(&cells);
            // The claim may have parked for a while: the lease clock
            // starts at grant time, not at request time.
            q.activity.insert(conn_id, Instant::now());
            return cells;
        }
        // Work stealing: re-partition the straggler. The victim still
        // simulates its stolen tail; whoever finishes a cell first wins
        // and the loser's result is dropped as a duplicate.
        let victim = q
            .granted
            .iter()
            .filter(|&(&id, cells)| id != conn_id && cells.len() >= 2)
            .max_by_key(|&(_, cells)| cells.len())
            .map(|(&id, _)| id);
        if let Some(victim) = victim {
            let outstanding = q.granted.get_mut(&victim).expect("victim is present");
            let stolen = outstanding.split_off(outstanding.len() - outstanding.len() / 2);
            q.steals += 1;
            q.granted.entry(conn_id).or_default().extend(&stolen);
            q.activity.insert(conn_id, Instant::now());
            return stolen;
        }
        q = state.changed.wait(q).expect("shard queue poisoned");
    }
}

/// Records one `CELL_DONE`: first completion wins, is journaled and
/// attributed; duplicates and out-of-grid cells are counted and
/// dropped.
fn record(state: &CoordState, conn_id: u64, key: SimKey, wall_ns: u64, metrics: Metrics) {
    let mut q = state.queue.lock().expect("shard queue poisoned");
    if !state.grid.contains(&key) {
        q.duplicates += 1;
    } else if let Some(first) = q.done.get(&key) {
        if *first != metrics {
            // Determinism means this can only happen with a buggy or
            // hostile worker; the first (journaled) result stands.
            eprintln!(
                "warning: divergent duplicate result for {} {} on {} (l2 {}) dropped",
                key.kind, key.variant, key.memory, key.l2_latency
            );
        }
        q.duplicates += 1;
    } else {
        q.done.insert(key, metrics);
        q.walls.insert(key, wall_ns);
        if let Some(m) = q.manifest.as_mut() {
            if let Err(e) = m.append(&key, &metrics) {
                if !q.manifest_broken {
                    eprintln!(
                        "warning: shard manifest append failed ({e}); \
                         a resumed run will re-simulate from here"
                    );
                }
                q.manifest_broken = true;
            }
        }
        if let Some(&worker) = q.conn_worker.get(&conn_id) {
            if let Some(acct) = q.workers.get_mut(&worker) {
                acct.cells += 1;
                acct.walls.push(wall_ns);
                acct.last = Instant::now();
            }
        }
    }
    // Retire the cell from every outstanding grant — after a steal it
    // can be in two of them.
    for outstanding in q.granted.values_mut() {
        outstanding.retain(|&c| c != key);
    }
    drop(q);
    state.changed.notify_all();
}

/// Returns a dead connection's unfinished cells to the queue.
fn release(state: &CoordState, conn_id: u64) {
    let mut q = state.queue.lock().expect("shard queue poisoned");
    q.conn_worker.remove(&conn_id);
    q.activity.remove(&conn_id);
    if let Some(cells) = q.granted.remove(&conn_id) {
        for key in cells.into_iter().rev() {
            if !q.done.contains_key(&key) {
                q.pending.push_front(key);
            }
        }
    }
    drop(q);
    state.changed.notify_all();
}

fn handle_connection(state: &Arc<CoordState>, conn_id: u64, mut stream: Stream) {
    loop {
        // Patient between claims, impatient mid-frame: a bit-flipped
        // length prefix must not hold this handler (and its granted
        // cells) hostage for the idle window — the lease would recover
        // the cells, but only after burning its whole term.
        let frame = match read_frame_deadlined(&mut stream, Some(HANDLER_IDLE_TIMEOUT)) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => break,
            Err(err @ (FrameError::TimedOut | FrameError::Io(_))) => {
                // Deadline expiry or mid-frame death: drop the
                // connection (its cells are requeued below). Warnings
                // are once-per-class, so a flapping worker cannot flood
                // stderr.
                state.warnings.note("mom3d-shard coordinator", &err);
                break;
            }
            Err(err) => {
                // Framing is unrecoverable: one typed reply, then close
                // (and the cells go back to the queue below).
                state.warnings.note("mom3d-shard coordinator", &err);
                let _ = respond(
                    &mut stream,
                    &Response::Error { code: ERR_PROTOCOL, message: err.to_string() },
                );
                break;
            }
        };
        let req = match Request::decode(&frame) {
            Ok(req) => req,
            Err(e) => {
                // Well-framed but bad payload: typed error, connection
                // stays usable.
                let reply = Response::Error { code: e.code, message: e.message };
                if respond(&mut stream, &reply).is_err() {
                    break;
                }
                continue;
            }
        };
        state.touch(conn_id);
        let alive = match req {
            Request::ShardClaim { worker } => {
                let cells = claim(state, conn_id, worker);
                let grant = Response::ShardGrant {
                    seed: state.hello.seed,
                    small: state.hello.small,
                    cells,
                };
                respond(&mut stream, &grant).is_ok()
            }
            Request::CellDone { key, wall_ns, metrics } => {
                // Fire-and-forget: no reply, the worker is already
                // simulating the next cell.
                record(state, conn_id, key, wall_ns, metrics);
                true
            }
            Request::ShardFin { completed } => {
                respond(&mut stream, &Response::Done { results: completed }).is_ok()
            }
            Request::Ping => respond(&mut stream, &Response::Pong(state.hello)).is_ok(),
            Request::Sim(_) | Request::Sweep(_) | Request::Stats | Request::Shutdown => {
                let reply = Response::Error {
                    code: ERR_UNSUPPORTED,
                    message: "simulation requests are served by mom3d-serve; \
                              this is the mom3d-shard coordinator"
                        .into(),
                };
                respond(&mut stream, &reply).is_ok()
            }
        };
        if !alive {
            break;
        }
    }
    release(state, conn_id);
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Stream::Unix(stream))
            }
        }
    }
}

fn bind(endpoint: Endpoint) -> io::Result<(Listener, Endpoint)> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let actual = listener.local_addr()?.to_string();
            Ok((Listener::Tcp(listener), Endpoint::Tcp(actual)))
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            Ok((Listener::Unix(UnixListener::bind(&path)?), Endpoint::Unix(path)))
        }
    }
}

fn effective_batch(requested: usize, fresh: usize, workers: usize) -> usize {
    let batch = if requested > 0 {
        requested
    } else {
        let grants = workers.max(2) * 4;
        fresh.div_ceil(grants)
    };
    batch.clamp(1, MAX_SWEEP_CELLS as usize)
}

/// One supervised worker process slot.
struct ChildSlot {
    id: u32,
    child: Option<Child>,
    respawns: u32,
}

fn spawn_worker(endpoint: &Endpoint, id: u32, config: &ShardConfig) -> io::Result<Child> {
    let exe = std::env::current_exe()?.with_file_name("mom3d-shard-worker");
    let mut cmd = Command::new(exe);
    match endpoint {
        Endpoint::Tcp(addr) => cmd.arg("--tcp").arg(addr),
        Endpoint::Unix(path) => cmd.arg("--unix").arg(path),
    };
    cmd.arg("--id").arg(id.to_string());
    if config.worker_threads > 0 {
        cmd.arg("--threads").arg(config.worker_threads.to_string());
    }
    if let Some(dir) = &config.cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    cmd.spawn()
}

fn remaining(state: &CoordState) -> usize {
    let q = state.queue.lock().expect("shard queue poisoned");
    state.total - q.done.len()
}

/// Runs until the grid is complete: polls for crashed worker processes
/// and respawns each (bounded by [`RESPAWN_LIMIT`]) while work remains.
///
/// With no owned workers (`children` empty), externally-launched
/// workers are trusted to finish the sweep and this only waits.
fn supervise(
    state: &CoordState,
    children: &mut [ChildSlot],
    endpoint: &Endpoint,
    config: &ShardConfig,
) -> io::Result<()> {
    loop {
        {
            let q = state.queue.lock().expect("shard queue poisoned");
            if q.done.len() >= state.total {
                return Ok(());
            }
            let _ = state
                .changed
                .wait_timeout(q, Duration::from_millis(100))
                .expect("shard queue poisoned");
        }
        // Liveness: every supervision tick checks grant leases, so a
        // stalled-but-alive worker (open connection, no progress) has
        // its cells requeued instead of wedging the sweep.
        state.expire_leases();
        for slot in children.iter_mut() {
            if let Some(child) = slot.child.as_mut() {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        slot.child = None;
                        if remaining(state) > 0 {
                            eprintln!(
                                "warning: worker {} exited ({status}) with work remaining",
                                slot.id
                            );
                        }
                    }
                    Ok(None) => {}
                    Err(e) => eprintln!("warning: polling worker {} failed: {e}", slot.id),
                }
            }
            if slot.child.is_none() && slot.respawns > 0 && remaining(state) > 0 {
                slot.respawns -= 1;
                match spawn_worker(endpoint, slot.id, config) {
                    Ok(child) => {
                        println!("spawned worker {} (pid {})", slot.id, child.id());
                        slot.child = Some(child);
                    }
                    Err(e) => eprintln!("warning: respawning worker {} failed: {e}", slot.id),
                }
            }
        }
        if !children.is_empty()
            && children.iter().all(|s| s.child.is_none() && s.respawns == 0)
        {
            let left = remaining(state);
            if left == 0 {
                return Ok(());
            }
            return Err(io::Error::other(format!(
                "all {} worker slot(s) exhausted their respawn budget with {left} \
                 cell(s) unfinished",
                children.len()
            )));
        }
    }
}

/// Waits briefly for each worker process to exit on its own (it will,
/// after an empty grant), then kills what is left.
fn reap(children: &mut [ChildSlot]) {
    let deadline = Instant::now() + Duration::from_secs(10);
    for slot in children.iter_mut() {
        let Some(child) = slot.child.as_mut() else { continue };
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
            }
        }
        slot.child = None;
    }
}

/// Runs a distributed sweep of `grid` and blocks until it completes,
/// returning a report bit-identical (per cell) to [`sweep::run`] over
/// the same grid, with the schema-v5 [`Sharding`] block filled in.
///
/// Binds `endpoint` (a `:0` TCP port is resolved), prints a readiness
/// line and one `spawned worker N (pid P)` line per worker process to
/// stdout (both machine-parsed by the kill-resume tests and CI), then
/// serves claims until every cell has a recorded result. Cells already
/// in the manifest (with `resume`) are replayed, reported `reused` with
/// zero wall-clock, and never granted.
///
/// # Errors
///
/// Propagates bind/spawn/manifest-I/O failures, and reports worker
/// attrition the respawn budget could not cover.
pub fn coordinate(
    endpoint: Endpoint,
    grid: &[SimKey],
    config: &ShardConfig,
) -> io::Result<SweepReport> {
    let start = Instant::now();
    let mut seen = HashSet::new();
    let unique: Vec<SimKey> = grid.iter().copied().filter(|&c| seen.insert(c)).collect();
    let total = unique.len();

    let (manifest_handle, resumed) = match &config.manifest {
        Some(path) if config.resume => {
            let (m, r) = manifest::resume(path, config.seed, config.small, &unique)?;
            (Some(m), r.cells)
        }
        Some(path) => {
            (Some(Manifest::create(path, config.seed, config.small, &unique)?), Vec::new())
        }
        None => (None, Vec::new()),
    };
    let resumed_cells = resumed.len() as u64;
    let done: HashMap<SimKey, Metrics> = resumed.iter().copied().collect();
    let pending: VecDeque<SimKey> =
        unique.iter().copied().filter(|k| !done.contains_key(k)).collect();
    let fresh = pending.len();
    let batch = effective_batch(config.batch, fresh, config.workers);

    let (listener, endpoint) = bind(endpoint)?;
    println!(
        "mom3d-shard listening on {endpoint}; {fresh} of {total} cell(s) to simulate \
         ({resumed_cells} resumed)"
    );

    let state = Arc::new(CoordState {
        queue: Mutex::new(Queue {
            pending,
            granted: HashMap::new(),
            conn_worker: HashMap::new(),
            done,
            walls: HashMap::new(),
            manifest: manifest_handle,
            manifest_broken: false,
            workers: HashMap::new(),
            steals: 0,
            duplicates: 0,
            activity: HashMap::new(),
            lease_expiries: 0,
        }),
        changed: Condvar::new(),
        total,
        grid: unique.iter().copied().collect(),
        batch,
        hello: Hello { seed: config.seed, small: config.small, threads: 0 },
        shutdown: AtomicBool::new(false),
        endpoint: endpoint.clone(),
        lease: if config.lease.is_zero() { DEFAULT_LEASE } else { config.lease },
        chaos: config.chaos,
        warnings: FrameWarnings::new(),
    });

    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("mom3d-shard-accept".into())
            .spawn(move || {
                let conn_seq = AtomicU64::new(0);
                loop {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok(stream) => {
                            if state.shutdown.load(Ordering::SeqCst) {
                                break; // the shutdown self-connection
                            }
                            let conn_id = conn_seq.fetch_add(1, Ordering::Relaxed);
                            let stream = match &state.chaos {
                                Some(chaos) => Stream::Chaos(Box::new(ChaosStream::wrap(
                                    stream,
                                    FaultPlan::new(chaos, conn_id),
                                ))),
                                None => stream,
                            };
                            stream.set_read_timeout(Some(HANDLER_IDLE_TIMEOUT));
                            stream.set_write_timeout(Some(HANDLER_WRITE_TIMEOUT));
                            let state = Arc::clone(&state);
                            let _ = std::thread::Builder::new()
                                .name("mom3d-shard-conn".into())
                                .spawn(move || handle_connection(&state, conn_id, stream));
                        }
                        Err(_) if state.shutdown.load(Ordering::SeqCst) => break,
                        Err(e) => eprintln!("warning: accept failed: {e}"),
                    }
                }
            })
            .expect("spawning the shard accept loop")
    };

    let mut children: Vec<ChildSlot> = (0..config.workers as u32)
        .map(|id| ChildSlot { id, child: None, respawns: RESPAWN_LIMIT })
        .collect();
    let mut result: io::Result<()> = Ok(());
    if total > 0 {
        for slot in &mut children {
            match spawn_worker(&endpoint, slot.id, config) {
                Ok(child) => {
                    println!("spawned worker {} (pid {})", slot.id, child.id());
                    slot.child = Some(child);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
    }
    if result.is_ok() {
        result = supervise(&state, &mut children, &endpoint, config);
    }

    // One shutdown path for success and failure: latch, wake claim
    // waiters (they reply with empty grants), unblock the accept loop
    // with a self-connection, then collect the pieces.
    state.shutdown.store(true, Ordering::SeqCst);
    state.changed.notify_all();
    let _ = state.endpoint.connect();
    let _ = accept.join();
    reap(&mut children);
    if let Endpoint::Unix(path) = &state.endpoint {
        let _ = std::fs::remove_file(path);
    }
    result?;

    let q = state.queue.lock().expect("shard queue poisoned");
    if q.duplicates > 0 {
        eprintln!(
            "note: {} duplicate result(s) dropped (work stealing / crash requeue overlap)",
            q.duplicates
        );
    }
    if q.lease_expiries > 0 {
        eprintln!(
            "note: {} grant lease(s) expired and were requeued (silent/stalled workers)",
            q.lease_expiries
        );
    }
    let resumed_set: HashSet<SimKey> = resumed.iter().map(|&(k, _)| k).collect();
    let cells: Vec<CellResult> = unique
        .iter()
        .map(|&key| {
            let metrics = *q.done.get(&key).expect("every cell has a recorded result");
            if resumed_set.contains(&key) {
                CellResult {
                    key,
                    metrics,
                    wall: Duration::ZERO,
                    workload: WorkloadTiming::default(),
                    reused: true,
                }
            } else {
                let wall = Duration::from_nanos(q.walls.get(&key).copied().unwrap_or(0));
                // Workload build/verify happened inside a worker
                // process; the coordinator never builds, so the phase
                // breakdown reports zero.
                CellResult { key, metrics, wall, workload: WorkloadTiming::default(), reused: false }
            }
        })
        .collect();
    let mut workers: Vec<WorkerStats> = q
        .workers
        .iter()
        .map(|(&id, acct)| WorkerStats {
            id,
            cells: acct.cells,
            wall: acct.last.duration_since(acct.first),
            cell_ns: stats::percentiles(&mut acct.walls.clone()),
        })
        .collect();
    workers.sort_by_key(|w| w.id);
    let threads = workers.len().max(1);
    let steals = q.steals;
    drop(q);

    Ok(SweepReport {
        seed: config.seed,
        small: config.small,
        threads,
        wall: start.elapsed(),
        workload_cache: None,
        sharding: Some(Sharding { workers, steals, resumed_cells }),
        cells,
    })
}

/// How one [`run_worker`] call is configured.
#[derive(Debug, Clone, Default)]
pub struct WorkerConfig {
    /// Self-reported worker id (attributes the report's per-worker
    /// stats).
    pub id: u32,
    /// Prebuild worker threads (0 = all cores).
    pub threads: usize,
    /// Workload-image cache to hydrate workloads from.
    pub cache_dir: Option<PathBuf>,
    /// Fault injection: silently drop the connection and return after
    /// streaming this many `CELL_DONE`s in total — a crash simulator
    /// for the kill-resume tests (no `SHARD_FIN`, cells left granted).
    pub abort_after: Option<usize>,
    /// Fault injection: after streaming this many `CELL_DONE`s in
    /// total, go silent for [`WorkerConfig::stall_for`] with the
    /// connection **open** — a stalled-not-dead worker. The
    /// coordinator's grant lease must requeue the rest of the grant.
    pub stall_after: Option<usize>,
    /// How long a [`WorkerConfig::stall_after`] stall lasts before the
    /// worker retires.
    pub stall_for: Duration,
    /// Client-side fault injection: wrap every dialed connection in a
    /// seeded [`ChaosStream`] (lane = dial ordinal).
    pub chaos: Option<ChaosConfig>,
}

/// What a worker did, for logging and test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Cells simulated and streamed back.
    pub cells: u64,
    /// Grants processed.
    pub grants: u64,
}

/// Per-frame I/O deadline a worker arms on every dialed connection.
const WORKER_IO_TIMEOUT: Duration = Duration::from_secs(120);

/// Dials the coordinator, retrying up to `attempts` (50 ms apart), and
/// arms deadlines (plus the configured chaos wrap) on the connection.
fn dial(
    endpoint: &Endpoint,
    config: &WorkerConfig,
    conn_seq: &mut u64,
    attempts: u32,
) -> io::Result<Client> {
    let mut last: Option<io::Error> = None;
    for _ in 0..attempts {
        match endpoint.connect() {
            Ok(stream) => {
                let lane = *conn_seq;
                *conn_seq += 1;
                let stream = match &config.chaos {
                    Some(chaos) => Stream::Chaos(Box::new(ChaosStream::wrap(
                        stream,
                        FaultPlan::new(chaos, lane),
                    ))),
                    None => stream,
                };
                let client = Client::from_stream(stream);
                client.set_io_timeout(Some(WORKER_IO_TIMEOUT));
                return Ok(client);
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(last
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "connect retries exhausted")))
}

fn unexpected(context: &str, resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected coordinator reply to {context}: {resp:?}"),
    )
}

/// Runs one shard worker to completion: claim, hydrate, simulate,
/// stream, repeat — until the coordinator grants an empty batch.
///
/// The [`Runner`] is built lazily from the first grant's seed and
/// geometry (the worker itself needs no sweep configuration) and kept
/// for the whole session, so workloads and metrics stay memoized across
/// grants. Workload builds go through [`sweep::prebuild_workloads`] and
/// the image cache in `config.cache_dir`, the same cold path as every
/// other harness entry point.
///
/// **Fault discipline**: any mid-session transport or framing failure
/// (reset, bit-flipped frame, expired deadline, typed transient error)
/// drops the connection, sleeps one seeded-backoff rung and redials —
/// the coordinator requeues the abandoned grant and re-grants on the
/// next claim, and first-completion-wins makes any re-simulation
/// harmless. A redial that finds nobody listening is how service
/// normally ends: results are fire-and-forget and already delivered,
/// so the worker just retires. Reconnect loops without progress are
/// bounded by `WORKER_SESSION_STRIKES`.
///
/// # Errors
///
/// Propagates first-connect failures, a coordinator that answers
/// claims with [`ERR_UNSUPPORTED`] (wrong endpoint), and strike-budget
/// exhaustion.
pub fn run_worker(endpoint: &Endpoint, config: &WorkerConfig) -> io::Result<WorkerSummary> {
    let threads = if config.threads == 0 { sweep::default_threads() } else { config.threads };
    let mut runner: Option<Runner> = None;
    let mut summary = WorkerSummary::default();
    let mut conn_seq: u64 = 0;
    let mut strikes: u32 = 0;
    let mut backoff = Backoff::new(
        0x5348_4152_4457_u64 ^ u64::from(config.id), // "SHARDW" ^ id
        Duration::from_millis(5),
        Duration::from_millis(200),
    );
    // The coordinator may still be binding when a spawned worker
    // starts; the first dial waits up to ~5 s.
    let mut client = dial(endpoint, config, &mut conn_seq, 100)?;
    let mut progressed = false;
    loop {
        // One session over `client`; breaks out with the transient
        // error that ended it.
        let session_error: io::Error = 'session: {
            loop {
                let reply = match client.round_trip(&Request::ShardClaim { worker: config.id }) {
                    Ok(reply) => reply,
                    Err(e) => break 'session e,
                };
                let (seed, small, cells) = match reply {
                    Response::ShardGrant { seed, small, cells } => (seed, small, cells),
                    Response::Error { code: ERR_UNSUPPORTED, message } => {
                        // Wrong endpoint (e.g. mom3d-serve): retrying
                        // cannot help.
                        return Err(io::Error::other(format!(
                            "coordinator refused the claim: {message}"
                        )));
                    }
                    Response::Error { code, message } => {
                        break 'session io::Error::other(format!(
                            "coordinator error on claim (code {code}): {message}"
                        ));
                    }
                    other => break 'session unexpected("SHARD_CLAIM", &other),
                };
                if cells.is_empty() {
                    return Ok(summary); // the sweep is complete
                }
                summary.grants += 1;
                progressed = true;
                let runner = runner.get_or_insert_with(|| {
                    let base = if small { Runner::small(seed) } else { Runner::new(seed) };
                    base.with_cache(WorkloadCache::resolve(config.cache_dir.as_deref()))
                });
                let pairs: Vec<(WorkloadKind, IsaVariant)> =
                    cells.iter().map(|c| (c.kind, c.variant)).collect();
                sweep::prebuild_workloads(runner, &pairs, threads);
                let mut completed: u32 = 0;
                for key in &cells {
                    let t0 = Instant::now();
                    let metrics =
                        runner.metrics(key.kind, key.variant, key.memory, key.l2_latency);
                    let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    if let Err(e) = client.send(&Request::CellDone { key: *key, wall_ns, metrics })
                    {
                        break 'session e;
                    }
                    completed += 1;
                    summary.cells += 1;
                    if config.abort_after.is_some_and(|n| summary.cells >= n as u64) {
                        // Vanish mid-shard like a crashed process: no
                        // FIN, just a dropped connection. The
                        // coordinator requeues the rest of the grant.
                        return Ok(summary);
                    }
                    if config.stall_after.is_some_and(|n| summary.cells >= n as u64) {
                        // Go silent with the connection *open* — the
                        // stalled-not-dead failure mode. The
                        // coordinator's grant lease requeues the rest
                        // of this grant; this worker then retires.
                        std::thread::sleep(config.stall_for);
                        return Ok(summary);
                    }
                }
                match client.round_trip(&Request::ShardFin { completed }) {
                    Ok(Response::Done { .. }) => {}
                    Ok(other) => break 'session unexpected("SHARD_FIN", &other),
                    Err(e) => break 'session e,
                }
            }
        };
        // Transient failure: strike (unless the session made
        // progress), back off, redial.
        if progressed {
            strikes = 0;
            backoff.reset();
        } else {
            strikes += 1;
            if strikes >= WORKER_SESSION_STRIKES {
                return Err(io::Error::other(format!(
                    "worker {} made no progress over {strikes} reconnect(s); \
                     last error: {session_error}",
                    config.id
                )));
            }
        }
        progressed = false;
        std::thread::sleep(backoff.next_delay());
        client = match dial(endpoint, config, &mut conn_seq, 10) {
            Ok(client) => client,
            // Nobody listening: the coordinator exited — normal end of
            // service once the sweep completed elsewhere.
            Err(_) => return Ok(summary),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_batch_scales_with_grid_and_workers() {
        // ~4 grants per worker, never zero, capped at the protocol's
        // grant limit.
        assert_eq!(effective_batch(0, 46, 2), 6);
        assert_eq!(effective_batch(0, 46, 4), 3);
        assert_eq!(effective_batch(0, 3, 8), 1);
        assert_eq!(effective_batch(0, 0, 2), 1);
        // workers == 0 (external workers) plans as if for two.
        assert_eq!(effective_batch(0, 46, 0), 6);
        // An explicit batch wins but is still clamped.
        assert_eq!(effective_batch(9, 46, 2), 9);
        assert_eq!(effective_batch(1 << 30, 46, 2), MAX_SWEEP_CELLS as usize);
        assert_eq!(effective_batch(0, 1 << 30, 1), MAX_SWEEP_CELLS as usize);
    }
}
