//! `mom3d-load`: a load generator for the simulation server.
//!
//! Replays a mixed request stream — memo-hot cells, memo-cold cells,
//! multi-cell sweeps, deliberately malformed frames and mid-stream
//! disconnects — from many concurrent client connections, then emits
//! `BENCH_serve.json` with p50/p99 request latency and requests/sec.
//!
//! Correctness is checked, not assumed, while the load runs:
//!
//! * every `RESULT` must echo a key this client actually requested;
//! * all clients' observations of one key must agree bit-for-bit (the
//!   server's memo table must be a pure function of the key);
//! * a garbage *opcode* in a valid frame must leave the connection
//!   usable (error reply, then a `PING` must still work), while frame
//!   damage must kill only that connection;
//! * with verification on (the default), every distinct key observed is
//!   re-simulated **in-process** — seed and geometry come from the
//!   server's `PONG` — and compared bit-for-bit against the streamed
//!   metrics.
//!
//! Any violation is recorded as a failure in the report (and fails the
//! `mom3d-load` binary), so CI catches a lying server, not just a slow
//! one.
//!
//! The well-formed classes (hot, cold, sweep) run through the retry
//! layer ([`RetryClient`]); with `--chaos-seed`/`--chaos-profile` every
//! such connection is additionally wrapped in a seeded
//! [`crate::faults::ChaosStream`], and the report's `faults` block
//! (timeouts, retries, sheds, shed-then-succeeded) says what the layer
//! absorbed — bit-identity is asserted regardless, so injected faults
//! may cost latency but can never smuggle in a wrong metric.

use crate::faults::ChaosConfig;
use crate::json::json_string;
use crate::protocol::{
    read_frame, write_frame, Client, Endpoint, FaultCounters, Hello, Request, Response,
    RetryClient, RetryPolicy, MAX_FRAME_PAYLOAD, OP_ERROR,
};
use crate::runner::{Runner, SimKey};
use mom3d_cpu::{MemorySystemKind, Metrics};
use mom3d_kernels::{IsaVariant, WorkloadKind};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::time::{Duration, Instant};

/// Load-run shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server to load.
    pub endpoint: Endpoint,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Seed of the (deterministic) request mix.
    pub mix_seed: u64,
    /// Re-simulate every observed key in-process and compare
    /// bit-for-bit.
    pub verify: bool,
    /// Client-side fault injection: every hot/cold/sweep connection is
    /// wrapped in a seeded [`crate::faults::ChaosStream`] and driven
    /// through the retry layer. Bit-identity is still asserted — chaos
    /// may cost retries, never correctness.
    pub chaos: Option<ChaosConfig>,
}

impl LoadConfig {
    /// The default load: ≥ 1000 mixed requests from 32 connections,
    /// with bit-identity verification on.
    pub fn bench(endpoint: Endpoint) -> Self {
        // 32 × 36 = 1152 issued; the malformed class sends raw damaged
        // frames rather than requests, so the *counted* request total
        // still clears 1000.
        LoadConfig {
            endpoint,
            clients: 32,
            requests_per_client: 36,
            mix_seed: 1,
            verify: true,
            chaos: None,
        }
    }

    /// The CI smoke: small enough to finish in seconds against a
    /// `--small` server, still exercising every request class.
    pub fn smoke(endpoint: Endpoint) -> Self {
        LoadConfig {
            endpoint,
            clients: 6,
            requests_per_client: 12,
            mix_seed: 1,
            verify: true,
            chaos: None,
        }
    }
}

/// SplitMix64 — a tiny deterministic mixer so the request mix is
/// reproducible without an RNG dependency.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The request classes the generator mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// A cell from the small hot pool — memoized after the first few
    /// requests, so most of these measure the memo-hit path.
    Hot,
    /// A cell from a larger (but bounded) pool — exercises scheduling,
    /// coalescing and the worker pool.
    Cold,
    /// A multi-cell `SWEEP` with its streamed replies.
    Sweep,
    /// Deliberately damaged bytes on a throwaway connection.
    Malformed,
    /// A `SWEEP` request followed by an immediate disconnect.
    Disconnect,
}

fn pick_class(mix: &mut Mix) -> Class {
    match mix.below(16) {
        0..=7 => Class::Hot,
        8..=11 => Class::Cold,
        12..=13 => Class::Sweep,
        14 => Class::Malformed,
        _ => Class::Disconnect,
    }
}

/// Known-good (variant, backend) pairings — each variant on a memory
/// system that accepts its traces.
const COMBOS: [(IsaVariant, MemorySystemKind); 3] = [
    (IsaVariant::Mom, MemorySystemKind::VectorCache),
    (IsaVariant::Mom, MemorySystemKind::MultiBanked),
    (IsaVariant::Mom3d, MemorySystemKind::VectorCache3d),
];

/// Four paper cells every client hammers — memoized almost immediately.
fn hot_pool() -> Vec<SimKey> {
    vec![
        SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 20,
        },
        SimKey {
            kind: WorkloadKind::JpegDecode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::MultiBanked.into(),
            l2_latency: 20,
        },
        SimKey {
            kind: WorkloadKind::Mpeg2Decode,
            variant: IsaVariant::Mom3d,
            memory: MemorySystemKind::VectorCache3d.into(),
            l2_latency: 20,
        },
        SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::Ideal.into(),
            l2_latency: 20,
        },
    ]
}

/// A bounded pool of memo-cold cells (distinct L2 latencies), so a long
/// run converges to a finite simulation set instead of scheduling
/// unbounded work.
fn cold_pool() -> Vec<SimKey> {
    let kinds = WorkloadKind::ALL;
    (0..60u32)
        .map(|i| {
            let (variant, memory) = COMBOS[(i % 3) as usize];
            SimKey {
                kind: kinds[(i as usize / 3) % kinds.len()],
                variant,
                memory: memory.into(),
                l2_latency: 21 + i / 15,
            }
        })
        .collect()
}

/// Everything one worker (or the merged run) observed.
#[derive(Debug, Default)]
struct Agg {
    latencies_us: Vec<u64>,
    observed: HashMap<SimKey, Metrics>,
    requests_sent: u64,
    results_received: u64,
    memo_hits: u64,
    expected_errors: u64,
    malformed_sent: u64,
    disconnects: u64,
    faults: FaultCounters,
    failures: Vec<String>,
}

impl Agg {
    fn fail(&mut self, msg: String) {
        // Cap the detail so a systemically broken server does not
        // produce a gigabyte of report.
        if self.failures.len() < 32 {
            self.failures.push(msg);
        }
    }

    fn record_result(&mut self, requested: &[SimKey], key: SimKey, memo_hit: bool, m: Metrics) {
        self.results_received += 1;
        if memo_hit {
            self.memo_hits += 1;
        }
        if !requested.contains(&key) {
            self.fail(format!("server echoed a key this client never requested: {key:?}"));
        }
        if let Some(prev) = self.observed.insert(key, m) {
            if prev != m {
                self.fail(format!("divergent metrics for {key:?}: server answers are not a pure function of the key"));
            }
        }
    }

    fn merge(&mut self, other: Agg) {
        self.latencies_us.extend(other.latencies_us);
        self.requests_sent += other.requests_sent;
        self.results_received += other.results_received;
        self.memo_hits += other.memo_hits;
        self.expected_errors += other.expected_errors;
        self.malformed_sent += other.malformed_sent;
        self.disconnects += other.disconnects;
        self.faults.timeouts += other.faults.timeouts;
        self.faults.retries += other.faults.retries;
        self.faults.sheds += other.faults.sheds;
        self.faults.shed_then_succeeded += other.faults.shed_then_succeeded;
        for (key, m) in other.observed {
            if let Some(prev) = self.observed.insert(key, m) {
                if prev != m {
                    self.fail(format!(
                        "clients observed divergent metrics for {key:?}"
                    ));
                }
            }
        }
        for f in other.failures {
            self.fail(f);
        }
    }
}

fn one_sim(client: &mut RetryClient, agg: &mut Agg, key: SimKey) {
    let t0 = Instant::now();
    agg.requests_sent += 1;
    match client.sim(&key) {
        Ok(cell) => {
            agg.latencies_us.push(t0.elapsed().as_micros() as u64);
            agg.record_result(&[key], cell.key, cell.memo_hit, cell.metrics);
        }
        Err(e) => agg.fail(format!("SIM failed through the retry layer: {e}")),
    }
}

fn one_sweep(client: &mut RetryClient, agg: &mut Agg, keys: Vec<SimKey>) {
    agg.requests_sent += 1;
    match client.sweep(&keys) {
        Ok(cells) => {
            for cell in cells {
                agg.record_result(&keys, cell.key, cell.memo_hit, cell.metrics);
            }
        }
        Err(e) => agg.fail(format!("SWEEP failed through the retry layer: {e}")),
    }
}

/// Sends damaged bytes on a throwaway connection and checks the server's
/// containment contract: a garbage opcode in a *valid* frame gets an
/// error reply and the connection stays usable; frame-level damage gets
/// (at most) one error reply before the connection closes.
///
/// When the run has chaos armed (`lenient`), the strict assertions are
/// waived: injected faults may tear the probe connection or corrupt
/// the reply, and a torn probe is containment, not a server bug — the
/// probes still exercise the error path, they just stop asserting on
/// a wire that is being damaged on purpose.
fn one_malformed(endpoint: &Endpoint, agg: &mut Agg, flavor: u64, lenient: bool) {
    let mut stream = match endpoint.connect() {
        Ok(s) => s,
        Err(e) => {
            agg.fail(format!("malformed-class connect failed: {e}"));
            return;
        }
    };
    // A prober must never hang on a server (or a fault) that swallows
    // the reply: every probe read is bounded.
    stream.set_read_timeout(Some(Duration::from_secs(10)));
    agg.malformed_sent += 1;
    match flavor % 4 {
        0 => {
            // Valid frame, garbage opcode: must be answered and survived.
            if write_frame(&mut stream, 0x7F, b"junk").is_err() {
                if !lenient {
                    agg.fail("server hung up before reading a valid frame".into());
                }
                return;
            }
            match read_frame(&mut stream) {
                Ok(f) if f.opcode == OP_ERROR => agg.expected_errors += 1,
                other => {
                    if !lenient {
                        agg.fail(format!(
                            "garbage opcode expected an error reply, got {other:?}"
                        ));
                    }
                    return;
                }
            }
            // The connection must still be usable afterwards.
            let mut client = Client::from_stream(stream);
            match client.round_trip(&Request::Ping) {
                Ok(Response::Pong(_)) => {}
                other if lenient => drop(other),
                other => agg.fail(format!(
                    "connection unusable after a rejected opcode: {other:?}"
                )),
            }
        }
        1 => {
            // Bad magic: one best-effort error reply, then close.
            let _ = stream.write_all(b"XXXXGARBAGE-NOT-A-FRAME");
            let _ = stream.flush();
            expect_error_or_close(&mut stream, agg, "bad magic", lenient);
        }
        2 => {
            // Absurd length prefix: rejected before any allocation.
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&crate::protocol::PROTOCOL_MAGIC);
            bytes.push(0x02);
            bytes.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
            let _ = stream.write_all(&bytes);
            let _ = stream.flush();
            expect_error_or_close(&mut stream, agg, "oversized length prefix", lenient);
        }
        _ => {
            // Truncated frame: write half a header and hang up.
            let _ = stream.write_all(&crate::protocol::PROTOCOL_MAGIC);
            let _ = stream.write_all(&[0x02, 0xFF]);
            let _ = stream.flush();
            stream.shutdown_write();
            expect_error_or_close(&mut stream, agg, "truncated frame", lenient);
        }
    }
}

fn expect_error_or_close(
    stream: &mut crate::protocol::Stream,
    agg: &mut Agg,
    what: &str,
    lenient: bool,
) {
    match read_frame(stream) {
        Ok(f) if f.opcode == OP_ERROR => agg.expected_errors += 1,
        // Under chaos a bit-flip can rewrite the reply's opcode in
        // flight; without it, a non-error reply is a containment bug.
        Ok(_) if lenient => {}
        Ok(f) => agg.fail(format!("{what}: expected an error reply, got opcode {:#04x}", f.opcode)),
        // Closed without a reply is acceptable containment too.
        Err(_) => agg.expected_errors += 1,
    }
}

/// Sends a `SWEEP` and immediately drops the connection — the server
/// must finish (and memoize) the scheduled cells without a reader.
fn one_disconnect(endpoint: &Endpoint, agg: &mut Agg, keys: Vec<SimKey>) {
    match Client::connect(endpoint) {
        Ok(mut client) => {
            agg.requests_sent += 1;
            agg.disconnects += 1;
            let _ = client.send(&Request::Sweep(keys));
            drop(client); // mid-stream hangup
        }
        Err(e) => agg.fail(format!("disconnect-class connect failed: {e}")),
    }
}

fn client_worker(cfg: &LoadConfig, worker: usize) -> Agg {
    let mut agg = Agg::default();
    let mut mix = Mix(cfg.mix_seed.wrapping_add(worker as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let hot = hot_pool();
    let cold = cold_pool();
    // Hot/cold/sweep traffic goes through the retry layer (seeded
    // per-worker so backoff jitter differs across connections); the
    // malformed and disconnect classes keep raw streams — they exist to
    // probe the server's containment, not to survive.
    let policy = RetryPolicy {
        seed: RetryPolicy::default().seed ^ worker as u64,
        ..RetryPolicy::default()
    };
    let mut client = RetryClient::with_chaos(cfg.endpoint.clone(), policy, cfg.chaos);
    for _ in 0..cfg.requests_per_client {
        match pick_class(&mut mix) {
            Class::Hot => {
                let key = hot[mix.below(hot.len() as u64) as usize];
                one_sim(&mut client, &mut agg, key);
            }
            Class::Cold => {
                let key = cold[mix.below(cold.len() as u64) as usize];
                one_sim(&mut client, &mut agg, key);
            }
            Class::Sweep => {
                let n = 2 + mix.below(4) as usize;
                let keys: Vec<SimKey> = (0..n)
                    .map(|_| {
                        if mix.below(2) == 0 {
                            hot[mix.below(hot.len() as u64) as usize]
                        } else {
                            cold[mix.below(cold.len() as u64) as usize]
                        }
                    })
                    .collect();
                one_sweep(&mut client, &mut agg, keys);
            }
            Class::Malformed => {
                let flavor = mix.next();
                one_malformed(&cfg.endpoint, &mut agg, flavor, cfg.chaos.is_some());
            }
            Class::Disconnect => {
                let keys = vec![
                    cold[mix.below(cold.len() as u64) as usize],
                    hot[mix.below(hot.len() as u64) as usize],
                ];
                one_disconnect(&cfg.endpoint, &mut agg, keys);
            }
        }
    }
    agg.faults = client.counters();
    agg
}

/// The outcome of one load run — everything `BENCH_serve.json` reports.
#[derive(Debug)]
pub struct LoadReport {
    /// The loaded endpoint.
    pub endpoint: Endpoint,
    /// The server's identity (from `PONG`).
    pub hello: Hello,
    /// Concurrent connections used.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Wall-clock of the load phase (verification excluded).
    pub elapsed: Duration,
    /// Requests issued (SIM + SWEEP + disconnect-class sends).
    pub requests_sent: u64,
    /// `RESULT` frames received.
    pub results_received: u64,
    /// Results served from the resident memo table.
    pub memo_hits: u64,
    /// Error replies the malformed class provoked on purpose.
    pub expected_errors: u64,
    /// Deliberately damaged transmissions sent.
    pub malformed_sent: u64,
    /// Deliberate mid-stream disconnects.
    pub disconnects: u64,
    /// Distinct keys re-simulated in-process and compared bit-for-bit.
    pub verified_cells: u64,
    /// The client-side fault injection this run was subjected to.
    pub chaos: Option<ChaosConfig>,
    /// What the retry layer absorbed: expired deadlines, re-attempts,
    /// [`crate::protocol::ERR_OVERLOADED`] sheds, and sheds that later
    /// completed. All zero on a fault-free run against an idle server.
    pub faults: FaultCounters,
    /// Contract violations (empty on a passing run).
    pub failures: Vec<String>,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst request latency, microseconds.
    pub max_us: u64,
    /// Requests per second over the load phase.
    pub requests_per_sec: f64,
}

impl LoadReport {
    /// True when every correctness check held.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// The `BENCH_serve.json` document (schema `mom3d-serve-load/v2`;
    /// v2 added the `chaos` and `faults` blocks). String fields go
    /// through [`json_string`] — endpoints and failure messages can
    /// contain anything.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"mom3d-serve-load/v2\",");
        let _ = writeln!(s, "  \"endpoint\": {},", json_string(&self.endpoint.to_string()));
        let _ = writeln!(
            s,
            "  \"server\": {{\"seed\": {}, \"small\": {}, \"threads\": {}}},",
            self.hello.seed, self.hello.small, self.hello.threads
        );
        let _ = writeln!(
            s,
            "  \"load\": {{\"clients\": {}, \"requests_per_client\": {}, \"requests_sent\": {}}},",
            self.clients, self.requests_per_client, self.requests_sent
        );
        let _ = writeln!(
            s,
            "  \"totals\": {{\"results_received\": {}, \"memo_hits\": {}, \"expected_errors\": {}, \
             \"malformed_sent\": {}, \"disconnects\": {}, \"verified_cells\": {}}},",
            self.results_received,
            self.memo_hits,
            self.expected_errors,
            self.malformed_sent,
            self.disconnects,
            self.verified_cells
        );
        match &self.chaos {
            Some(chaos) => {
                let _ = writeln!(
                    s,
                    "  \"chaos\": {{\"seed\": {}, \"profile\": {}}},",
                    chaos.seed,
                    json_string(&chaos.profile.to_string())
                );
            }
            None => {
                let _ = writeln!(s, "  \"chaos\": null,");
            }
        }
        let _ = writeln!(
            s,
            "  \"faults\": {{\"timeouts\": {}, \"retries\": {}, \"shed\": {}, \
             \"shed_then_succeeded\": {}}},",
            self.faults.timeouts, self.faults.retries, self.faults.sheds, self.faults.shed_then_succeeded
        );
        let _ = writeln!(
            s,
            "  \"latency_us\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},",
            self.p50_us, self.p99_us, self.max_us
        );
        let _ = writeln!(s, "  \"requests_per_sec\": {:.2},", self.requests_per_sec);
        let _ = writeln!(s, "  \"elapsed_seconds\": {:.6},", self.elapsed.as_secs_f64());
        let failures: Vec<String> =
            self.failures.iter().map(|f| format!("    {}", json_string(f))).collect();
        if failures.is_empty() {
            let _ = writeln!(s, "  \"failures\": []");
        } else {
            let _ = writeln!(s, "  \"failures\": [\n{}\n  ]", failures.join(",\n"));
        }
        s.push_str("}\n");
        s
    }
}

/// Runs the load. Connects, learns the server's identity via `PING`,
/// fans the mixed request stream out over [`LoadConfig::clients`]
/// threads, then (with `verify`) replays every observed key in-process
/// and compares bit-for-bit.
///
/// # Errors
///
/// An [`io::Error`] only when the initial `PING` cannot be served at
/// all; correctness violations during the run land in
/// [`LoadReport::failures`] instead.
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    // The identity probe goes through the retry layer too: under chaos
    // the very first connection may be damaged, and that must cost a
    // retry, not the run.
    let mut probe = RetryClient::with_chaos(cfg.endpoint.clone(), RetryPolicy::default(), cfg.chaos);
    let hello = probe.ping()?;
    let probe_faults = probe.counters();
    drop(probe);

    let t0 = Instant::now();
    let mut agg = Agg { faults: probe_faults, ..Agg::default() };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|worker| scope.spawn(move || client_worker(cfg, worker)))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(worker_agg) => agg.merge(worker_agg),
                Err(_) => agg.fail("a load worker panicked".into()),
            }
        }
    });
    let elapsed = t0.elapsed();

    let mut verified_cells = 0u64;
    if cfg.verify {
        let mut local =
            if hello.small { Runner::small(hello.seed) } else { Runner::new(hello.seed) };
        let mut keys: Vec<SimKey> = agg.observed.keys().copied().collect();
        keys.sort_by_key(|k| (format!("{k:?}"), k.l2_latency));
        for key in keys {
            let direct = local.metrics(key.kind, key.variant, key.memory, key.l2_latency);
            if direct != agg.observed[&key] {
                agg.fail(format!(
                    "metrics for {key:?} differ from direct in-process execution"
                ));
            }
            verified_cells += 1;
        }
    }

    let latency = crate::stats::percentiles(&mut agg.latencies_us);
    let requests_per_sec = if elapsed.as_secs_f64() > 0.0 {
        agg.requests_sent as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    Ok(LoadReport {
        endpoint: cfg.endpoint.clone(),
        hello,
        clients: cfg.clients,
        requests_per_client: cfg.requests_per_client,
        elapsed,
        requests_sent: agg.requests_sent,
        results_received: agg.results_received,
        memo_hits: agg.memo_hits,
        expected_errors: agg.expected_errors,
        malformed_sent: agg.malformed_sent,
        disconnects: agg.disconnects,
        verified_cells,
        chaos: cfg.chaos,
        faults: agg.faults,
        failures: agg.failures,
        p50_us: latency.p50,
        p99_us: latency.p99,
        max_us: latency.max,
        requests_per_sec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_mix_is_deterministic_and_covers_every_class() {
        let mut a = Mix(42);
        let mut b = Mix(42);
        let classes_a: Vec<Class> = (0..64).map(|_| pick_class(&mut a)).collect();
        let classes_b: Vec<Class> = (0..64).map(|_| pick_class(&mut b)).collect();
        assert_eq!(classes_a, classes_b, "the mix must be reproducible");
        let mut mix = Mix(7);
        let classes: Vec<Class> = (0..1000).map(|_| pick_class(&mut mix)).collect();
        for want in [Class::Hot, Class::Cold, Class::Sweep, Class::Malformed, Class::Disconnect] {
            assert!(classes.contains(&want), "{want:?} never drawn in 1000 requests");
        }
        let hot = classes.iter().filter(|&&c| c == Class::Hot).count();
        assert!(hot > classes.len() / 3, "hot class must dominate the mix");
    }

    #[test]
    fn pools_are_bounded_and_valid() {
        let hot = hot_pool();
        let cold = cold_pool();
        assert_eq!(hot.len(), 4);
        assert_eq!(cold.len(), 60);
        // Every pool key must use a registered backend (the decode path
        // rejects anything else).
        for key in hot.iter().chain(cold.iter()) {
            assert!(
                mom3d_cpu::BackendRegistry::parse(key.memory.as_str()).is_some(),
                "{key:?} names an unregistered backend"
            );
        }
    }

    #[test]
    fn report_json_has_the_grep_surface() {
        let report = LoadReport {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            hello: Hello { seed: 7, small: true, threads: 4 },
            clients: 2,
            requests_per_client: 3,
            elapsed: Duration::from_millis(1500),
            requests_sent: 6,
            results_received: 5,
            memo_hits: 3,
            expected_errors: 1,
            malformed_sent: 1,
            disconnects: 0,
            verified_cells: 4,
            chaos: ChaosConfig::from_cli(Some(42), Some("mixed")).unwrap(),
            faults: FaultCounters { timeouts: 2, retries: 5, sheds: 1, shed_then_succeeded: 1 },
            failures: vec!["quote \" and back\\slash".into()],
            p50_us: 120,
            p99_us: 900,
            max_us: 1000,
            requests_per_sec: 4.0,
        };
        let json = report.to_json();
        for needle in [
            "\"schema\": \"mom3d-serve-load/v2\"",
            "\"p50\": 120",
            "\"p99\": 900",
            "\"requests_per_sec\": 4.00",
            "\"chaos\": {\"seed\": 42,",
            "\"faults\": {\"timeouts\": 2, \"retries\": 5, \"shed\": 1, \"shed_then_succeeded\": 1}",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!(!report.ok());
        // A chaos-free run still carries the grep surface (null + zeros).
        let quiet = LoadReport { chaos: None, faults: FaultCounters::default(), ..report };
        let json = quiet.to_json();
        assert!(json.contains("\"chaos\": null,"), "missing null chaos block:\n{json}");
        assert!(json.contains("\"faults\": {\"timeouts\": 0,"), "missing faults block:\n{json}");
        // Hostile failure text must be escaped: no raw quote or lone
        // backslash survives into the document.
        assert!(json.contains("quote \\\" and back\\\\slash"));
        assert!(!json.contains("quote \" and"), "unescaped failure text:\n{json}");
    }
}
