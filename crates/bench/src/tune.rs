//! Design-space autotuner over the parameterized backend zoo.
//!
//! The paper evaluates a handful of hand-picked memory organizations;
//! the registry turns "memory organization" into an open, *parameterized*
//! family ([`mom3d_cpu::BackendRegistry`], [`mom3d_mem::ParamSpec`]).
//! This module searches the joint design space
//!
//! > backend family × family parameters × L2 latency × ISA variant
//!
//! per workload, scoring every visited point on three axes at once —
//! simulated **cycles**, a capacitance-model **energy** estimate, and
//! the register-file **area** of the ISA configuration — and reports
//! the non-dominated (Pareto) frontier.
//!
//! Search strategy, per `(workload, family)`:
//!
//! * the family's **baseline** (plain base id, MOM ISA, lowest L2
//!   latency) is always evaluated first, so every family appears in the
//!   report whatever the budget;
//! * when the family's whole space fits the evaluation budget, it is
//!   enumerated **exhaustively**;
//! * otherwise a deterministic seeded **hill-climb with restarts**
//!   explores it: each restart draws a random scalarization of the
//!   three objectives and steepest-descends over single-knob
//!   mutations until no neighbor improves. Randomness comes from a
//!   [`SmallRng`] seeded from the tune seed, the workload and the
//!   family id — same seed, same walk, bit for bit.
//!
//! Evaluations execute through an [`Executor`]: [`LocalExec`] drives
//! the in-process parallel [`crate::sweep`] engine, [`RemoteExec`]
//! batches cells to a resident `mom3d-serve` process over the binary
//! [`crate::protocol`]. Either way a design point is just a [`SimKey`]
//! with a parameterized backend id, so every number the tuner reports
//! is bit-identical to what a direct [`crate::sweep::run`] of the same
//! key produces. Points are never simulated twice: the tuner's own
//! visited table serves repeats (`dedup_hits`) and the executor's memo
//! layer catches anything already resident (`memo_hits`).
//!
//! [`TuneReport::to_json`] writes the `mom3d-tune/v1` schema —
//! deliberately free of wall-clock or other nondeterministic fields,
//! so two runs with the same seeds produce byte-identical documents.

use crate::json::json_string;
use crate::protocol::{CellReply, Endpoint, Hello, RetryClient, RetryPolicy};
use crate::runner::{Runner, SimKey};
use crate::sweep;
use mom3d_cpu::{BackendEntry, BackendRegistry, Metrics};
use mom3d_kernels::{IsaVariant, WorkloadKind};
use mom3d_power::{row_activate_energy, ConfigArea, L2Params, ProcessParams, RegFileSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// What to search and how hard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneConfig {
    /// Workload data seed (the [`Runner`] seed).
    pub seed: u64,
    /// Search seed: drives restarts and scalarization weights only.
    /// Changing it explores differently; the metrics of any visited
    /// point are unaffected.
    pub tune_seed: u64,
    /// True to tune reduced-geometry workloads.
    pub small: bool,
    /// Maximum fresh evaluations per `(workload, family)`. Families
    /// whose whole space fits are enumerated exhaustively.
    pub budget: usize,
    /// L2 latencies to search (the paper's Figure 10 axis).
    pub l2_latencies: Vec<u32>,
    /// Workloads to tune.
    pub workloads: Vec<WorkloadKind>,
    /// Restrict the search to one backend family (base id), e.g. from
    /// `--backend dram-burst`. `None` = every non-ideal family.
    pub backend: Option<String>,
    /// Parameter overrides for the restricted family's baseline point
    /// (from `--params`); resolved by [`resolve_start_params`].
    pub start_params: Vec<(&'static str, u64)>,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: 7,
            tune_seed: 7,
            small: false,
            budget: 60,
            l2_latencies: vec![20, 40, 60],
            workloads: WorkloadKind::ALL.to_vec(),
            backend: None,
            start_params: Vec::new(),
        }
    }
}

impl TuneConfig {
    /// The CI smoke configuration: reduced-geometry workloads and a
    /// budget small enough that every family hill-climbs briefly.
    pub fn smoke(seed: u64) -> Self {
        TuneConfig { seed, tune_seed: seed, small: true, budget: 12, ..TuneConfig::default() }
    }
}

/// Once-flag for the invalid-`--params` warning (the same dedupe idiom
/// as `MOM3D_SWEEP_THREADS`).
static PARAMS_WARNED: AtomicBool = AtomicBool::new(false);

/// Resolves a raw `--params key=value,...` string against `base`'s
/// [`mom3d_mem::ParamSpec`]s. A malformed or unknown pair does **not**
/// abort the run and does **not** silently pretend the flag worked: it
/// warns once on stderr — naming the offending pair and the keys the
/// family actually takes — and falls back to the family defaults.
pub fn resolve_start_params(base: &str, raw: &str) -> Vec<(&'static str, u64)> {
    match BackendRegistry::try_parse(&format!("{base}?{raw}")) {
        Ok(id) => id.params().collect(),
        Err(e) => {
            if !PARAMS_WARNED.swap(true, Ordering::Relaxed) {
                let valid: Vec<&str> = BackendRegistry::get(base)
                    .map(|entry| entry.params.iter().map(|p| p.key).collect())
                    .unwrap_or_default();
                eprintln!(
                    "warning: --params {raw:?}: {e}; using the {base:?} defaults (valid keys: {})",
                    if valid.is_empty() { "none".to_owned() } else { valid.join(", ") }
                );
            }
            Vec::new()
        }
    }
}

/// One executed design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eval {
    /// The design point (workload, ISA, parameterized backend id, L2).
    pub key: SimKey,
    /// The simulation's metrics, bit-identical to [`crate::sweep::run`].
    pub metrics: Metrics,
    /// Objective 1: simulated cycles.
    pub cycles: u64,
    /// Objective 2: estimated memory-path energy in joules
    /// ([`CostModel::energy_j`]).
    pub energy_j: f64,
    /// Objective 3: register-file area of the ISA configuration, in
    /// square wire tracks ([`CostModel::area_wt2`]).
    pub area_wt2: u64,
    /// True when the executor served the metrics from a cache/memo
    /// layer instead of simulating.
    pub memo_hit: bool,
}

impl Eval {
    /// The minimized objective vector: (cycles, energy, area).
    pub fn objectives(&self) -> (u64, f64, u64) {
        (self.cycles, self.energy_j, self.area_wt2)
    }
}

/// `a` Pareto-dominates `b` (minimizing all three objectives): no
/// worse everywhere, strictly better somewhere.
pub fn dominates(a: (u64, f64, u64), b: (u64, f64, u64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
}

/// Indices of the non-dominated points of `objs`, in input order.
/// Exact-duplicate objective tuples keep their first occurrence only,
/// so the frontier is a minimal set.
pub fn pareto_frontier(objs: &[(u64, f64, u64)]) -> Vec<usize> {
    let mut frontier = Vec::new();
    'outer: for (i, &p) in objs.iter().enumerate() {
        for (j, &q) in objs.iter().enumerate() {
            if dominates(q, p) || (q == p && j < i) {
                continue 'outer;
            }
        }
        frontier.push(i);
    }
    frontier
}

/// The energy/area scoring model behind the tuner's second and third
/// objectives — the same capacitance models as the Figure 11 report,
/// extended with a per-row-miss activate charge.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    process: ProcessParams,
    e_l2: f64,
    e_rf3d: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        let process = ProcessParams::default();
        CostModel {
            process,
            e_l2: L2Params::default().access_energy(&process),
            e_rf3d: process.regfile_access_energy(&RegFileSpec::dreg_3d()),
        }
    }
}

impl CostModel {
    /// Estimated memory-path energy of one simulation, in joules:
    /// every L2-level access (vector + scalar, the Figure 11 activity)
    /// at the L2 SRAM access energy, every 3D-register-file write or
    /// `3dvmov` word at the 3D RF access energy, and — for backends
    /// that model DRAM rows — every row miss at the activate energy of
    /// that design point's row size
    /// ([`mom3d_power::row_activate_energy`]).
    pub fn energy_j(&self, key: &SimKey, m: &Metrics) -> f64 {
        let row_bytes = BackendRegistry::build(key.memory, &key.config().backend_params())
            .map_or(0, |b| b.activate_row_bytes());
        let activate = row_activate_energy(&self.process, row_bytes);
        m.total_l2_activity() as f64 * self.e_l2
            + (m.d3_writes + m.mov3d_words) as f64 * self.e_rf3d
            + m.dram_row_misses as f64 * activate
    }

    /// Register-file area of the ISA configuration, in square wire
    /// tracks (the Table 3 totals).
    pub fn area_wt2(&self, variant: IsaVariant) -> u64 {
        match variant {
            IsaVariant::Mmx => ConfigArea::mmx(),
            IsaVariant::Mom => ConfigArea::mom(),
            IsaVariant::Mom3d => ConfigArea::mom_3d(),
        }
        .total_wire_tracks()
    }

    /// Scores one executed cell.
    pub fn eval(&self, key: SimKey, metrics: Metrics, memo_hit: bool) -> Eval {
        Eval {
            key,
            metrics,
            cycles: metrics.cycles,
            energy_j: self.energy_j(&key, &metrics),
            area_wt2: self.area_wt2(key.variant),
            memo_hit,
        }
    }
}

/// Where evaluations execute. Implementations must return results for
/// exactly the requested cells (any order) with metrics bit-identical
/// to [`crate::sweep::run`] of the same keys.
pub trait Executor {
    /// Executes a batch of cells.
    ///
    /// # Errors
    ///
    /// A human-readable message when execution is impossible (transport
    /// failure, server-side rejection).
    fn run(&mut self, cells: &[SimKey]) -> Result<Vec<(SimKey, Metrics, bool)>, String>;

    /// One-line description for the run header.
    fn describe(&self) -> String;
}

/// In-process execution over the parallel sweep engine.
pub struct LocalExec<'a> {
    /// The runner holding workloads and the metrics cache.
    pub runner: &'a mut Runner,
    /// Sweep worker threads.
    pub threads: usize,
}

impl Executor for LocalExec<'_> {
    fn run(&mut self, cells: &[SimKey]) -> Result<Vec<(SimKey, Metrics, bool)>, String> {
        let report = sweep::run(self.runner, cells, self.threads);
        Ok(report.cells.into_iter().map(|c| (c.key, c.metrics, c.reused)).collect())
    }

    fn describe(&self) -> String {
        format!("local sweep engine, {} threads", self.threads)
    }
}

/// Remote execution against a resident `mom3d-serve` process: cells go
/// out as batched `SWEEP` requests through the retry layer
/// ([`RetryClient`]), so a long tuning run rides out dropped
/// connections, expired deadlines and `ERR_OVERLOADED` shedding — a
/// mid-sweep reconnect re-requests only the undelivered cells. The
/// constructor pings the server (retrying) and refuses to tune against
/// one whose seed or geometry differs from the tuner's — mixed
/// identities would silently blend incomparable numbers.
pub struct RemoteExec {
    client: RetryClient,
    hello: Hello,
}

impl RemoteExec {
    /// Connects and verifies the server's identity.
    ///
    /// # Errors
    ///
    /// A message describing the connection failure or the identity
    /// mismatch.
    pub fn connect(endpoint: &Endpoint, seed: u64, small: bool) -> Result<RemoteExec, String> {
        let mut client = RetryClient::new(endpoint.clone(), RetryPolicy::default());
        let hello = client.ping().map_err(|e| format!("{endpoint}: PING failed: {e}"))?;
        if hello.seed != seed || hello.small != small {
            return Err(format!(
                "{endpoint}: server identity mismatch: server runs seed {} ({} geometry), \
                 tuner wants seed {seed} ({} geometry)",
                hello.seed,
                if hello.small { "small" } else { "full" },
                if small { "small" } else { "full" }
            ));
        }
        Ok(RemoteExec { client, hello })
    }
}

impl Executor for RemoteExec {
    fn run(&mut self, cells: &[SimKey]) -> Result<Vec<(SimKey, Metrics, bool)>, String> {
        // RetryClient::sweep chunks, reconnects and resumes internally;
        // it returns every requested cell or a terminal error.
        let replies = self
            .client
            .sweep(cells)
            .map_err(|e| format!("{}: sweep failed: {e}", self.client.endpoint()))?;
        Ok(replies
            .into_iter()
            .map(|CellReply { key, memo_hit, metrics }| (key, metrics, memo_hit))
            .collect())
    }

    fn describe(&self) -> String {
        format!("coordinator {} ({} threads)", self.client.endpoint(), self.hello.threads)
    }
}

/// One family's share of a workload's search.
#[derive(Debug, Clone)]
pub struct FamilyReport {
    /// The family's base id.
    pub base: &'static str,
    /// Human-readable name.
    pub display_name: &'static str,
    /// Size of the family's full space (params × L2 × ISA).
    pub space: usize,
    /// True when the space fit the budget and was fully enumerated.
    pub exhaustive: bool,
    /// Fresh evaluations executed.
    pub evals: usize,
    /// Point requests served from the tuner's visited table.
    pub dedup_hits: usize,
    /// Fresh evaluations the executor served from its memo/cache layer.
    pub memo_hits: usize,
    /// The always-evaluated baseline point.
    pub baseline: Eval,
}

/// One workload's search outcome.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Total space across families.
    pub space: usize,
    /// Per-family statistics, in registry order.
    pub families: Vec<FamilyReport>,
    /// Every distinct point executed, in evaluation order.
    pub visited: Vec<Eval>,
    /// The non-dominated subset of `visited`, sorted by
    /// (cycles, energy, area, id).
    pub frontier: Vec<Eval>,
}

/// Everything one [`tune`] call did.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Workload data seed.
    pub seed: u64,
    /// Search seed.
    pub tune_seed: u64,
    /// True for reduced-geometry workloads.
    pub small: bool,
    /// Per-`(workload, family)` evaluation budget.
    pub budget: usize,
    /// The searched L2 latencies.
    pub l2_latencies: Vec<u32>,
    /// Per-workload outcomes, in configuration order.
    pub workloads: Vec<WorkloadReport>,
}

/// The search lattice of one family: every tunable knob's candidate
/// list plus the L2 and ISA axes.
struct Lattice {
    entry: BackendEntry,
    variants: Vec<IsaVariant>,
    l2s: Vec<u32>,
}

/// A lattice point: one candidate index per knob, then the L2 and ISA
/// indices.
type Point = Vec<usize>;

impl Lattice {
    fn new(entry: BackendEntry, l2s: &[u32]) -> Lattice {
        let mut variants = vec![IsaVariant::Mmx, IsaVariant::Mom];
        if entry.has_3d {
            variants.push(IsaVariant::Mom3d);
        }
        Lattice { entry, variants, l2s: l2s.to_vec() }
    }

    /// Cardinality of each axis: one entry per knob, then L2, then ISA.
    fn dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> =
            self.entry.params.iter().map(|s| s.candidates.len()).collect();
        dims.push(self.l2s.len());
        dims.push(self.variants.len());
        dims
    }

    fn space(&self) -> usize {
        self.dims().iter().product()
    }

    /// The default point: every knob at its spec default (snapping any
    /// `overrides` that exactly match a candidate), lowest L2, MOM ISA.
    fn default_point(&self, overrides: &[(&str, u64)]) -> Point {
        let mut p: Point = self
            .entry
            .params
            .iter()
            .map(|s| {
                let value = overrides
                    .iter()
                    .find(|&&(k, _)| k == s.key)
                    .map_or(s.default, |&(_, v)| v);
                s.candidates
                    .iter()
                    .position(|&c| c == value)
                    .unwrap_or_else(|| {
                        s.candidates.iter().position(|&c| c == s.default).expect("default listed")
                    })
            })
            .collect();
        p.push(0);
        let mom = self
            .variants
            .iter()
            .position(|&v| v == IsaVariant::Mom)
            .expect("MOM is always searched");
        p.push(mom);
        p
    }

    /// The design point as a simulation key.
    fn key(&self, kind: WorkloadKind, p: &Point) -> SimKey {
        let nparams = self.entry.params.len();
        let pairs: Vec<(&str, u64)> = self
            .entry
            .params
            .iter()
            .enumerate()
            .filter(|&(i, s)| s.candidates[p[i]] != s.default)
            .map(|(i, s)| (s.key, s.candidates[p[i]]))
            .collect();
        let memory = BackendRegistry::make_id(self.entry.id, &pairs)
            .expect("candidate values round-trip through their own specs");
        SimKey {
            kind,
            variant: self.variants[p[nparams + 1]],
            memory,
            l2_latency: self.l2s[p[nparams]],
        }
    }

    /// Every point of the space, in lexicographic order.
    fn enumerate(&self) -> Vec<Point> {
        let dims = self.dims();
        let mut points = Vec::with_capacity(self.space());
        let mut p: Point = vec![0; dims.len()];
        loop {
            points.push(p.clone());
            let mut axis = dims.len();
            loop {
                if axis == 0 {
                    return points;
                }
                axis -= 1;
                p[axis] += 1;
                if p[axis] < dims[axis] {
                    break;
                }
                p[axis] = 0;
            }
        }
    }

    /// Every single-axis mutation of `p`, in axis/candidate order.
    fn neighbors(&self, p: &Point) -> Vec<Point> {
        let dims = self.dims();
        let mut out = Vec::new();
        for (axis, &card) in dims.iter().enumerate() {
            for value in 0..card {
                if value != p[axis] {
                    let mut q = p.clone();
                    q[axis] = value;
                    out.push(q);
                }
            }
        }
        out
    }

    /// A uniformly random point.
    fn random(&self, rng: &mut SmallRng) -> Point {
        self.dims().iter().map(|&card| rng.gen_range(0..card)).collect()
    }
}

/// Stable per-`(workload, family)` search seed: FNV-1a over the tune
/// seed, the workload name and the family id, so adding a family or a
/// workload never perturbs the walks of the others.
fn search_seed(tune_seed: u64, kind: WorkloadKind, base: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ tune_seed;
    for byte in kind.name().bytes().chain([0u8]).chain(base.bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mutable search state shared by the exhaustive and hill-climb paths
/// of one `(workload, family)` search.
struct SearchState<'a> {
    exec: &'a mut dyn Executor,
    cost: &'a CostModel,
    visited: &'a mut HashMap<SimKey, Eval>,
    order: &'a mut Vec<SimKey>,
    evals: usize,
    dedup_hits: usize,
    memo_hits: usize,
}

impl SearchState<'_> {
    /// Fresh evaluations still allowed under `budget`.
    fn remaining(&self, budget: usize) -> usize {
        budget.saturating_sub(self.evals)
    }

    /// Evaluates `keys` (already-visited keys are dedup hits), keeping
    /// at most `limit` fresh evaluations. Results land in the visited
    /// table in request order, whatever order the executor returns.
    fn eval(&mut self, keys: &[SimKey], limit: usize) -> Result<(), String> {
        let mut fresh: Vec<SimKey> = Vec::new();
        for &key in keys {
            if self.visited.contains_key(&key) || fresh.contains(&key) {
                self.dedup_hits += 1;
            } else if fresh.len() < limit {
                fresh.push(key);
            }
        }
        if fresh.is_empty() {
            return Ok(());
        }
        let mut results: HashMap<SimKey, (Metrics, bool)> = self
            .exec
            .run(&fresh)?
            .into_iter()
            .map(|(key, metrics, memo)| (key, (metrics, memo)))
            .collect();
        for key in fresh {
            let (metrics, memo_hit) = results
                .remove(&key)
                .ok_or_else(|| format!("executor returned no result for {key:?}"))?;
            let eval = self.cost.eval(key, metrics, memo_hit);
            self.visited.insert(key, eval);
            self.order.push(key);
            self.evals += 1;
            if memo_hit {
                self.memo_hits += 1;
            }
        }
        Ok(())
    }
}

/// Searches one `(workload, family)` pair.
fn search_family(
    kind: WorkloadKind,
    lattice: &Lattice,
    cfg: &TuneConfig,
    state: &mut SearchState<'_>,
) -> Result<FamilyReport, String> {
    let budget = cfg.budget.max(1);
    let overrides: &[(&str, u64)] =
        if cfg.backend.as_deref() == Some(lattice.entry.id) { &cfg.start_params } else { &[] };

    // The baseline: the family's (possibly --params-overridden) default
    // design point, evaluated before anything else so the family is
    // represented whatever the budget.
    let start = lattice.default_point(overrides);
    let baseline_key = lattice.key(kind, &start);
    state.eval(&[baseline_key], 1)?;
    let baseline = state.visited[&baseline_key];

    let space = lattice.space();
    let exhaustive = space <= budget;
    if exhaustive {
        let keys: Vec<SimKey> =
            lattice.enumerate().iter().map(|p| lattice.key(kind, p)).collect();
        let limit = state.remaining(budget);
        state.eval(&keys, limit)?;
    } else {
        let mut rng = SmallRng::seed_from_u64(search_seed(cfg.tune_seed, kind, lattice.entry.id));
        let norm = (
            baseline.cycles.max(1) as f64,
            if baseline.energy_j > 0.0 { baseline.energy_j } else { 1.0 },
            baseline.area_wt2.max(1) as f64,
        );
        let mut restarts = 0usize;
        while state.remaining(budget) > 0 && restarts < 64 {
            let (mut current, weights) = if restarts == 0 {
                (start.clone(), (1.0, 1.0, 1.0))
            } else {
                let w = |rng: &mut SmallRng| rng.gen_range(1u64..=100) as f64 / 100.0;
                (lattice.random(&mut rng), (w(&mut rng), w(&mut rng), w(&mut rng)))
            };
            restarts += 1;
            let score = |state: &SearchState<'_>, p: &Point| -> Option<f64> {
                let e = state.visited.get(&lattice.key(kind, p))?;
                Some(
                    weights.0 * e.cycles as f64 / norm.0
                        + weights.1 * e.energy_j / norm.1
                        + weights.2 * e.area_wt2 as f64 / norm.2,
                )
            };
            let limit = state.remaining(budget);
            state.eval(&[lattice.key(kind, &current)], limit)?;
            while state.remaining(budget) > 0 {
                let Some(here) = score(state, &current) else { break };
                let neighbors = lattice.neighbors(&current);
                let keys: Vec<SimKey> =
                    neighbors.iter().map(|p| lattice.key(kind, p)).collect();
                let limit = state.remaining(budget);
                state.eval(&keys, limit)?;
                // Steepest descent, first-wins on ties: evaluation order
                // is deterministic, so the walk is too.
                let best = neighbors
                    .iter()
                    .filter_map(|p| score(state, p).map(|s| (p, s)))
                    .fold(None::<(&Point, f64)>, |acc, (p, s)| match acc {
                        Some((_, sb)) if sb <= s => acc,
                        _ => Some((p, s)),
                    });
                match best {
                    Some((p, s)) if s < here => current = p.clone(),
                    _ => break,
                }
            }
        }
    }

    Ok(FamilyReport {
        base: lattice.entry.id,
        display_name: lattice.entry.display_name,
        space,
        exhaustive,
        evals: state.evals,
        dedup_hits: state.dedup_hits,
        memo_hits: state.memo_hits,
        baseline,
    })
}

/// Runs the whole configured search through `exec`.
///
/// # Errors
///
/// A human-readable message when the backend restriction names no
/// registered family or the executor fails.
pub fn tune(cfg: &TuneConfig, exec: &mut dyn Executor) -> Result<TuneReport, String> {
    let families: Vec<BackendEntry> = BackendRegistry::entries()
        .into_iter()
        .filter(|e| !e.is_ideal)
        .filter(|e| cfg.backend.as_deref().is_none_or(|b| b == e.id))
        .collect();
    if families.is_empty() {
        let known: Vec<&str> = BackendRegistry::entries()
            .iter()
            .filter(|e| !e.is_ideal)
            .map(|e| e.id)
            .collect();
        return Err(format!(
            "--backend {:?} names no tunable backend family (known: {})",
            cfg.backend.as_deref().unwrap_or(""),
            known.join(", ")
        ));
    }
    if cfg.l2_latencies.is_empty() {
        return Err("no L2 latencies to search".into());
    }
    let cost = CostModel::default();
    let mut workloads = Vec::with_capacity(cfg.workloads.len());
    for &kind in &cfg.workloads {
        let mut visited: HashMap<SimKey, Eval> = HashMap::new();
        let mut order: Vec<SimKey> = Vec::new();
        let mut reports = Vec::with_capacity(families.len());
        for &entry in &families {
            let lattice = Lattice::new(entry, &cfg.l2_latencies);
            let mut state = SearchState {
                exec: &mut *exec,
                cost: &cost,
                visited: &mut visited,
                order: &mut order,
                evals: 0,
                dedup_hits: 0,
                memo_hits: 0,
            };
            reports.push(search_family(kind, &lattice, cfg, &mut state)?);
        }
        let visited_evals: Vec<Eval> = order.iter().map(|k| visited[k]).collect();
        let objs: Vec<(u64, f64, u64)> = visited_evals.iter().map(Eval::objectives).collect();
        let mut frontier: Vec<Eval> =
            pareto_frontier(&objs).into_iter().map(|i| visited_evals[i]).collect();
        frontier.sort_by(|a, b| {
            (a.cycles, a.energy_j.to_bits(), a.area_wt2, a.key.memory.as_str()).cmp(&(
                b.cycles,
                b.energy_j.to_bits(),
                b.area_wt2,
                b.key.memory.as_str(),
            ))
        });
        workloads.push(WorkloadReport {
            kind,
            space: reports.iter().map(|f| f.space).sum(),
            families: reports,
            visited: visited_evals,
            frontier,
        });
    }
    Ok(TuneReport {
        seed: cfg.seed,
        tune_seed: cfg.tune_seed,
        small: cfg.small,
        budget: cfg.budget,
        l2_latencies: cfg.l2_latencies.clone(),
        workloads,
    })
}

fn point_json(e: &Eval) -> String {
    let params: Vec<String> =
        e.key.memory.params().map(|(k, v)| format!("{}: {v}", json_string(k))).collect();
    format!(
        "{{\"memory\": {}, \"base\": {}, \"params\": {{{}}}, \"isa\": {}, \
         \"l2_latency\": {}, \"cycles\": {}, \"energy_j\": {:.6e}, \"area_wt2\": {}}}",
        json_string(e.key.memory.as_str()),
        json_string(e.key.memory.base()),
        params.join(", "),
        json_string(&e.key.variant.to_string()),
        e.key.l2_latency,
        e.cycles,
        e.energy_j,
        e.area_wt2,
    )
}

impl TuneReport {
    /// The report as the `mom3d-tune/v1` JSON document.
    ///
    /// The schema carries **no wall-clock or host-dependent fields**:
    /// two runs with the same seeds and budget produce byte-identical
    /// documents, which CI exploits.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"mom3d-tune/v1\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"tune_seed\": {},\n", self.tune_seed));
        s.push_str(&format!("  \"small\": {},\n", self.small));
        s.push_str(&format!("  \"budget\": {},\n", self.budget));
        let l2s: Vec<String> = self.l2_latencies.iter().map(u32::to_string).collect();
        s.push_str(&format!("  \"l2_latencies\": [{}],\n", l2s.join(", ")));
        s.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            let evals: usize = w.families.iter().map(|f| f.evals).sum();
            let dedup: usize = w.families.iter().map(|f| f.dedup_hits).sum();
            let memo: usize = w.families.iter().map(|f| f.memo_hits).sum();
            s.push_str(&format!(
                "    {{\"workload\": {}, \"space\": {}, \"visited\": {}, \"evals\": {}, \
                 \"dedup_hits\": {}, \"memo_hits\": {},\n",
                json_string(&w.kind.to_string()),
                w.space,
                w.visited.len(),
                evals,
                dedup,
                memo,
            ));
            s.push_str("     \"families\": [\n");
            for (fi, f) in w.families.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"base\": {}, \"display_name\": {}, \"space\": {}, \
                     \"exhaustive\": {}, \"evals\": {}, \"dedup_hits\": {}, \
                     \"memo_hits\": {}, \"baseline\": {}}}{}\n",
                    json_string(f.base),
                    json_string(f.display_name),
                    f.space,
                    f.exhaustive,
                    f.evals,
                    f.dedup_hits,
                    f.memo_hits,
                    point_json(&f.baseline),
                    if fi + 1 == w.families.len() { "" } else { "," }
                ));
            }
            s.push_str("     ],\n");
            s.push_str("     \"frontier\": [\n");
            for (pi, p) in w.frontier.iter().enumerate() {
                s.push_str(&format!(
                    "      {}{}\n",
                    point_json(p),
                    if pi + 1 == w.frontier.len() { "" } else { "," }
                ));
            }
            s.push_str("     ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if wi + 1 == self.workloads.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Writes [`TuneReport::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The human-readable frontier table.
    pub fn frontier_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "Pareto frontiers: cycles vs energy vs area (seed {}, tune seed {}, budget {}, {} \
             geometry)\n",
            self.seed,
            self.tune_seed,
            self.budget,
            if self.small { "small" } else { "full" }
        ));
        for w in &self.workloads {
            let evals: usize = w.families.iter().map(|f| f.evals).sum();
            let dedup: usize = w.families.iter().map(|f| f.dedup_hits).sum();
            let memo: usize = w.families.iter().map(|f| f.memo_hits).sum();
            s.push_str(&format!(
                "\n{}: {} of {} design points visited ({} evaluations, {} dedup hits, {} memo \
                 hits)\n",
                w.kind,
                w.visited.len(),
                w.space,
                evals,
                dedup,
                memo
            ));
            s.push_str(&format!(
                "  {:<34} {:<7} {:>3} {:>10} {:>12} {:>11}\n",
                "memory", "isa", "L2", "cycles", "energy (nJ)", "area (wt2)"
            ));
            for p in &w.frontier {
                s.push_str(&format!(
                    "  {:<34} {:<7} {:>3} {:>10} {:>12.3} {:>11}\n",
                    p.key.memory.to_string(),
                    p.key.variant.to_string(),
                    p.key.l2_latency,
                    p.cycles,
                    p.energy_j * 1e9,
                    p.area_wt2
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_and_partial() {
        let a = (10u64, 1.0f64, 100u64);
        assert!(!dominates(a, a), "a point never dominates itself");
        assert!(dominates((9, 1.0, 100), a), "better on one axis, equal elsewhere");
        assert!(dominates((9, 0.5, 50), a), "better everywhere");
        assert!(!dominates((9, 2.0, 100), a), "a trade-off dominates nothing");
        assert!(!dominates((11, 0.5, 50), a));
    }

    #[test]
    fn frontier_single_point() {
        assert_eq!(pareto_frontier(&[(5, 1.0, 9)]), vec![0]);
        assert_eq!(pareto_frontier(&[]), Vec::<usize>::new());
    }

    #[test]
    fn frontier_drops_dominated_and_duplicate_points() {
        let objs = [
            (10, 1.0, 100), // frontier
            (12, 2.0, 200), // dominated by 0
            (10, 1.0, 100), // exact duplicate of 0: dropped
            (8, 3.0, 100),  // frontier (cycles trade-off)
            (10, 0.5, 300), // frontier (energy/area trade-off)
        ];
        assert_eq!(pareto_frontier(&objs), vec![0, 3, 4]);
    }

    #[test]
    fn frontier_keeps_one_axis_ties() {
        // Same cycles, opposite energy/area trade-offs: both survive.
        let objs = [(10, 1.0, 200), (10, 2.0, 100)];
        assert_eq!(pareto_frontier(&objs), vec![0, 1]);
        // But an equal-cycles point worse on both other axes dies.
        let objs = [(10, 1.0, 200), (10, 2.0, 300)];
        assert_eq!(pareto_frontier(&objs), vec![0]);
    }

    #[test]
    fn family_spaces_are_registry_driven() {
        // params × L2(3) × ISA(2 or 3): extend a family's ParamSpecs
        // and the tuner's space grows without touching this module.
        let l2s = [20u32, 40, 60];
        let expect = [
            ("multi-banked", 9 * 3 * 2),
            ("vector-cache", 3 * 3 * 2),
            ("vector-cache-3d", 3 * 3 * 3),
            ("dram-burst", 81 * 3 * 2),
            ("hbm-wide", 81 * 3 * 2),
            ("pim-vector", 27 * 3 * 2),
        ];
        for (id, space) in expect {
            let lattice = Lattice::new(BackendRegistry::get(id).unwrap(), &l2s);
            assert_eq!(lattice.space(), space, "{id}");
            assert_eq!(lattice.enumerate().len(), space, "{id}");
        }
    }

    #[test]
    fn lattice_points_round_trip_to_canonical_keys() {
        let lattice = Lattice::new(BackendRegistry::get("dram-burst").unwrap(), &[20, 40]);
        let base = lattice.default_point(&[]);
        let key = lattice.key(WorkloadKind::GsmEncode, &base);
        // All-default knobs collapse to the plain base id.
        assert_eq!(key.memory.as_str(), "dram-burst");
        assert_eq!((key.variant, key.l2_latency), (IsaVariant::Mom, 20));
        // A mutated knob shows up as a canonical suffix.
        let mut p = base.clone();
        p[0] = 0; // act: candidates [2, 6, 12], default 6 at index 1
        let key = lattice.key(WorkloadKind::GsmEncode, &p);
        assert_eq!(key.memory.as_str(), "dram-burst?act=2");
        // Neighbors mutate exactly one axis each.
        let neighbors = lattice.neighbors(&base);
        let dims = lattice.dims();
        assert_eq!(neighbors.len(), dims.iter().map(|d| d - 1).sum::<usize>());
        for n in &neighbors {
            let diff = n.iter().zip(&base).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn start_params_snap_into_the_lattice() {
        let lattice = Lattice::new(BackendRegistry::get("dram-burst").unwrap(), &[20]);
        // row=4096 is a candidate: the baseline moves there.
        let p = lattice.default_point(&[("row", 4096)]);
        let key = lattice.key(WorkloadKind::GsmEncode, &p);
        assert_eq!(key.memory.as_str(), "dram-burst?row=4096");
        // row=999 is valid for the family but not a search candidate:
        // the lattice start falls back to the default.
        let p = lattice.default_point(&[("row", 999)]);
        let key = lattice.key(WorkloadKind::GsmEncode, &p);
        assert_eq!(key.memory.as_str(), "dram-burst");
    }

    #[test]
    fn resolve_start_params_warns_and_falls_back() {
        assert_eq!(
            resolve_start_params("dram-burst", "row=512,banks=16"),
            vec![("banks", 16), ("row", 512)],
        );
        // Unknown key, malformed pair, unknown family: defaults, no
        // panic (a warning lands on stderr, once per process).
        assert_eq!(resolve_start_params("dram-burst", "bogus=1"), Vec::new());
        assert_eq!(resolve_start_params("dram-burst", "banks"), Vec::new());
        assert_eq!(resolve_start_params("no-such", "banks=4"), Vec::new());
    }

    #[test]
    fn search_seed_separates_workloads_and_families() {
        let s = search_seed(7, WorkloadKind::GsmEncode, "dram-burst");
        assert_eq!(s, search_seed(7, WorkloadKind::GsmEncode, "dram-burst"));
        assert_ne!(s, search_seed(8, WorkloadKind::GsmEncode, "dram-burst"));
        assert_ne!(s, search_seed(7, WorkloadKind::JpegEncode, "dram-burst"));
        assert_ne!(s, search_seed(7, WorkloadKind::GsmEncode, "hbm-wide"));
    }

    #[test]
    fn exhaustive_tune_of_one_family_visits_the_whole_space() {
        let cfg = TuneConfig {
            seed: 3,
            tune_seed: 3,
            small: true,
            budget: 50,
            l2_latencies: vec![20],
            workloads: vec![WorkloadKind::JpegDecode],
            backend: Some("vector-cache".into()),
            start_params: Vec::new(),
        };
        let mut runner = Runner::small(3);
        let mut exec = LocalExec { runner: &mut runner, threads: 2 };
        let report = tune(&cfg, &mut exec).unwrap();
        assert_eq!(report.workloads.len(), 1);
        let w = &report.workloads[0];
        assert_eq!(w.families.len(), 1);
        let f = &w.families[0];
        // width {2,4,8} × L2 {20} × ISA {MMX, MOM} = 6 points.
        assert!(f.exhaustive);
        assert_eq!((f.space, f.evals), (6, 6));
        assert_eq!(w.visited.len(), 6);
        // The baseline was re-requested by the exhaustive enumeration:
        // served from the visited table, never re-simulated.
        assert!(f.dedup_hits >= 1);
        assert_eq!(f.baseline.key.memory.as_str(), "vector-cache");
        // The frontier is non-empty, non-dominated and sorted.
        assert!(!w.frontier.is_empty());
        for (i, a) in w.frontier.iter().enumerate() {
            for (j, b) in w.frontier.iter().enumerate() {
                if i != j {
                    assert!(!dominates(a.objectives(), b.objectives()), "{i} dominates {j}");
                }
            }
            if i > 0 {
                assert!(w.frontier[i - 1].cycles <= a.cycles, "frontier sorted by cycles");
            }
        }
        // Every visited point is bit-identical to a direct simulation
        // of the same key on a fresh runner.
        let mut fresh = Runner::small(3);
        for e in &w.visited {
            let direct =
                fresh.metrics(e.key.kind, e.key.variant, e.key.memory, e.key.l2_latency);
            assert_eq!(direct, e.metrics, "{:?}", e.key);
        }
        // JSON sanity: schema tag, balanced structure, family id.
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mom3d-tune/v1\""));
        assert!(json.contains("\"base\": \"vector-cache\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("wall"), "determinism: no wall-clock in the tune schema");
        // The frontier table mentions the workload and the backend.
        let table = report.frontier_table();
        assert!(table.contains("jpeg decode"));
        assert!(table.contains("vector-cache"));
    }

    #[test]
    fn hill_climb_respects_budget_and_seeds_baseline() {
        let cfg = TuneConfig {
            seed: 3,
            tune_seed: 9,
            small: true,
            budget: 7,
            l2_latencies: vec![20, 40],
            workloads: vec![WorkloadKind::JpegDecode],
            backend: Some("hbm-wide".into()),
            start_params: Vec::new(),
        };
        let mut runner = Runner::small(3);
        let mut exec = LocalExec { runner: &mut runner, threads: 2 };
        let report = tune(&cfg, &mut exec).unwrap();
        let f = &report.workloads[0].families[0];
        assert!(!f.exhaustive, "81 × 2 × 2 points cannot fit a budget of 7");
        assert_eq!(f.space, 81 * 2 * 2);
        assert!(f.evals <= 7, "budget respected, got {}", f.evals);
        assert_eq!(f.baseline.key.memory.as_str(), "hbm-wide");
        assert_eq!(report.workloads[0].visited[0].key, f.baseline.key);
        // Same seeds, fresh state: the identical walk.
        let mut runner2 = Runner::small(3);
        let mut exec2 = LocalExec { runner: &mut runner2, threads: 1 };
        let again = tune(&cfg, &mut exec2).unwrap();
        assert_eq!(report.to_json(), again.to_json());
    }

    #[test]
    fn unknown_backend_restriction_errors() {
        let cfg = TuneConfig {
            backend: Some("no-such-family".into()),
            ..TuneConfig::default()
        };
        let mut runner = Runner::small(1);
        let mut exec = LocalExec { runner: &mut runner, threads: 1 };
        let err = tune(&cfg, &mut exec).unwrap_err();
        assert!(err.contains("no-such-family"));
        assert!(err.contains("dram-burst"), "error lists the known families");
    }
}
