//! `mom3d-serve`: a resident simulation server.
//!
//! Every experiment binary pays process startup, workload-image cache
//! probing, workload hydration and sweep setup per invocation. This
//! module keeps all of that **resident in one long-lived process**:
//! verified workloads (behind [`Arc`]), and the `SimKey → Metrics` memo
//! table survive across requests, so the steady-state cost of a
//! repeated simulation request is one memo lookup plus two frames on a
//! socket.
//!
//! Architecture (all std, no tokio):
//!
//! * an **accept loop** (TCP or unix socket, [`Endpoint`]) spawns one
//!   handler thread per connection;
//! * handlers decode [`Request`]s ([`crate::protocol`]) and resolve
//!   cells against the resident [`MemoTable`]: published cells answer
//!   immediately, identical in-flight cells coalesce onto the running
//!   simulation, and fresh cells are claimed and scheduled onto
//! * a **simulation worker pool** (the same worker-count policy as the
//!   [`crate::sweep`] engine, sharing its [`Runner`] build/verify and
//!   `simulate` paths), which publishes each result to the memo table,
//!   waking every handler streaming that cell;
//! * workloads resolve through a second memo table, so concurrent
//!   requests for different cells of one workload build it exactly
//!   once — hydrated from the on-disk workload-image cache when one is
//!   attached.
//!
//! Failure containment: frame-level damage costs one connection,
//! request-level damage costs one error reply, and a panicking
//! simulation un-claims its cell ([`ClaimGuard`] semantics inside the
//! pool) so waiters get an [`ERR_SIM_FAILED`] reply instead of a hang.
//! A client disconnecting mid-stream kills only its handler thread —
//! scheduled simulations complete and stay memoized for the next
//! requester. The memo table is never corrupted by a misbehaving
//! client; `tests/serve.rs` pins all of this.
//!
//! Robustness under hostile load (PR 9): every handler socket carries
//! read/write deadlines; waits on in-flight simulations are bounded
//! (`RESULT_DEADLINE` → `ERR_TIMEOUT`); the pending-work queue is
//! bounded and requests over the bound are **shed** with a typed
//! [`ERR_OVERLOADED`] reply (clients back off and retry — requests are
//! `SimKey`s and replies memoized, so retries are idempotent); a
//! connection cap refuses accepts beyond it; shutdown is a **graceful
//! drain** that finishes in-flight simulations, refuses new work,
//! flushes a final counter/memo-stat line and force-closes only the
//! stragglers. Frame-damage warnings are once-per-class
//! ([`FrameWarnings`]) so a garbage-spewing client cannot flood
//! stderr, and the unix-socket file is unlinked on every accept-loop
//! exit path — panic included — by a drop-guard. `--chaos-seed` wraps
//! every accepted connection in a seeded [`ChaosStream`]
//! ([`crate::faults`]) for hostile self-testing.

use crate::faults::{ChaosConfig, ChaosStream, FaultPlan, FrameWarnings};
use crate::memo::{ClaimGuard, MemoTable, Schedule};
use crate::protocol::{
    read_frame_deadlined, write_frame, CellReply, Endpoint, FrameError, Hello, Request, Response,
    ServeCounters, Stream, ERR_OVERLOADED, ERR_PROTOCOL, ERR_SIM_FAILED, ERR_TIMEOUT,
    ERR_UNSUPPORTED,
};
use crate::runner::{simulate, Runner, SimKey};
use crate::sweep;
use crate::WorkloadCache;
use mom3d_cpu::Metrics;
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pending-work queue bound when [`ServeConfig::queue_limit`] is 0: a
/// request arriving while this many cells are already queued is shed
/// with [`ERR_OVERLOADED`] instead of growing the backlog without
/// bound.
pub const DEFAULT_QUEUE_LIMIT: usize = 1024;

/// Connection cap when [`ServeConfig::max_connections`] is 0: an accept
/// beyond it is answered with one [`ERR_OVERLOADED`] frame and closed.
pub const DEFAULT_CONNECTION_CAP: usize = 256;

/// Handler-side read deadline: a connection idle past this is
/// reclaimed (the client reconnects on its next request).
const IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Handler-side write deadline: a peer that never drains its socket
/// surfaces as a dead connection instead of wedging the handler.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Ceiling on "waiting for a cell someone is computing": past this the
/// handler answers [`ERR_TIMEOUT`] instead of parking forever. Generous
/// — full-geometry cells take seconds, not minutes.
const RESULT_DEADLINE: Duration = Duration::from_secs(600);

/// Drain grace: how long shutdown waits for in-flight handlers to
/// finish streaming (every result is already published by then) before
/// force-closing the stragglers.
const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Bound on waiting for force-closed handlers to notice and exit.
const DRAIN_FORCE_WAIT: Duration = Duration::from_secs(5);

/// How a [`ServerHandle`] is configured.
#[derive(Debug)]
pub struct ServeConfig {
    /// Workload data seed.
    pub seed: u64,
    /// Serve reduced-geometry workloads (the integration-test geometry).
    pub small: bool,
    /// Simulation worker threads (0 = every available core, the
    /// [`sweep::default_threads`] policy).
    pub threads: usize,
    /// Workload-image cache to hydrate workloads from (and persist
    /// fresh builds into).
    pub cache: Option<WorkloadCache>,
    /// Build and verify every paper workload at boot (via the parallel
    /// [`sweep::prebuild_workloads`] pipeline) instead of lazily on
    /// first request.
    pub prebuild: bool,
    /// Bound on the pending-work queue (0 = [`DEFAULT_QUEUE_LIMIT`]).
    /// `SIM`/`SWEEP` requests arriving at or over the bound are shed
    /// with [`ERR_OVERLOADED`] — clients back off and retry.
    pub queue_limit: usize,
    /// Bound on concurrent connections (0 =
    /// [`DEFAULT_CONNECTION_CAP`]). Accepts beyond it are refused with
    /// one [`ERR_OVERLOADED`] frame.
    pub max_connections: usize,
    /// Server-side fault injection: every accepted connection is
    /// wrapped in a seeded [`ChaosStream`] (lane = connection ordinal),
    /// so the server's own replies are damaged deterministically.
    pub chaos: Option<ChaosConfig>,
    /// Fault hook: panic the accept loop after this many accepted
    /// connections. Exists so tests can pin that the unix-socket file
    /// is unlinked even when the accept loop dies by panic.
    pub accept_panic_after: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 7,
            small: false,
            threads: 0,
            cache: None,
            prebuild: false,
            queue_limit: 0,
            max_connections: 0,
            chaos: None,
            accept_panic_after: None,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    sims_executed: AtomicU64,
    workloads_built: AtomicU64,
    protocol_errors: AtomicU64,
    results_streamed: AtomicU64,
    shed: AtomicU64,
    refused_connections: AtomicU64,
}

/// Shared state of one server: the resident tables, the job queue and
/// the shutdown latch.
#[derive(Debug)]
struct ServeState {
    runner: Runner,
    hello: Hello,
    workloads: MemoTable<(WorkloadKind, IsaVariant), Arc<Workload>>,
    memo: MemoTable<SimKey, Metrics>,
    queue: Mutex<VecDeque<SimKey>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    endpoint: Endpoint,
    queue_limit: usize,
    max_connections: usize,
    chaos: Option<ChaosConfig>,
    /// Live-connection registry: id → a raw clone of the accepted
    /// stream (`None` when cloning failed), so drain can force-close a
    /// handler parked in a blocking read. Its length is the connection
    /// count the cap is enforced against.
    conns: Mutex<HashMap<u64, Option<Stream>>>,
    conns_changed: Condvar,
    warnings: FrameWarnings,
}

impl ServeState {
    fn counters_snapshot(&self) -> ServeCounters {
        let memo = self.memo.stats();
        ServeCounters {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_coalesced: memo.coalesced,
            sims_executed: self.counters.sims_executed.load(Ordering::Relaxed),
            workloads_built: self.counters.workloads_built.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            results_streamed: self.counters.results_streamed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            refused_connections: self.counters.refused_connections.load(Ordering::Relaxed),
        }
    }

    fn enqueue(&self, key: SimKey) {
        let mut queue = self.queue.lock().expect("job queue poisoned");
        queue.push_back(key);
        drop(queue);
        self.queue_ready.notify_one();
    }

    /// Backpressure gate, checked before any `SIM`/`SWEEP` does work:
    /// a draining server or a full pending-work queue answers
    /// [`ERR_OVERLOADED`] (and counts the shed) instead of accepting
    /// unbounded backlog. Requests are `SimKey`s and replies are
    /// memoized, so a shed-then-retried request is idempotent.
    fn shed_reply(&self) -> Option<Response> {
        let message = if self.shutdown.load(Ordering::SeqCst) {
            "server is draining: no new work accepted".to_string()
        } else {
            let queued = self.queue.lock().expect("job queue poisoned").len();
            if queued < self.queue_limit {
                return None;
            }
            format!("pending-work queue is full ({queued} cell(s) queued); back off and retry")
        };
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
        Some(Response::Error { code: ERR_OVERLOADED, message })
    }

    /// Admits a fresh connection into the registry, or refuses it when
    /// the cap is reached.
    fn admit(&self, id: u64, stream: &Stream) -> bool {
        let mut conns = self.conns.lock().expect("connection registry poisoned");
        if conns.len() >= self.max_connections {
            return false;
        }
        conns.insert(id, stream.try_clone().ok());
        true
    }

    /// Removes a finished connection from the registry and wakes the
    /// drain waiter.
    fn release_conn(&self, id: u64) {
        let mut conns = self.conns.lock().expect("connection registry poisoned");
        conns.remove(&id);
        drop(conns);
        self.conns_changed.notify_all();
    }

    /// Waits up to `timeout` for every handler to exit. Returns whether
    /// the registry is empty.
    fn drain_conns(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut conns = self.conns.lock().expect("connection registry poisoned");
        while !conns.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .conns_changed
                .wait_timeout(conns, left)
                .expect("connection registry poisoned");
            conns = guard;
        }
        true
    }

    /// Tears down every registered connection so handlers parked in a
    /// blocking read observe EOF and exit.
    fn force_close_conns(&self) {
        let conns = self.conns.lock().expect("connection registry poisoned");
        for stream in conns.values().flatten() {
            stream.shutdown_all();
        }
    }

    /// Flips the shutdown latch and wakes everything that might be
    /// parked: the worker pool (condvar) and the accept loop (a
    /// throwaway self-connection, since blocking `accept` has no other
    /// wake-up).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_ready.notify_all();
        let _ = self.endpoint.connect();
    }
}

/// Unregisters a connection even when its handler panics.
struct ConnGuard<'a> {
    state: &'a ServeState,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.state.release_conn(self.id);
    }
}

/// Unlinks the unix-socket file when the accept loop exits — by any
/// path, panic included (the guard lives on the accept thread's stack,
/// so unwinding runs it). [`ServerHandle::join`] removes the file again
/// afterwards; both removals are idempotent.
struct SocketGuard(Option<PathBuf>);

impl SocketGuard {
    fn new(endpoint: &Endpoint) -> SocketGuard {
        SocketGuard(match endpoint {
            Endpoint::Unix(path) => Some(path.clone()),
            Endpoint::Tcp(_) => None,
        })
    }
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.0 {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Resolves a workload into residence, building (or image-cache
/// loading) it exactly once across all concurrent requesters.
///
/// Panics propagate to the worker's `catch_unwind`; the [`ClaimGuard`]
/// un-claims the pair so a failed build is retryable.
fn resolve_workload(
    state: &ServeState,
    kind: WorkloadKind,
    variant: IsaVariant,
) -> Arc<Workload> {
    loop {
        match state.workloads.schedule((kind, variant)) {
            Schedule::Ready(wl) => return wl,
            Schedule::InFlight => {
                if let Ok(wl) = state.workloads.wait(&(kind, variant)) {
                    return wl;
                }
                // The in-flight build was abandoned; retry (and possibly
                // claim it ourselves this time).
            }
            Schedule::Claimed => {
                let guard = ClaimGuard::new(&state.workloads, (kind, variant));
                let (wl, _timing, _cached) = state.runner.load_or_build(kind, variant);
                let wl = Arc::new(wl);
                state.counters.workloads_built.fetch_add(1, Ordering::Relaxed);
                guard.publish(Arc::clone(&wl));
                return wl;
            }
        }
    }
}

/// One worker-pool iteration: simulate a claimed cell and publish (or,
/// on panic, un-claim) it.
fn run_cell(state: &ServeState, key: SimKey) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let wl = resolve_workload(state, key.kind, key.variant);
        simulate(&key, &wl)
    }));
    match result {
        Ok(metrics) => {
            state.counters.sims_executed.fetch_add(1, Ordering::Relaxed);
            state.memo.publish(key, metrics);
        }
        Err(_) => {
            // The panic message already went to stderr via the default
            // hook; un-claim so waiters error out and a retry is
            // possible.
            state.memo.fail(&key);
        }
    }
}

fn worker_loop(state: &ServeState) {
    loop {
        let key = {
            let mut queue = state.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(key) = queue.pop_front() {
                    break key;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return; // drained + shutting down
                }
                queue = state.queue_ready.wait(queue).expect("job queue poisoned");
            }
        };
        run_cell(state, key);
    }
}

fn respond(stream: &mut Stream, resp: &Response) -> io::Result<()> {
    let (opcode, payload) = resp.encode();
    write_frame(stream, opcode, &payload)
}

/// Waits (deadline-bounded) for `key` to publish, mapping abandonment
/// to [`ERR_SIM_FAILED`] and deadline expiry to [`ERR_TIMEOUT`]. The
/// error reply is boxed to keep the happy path's `Result` small.
fn wait_bounded(state: &ServeState, key: SimKey) -> Result<Metrics, Box<Response>> {
    let mut pending = vec![key];
    match state.memo.wait_any_for(&mut pending, RESULT_DEADLINE) {
        Some(Ok((_, metrics))) => Ok(metrics),
        Some(Err(_)) => Err(Box::new(Response::Error {
            code: ERR_SIM_FAILED,
            message: format!(
                "simulation of {} {} on {} failed server-side",
                key.kind, key.variant, key.memory
            ),
        })),
        None => Err(Box::new(Response::Error {
            code: ERR_TIMEOUT,
            message: format!(
                "simulation of {} {} on {} did not complete within {}s",
                key.kind,
                key.variant,
                key.memory,
                RESULT_DEADLINE.as_secs()
            ),
        })),
    }
}

/// Obtains one cell's metrics: memo hit, coalesce onto an in-flight
/// simulation, or claim + schedule onto the worker pool and wait
/// (bounded by [`RESULT_DEADLINE`]).
fn obtain(state: &ServeState, key: SimKey) -> Result<(Metrics, bool), Box<Response>> {
    match state.memo.schedule(key) {
        Schedule::Ready(m) => Ok((m, true)),
        Schedule::InFlight => wait_bounded(state, key).map(|m| (m, false)),
        Schedule::Claimed => {
            state.enqueue(key);
            wait_bounded(state, key).map(|m| (m, false))
        }
    }
}

/// Serves one `SIM` request. Returns false when the connection died.
fn serve_sim(state: &ServeState, stream: &mut Stream, key: SimKey) -> bool {
    let resp = match obtain(state, key) {
        Ok((metrics, memo_hit)) => {
            state.counters.results_streamed.fetch_add(1, Ordering::Relaxed);
            Response::Result(CellReply { key, memo_hit, metrics })
        }
        Err(error) => *error,
    };
    respond(stream, &resp).is_ok()
}

/// Serves one `SWEEP` request: dedupes the grid, answers memo hits
/// immediately, schedules the misses, then streams the remaining cells
/// **in completion order** as the worker pool publishes them.
fn serve_sweep(state: &ServeState, stream: &mut Stream, cells: Vec<SimKey>) -> bool {
    let mut seen = HashSet::new();
    let unique: Vec<SimKey> = cells.into_iter().filter(|c| seen.insert(*c)).collect();

    let mut results: u32 = 0;
    let mut pending: Vec<SimKey> = Vec::new();
    for key in unique {
        match state.memo.schedule(key) {
            Schedule::Ready(metrics) => {
                state.counters.results_streamed.fetch_add(1, Ordering::Relaxed);
                let reply = Response::Result(CellReply { key, memo_hit: true, metrics });
                if respond(stream, &reply).is_err() {
                    return false; // scheduled cells still complete + memoize
                }
                results += 1;
            }
            Schedule::InFlight => pending.push(key),
            Schedule::Claimed => {
                state.enqueue(key);
                pending.push(key);
            }
        }
    }
    while !pending.is_empty() {
        let step = match state.memo.wait_any_for(&mut pending, RESULT_DEADLINE) {
            Some(step) => step,
            None => {
                // Nothing published for the whole deadline. Reply typed
                // and close: the undelivered cells stay scheduled and
                // memoize when they finish, and a retrying client
                // re-requests exactly the cells it never received.
                let reply = Response::Error {
                    code: ERR_TIMEOUT,
                    message: format!(
                        "no sweep result within {}s; {} cell(s) undelivered",
                        RESULT_DEADLINE.as_secs(),
                        pending.len()
                    ),
                };
                let _ = respond(stream, &reply);
                return false;
            }
        };
        let reply = match step {
            Ok((key, metrics)) => {
                state.counters.results_streamed.fetch_add(1, Ordering::Relaxed);
                results += 1;
                Response::Result(CellReply { key, memo_hit: false, metrics })
            }
            Err((key, _)) => Response::Error {
                code: ERR_SIM_FAILED,
                message: format!(
                    "simulation of {} {} on {} failed server-side",
                    key.kind, key.variant, key.memory
                ),
            },
        };
        if respond(stream, &reply).is_err() {
            return false;
        }
    }
    respond(stream, &Response::Done { results }).is_ok()
}

fn handle_connection(state: &Arc<ServeState>, conn_id: u64, mut stream: Stream) {
    let _guard = ConnGuard { state, id: conn_id };
    state.counters.connections.fetch_add(1, Ordering::Relaxed);
    loop {
        // Patient between requests (IDLE_TIMEOUT), impatient mid-frame:
        // a corrupted length prefix cannot park this handler for the
        // full idle window.
        let frame = match read_frame_deadlined(&mut stream, Some(IDLE_TIMEOUT)) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return, // clean disconnect
            Err(err @ FrameError::TimedOut) => {
                // Idle past the read deadline: reclaim the handler. Not
                // a protocol error — the client simply went quiet.
                state.warnings.note("mom3d-serve handler", &err);
                return;
            }
            Err(err @ FrameError::Io(_)) => {
                // Died mid-frame (truncated frame / reset); nothing to
                // reply to.
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                state.warnings.note("mom3d-serve handler", &err);
                return;
            }
            Err(err) => {
                // Framing is unrecoverable: report once, close. The
                // stderr warning is once-per-class so a garbage-spewing
                // client cannot flood the log.
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                state.warnings.note("mom3d-serve handler", &err);
                let _ = respond(
                    &mut stream,
                    &Response::Error { code: ERR_PROTOCOL, message: err.to_string() },
                );
                return;
            }
        };
        let req = match Request::decode(&frame) {
            Ok(req) => req,
            Err(e) => {
                // Well-framed but bad payload: the connection stays
                // usable.
                let reply = Response::Error { code: e.code, message: e.message };
                if respond(&mut stream, &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        state.counters.requests.fetch_add(1, Ordering::Relaxed);
        let alive = match req {
            Request::Ping => respond(&mut stream, &Response::Pong(state.hello)).is_ok(),
            Request::Stats => {
                respond(&mut stream, &Response::Stats(state.counters_snapshot())).is_ok()
            }
            Request::Shutdown => {
                let _ = respond(&mut stream, &Response::Bye);
                state.begin_shutdown();
                false
            }
            Request::Sim(key) => match state.shed_reply() {
                Some(reply) => respond(&mut stream, &reply).is_ok(),
                None => serve_sim(state, &mut stream, key),
            },
            Request::Sweep(cells) => match state.shed_reply() {
                Some(reply) => respond(&mut stream, &reply).is_ok(),
                None => serve_sweep(state, &mut stream, cells),
            },
            // Shard traffic belongs to the mom3d-shard coordinator; a
            // worker pointed at the wrong endpoint gets a typed error
            // (and a usable connection), not a hang or a close.
            Request::ShardClaim { .. } | Request::CellDone { .. } | Request::ShardFin { .. } => {
                let reply = Response::Error {
                    code: ERR_UNSUPPORTED,
                    message: "shard opcodes are served by the mom3d-shard coordinator, \
                              not mom3d-serve"
                        .into(),
                };
                respond(&mut stream, &reply).is_ok()
            }
        };
        if !alive {
            return;
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Stream::Unix(stream))
            }
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::wait`] (block until a client sends `SHUTDOWN`)
/// or [`ServerHandle::shutdown`] (stop it now).
#[derive(Debug)]
pub struct ServerHandle {
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The endpoint the server actually listens on (for `tcp:…:0`, the
    /// kernel-assigned port is resolved in).
    pub fn endpoint(&self) -> &Endpoint {
        &self.state.endpoint
    }

    /// Cumulative counter snapshot (same numbers a `STATS` request
    /// reports).
    pub fn counters(&self) -> ServeCounters {
        self.state.counters_snapshot()
    }

    fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Graceful drain: with the worker pool joined, every scheduled
        // cell is published — give in-flight handlers a moment to
        // finish streaming, then force-close whatever is still parked
        // in a blocking read and wait for those handlers to exit.
        if !self.state.drain_conns(DRAIN_GRACE) {
            self.state.force_close_conns();
            let _ = self.state.drain_conns(DRAIN_FORCE_WAIT);
        }
        if let Endpoint::Unix(path) = &self.state.endpoint {
            let _ = std::fs::remove_file(path);
        }
        // Flush the final counter/memo-stat snapshot so a drained
        // server leaves a trace of what it did.
        let c = self.state.counters_snapshot();
        eprintln!(
            "mom3d-serve drained: {} connection(s) ({} refused), {} request(s), \
             {} sim(s) executed, memo {} hit(s) / {} miss(es) / {} coalesced, \
             {} result(s) streamed, {} shed, {} protocol error(s)",
            c.connections,
            c.refused_connections,
            c.requests,
            c.sims_executed,
            c.memo_hits,
            c.memo_misses,
            c.memo_coalesced,
            c.results_streamed,
            c.shed,
            c.protocol_errors
        );
    }

    /// Blocks until the server shuts down (a client sent `SHUTDOWN`),
    /// then joins the worker pool.
    pub fn wait(self) {
        self.join();
    }

    /// Stops the server: no new connections, the worker pool drains its
    /// queue (publishing every scheduled cell) and exits.
    pub fn shutdown(self) {
        self.state.begin_shutdown();
        self.join();
    }
}

/// Binds `endpoint` and starts serving on background threads.
///
/// A unix-socket endpoint takes ownership of its path: a stale file
/// from a previous run is removed before binding, and the file is
/// removed again on shutdown.
///
/// # Errors
///
/// Propagates the bind error (address in use, bad address, permission).
pub fn serve(endpoint: Endpoint, config: ServeConfig) -> io::Result<ServerHandle> {
    let threads = if config.threads == 0 { sweep::default_threads() } else { config.threads };
    let mut runner = if config.small { Runner::small(config.seed) } else { Runner::new(config.seed) };
    runner = runner.with_cache(config.cache);

    let (listener, endpoint) = match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let actual = listener.local_addr()?.to_string();
            (Listener::Tcp(listener), Endpoint::Tcp(actual))
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            (Listener::Unix(UnixListener::bind(&path)?), Endpoint::Unix(path))
        }
    };

    let workloads = MemoTable::new();
    let built = if config.prebuild {
        let pairs: Vec<(WorkloadKind, IsaVariant)> = WorkloadKind::ALL
            .into_iter()
            .flat_map(|k| IsaVariant::ALL.map(|v| (k, v)))
            .collect();
        sweep::prebuild_workloads(&mut runner, &pairs, threads);
        for &(kind, variant) in &pairs {
            if let Schedule::Claimed = workloads.schedule((kind, variant)) {
                workloads.publish((kind, variant), runner.workload_arc(kind, variant));
            }
        }
        pairs.len() as u64
    } else {
        0
    };

    let hello = Hello {
        seed: config.seed,
        small: config.small,
        threads: threads.min(u32::MAX as usize) as u32,
    };
    let state = Arc::new(ServeState {
        runner,
        hello,
        workloads,
        memo: MemoTable::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        counters: Counters::default(),
        endpoint,
        queue_limit: if config.queue_limit == 0 { DEFAULT_QUEUE_LIMIT } else { config.queue_limit },
        max_connections: if config.max_connections == 0 {
            DEFAULT_CONNECTION_CAP
        } else {
            config.max_connections
        },
        chaos: config.chaos,
        conns: Mutex::new(HashMap::new()),
        conns_changed: Condvar::new(),
        warnings: FrameWarnings::new(),
    });
    state.counters.workloads_built.store(built, Ordering::Relaxed);
    let accept_panic_after = config.accept_panic_after;

    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("mom3d-sim-{i}"))
                .spawn(move || worker_loop(&state))
                .expect("spawning a simulation worker")
        })
        .collect();

    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("mom3d-accept".into())
            .spawn(move || {
                // Owns the unix-socket unlink on *every* exit path of
                // this thread — panic included.
                let _socket_guard = SocketGuard::new(&state.endpoint);
                let mut conn_seq: u64 = 0;
                loop {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok(mut stream) => {
                            if state.shutdown.load(Ordering::SeqCst) {
                                break; // the shutdown self-connection
                            }
                            let conn_id = conn_seq;
                            conn_seq += 1;
                            if let Some(after) = accept_panic_after {
                                if conn_seq >= after {
                                    panic!("injected accept-loop panic (accept_panic_after)");
                                }
                            }
                            if !state.admit(conn_id, &stream) {
                                state.counters.refused_connections.fetch_add(1, Ordering::Relaxed);
                                let reply = Response::Error {
                                    code: ERR_OVERLOADED,
                                    message: format!(
                                        "connection cap ({}) reached; back off and retry",
                                        state.max_connections
                                    ),
                                };
                                let _ = respond(&mut stream, &reply);
                                stream.shutdown_all();
                                continue;
                            }
                            let stream = match &state.chaos {
                                Some(chaos) => Stream::Chaos(Box::new(ChaosStream::wrap(
                                    stream,
                                    FaultPlan::new(chaos, conn_id),
                                ))),
                                None => stream,
                            };
                            stream.set_read_timeout(Some(IDLE_TIMEOUT));
                            stream.set_write_timeout(Some(WRITE_TIMEOUT));
                            let handler_state = Arc::clone(&state);
                            let spawned = std::thread::Builder::new()
                                .name("mom3d-conn".into())
                                .spawn(move || handle_connection(&handler_state, conn_id, stream));
                            if spawned.is_err() {
                                // The handler never ran; its ConnGuard
                                // never will either.
                                state.release_conn(conn_id);
                            }
                        }
                        Err(_) if state.shutdown.load(Ordering::SeqCst) => break,
                        Err(e) => {
                            eprintln!("warning: accept failed: {e}");
                        }
                    }
                }
            })
            .expect("spawning the accept loop")
    };

    Ok(ServerHandle { state, accept: Some(accept), workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, Client, RetryClient, RetryPolicy};
    use mom3d_cpu::MemorySystemKind;

    fn test_config() -> ServeConfig {
        ServeConfig { seed: 5, small: true, threads: 2, ..Default::default() }
    }

    fn unix_endpoint(name: &str) -> Endpoint {
        Endpoint::Unix(
            std::env::temp_dir().join(format!("mom3d-serve-unit-{}-{name}.sock", std::process::id())),
        )
    }

    #[test]
    fn ping_reports_identity_and_shutdown_stops_the_server() {
        let handle = serve(unix_endpoint("ping"), test_config()).expect("server binds");
        let endpoint = handle.endpoint().clone();
        let mut client = Client::connect(&endpoint).expect("client connects");
        let pong = client.round_trip(&Request::Ping).unwrap();
        assert_eq!(pong, Response::Pong(Hello { seed: 5, small: true, threads: 2 }));
        assert_eq!(client.round_trip(&Request::Shutdown).unwrap(), Response::Bye);
        handle.wait();
        // The socket file is gone, and connecting fails.
        assert!(endpoint.connect().is_err());
    }

    #[test]
    fn sim_matches_in_process_execution_and_memoizes() {
        let handle = serve(unix_endpoint("sim"), test_config()).expect("server binds");
        let key = SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 20,
        };
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let Response::Result(first) = client.round_trip(&Request::Sim(key)).unwrap() else {
            panic!("expected a result");
        };
        assert_eq!(first.key, key);
        assert!(!first.memo_hit, "first request must simulate");

        let Response::Result(second) = client.round_trip(&Request::Sim(key)).unwrap() else {
            panic!("expected a result");
        };
        assert!(second.memo_hit, "second request must be a memo hit");
        assert_eq!(first.metrics, second.metrics);

        // Bit-identical to direct in-process execution.
        let mut r = Runner::small(5);
        let direct = r.metrics(key.kind, key.variant, key.memory, key.l2_latency);
        assert_eq!(first.metrics, direct);

        let counters = handle.counters();
        assert_eq!(counters.sims_executed, 1);
        assert_eq!(counters.memo_hits, 1);
        assert_eq!(counters.memo_misses, 1);
        handle.shutdown();
    }

    #[test]
    fn tcp_endpoint_resolves_port_zero() {
        let handle =
            serve(Endpoint::Tcp("127.0.0.1:0".into()), test_config()).expect("server binds");
        let Endpoint::Tcp(addr) = handle.endpoint().clone() else { panic!("expected tcp") };
        assert!(!addr.ends_with(":0"), "port must be resolved, got {addr}");
        let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
        assert!(matches!(client.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));
        handle.shutdown();
    }

    #[test]
    fn overload_sheds_typed_and_retrying_clients_converge() {
        let config =
            ServeConfig { seed: 5, small: true, threads: 1, queue_limit: 1, ..Default::default() };
        let handle = serve(unix_endpoint("shed"), config).expect("server binds");
        let endpoint = handle.endpoint().clone();

        // A full-matrix sweep keeps the single worker busy for a while
        // (every workload must be built first), holding the pending
        // queue over its 1-cell bound.
        let cells: Vec<SimKey> = WorkloadKind::ALL
            .into_iter()
            .flat_map(|kind| {
                IsaVariant::ALL.map(|variant| SimKey {
                    kind,
                    variant,
                    // MOM+3D code needs a backend with a 3D register
                    // file; the plain vector cache panics on it.
                    memory: match variant {
                        IsaVariant::Mom3d => MemorySystemKind::VectorCache3d.into(),
                        _ => MemorySystemKind::VectorCache.into(),
                    },
                    l2_latency: 20,
                })
            })
            .collect();
        let sweeper = {
            let endpoint = endpoint.clone();
            let cells = cells.clone();
            std::thread::spawn(move || {
                let mut client = RetryClient::new(endpoint, RetryPolicy::default());
                client.sweep(&cells)
            })
        };

        // Wait until the backlog demonstrably exists, then a raw
        // (non-retrying) client must be shed with the typed error.
        let deadline = Instant::now() + Duration::from_secs(60);
        while handle.state.queue.lock().unwrap().len() < 5 {
            assert!(Instant::now() < deadline, "the sweep backlog never built up");
            std::thread::sleep(Duration::from_millis(1));
        }
        let probe = SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 40,
        };
        let mut raw = Client::connect(&endpoint).unwrap();
        let resp = raw.round_trip(&Request::Sim(probe)).unwrap();
        let Response::Error { code, message } = resp else {
            panic!("expected a shed reply, got {resp:?}")
        };
        assert_eq!(code, ERR_OVERLOADED);
        assert!(message.contains("queue is full"), "unexpected shed message: {message}");

        // A retrying client converges to the bit-identical answer
        // anyway once the backlog drains.
        let policy = RetryPolicy {
            attempts: 500,
            max_delay: Duration::from_millis(50),
            ..Default::default()
        };
        let mut retrying = RetryClient::new(endpoint, policy);
        let reply = retrying.sim(&probe).expect("retry converges after shedding");
        let mut r = Runner::small(5);
        assert_eq!(
            reply.metrics,
            r.metrics(probe.kind, probe.variant, probe.memory, probe.l2_latency)
        );

        // The big sweep itself was never shed (it entered before the
        // backlog) and is bit-identical cell for cell.
        let swept = sweeper.join().unwrap().expect("sweep completes");
        assert_eq!(swept.len(), cells.len());
        for reply in &swept {
            let direct =
                r.metrics(reply.key.kind, reply.key.variant, reply.key.memory, reply.key.l2_latency);
            assert_eq!(reply.metrics, direct);
        }
        assert!(handle.counters().shed >= 1, "the raw probe's shed must be counted");
        handle.shutdown();
    }

    #[test]
    fn a_poisoned_cell_surfaces_an_error_instead_of_spinning() {
        let handle = serve(unix_endpoint("poison"), test_config()).expect("server binds");
        // MOM+3D code on the plain vector cache (no 3D register file)
        // panics in the simulator every single time. The retry layer
        // must burn its bounded budget and surface an error — an
        // unbounded re-request loop here once pinned a worker at 100%
        // CPU while panic output grew the process without limit.
        let poisoned = SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom3d,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 20,
        };
        let policy = RetryPolicy {
            attempts: 3,
            max_delay: Duration::from_millis(5),
            ..Default::default()
        };
        let mut client = RetryClient::new(handle.endpoint().clone(), policy);
        let err = client.sweep(&[poisoned]).expect_err("a poisoned sweep must fail, not spin");
        assert!(err.to_string().contains("failed"), "unexpected sweep error: {err}");
        let err = client.sim(&poisoned).expect_err("a poisoned SIM must fail, not spin");
        assert!(err.to_string().contains("failed"), "unexpected sim error: {err}");
        handle.shutdown();
    }

    #[test]
    fn the_connection_cap_refuses_with_a_typed_error() {
        let config = ServeConfig {
            seed: 5,
            small: true,
            threads: 1,
            max_connections: 1,
            ..Default::default()
        };
        let handle = serve(unix_endpoint("cap"), config).expect("server binds");
        let endpoint = handle.endpoint().clone();
        let mut first = Client::connect(&endpoint).unwrap();
        assert!(matches!(first.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));

        // Over the cap: the server pushes one typed refusal frame and
        // closes without waiting for a request.
        let mut refused = endpoint.connect().unwrap();
        let frame = read_frame(&mut refused).expect("the refusal frame arrives");
        let resp = Response::decode(&frame).expect("the refusal frame decodes");
        let Response::Error { code, message } = resp else {
            panic!("expected a refusal, got {resp:?}")
        };
        assert_eq!(code, ERR_OVERLOADED);
        assert!(message.contains("connection cap"), "unexpected refusal: {message}");
        assert_eq!(handle.counters().refused_connections, 1);
        drop(refused);

        // Freeing the admitted slot re-opens the door.
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut third = Client::connect(&endpoint).unwrap();
            if matches!(third.round_trip(&Request::Ping), Ok(Response::Pong(_))) {
                break;
            }
            assert!(Instant::now() < deadline, "the connection slot was never freed");
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.shutdown();
    }

    #[test]
    fn drain_refuses_new_work_but_still_answers_stats() {
        let handle = serve(unix_endpoint("drain"), test_config()).expect("server binds");
        let key = SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 20,
        };
        let mut client = Client::connect(handle.endpoint()).unwrap();
        assert!(matches!(
            client.round_trip(&Request::Sim(key)).unwrap(),
            Response::Result(_)
        ));

        handle.state.begin_shutdown();
        // New work is refused with the typed drain error — even for a
        // memoized key: drain means *no* new work.
        let resp = client.round_trip(&Request::Sim(key)).unwrap();
        let Response::Error { code, message } = resp else {
            panic!("expected a drain refusal, got {resp:?}")
        };
        assert_eq!(code, ERR_OVERLOADED);
        assert!(message.contains("draining"), "unexpected drain message: {message}");
        // ...but introspection still works mid-drain.
        let Response::Stats(stats) = client.round_trip(&Request::Stats).unwrap() else {
            panic!("expected stats mid-drain")
        };
        assert_eq!(stats.shed, 1);
        drop(client);
        handle.wait();
    }

    #[test]
    fn a_panicking_accept_loop_still_unlinks_the_socket() {
        let endpoint = unix_endpoint("panic-guard");
        let Endpoint::Unix(path) = endpoint.clone() else { unreachable!() };
        let config = ServeConfig {
            seed: 5,
            small: true,
            threads: 1,
            accept_panic_after: Some(1),
            ..Default::default()
        };
        let handle = serve(endpoint.clone(), config).expect("server binds");
        assert!(path.exists(), "the socket file must exist after bind");

        // The first accept fires the injected panic; the drop-guard
        // must unlink the socket file on the unwind path.
        let _ = endpoint.connect();
        let deadline = Instant::now() + Duration::from_secs(10);
        while path.exists() {
            assert!(
                Instant::now() < deadline,
                "the socket file survived the accept-loop panic"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.shutdown(); // reap the worker pool; accept is already dead
    }
}
