//! `mom3d-serve`: a resident simulation server.
//!
//! Every experiment binary pays process startup, workload-image cache
//! probing, workload hydration and sweep setup per invocation. This
//! module keeps all of that **resident in one long-lived process**:
//! verified workloads (behind [`Arc`]), and the `SimKey → Metrics` memo
//! table survive across requests, so the steady-state cost of a
//! repeated simulation request is one memo lookup plus two frames on a
//! socket.
//!
//! Architecture (all std, no tokio):
//!
//! * an **accept loop** (TCP or unix socket, [`Endpoint`]) spawns one
//!   handler thread per connection;
//! * handlers decode [`Request`]s ([`crate::protocol`]) and resolve
//!   cells against the resident [`MemoTable`]: published cells answer
//!   immediately, identical in-flight cells coalesce onto the running
//!   simulation, and fresh cells are claimed and scheduled onto
//! * a **simulation worker pool** (the same worker-count policy as the
//!   [`crate::sweep`] engine, sharing its [`Runner`] build/verify and
//!   `simulate` paths), which publishes each result to the memo table,
//!   waking every handler streaming that cell;
//! * workloads resolve through a second memo table, so concurrent
//!   requests for different cells of one workload build it exactly
//!   once — hydrated from the on-disk workload-image cache when one is
//!   attached.
//!
//! Failure containment: frame-level damage costs one connection,
//! request-level damage costs one error reply, and a panicking
//! simulation un-claims its cell ([`ClaimGuard`] semantics inside the
//! pool) so waiters get an [`ERR_SIM_FAILED`] reply instead of a hang.
//! A client disconnecting mid-stream kills only its handler thread —
//! scheduled simulations complete and stay memoized for the next
//! requester. The memo table is never corrupted by a misbehaving
//! client; `tests/serve.rs` pins all of this.

use crate::memo::{ClaimGuard, MemoTable, Schedule};
use crate::protocol::{
    read_frame, write_frame, CellReply, Endpoint, FrameError, Hello, Request, Response,
    ServeCounters, Stream, ERR_PROTOCOL, ERR_SIM_FAILED, ERR_UNSUPPORTED,
};
use crate::runner::{simulate, Runner, SimKey};
use crate::sweep;
use crate::WorkloadCache;
use mom3d_cpu::Metrics;
use mom3d_kernels::{IsaVariant, Workload, WorkloadKind};
use std::collections::{HashSet, VecDeque};
use std::io;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a [`ServerHandle`] is configured.
#[derive(Debug)]
pub struct ServeConfig {
    /// Workload data seed.
    pub seed: u64,
    /// Serve reduced-geometry workloads (the integration-test geometry).
    pub small: bool,
    /// Simulation worker threads (0 = every available core, the
    /// [`sweep::default_threads`] policy).
    pub threads: usize,
    /// Workload-image cache to hydrate workloads from (and persist
    /// fresh builds into).
    pub cache: Option<WorkloadCache>,
    /// Build and verify every paper workload at boot (via the parallel
    /// [`sweep::prebuild_workloads`] pipeline) instead of lazily on
    /// first request.
    pub prebuild: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { seed: 7, small: false, threads: 0, cache: None, prebuild: false }
    }
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    sims_executed: AtomicU64,
    workloads_built: AtomicU64,
    protocol_errors: AtomicU64,
    results_streamed: AtomicU64,
}

/// Shared state of one server: the resident tables, the job queue and
/// the shutdown latch.
#[derive(Debug)]
struct ServeState {
    runner: Runner,
    hello: Hello,
    workloads: MemoTable<(WorkloadKind, IsaVariant), Arc<Workload>>,
    memo: MemoTable<SimKey, Metrics>,
    queue: Mutex<VecDeque<SimKey>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    endpoint: Endpoint,
}

impl ServeState {
    fn counters_snapshot(&self) -> ServeCounters {
        let memo = self.memo.stats();
        ServeCounters {
            connections: self.counters.connections.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_coalesced: memo.coalesced,
            sims_executed: self.counters.sims_executed.load(Ordering::Relaxed),
            workloads_built: self.counters.workloads_built.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            results_streamed: self.counters.results_streamed.load(Ordering::Relaxed),
        }
    }

    fn enqueue(&self, key: SimKey) {
        let mut queue = self.queue.lock().expect("job queue poisoned");
        queue.push_back(key);
        drop(queue);
        self.queue_ready.notify_one();
    }

    /// Flips the shutdown latch and wakes everything that might be
    /// parked: the worker pool (condvar) and the accept loop (a
    /// throwaway self-connection, since blocking `accept` has no other
    /// wake-up).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_ready.notify_all();
        let _ = self.endpoint.connect();
    }
}

/// Resolves a workload into residence, building (or image-cache
/// loading) it exactly once across all concurrent requesters.
///
/// Panics propagate to the worker's `catch_unwind`; the [`ClaimGuard`]
/// un-claims the pair so a failed build is retryable.
fn resolve_workload(
    state: &ServeState,
    kind: WorkloadKind,
    variant: IsaVariant,
) -> Arc<Workload> {
    loop {
        match state.workloads.schedule((kind, variant)) {
            Schedule::Ready(wl) => return wl,
            Schedule::InFlight => {
                if let Ok(wl) = state.workloads.wait(&(kind, variant)) {
                    return wl;
                }
                // The in-flight build was abandoned; retry (and possibly
                // claim it ourselves this time).
            }
            Schedule::Claimed => {
                let guard = ClaimGuard::new(&state.workloads, (kind, variant));
                let (wl, _timing, _cached) = state.runner.load_or_build(kind, variant);
                let wl = Arc::new(wl);
                state.counters.workloads_built.fetch_add(1, Ordering::Relaxed);
                guard.publish(Arc::clone(&wl));
                return wl;
            }
        }
    }
}

/// One worker-pool iteration: simulate a claimed cell and publish (or,
/// on panic, un-claim) it.
fn run_cell(state: &ServeState, key: SimKey) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let wl = resolve_workload(state, key.kind, key.variant);
        simulate(&key, &wl)
    }));
    match result {
        Ok(metrics) => {
            state.counters.sims_executed.fetch_add(1, Ordering::Relaxed);
            state.memo.publish(key, metrics);
        }
        Err(_) => {
            // The panic message already went to stderr via the default
            // hook; un-claim so waiters error out and a retry is
            // possible.
            state.memo.fail(&key);
        }
    }
}

fn worker_loop(state: &ServeState) {
    loop {
        let key = {
            let mut queue = state.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(key) = queue.pop_front() {
                    break key;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return; // drained + shutting down
                }
                queue = state.queue_ready.wait(queue).expect("job queue poisoned");
            }
        };
        run_cell(state, key);
    }
}

fn respond(stream: &mut Stream, resp: &Response) -> io::Result<()> {
    let (opcode, payload) = resp.encode();
    write_frame(stream, opcode, &payload)
}

/// Obtains one cell's metrics: memo hit, coalesce onto an in-flight
/// simulation, or claim + schedule onto the worker pool and wait.
fn obtain(state: &ServeState, key: SimKey) -> Result<(Metrics, bool), String> {
    let fail_msg =
        || format!("simulation of {} {} on {} failed server-side", key.kind, key.variant, key.memory);
    match state.memo.schedule(key) {
        Schedule::Ready(m) => Ok((m, true)),
        Schedule::InFlight => state.memo.wait(&key).map(|m| (m, false)).map_err(|_| fail_msg()),
        Schedule::Claimed => {
            state.enqueue(key);
            state.memo.wait(&key).map(|m| (m, false)).map_err(|_| fail_msg())
        }
    }
}

/// Serves one `SIM` request. Returns false when the connection died.
fn serve_sim(state: &ServeState, stream: &mut Stream, key: SimKey) -> bool {
    let resp = match obtain(state, key) {
        Ok((metrics, memo_hit)) => {
            state.counters.results_streamed.fetch_add(1, Ordering::Relaxed);
            Response::Result(CellReply { key, memo_hit, metrics })
        }
        Err(message) => Response::Error { code: ERR_SIM_FAILED, message },
    };
    respond(stream, &resp).is_ok()
}

/// Serves one `SWEEP` request: dedupes the grid, answers memo hits
/// immediately, schedules the misses, then streams the remaining cells
/// **in completion order** as the worker pool publishes them.
fn serve_sweep(state: &ServeState, stream: &mut Stream, cells: Vec<SimKey>) -> bool {
    let mut seen = HashSet::new();
    let unique: Vec<SimKey> = cells.into_iter().filter(|c| seen.insert(*c)).collect();

    let mut results: u32 = 0;
    let mut pending: Vec<SimKey> = Vec::new();
    for key in unique {
        match state.memo.schedule(key) {
            Schedule::Ready(metrics) => {
                state.counters.results_streamed.fetch_add(1, Ordering::Relaxed);
                let reply = Response::Result(CellReply { key, memo_hit: true, metrics });
                if respond(stream, &reply).is_err() {
                    return false; // scheduled cells still complete + memoize
                }
                results += 1;
            }
            Schedule::InFlight => pending.push(key),
            Schedule::Claimed => {
                state.enqueue(key);
                pending.push(key);
            }
        }
    }
    while !pending.is_empty() {
        let reply = match state.memo.wait_any(&mut pending) {
            Ok((key, metrics)) => {
                state.counters.results_streamed.fetch_add(1, Ordering::Relaxed);
                results += 1;
                Response::Result(CellReply { key, memo_hit: false, metrics })
            }
            Err((key, _)) => Response::Error {
                code: ERR_SIM_FAILED,
                message: format!(
                    "simulation of {} {} on {} failed server-side",
                    key.kind, key.variant, key.memory
                ),
            },
        };
        if respond(stream, &reply).is_err() {
            return false;
        }
    }
    respond(stream, &Response::Done { results }).is_ok()
}

fn handle_connection(state: &Arc<ServeState>, mut stream: Stream) {
    state.counters.connections.fetch_add(1, Ordering::Relaxed);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return, // clean disconnect
            Err(FrameError::Io(_)) => {
                // Died mid-frame (truncated frame / reset); nothing to
                // reply to.
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(err) => {
                // Framing is unrecoverable: report once, close.
                state.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond(
                    &mut stream,
                    &Response::Error { code: ERR_PROTOCOL, message: err.to_string() },
                );
                return;
            }
        };
        let req = match Request::decode(&frame) {
            Ok(req) => req,
            Err(e) => {
                // Well-framed but bad payload: the connection stays
                // usable.
                let reply = Response::Error { code: e.code, message: e.message };
                if respond(&mut stream, &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        state.counters.requests.fetch_add(1, Ordering::Relaxed);
        let alive = match req {
            Request::Ping => respond(&mut stream, &Response::Pong(state.hello)).is_ok(),
            Request::Stats => {
                respond(&mut stream, &Response::Stats(state.counters_snapshot())).is_ok()
            }
            Request::Shutdown => {
                let _ = respond(&mut stream, &Response::Bye);
                state.begin_shutdown();
                false
            }
            Request::Sim(key) => serve_sim(state, &mut stream, key),
            Request::Sweep(cells) => serve_sweep(state, &mut stream, cells),
            // Shard traffic belongs to the mom3d-shard coordinator; a
            // worker pointed at the wrong endpoint gets a typed error
            // (and a usable connection), not a hang or a close.
            Request::ShardClaim { .. } | Request::CellDone { .. } | Request::ShardFin { .. } => {
                let reply = Response::Error {
                    code: ERR_UNSUPPORTED,
                    message: "shard opcodes are served by the mom3d-shard coordinator, \
                              not mom3d-serve"
                        .into(),
                };
                respond(&mut stream, &reply).is_ok()
            }
        };
        if !alive {
            return;
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Stream::Unix(stream))
            }
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server —
/// call [`ServerHandle::wait`] (block until a client sends `SHUTDOWN`)
/// or [`ServerHandle::shutdown`] (stop it now).
#[derive(Debug)]
pub struct ServerHandle {
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The endpoint the server actually listens on (for `tcp:…:0`, the
    /// kernel-assigned port is resolved in).
    pub fn endpoint(&self) -> &Endpoint {
        &self.state.endpoint
    }

    /// Cumulative counter snapshot (same numbers a `STATS` request
    /// reports).
    pub fn counters(&self) -> ServeCounters {
        self.state.counters_snapshot()
    }

    fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Endpoint::Unix(path) = &self.state.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Blocks until the server shuts down (a client sent `SHUTDOWN`),
    /// then joins the worker pool.
    pub fn wait(self) {
        self.join();
    }

    /// Stops the server: no new connections, the worker pool drains its
    /// queue (publishing every scheduled cell) and exits.
    pub fn shutdown(self) {
        self.state.begin_shutdown();
        self.join();
    }
}

/// Binds `endpoint` and starts serving on background threads.
///
/// A unix-socket endpoint takes ownership of its path: a stale file
/// from a previous run is removed before binding, and the file is
/// removed again on shutdown.
///
/// # Errors
///
/// Propagates the bind error (address in use, bad address, permission).
pub fn serve(endpoint: Endpoint, config: ServeConfig) -> io::Result<ServerHandle> {
    let threads = if config.threads == 0 { sweep::default_threads() } else { config.threads };
    let mut runner = if config.small { Runner::small(config.seed) } else { Runner::new(config.seed) };
    runner = runner.with_cache(config.cache);

    let (listener, endpoint) = match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let actual = listener.local_addr()?.to_string();
            (Listener::Tcp(listener), Endpoint::Tcp(actual))
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            (Listener::Unix(UnixListener::bind(&path)?), Endpoint::Unix(path))
        }
    };

    let workloads = MemoTable::new();
    let built = if config.prebuild {
        let pairs: Vec<(WorkloadKind, IsaVariant)> = WorkloadKind::ALL
            .into_iter()
            .flat_map(|k| IsaVariant::ALL.map(|v| (k, v)))
            .collect();
        sweep::prebuild_workloads(&mut runner, &pairs, threads);
        for &(kind, variant) in &pairs {
            if let Schedule::Claimed = workloads.schedule((kind, variant)) {
                workloads.publish((kind, variant), runner.workload_arc(kind, variant));
            }
        }
        pairs.len() as u64
    } else {
        0
    };

    let hello = Hello {
        seed: config.seed,
        small: config.small,
        threads: threads.min(u32::MAX as usize) as u32,
    };
    let state = Arc::new(ServeState {
        runner,
        hello,
        workloads,
        memo: MemoTable::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        counters: Counters::default(),
        endpoint,
    });
    state.counters.workloads_built.store(built, Ordering::Relaxed);

    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("mom3d-sim-{i}"))
                .spawn(move || worker_loop(&state))
                .expect("spawning a simulation worker")
        })
        .collect();

    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("mom3d-accept".into())
            .spawn(move || loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok(stream) => {
                        if state.shutdown.load(Ordering::SeqCst) {
                            break; // the shutdown self-connection
                        }
                        let state = Arc::clone(&state);
                        let _ = std::thread::Builder::new()
                            .name("mom3d-conn".into())
                            .spawn(move || handle_connection(&state, stream));
                    }
                    Err(_) if state.shutdown.load(Ordering::SeqCst) => break,
                    Err(e) => {
                        eprintln!("warning: accept failed: {e}");
                    }
                }
            })
            .expect("spawning the accept loop")
    };

    Ok(ServerHandle { state, accept: Some(accept), workers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Client;
    use mom3d_cpu::MemorySystemKind;

    fn test_config() -> ServeConfig {
        ServeConfig { seed: 5, small: true, threads: 2, cache: None, prebuild: false }
    }

    fn unix_endpoint(name: &str) -> Endpoint {
        Endpoint::Unix(
            std::env::temp_dir().join(format!("mom3d-serve-unit-{}-{name}.sock", std::process::id())),
        )
    }

    #[test]
    fn ping_reports_identity_and_shutdown_stops_the_server() {
        let handle = serve(unix_endpoint("ping"), test_config()).expect("server binds");
        let endpoint = handle.endpoint().clone();
        let mut client = Client::connect(&endpoint).expect("client connects");
        let pong = client.round_trip(&Request::Ping).unwrap();
        assert_eq!(pong, Response::Pong(Hello { seed: 5, small: true, threads: 2 }));
        assert_eq!(client.round_trip(&Request::Shutdown).unwrap(), Response::Bye);
        handle.wait();
        // The socket file is gone, and connecting fails.
        assert!(endpoint.connect().is_err());
    }

    #[test]
    fn sim_matches_in_process_execution_and_memoizes() {
        let handle = serve(unix_endpoint("sim"), test_config()).expect("server binds");
        let key = SimKey {
            kind: WorkloadKind::GsmEncode,
            variant: IsaVariant::Mom,
            memory: MemorySystemKind::VectorCache.into(),
            l2_latency: 20,
        };
        let mut client = Client::connect(handle.endpoint()).unwrap();
        let Response::Result(first) = client.round_trip(&Request::Sim(key)).unwrap() else {
            panic!("expected a result");
        };
        assert_eq!(first.key, key);
        assert!(!first.memo_hit, "first request must simulate");

        let Response::Result(second) = client.round_trip(&Request::Sim(key)).unwrap() else {
            panic!("expected a result");
        };
        assert!(second.memo_hit, "second request must be a memo hit");
        assert_eq!(first.metrics, second.metrics);

        // Bit-identical to direct in-process execution.
        let mut r = Runner::small(5);
        let direct = r.metrics(key.kind, key.variant, key.memory, key.l2_latency);
        assert_eq!(first.metrics, direct);

        let counters = handle.counters();
        assert_eq!(counters.sims_executed, 1);
        assert_eq!(counters.memo_hits, 1);
        assert_eq!(counters.memo_misses, 1);
        handle.shutdown();
    }

    #[test]
    fn tcp_endpoint_resolves_port_zero() {
        let handle =
            serve(Endpoint::Tcp("127.0.0.1:0".into()), test_config()).expect("server binds");
        let Endpoint::Tcp(addr) = handle.endpoint().clone() else { panic!("expected tcp") };
        assert!(!addr.ends_with(":0"), "port must be resolved, got {addr}");
        let mut client = Client::connect(&Endpoint::Tcp(addr)).unwrap();
        assert!(matches!(client.round_trip(&Request::Ping).unwrap(), Response::Pong(_)));
        handle.shutdown();
    }
}
