//! 3D window analysis: when can a set of 2D streams be served by one
//! 3D register?

use crate::stream::Stream2d;
use mom3d_isa::arch;

/// A plan for serving a group of 2D streams from a single 3D register.
///
/// One `3dvload` at `base` with row stride `row_stride` and width
/// `wwords × 8` bytes fills the register; stream `k` of the group is then
/// a `3dvmov` whose pointer sits at byte offset `k × delta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window3d {
    /// Base address of the `3dvload` (= base of the first stream).
    pub base: u64,
    /// Stride between 3D elements — the 2D streams' common row stride.
    pub row_stride: i64,
    /// Vector length (rows) — the 2D streams' common VL.
    pub vl: u8,
    /// Element width in 64-bit words (`W` field, 1–16).
    pub wwords: u8,
    /// Byte offset between consecutive streams' slices (the third
    /// dimension's stride).
    pub delta: i64,
    /// Number of streams the window serves.
    pub covered: usize,
}

impl Window3d {
    /// Bytes fetched by the `3dvload` (blocks may overlap in memory).
    pub fn fetched_bytes(&self) -> u64 {
        self.vl as u64 * self.wwords as u64 * 8
    }

    /// Bytes the original 2D loads would have fetched.
    pub fn replaced_bytes(&self) -> u64 {
        self.covered as u64 * self.vl as u64 * 8
    }

    /// Pointer offset of stream `k`.
    pub fn offset_of(&self, k: usize) -> i64 {
        self.delta * k as i64
    }
}

/// Analyzes a group of 2D streams and returns the 3D window that serves
/// all of them, if one exists.
///
/// The conditions (paper §3.2/§5.1, "the analysis is commonly trivial"):
///
/// 1. all streams share the same `(stride, vl, elem_bytes = 8)`;
/// 2. consecutive bases differ by a constant `delta ≥ 0`
///    (`delta = 0` is the loop-invariant-stream reuse case);
/// 3. the last stream's slice still fits in a 128-byte element:
///    `delta × (n−1) + 8 ≤ 128`.
///
/// Returns `None` when any condition fails — e.g. `jpeg_decode`'s wide
/// consecutive patterns, whose inter-stream delta (128 bytes) pushes the
/// slice out of the element.
pub fn analyze_group(streams: &[Stream2d]) -> Option<Window3d> {
    let first = *streams.first()?;
    if first.elem_bytes != 8 {
        return None;
    }
    if streams.len() < 2 {
        return None;
    }
    // Condition 1: identical shape.
    if streams
        .iter()
        .any(|s| s.stride != first.stride || s.vl != first.vl || s.elem_bytes != 8)
    {
        return None;
    }
    // Condition 2: constant non-negative delta.
    let delta = (streams[1].base as i64) - (first.base as i64);
    if delta < 0 {
        return None;
    }
    for w in streams.windows(2) {
        if (w[1].base as i64) - (w[0].base as i64) != delta {
            return None;
        }
    }
    // Condition 3: the furthest slice fits in one element.
    let span = delta * (streams.len() as i64 - 1) + 8;
    if span > arch::DREG_ELEM_BYTES as i64 {
        return None;
    }
    let wwords = (span as u64).div_ceil(8) as u8;
    Some(Window3d {
        base: first.base,
        row_stride: first.stride,
        vl: first.vl,
        wwords,
        delta,
        covered: streams.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(n: usize, delta: i64) -> Vec<Stream2d> {
        (0..n)
            .map(|k| Stream2d::new((0x1_0000 + delta * k as i64) as u64, 640, 8, 8))
            .collect()
    }

    #[test]
    fn motion_estimation_window() {
        // 16 candidates one byte apart: span = 15 + 8 = 23 -> W = 3 words.
        let w = analyze_group(&candidates(16, 1)).unwrap();
        assert_eq!(w.delta, 1);
        assert_eq!(w.wwords, 3);
        assert_eq!(w.covered, 16);
        assert_eq!(w.offset_of(15), 15);
    }

    #[test]
    fn max_coverage_at_delta_one() {
        // 121 candidates: span = 120 + 8 = 128 exactly -> W = 16.
        let w = analyze_group(&candidates(121, 1)).unwrap();
        assert_eq!(w.wwords, 16);
        // 122 no longer fit.
        assert!(analyze_group(&candidates(122, 1)).is_none());
    }

    #[test]
    fn jpeg_blocks_delta_eight() {
        // 16 adjacent 8x8 blocks: delta 8, span = 15*8 + 8 = 128 -> W=16.
        let w = analyze_group(&candidates(16, 8)).unwrap();
        assert_eq!(w.wwords, 16);
        assert!(analyze_group(&candidates(17, 8)).is_none());
    }

    #[test]
    fn invariant_streams_delta_zero() {
        // The same stream re-read each outer iteration: reuse case.
        let w = analyze_group(&candidates(10, 0)).unwrap();
        assert_eq!(w.delta, 0);
        assert_eq!(w.wwords, 1);
        assert_eq!(w.fetched_bytes(), 8 * 8);
        assert_eq!(w.replaced_bytes(), 10 * 8 * 8);
    }

    #[test]
    fn wide_consecutive_patterns_rejected() {
        // jpeg_decode-style: dense rows, next load 128 bytes later.
        assert!(analyze_group(&candidates(4, 128)).is_none());
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let mut g = candidates(4, 1);
        g[2].vl = 4;
        assert!(analyze_group(&g).is_none());
        let mut g = candidates(4, 1);
        g[1].stride = 320;
        assert!(analyze_group(&g).is_none());
    }

    #[test]
    fn irregular_delta_rejected() {
        let g = vec![
            Stream2d::new(0x1000, 640, 8, 8),
            Stream2d::new(0x1001, 640, 8, 8),
            Stream2d::new(0x1003, 640, 8, 8), // delta jumps to 2
        ];
        assert!(analyze_group(&g).is_none());
    }

    #[test]
    fn singleton_and_empty_rejected() {
        assert!(analyze_group(&[]).is_none());
        assert!(analyze_group(&candidates(1, 1)).is_none());
    }

    #[test]
    fn negative_delta_rejected() {
        let g = vec![
            Stream2d::new(0x1010, 640, 8, 8),
            Stream2d::new(0x100F, 640, 8, 8),
        ];
        assert!(analyze_group(&g).is_none());
    }

    #[test]
    fn dense_streams_gsm_case() {
        // GSM LTP: dense 2D streams (stride 8), lags 2 bytes apart.
        let g: Vec<Stream2d> =
            (0..40).map(|k| Stream2d::new(0x2000 + 2 * k, 8, 10, 8)).collect();
        let w = analyze_group(&g).unwrap();
        assert_eq!(w.delta, 2);
        assert_eq!(w.row_stride, 8);
        assert_eq!(w.wwords, (2 * 39u64 + 8).div_ceil(8) as u8);
    }
}
