//! 2D memory stream descriptors.

use std::fmt;

/// A MOM 2D memory stream: `vl` blocks of `elem_bytes` bytes whose base
/// addresses are `stride` bytes apart.
///
/// For MOM vector loads `elem_bytes` is always 8 (one 64-bit register
/// element per row); the stride is typically an image width, so rows land
/// in far-apart cache lines — the paper's §3.2 observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stream2d {
    /// Address of the first block.
    pub base: u64,
    /// Byte distance between consecutive blocks.
    pub stride: i64,
    /// Number of blocks (vector length).
    pub vl: u8,
    /// Bytes per block.
    pub elem_bytes: u8,
}

impl Stream2d {
    /// Creates a stream descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `vl` or `elem_bytes` is zero.
    pub fn new(base: u64, stride: i64, vl: u8, elem_bytes: u8) -> Self {
        assert!(vl > 0, "stream must have at least one block");
        assert!(elem_bytes > 0, "blocks must be at least one byte");
        Stream2d { base, stride, vl, elem_bytes }
    }

    /// Address of block `i`.
    #[inline]
    pub fn block_addr(&self, i: usize) -> u64 {
        (self.base as i64 + self.stride * i as i64) as u64
    }

    /// Iterates over `(address, len)` per block.
    pub fn blocks(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        (0..self.vl as usize).map(|i| (self.block_addr(i), self.elem_bytes as u32))
    }

    /// Total bytes requested (blocks may overlap).
    pub fn total_bytes(&self) -> u64 {
        self.vl as u64 * self.elem_bytes as u64
    }

    /// Closed-open `[lo, hi)` envelope covering every block.
    pub fn envelope(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for (a, l) in self.blocks() {
            lo = lo.min(a);
            hi = hi.max(a + l as u64);
        }
        (lo, hi)
    }

    /// Byte overlap between this stream and `other`, counting each byte
    /// once per time it is requested by both streams' blocks pairwise.
    ///
    /// Used to quantify the redundancy that 3D register reuse removes
    /// (Figure 7): two motion-estimation candidate streams one byte apart
    /// share 7 of every 8 bytes.
    pub fn overlap_bytes(&self, other: &Stream2d) -> u64 {
        let mut total = 0u64;
        for (a, al) in self.blocks() {
            for (b, bl) in other.blocks() {
                let lo = a.max(b);
                let hi = (a + al as u64).min(b + bl as u64);
                total += hi.saturating_sub(lo);
            }
        }
        total
    }

    /// True when the two streams' envelopes intersect.
    pub fn may_overlap(&self, other: &Stream2d) -> bool {
        let (alo, ahi) = self.envelope();
        let (blo, bhi) = other.envelope();
        alo < bhi && blo < ahi
    }
}

impl fmt::Display for Stream2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stream[{:#x} + {}*{} x{}B]",
            self.base, self.stride, self.vl, self.elem_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_and_envelope() {
        let s = Stream2d::new(0x1000, 640, 8, 8);
        assert_eq!(s.block_addr(0), 0x1000);
        assert_eq!(s.block_addr(7), 0x1000 + 7 * 640);
        assert_eq!(s.envelope(), (0x1000, 0x1000 + 7 * 640 + 8));
        assert_eq!(s.total_bytes(), 64);
    }

    #[test]
    fn one_byte_apart_streams_overlap_heavily() {
        // The paper's motion-estimation case: candidate k and k+1 share
        // 7 bytes of every 8-byte row.
        let a = Stream2d::new(0x1000, 640, 8, 8);
        let b = Stream2d::new(0x1001, 640, 8, 8);
        assert_eq!(a.overlap_bytes(&b), 8 * 7);
        assert!(a.may_overlap(&b));
    }

    #[test]
    fn disjoint_streams() {
        let a = Stream2d::new(0x1000, 640, 4, 8);
        let b = Stream2d::new(0x9_0000, 640, 4, 8);
        assert_eq!(a.overlap_bytes(&b), 0);
        assert!(!a.may_overlap(&b));
    }

    #[test]
    fn identical_streams_fully_overlap() {
        let a = Stream2d::new(0x1000, 128, 4, 8);
        assert_eq!(a.overlap_bytes(&a), 32);
    }

    #[test]
    fn negative_stride() {
        let s = Stream2d::new(0x1000, -64, 3, 8);
        assert_eq!(s.block_addr(2), 0x1000 - 128);
        assert_eq!(s.envelope(), (0x1000 - 128, 0x1008));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_vl_panics() {
        Stream2d::new(0, 8, 0, 8);
    }
}
