//! # mom3d-core — 3D memory vectorization
//!
//! The primary contribution of MICRO-35 2002, *"Three-Dimensional Memory
//! Vectorization for High Bandwidth Media Memory Systems"*, implemented
//! as a library:
//!
//! * [`DRegValue`] / [`DRegFile`] — the second-level **3D vector register
//!   file**: two logical (four physical) registers of 16 × 128-byte
//!   elements, organized in four lanes, with 7-bit pointer registers and
//!   byte-aligned 64-bit slice extraction (the shift&mask path of
//!   Figure 8-c);
//! * [`Stream2d`] — 2D memory stream descriptors and their overlap
//!   arithmetic;
//! * [`analyze_group`] / [`Window3d`] — the stream analysis that decides
//!   when a set of 2D streams can be served from one 3D register
//!   (constant inter-stream stride, slices within one element span);
//! * [`vectorize`] — the **memory vectorizer pass** sketched in §5.1:
//!   it rewrites groups of 2D vector loads in a trace into one `3dvload`
//!   plus per-stream `3dvmov`s, with store-conflict safety checks. The
//!   pass only vectorizes *memory accesses*, so the surrounding loop
//!   needs no computational vectorizability — the paper's key
//!   observation.
//!
//! ```
//! use mom3d_core::{Stream2d, analyze_group};
//!
//! // Motion-estimation candidate streams: 8 rows of 8 pixels, one byte
//! // apart on the search axis.
//! let streams: Vec<Stream2d> = (0..16)
//!     .map(|k| Stream2d::new(0x1_0000 + k, 640, 8, 8))
//!     .collect();
//! let w = analyze_group(&streams).expect("packable");
//! assert_eq!(w.delta, 1);
//! assert_eq!(w.covered, 16);
//! ```
//!
//! **Place in the dataflow**: between code generation and execution.
//! The MOM+3D kernel variants in `mom3d-kernels` run [`vectorize`] (or
//! emit 3D instructions directly from its analysis); the emulator and
//! the timing simulator then consume the rewritten traces, and
//! `mom3d-mem`'s `schedule_3d` prices the resulting wide-block
//! fetches.

mod dreg;
mod stream;
mod vectorizer;
mod window;

pub use dreg::{DRegFile, DRegValue};
pub use stream::Stream2d;
pub use vectorizer::{vectorize, vectorize_to_fixpoint, VectorizeConfig, VectorizeReport};
pub use window::{analyze_group, Window3d};
