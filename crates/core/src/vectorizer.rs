//! The memory vectorizer pass (§5.1).
//!
//! The paper argues the compiler analysis for 3D memory vectorization is
//! "commonly trivial": detect the stride between 2D load instructions,
//! pack them into a single 3D load, and replace the original 2D loads
//! with 3D vector moves. Because only *memory accesses* are vectorized,
//! the only dependences that must be honoured are read/write conflicts
//! between the streams — exactly what this pass checks.
//!
//! The pass works on dynamic traces (the representation the original
//! authors instrumented with ATOM):
//!
//! 1. **Analysis** — scan the trace; group `vload`s with identical
//!    `(stride, VL)` whose bases advance by a constant `delta`, subject
//!    to the 128-byte element span limit; split any group whose fetch
//!    envelope is written by an intervening store.
//! 2. **Allocation** — assign the two logical 3D registers to groups by
//!    live range; groups that cannot get a register are left untouched.
//! 3. **Synthesis** — rewrite each group as one `3dvload` (at the first
//!    member) plus one `3dvmov` per member, preserving destination
//!    registers so downstream computation is unchanged.

use crate::stream::Stream2d;
use crate::window::{analyze_group, Window3d};
use mom3d_isa::{arch, DReg, Instruction, MemAccess, Opcode, Reg, Trace};
use std::collections::HashMap;

/// Tuning knobs of the vectorizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorizeConfig {
    /// Minimum streams per window for conversion to pay off (paper
    /// condition: more than one MOM stream per cache line, or reuse
    /// between two or more streams). Default 2.
    pub min_group: usize,
    /// Logical 3D registers available (the ISA provides 2).
    pub max_live: usize,
}

impl Default for VectorizeConfig {
    fn default() -> Self {
        VectorizeConfig { min_group: 2, max_live: arch::DREG_LOGICAL_REGS }
    }
}

/// What the pass did, for reporting and for the Figure 7 traffic model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VectorizeReport {
    /// Candidate groups discovered by the analysis.
    pub groups_found: u64,
    /// Groups actually converted (got a 3D register, met `min_group`).
    pub groups_converted: u64,
    /// 2D loads replaced by `3dvmov`s.
    pub loads_converted: u64,
    /// `3dvload`s emitted.
    pub dvloads_emitted: u64,
    /// Groups split by intervening store conflicts.
    pub store_conflicts: u64,
    /// 64-bit words the replaced 2D loads would have moved from cache.
    pub words_2d: u64,
    /// 64-bit words the emitted `3dvload`s move from cache.
    pub words_3d: u64,
}

impl VectorizeReport {
    /// Fraction of vector-load cache traffic removed, in `[0, 1]`
    /// (Figure 7's metric, restricted to the converted loads).
    pub fn traffic_reduction(&self) -> f64 {
        if self.words_2d == 0 {
            0.0
        } else {
            1.0 - self.words_3d as f64 / self.words_2d as f64
        }
    }
}

#[derive(Debug, Clone)]
struct OpenGroup {
    stride: i64,
    vl: u8,
    width: mom3d_isa::Width,
    /// Trace indices of member loads.
    members: Vec<usize>,
    bases: Vec<u64>,
    delta: Option<i64>,
    /// Fetch envelope `[lo, hi)` of the eventual 3dvload.
    env: (u64, u64),
}

impl OpenGroup {
    fn from_load(idx: usize, m: &MemAccess, width: mom3d_isa::Width) -> Self {
        let s = Stream2d::new(m.base, m.stride, m.count, 8);
        OpenGroup {
            stride: m.stride,
            vl: m.count,
            width,
            members: vec![idx],
            bases: vec![m.base],
            delta: None,
            env: s.envelope(),
        }
    }

    /// Tries to append a load; returns false if it does not extend the
    /// group's arithmetic base progression within the element span.
    fn try_attach(&mut self, idx: usize, m: &MemAccess, width: mom3d_isa::Width) -> bool {
        if m.stride != self.stride || m.count != self.vl || width != self.width {
            return false;
        }
        let last = *self.bases.last().expect("group is never empty");
        let d = m.base as i64 - last as i64;
        match self.delta {
            Some(delta) if d != delta => return false,
            None if d < 0 => return false,
            _ => {}
        }
        let delta = self.delta.unwrap_or(d);
        let span = delta * self.members.len() as i64 + 8;
        if span > arch::DREG_ELEM_BYTES as i64 {
            return false;
        }
        self.delta = Some(delta);
        self.members.push(idx);
        self.bases.push(m.base);
        let s = Stream2d::new(m.base, m.stride, m.count, 8);
        let (lo, hi) = s.envelope();
        self.env.0 = self.env.0.min(lo);
        self.env.1 = self.env.1.max(hi);
        true
    }

    fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.env.0 < hi && lo < self.env.1
    }

    fn streams(&self) -> Vec<Stream2d> {
        self.bases
            .iter()
            .map(|&b| Stream2d::new(b, self.stride, self.vl, 8))
            .collect()
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    window: Window3d,
    members: Vec<usize>,
    width: mom3d_isa::Width,
}

/// Runs [`vectorize`] repeatedly until no further loads convert (or
/// `max_passes` is reached), returning the final trace and the per-pass
/// reports.
///
/// A single pass can leave profitable windows unconverted when more
/// than two of them overlap in time (the ISA has two logical 3D
/// registers); later passes pick those up in the gaps left between the
/// already-placed windows' live ranges.
pub fn vectorize_to_fixpoint(
    trace: &Trace,
    config: &VectorizeConfig,
    max_passes: usize,
) -> (Trace, Vec<VectorizeReport>) {
    let mut current = trace.clone();
    let mut reports = Vec::new();
    for _ in 0..max_passes {
        let (next, report) = vectorize(&current, config);
        let converted = report.loads_converted;
        reports.push(report);
        current = next;
        if converted == 0 {
            break;
        }
    }
    (current, reports)
}

/// Runs the memory vectorizer over `trace`, returning the rewritten
/// trace and a conversion report.
///
/// The rewritten trace is functionally equivalent: every replaced load's
/// destination register receives exactly the bytes the original 2D load
/// fetched (the crate's integration tests execute both traces through
/// the emulator and compare). Loads the analysis cannot prove safe and
/// profitable are left untouched — e.g. all of `jpeg_decode`.
pub fn vectorize(trace: &Trace, config: &VectorizeConfig) -> (Trace, VectorizeReport) {
    let mut report = VectorizeReport::default();

    // ---- Phase 1: analysis ------------------------------------------------
    let mut open: Vec<OpenGroup> = Vec::new();
    let mut closed: Vec<OpenGroup> = Vec::new();
    for (idx, instr) in trace.iter().enumerate() {
        match instr.opcode {
            Opcode::VLoad => {
                let m = instr.mem.expect("vload carries a memory descriptor");
                if m.elem_bytes != 8 {
                    continue;
                }
                if !open.iter_mut().any(|g| g.try_attach(idx, &m, instr.data_width)) {
                    open.push(OpenGroup::from_load(idx, &m, instr.data_width));
                }
            }
            op if op.is_store() => {
                let m = instr.mem.expect("stores carry a memory descriptor");
                let (lo, hi) = m.envelope();
                let mut i = 0;
                while i < open.len() {
                    if open[i].overlaps(lo, hi) {
                        report.store_conflicts += 1;
                        closed.push(open.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            _ => {}
        }
    }
    closed.append(&mut open);

    // ---- Phase 2: filter + allocate 3D registers ---------------------------
    let mut candidates: Vec<Candidate> = Vec::new();
    for g in &closed {
        report.groups_found += 1;
        if g.members.len() < config.min_group {
            continue;
        }
        if let Some(window) = analyze_group(&g.streams()) {
            candidates.push(Candidate { window, members: g.members.clone(), width: g.width });
        }
    }

    // Pre-existing 3D code (hand-written, or from a previous run of this
    // pass) pins its registers for the interval from each 3dvload to the
    // last 3dvmov consuming it; new windows must not clobber those.
    let mut busy: Vec<Vec<(usize, usize)>> = vec![Vec::new(); arch::DREG_LOGICAL_REGS];
    {
        let mut open_load: [Option<usize>; arch::DREG_LOGICAL_REGS] =
            [None; arch::DREG_LOGICAL_REGS];
        let mut last_use: [usize; arch::DREG_LOGICAL_REGS] = [0; arch::DREG_LOGICAL_REGS];
        for (idx, instr) in trace.iter().enumerate() {
            let dreg = |list: &mom3d_isa::RegList| {
                list.iter().find_map(|r| match r {
                    Reg::D(d) => Some(d.index() as usize),
                    _ => None,
                })
            };
            match instr.opcode {
                Opcode::DvLoad => {
                    if let Some(d) = dreg(&instr.dsts) {
                        if let Some(start) = open_load[d].take() {
                            busy[d].push((start, last_use[d]));
                        }
                        open_load[d] = Some(idx);
                        last_use[d] = idx;
                    }
                }
                Opcode::DvMov => {
                    if let Some(d) = dreg(&instr.srcs) {
                        last_use[d] = idx;
                    }
                }
                _ => {}
            }
        }
        for d in 0..arch::DREG_LOGICAL_REGS {
            if let Some(start) = open_load[d] {
                busy[d].push((start, last_use[d]));
            }
        }
    }
    candidates.sort_by_key(|c| c.members[0]);
    if std::env::var("MOM3D_VEC_DEBUG").is_ok() {
        for c in &candidates {
            eprintln!(
                "window base={:#x} delta={} covered={} first={} last={}",
                c.window.base, c.window.delta, c.window.covered,
                c.members[0], c.members.last().unwrap()
            );
        }
    }

    // Greedy linear-scan allocation of the logical 3D registers,
    // avoiding both windows already placed this run and intervals pinned
    // by pre-existing 3D instructions.
    let max_live = config.max_live.min(arch::DREG_LOGICAL_REGS);
    let mut reg_free_at = vec![0usize; max_live];
    let mut allocated: Vec<(Candidate, DReg)> = Vec::new();
    for c in candidates {
        let first = c.members[0];
        let last = *c.members.last().expect("non-empty");
        let usable = |r: usize| {
            reg_free_at[r] <= first
                && busy[r].iter().all(|&(lo, hi)| hi < first || last < lo)
        };
        if let Some(r) = (0..max_live).find(|&r| usable(r)) {
            reg_free_at[r] = last + 1;
            allocated.push((c, DReg::new(r as u8)));
        }
    }

    // ---- Phase 3: synthesis -------------------------------------------------
    #[derive(Clone, Copy)]
    struct Rewrite {
        dreg: DReg,
        window: Window3d,
        k: usize,
        is_leader: bool,
        pstride: i64,
        width: mom3d_isa::Width,
    }
    let mut rewrites: HashMap<usize, Rewrite> = HashMap::new();
    for (c, dreg) in &allocated {
        report.groups_converted += 1;
        report.dvloads_emitted += 1;
        report.loads_converted += c.members.len() as u64;
        report.words_2d += c.members.len() as u64 * c.window.vl as u64;
        report.words_3d += c.window.vl as u64 * c.window.wwords as u64;
        for (k, &idx) in c.members.iter().enumerate() {
            rewrites.insert(
                idx,
                Rewrite {
                    dreg: *dreg,
                    window: c.window,
                    k,
                    is_leader: k == 0,
                    // Pointer advances by delta after every move; the last
                    // move's update is dead but architecturally performed.
                    pstride: c.window.delta,
                    width: c.width,
                },
            );
        }
    }

    let mut out = Trace::new();
    for (idx, instr) in trace.iter().enumerate() {
        let Some(rw) = rewrites.get(&idx) else {
            out.push(*instr);
            continue;
        };
        let addr_reg = instr
            .srcs
            .iter()
            .find(|r| matches!(r, Reg::Gpr(_)))
            .expect("vload names its address register");
        if rw.is_leader {
            // 3dvload DR <- (base), row_stride, W, b=0
            let mut dv = Instruction::op(
                Opcode::DvLoad,
                &[Reg::D(rw.dreg), Reg::P(rw.dreg.pointer())],
                &[addr_reg, Reg::Vl],
            )
            .with_mem(MemAccess::strided3d(
                rw.window.base,
                rw.window.row_stride,
                rw.window.vl,
                rw.window.wwords,
            ))
            .with_vl(rw.window.vl);
            dv.data_width = rw.width;
            out.push(dv);
        }
        // 3dvmov MR <- DR, Ps (the original load's destination register).
        let dst = instr.dsts.iter().next().expect("vload has a destination");
        let p = Reg::P(rw.dreg.pointer());
        let mv = Instruction::op(Opcode::DvMov, &[dst, p], &[Reg::D(rw.dreg), p, Reg::Vl])
            .with_imm(rw.pstride)
            .with_vl(rw.window.vl)
            .with_width(rw.width);
        out.push(mv);
        let _ = rw.k;
    }

    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mom3d_isa::{Gpr, MomReg, TraceBuilder, UsimdOp, Width};

    /// Builds a MOM trace shaped like the motion-estimation inner loop:
    /// `n` candidate loads one byte apart, each followed by compute.
    fn me_like_trace(n: usize, delta: i64) -> Trace {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let base = tb.li(Gpr::new(1), 0x1_0000);
        for k in 0..n {
            let addr = (0x1_0000 + delta * k as i64) as u64;
            tb.vload(MomReg::new(0), base, addr);
            tb.vop2(UsimdOp::AbsDiffU(Width::B8), MomReg::new(2), MomReg::new(0), MomReg::new(1));
        }
        tb.finish()
    }

    #[test]
    fn converts_me_pattern() {
        let trace = me_like_trace(16, 1);
        let (out, report) = vectorize(&trace, &VectorizeConfig::default());
        assert_eq!(report.groups_converted, 1);
        assert_eq!(report.loads_converted, 16);
        assert_eq!(report.dvloads_emitted, 1);
        let dvloads = out.iter().filter(|i| i.opcode == Opcode::DvLoad).count();
        let dvmovs = out.iter().filter(|i| i.opcode == Opcode::DvMov).count();
        let vloads = out.iter().filter(|i| i.opcode == Opcode::VLoad).count();
        assert_eq!((dvloads, dvmovs, vloads), (1, 16, 0));
        // Compute instructions and their count are untouched.
        let comps = out.iter().filter(|i| matches!(i.opcode, Opcode::VCompute(_))).count();
        assert_eq!(comps, 16);
    }

    #[test]
    fn traffic_reduction_matches_geometry() {
        let trace = me_like_trace(16, 1);
        let (_, report) = vectorize(&trace, &VectorizeConfig::default());
        // 2D: 16 loads x 8 words; 3D: 8 elements x 3 words (span 23B).
        assert_eq!(report.words_2d, 128);
        assert_eq!(report.words_3d, 24);
        assert!(report.traffic_reduction() > 0.8);
    }

    #[test]
    fn leaves_wide_consecutive_patterns_alone() {
        // jpeg_decode-style: delta 128 exceeds the element span.
        let trace = me_like_trace(8, 128);
        let (out, report) = vectorize(&trace, &VectorizeConfig::default());
        assert_eq!(report.groups_converted, 0);
        assert_eq!(out.len(), trace.len());
        assert_eq!(out.iter().filter(|i| i.opcode == Opcode::DvLoad).count(), 0);
    }

    #[test]
    fn invariant_stream_reuse() {
        // The same block re-loaded (delta 0) is served by one 3dvload.
        let trace = me_like_trace(10, 0);
        let (out, report) = vectorize(&trace, &VectorizeConfig::default());
        assert_eq!(report.groups_converted, 1);
        assert_eq!(report.words_3d, 8); // one 8-row x 1-word fetch
        assert_eq!(report.words_2d, 80);
        assert_eq!(out.iter().filter(|i| i.opcode == Opcode::DvMov).count(), 10);
    }

    #[test]
    fn store_conflict_splits_group() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let base = tb.li(Gpr::new(1), 0x1_0000);
        for k in 0..4u64 {
            tb.vload(MomReg::new(0), base, 0x1_0000 + k);
        }
        // A store into the window's envelope.
        tb.store_scalar(Gpr::new(2), base, 0x1_0000 + 640, 8);
        for k in 4..8u64 {
            tb.vload(MomReg::new(0), base, 0x1_0000 + k);
        }
        let (out, report) = vectorize(&tb.finish(), &VectorizeConfig::default());
        assert_eq!(report.store_conflicts, 1);
        // Both halves are separately converted (4 loads each).
        assert_eq!(report.groups_converted, 2);
        assert_eq!(out.iter().filter(|i| i.opcode == Opcode::DvLoad).count(), 2);
        // The store stays between them.
        assert_eq!(out.iter().filter(|i| i.opcode.is_store()).count(), 1);
    }

    #[test]
    fn non_conflicting_store_does_not_split() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let base = tb.li(Gpr::new(1), 0x1_0000);
        for k in 0..4u64 {
            tb.vload(MomReg::new(0), base, 0x1_0000 + k);
            tb.store_scalar(Gpr::new(2), base, 0x9_0000, 8); // far away
        }
        let (_, report) = vectorize(&tb.finish(), &VectorizeConfig::default());
        assert_eq!(report.store_conflicts, 0);
        assert_eq!(report.groups_converted, 1);
    }

    #[test]
    fn register_pressure_drops_excess_groups() {
        // Three interleaved groups but only two 3D registers.
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let base = tb.li(Gpr::new(1), 0);
        for k in 0..8u64 {
            tb.vload(MomReg::new(0), base, 0x1_0000 + k);
            tb.vload(MomReg::new(1), base, 0x5_0000 + k);
            tb.vload(MomReg::new(2), base, 0x9_0000 + k);
        }
        let (out, report) = vectorize(&tb.finish(), &VectorizeConfig::default());
        assert_eq!(report.groups_found, 3);
        assert_eq!(report.groups_converted, 2);
        assert_eq!(out.iter().filter(|i| i.opcode == Opcode::VLoad).count(), 8);
    }

    #[test]
    fn min_group_threshold() {
        let trace = me_like_trace(3, 1);
        let cfg = VectorizeConfig { min_group: 4, max_live: 2 };
        let (_, report) = vectorize(&trace, &cfg);
        assert_eq!(report.groups_converted, 0);
    }

    #[test]
    fn dvmov_pointer_strides_follow_delta() {
        let trace = me_like_trace(4, 2);
        let (out, _) = vectorize(&trace, &VectorizeConfig::default());
        let strides: Vec<i64> =
            out.iter().filter(|i| i.opcode == Opcode::DvMov).map(|i| i.imm).collect();
        assert_eq!(strides, vec![2, 2, 2, 2]);
    }

    #[test]
    fn preserves_destination_registers() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let base = tb.li(Gpr::new(1), 0);
        tb.vload(MomReg::new(5), base, 0x1_0000);
        tb.vload(MomReg::new(6), base, 0x1_0001);
        let (out, _) = vectorize(&tb.finish(), &VectorizeConfig::default());
        let dsts: Vec<Reg> = out
            .iter()
            .filter(|i| i.opcode == Opcode::DvMov)
            .map(|i| i.dsts.iter().next().unwrap())
            .collect();
        assert_eq!(dsts, vec![Reg::Mom(MomReg::new(5)), Reg::Mom(MomReg::new(6))]);
    }
}
