//! The 3D vector register file: values, pointers, lanes.

use mom3d_isa::{arch, DReg};

/// The contents of one 3D vector register: 16 elements of 128 bytes.
///
/// A `3dvload` fills elements `0..VL` with `W × 8`-byte blocks fetched
/// from memory; a `3dvmov` extracts one byte-aligned 64-bit slice per
/// element at the pointer offset. On hardware the extraction reads two
/// quadword-aligned words per lane and shifts&masks (Figure 8-c); here we
/// read the bytes directly, which is bit-identical.
#[derive(Clone, PartialEq, Eq)]
pub struct DRegValue {
    data: Box<[u8; arch::DREG_BYTES]>,
}

impl std::fmt::Debug for DRegValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DRegValue({} elements x {} B)", arch::DREG_ELEMS, arch::DREG_ELEM_BYTES)
    }
}

impl Default for DRegValue {
    fn default() -> Self {
        DRegValue { data: Box::new([0u8; arch::DREG_BYTES]) }
    }
}

impl DRegValue {
    /// A zeroed register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes `block` into element `elem`, starting at the element's
    /// first byte. Bytes past the block's end keep their old value.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= 16` or the block exceeds 128 bytes.
    pub fn write_element(&mut self, elem: usize, block: &[u8]) {
        assert!(elem < arch::DREG_ELEMS, "3D element index out of range");
        assert!(block.len() <= arch::DREG_ELEM_BYTES, "block exceeds element size");
        let start = elem * arch::DREG_ELEM_BYTES;
        self.data[start..start + block.len()].copy_from_slice(block);
    }

    /// Reads the whole 128-byte element `elem`.
    ///
    /// # Panics
    ///
    /// Panics if `elem >= 16`.
    pub fn element(&self, elem: usize) -> &[u8] {
        assert!(elem < arch::DREG_ELEMS, "3D element index out of range");
        let start = elem * arch::DREG_ELEM_BYTES;
        &self.data[start..start + arch::DREG_ELEM_BYTES]
    }

    /// Extracts the byte-aligned 64-bit slice of element `elem` at byte
    /// `offset` — the `3dvmov` datapath.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not fit within the element
    /// (`offset + 8 > 128`). Code generators are expected to keep
    /// pointers at ≤ 120; use [`DRegValue::slice64_wrapping`] for the
    /// architectural any-offset behaviour.
    pub fn slice64(&self, elem: usize, offset: usize) -> u64 {
        assert!(
            offset + 8 <= arch::DREG_ELEM_BYTES,
            "3dvmov slice at offset {offset} leaves the 128-byte element"
        );
        let e = self.element(elem);
        u64::from_le_bytes(e[offset..offset + 8].try_into().expect("8-byte slice"))
    }

    /// Like [`DRegValue::slice64`], but wrapping within the element for
    /// offsets above 120 — the shift&mask network reads modulo the
    /// element, which is what the hardware does for any 7-bit pointer
    /// value (the data is rarely meaningful, but the operation is
    /// defined).
    pub fn slice64_wrapping(&self, elem: usize, offset: usize) -> u64 {
        let e = self.element(elem);
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = e[(offset + i) % arch::DREG_ELEM_BYTES];
        }
        u64::from_le_bytes(bytes)
    }

    /// The lane (cluster) that stores element `elem` in the distributed
    /// organization of Figure 8-c (elements are interleaved across the
    /// four lanes like MOM register elements).
    pub fn lane_of(elem: usize) -> usize {
        elem % arch::LANES
    }
}

/// Architectural state of the 3D register file: register values plus the
/// 7-bit pointer registers.
///
/// The pointer wraps the `3dvload` `b` flag (pointer initialized at the
/// beginning or the end of the loaded block) and the `3dvmov` post-update
/// (`pointer += Ps`, renaming the pointer register).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DRegFile {
    regs: [DRegValue; arch::DREG_LOGICAL_REGS],
    pointers: [u8; arch::DREG_LOGICAL_REGS],
    /// Element width (in bytes) of the last `3dvload` per register,
    /// needed for end-initialized pointers.
    widths: [u8; arch::DREG_LOGICAL_REGS],
}

impl DRegFile {
    /// A zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Performs the register-file side of `3dvload`: fills elements
    /// `0..blocks.len()` and initializes the pointer.
    ///
    /// With `from_end = false` the pointer starts at byte 0; with
    /// `from_end = true` it starts at the *last* valid 64-bit slice of
    /// the loaded width (`W*8 - 8`), letting code walk the third
    /// dimension downward (the paper's `b` flag).
    ///
    /// # Panics
    ///
    /// Panics if more than 16 blocks are supplied or a block exceeds
    /// 128 bytes.
    pub fn load(&mut self, dr: DReg, blocks: &[Vec<u8>], from_end: bool) {
        assert!(blocks.len() <= arch::DREG_ELEMS, "too many 3D blocks");
        let idx = dr.index() as usize;
        let mut width = 0usize;
        for (i, b) in blocks.iter().enumerate() {
            self.regs[idx].write_element(i, b);
            width = width.max(b.len());
        }
        self.widths[idx] = width as u8;
        self.pointers[idx] = if from_end { (width.max(8) - 8) as u8 } else { 0 };
    }

    /// Current pointer value (byte offset) of `dr`'s pointer register.
    pub fn pointer(&self, dr: DReg) -> u8 {
        self.pointers[dr.index() as usize]
    }

    /// Sets the pointer explicitly (used by trace replay/debug).
    ///
    /// # Panics
    ///
    /// Panics if `offset` has more than 7 significant bits.
    pub fn set_pointer(&mut self, dr: DReg, offset: u8) {
        assert!(
            (offset as usize) < arch::DREG_ELEM_BYTES,
            "pointer must fit in 7 bits"
        );
        self.pointers[dr.index() as usize] = offset;
    }

    /// Performs `3dvmov`: returns `vl` slices (one per element, at the
    /// current pointer offset) and post-increments the pointer by
    /// `pstride` (modulo 128, as a 7-bit register).
    ///
    /// Offsets above 120 wrap within the element (see
    /// [`DRegValue::slice64_wrapping`]); well-formed code keeps the
    /// pointer at ≤ 120.
    pub fn mov(&mut self, dr: DReg, vl: usize, pstride: i16) -> Vec<u64> {
        let idx = dr.index() as usize;
        let offset = self.pointers[idx] as usize;
        let out: Vec<u64> =
            (0..vl).map(|e| self.regs[idx].slice64_wrapping(e, offset)).collect();
        let next = (offset as i32 + pstride as i32).rem_euclid(arch::DREG_ELEM_BYTES as i32);
        self.pointers[idx] = next as u8;
        out
    }

    /// Allocation-free [`DRegFile::mov`]: writes `out.len()` slices into
    /// `out` and post-increments the pointer by `pstride`. Bit-identical
    /// to `mov` with `vl = out.len()`; hot callers (the trace-specializing
    /// emulator) reuse one buffer across instructions.
    pub fn mov_into(&mut self, dr: DReg, out: &mut [u64], pstride: i16) {
        let idx = dr.index() as usize;
        let offset = self.pointers[idx] as usize;
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = self.regs[idx].slice64_wrapping(e, offset);
        }
        let next = (offset as i32 + pstride as i32).rem_euclid(arch::DREG_ELEM_BYTES as i32);
        self.pointers[idx] = next as u8;
    }

    /// Read-only view of a register's value.
    pub fn value(&self, dr: DReg) -> &DRegValue {
        &self.regs[dr.index() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, start: u8) -> Vec<u8> {
        (0..n).map(|i| start.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn write_and_slice() {
        let mut v = DRegValue::new();
        v.write_element(0, &ramp(128, 0));
        v.write_element(3, &ramp(16, 100));
        assert_eq!(v.slice64(0, 0), u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        // Byte-aligned (unaligned to quadwords) extraction.
        assert_eq!(v.slice64(0, 3), u64::from_le_bytes([3, 4, 5, 6, 7, 8, 9, 10]));
        assert_eq!(v.slice64(3, 0), u64::from_le_bytes([100, 101, 102, 103, 104, 105, 106, 107]));
    }

    #[test]
    #[should_panic(expected = "leaves the 128-byte element")]
    fn slice_past_element_panics() {
        DRegValue::new().slice64(0, 121);
    }

    #[test]
    fn last_valid_slice_offset() {
        let mut v = DRegValue::new();
        v.write_element(0, &ramp(128, 0));
        assert_eq!(v.slice64(0, 120), u64::from_le_bytes([120, 121, 122, 123, 124, 125, 126, 127]));
    }

    #[test]
    fn lanes_interleave() {
        assert_eq!(DRegValue::lane_of(0), 0);
        assert_eq!(DRegValue::lane_of(1), 1);
        assert_eq!(DRegValue::lane_of(4), 0);
        assert_eq!(DRegValue::lane_of(15), 3);
    }

    #[test]
    fn file_load_and_mov_walks_pointer() {
        let mut f = DRegFile::new();
        let blocks: Vec<Vec<u8>> = (0..4).map(|e| ramp(32, e as u8 * 32)).collect();
        f.load(DReg::new(0), &blocks, false);
        assert_eq!(f.pointer(DReg::new(0)), 0);
        let s0 = f.mov(DReg::new(0), 4, 1);
        assert_eq!(s0[0], u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(s0[1], u64::from_le_bytes([32, 33, 34, 35, 36, 37, 38, 39]));
        assert_eq!(f.pointer(DReg::new(0)), 1);
        let s1 = f.mov(DReg::new(0), 4, 1);
        assert_eq!(s1[0], u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn from_end_pointer_initialization() {
        let mut f = DRegFile::new();
        let blocks: Vec<Vec<u8>> = vec![ramp(64, 0); 2];
        f.load(DReg::new(1), &blocks, true);
        // Last valid slice of a 64-byte block starts at byte 56.
        assert_eq!(f.pointer(DReg::new(1)), 56);
        let s = f.mov(DReg::new(1), 2, -1);
        assert_eq!(s[0], u64::from_le_bytes([56, 57, 58, 59, 60, 61, 62, 63]));
        assert_eq!(f.pointer(DReg::new(1)), 55);
    }

    #[test]
    fn pointer_wraps_as_7bit() {
        let mut f = DRegFile::new();
        f.load(DReg::new(0), &[ramp(128, 0)], false);
        f.set_pointer(DReg::new(0), 120);
        f.mov(DReg::new(0), 1, 16); // 120 + 16 = 136 -> wraps to 8
        assert_eq!(f.pointer(DReg::new(0)), 8);
        f.set_pointer(DReg::new(0), 0);
        f.mov(DReg::new(0), 1, -8); // 0 - 8 -> wraps to 120
        assert_eq!(f.pointer(DReg::new(0)), 120);
    }

    #[test]
    fn registers_are_independent() {
        let mut f = DRegFile::new();
        f.load(DReg::new(0), &[ramp(16, 1)], false);
        f.load(DReg::new(1), &[ramp(16, 200)], false);
        let a = f.mov(DReg::new(0), 1, 4);
        let b = f.mov(DReg::new(1), 1, 8);
        assert_ne!(a[0], b[0]);
        assert_eq!(f.pointer(DReg::new(0)), 4);
        assert_eq!(f.pointer(DReg::new(1)), 8);
    }

    #[test]
    fn mov_into_matches_mov() {
        let blocks: Vec<Vec<u8>> = (0..4).map(|e| ramp(32, e as u8 * 32)).collect();
        let mut f = DRegFile::new();
        f.load(DReg::new(0), &blocks, true);
        let mut g = f.clone();
        for pstride in [1i16, -8, 120] {
            let expect = f.mov(DReg::new(0), 4, pstride);
            let mut got = [0u64; 4];
            g.mov_into(DReg::new(0), &mut got, pstride);
            assert_eq!(expect, got);
            assert_eq!(f, g, "pointer post-update must match");
        }
    }

    #[test]
    #[should_panic(expected = "too many 3D blocks")]
    fn overfull_load_panics() {
        let mut f = DRegFile::new();
        let blocks: Vec<Vec<u8>> = vec![vec![0; 8]; 17];
        f.load(DReg::new(0), &blocks, false);
    }
}
