//! Property-based tests of the 3D vectorization core: register file
//! semantics, window analysis, and vectorizer equivalence on random
//! well-formed load patterns.

use mom3d_core::{analyze_group, vectorize, DRegFile, Stream2d, VectorizeConfig};
use mom3d_isa::{DReg, Gpr, MomReg, TraceBuilder};
use proptest::prelude::*;

proptest! {
    /// A `3dvmov` slice equals the bytes the corresponding 2D load would
    /// have fetched, for any block geometry and offset.
    #[test]
    fn slices_match_block_bytes(
        elems in 1usize..=16,
        wwords in 1usize..=16,
        offset in 0usize..120,
    ) {
        let width = wwords * 8;
        prop_assume!(offset + 8 <= width);
        let blocks: Vec<Vec<u8>> = (0..elems)
            .map(|e| (0..width).map(|i| (e * 31 + i) as u8).collect())
            .collect();
        let mut f = DRegFile::new();
        f.load(DReg::new(0), &blocks, false);
        f.set_pointer(DReg::new(0), offset as u8);
        let out = f.mov(DReg::new(0), elems, 0);
        for (e, v) in out.iter().enumerate() {
            let expect = u64::from_le_bytes(
                blocks[e][offset..offset + 8].try_into().unwrap(),
            );
            prop_assert_eq!(*v, expect, "element {}", e);
        }
    }

    /// Pointer arithmetic is mod-128 for any stride sequence.
    #[test]
    fn pointer_is_mod_128(strides in proptest::collection::vec(-127i16..=127, 1..50)) {
        let mut f = DRegFile::new();
        f.load(DReg::new(0), &[vec![0u8; 128]], false);
        let mut model = 0i32;
        for s in strides {
            f.mov(DReg::new(0), 1, s);
            model = (model + s as i32).rem_euclid(128);
            prop_assert_eq!(f.pointer(DReg::new(0)) as i32, model);
        }
    }

    /// `analyze_group` accepts exactly the geometrically valid groups:
    /// constant non-negative delta with the last slice inside 128 bytes.
    #[test]
    fn window_analysis_matches_geometry(
        base in 0x1000u64..0x8000,
        stride in 1i64..2048,
        vl in 1u8..=16,
        delta in 0i64..140,
        n in 2usize..40,
    ) {
        let streams: Vec<Stream2d> = (0..n)
            .map(|k| Stream2d::new(base + (delta as u64) * k as u64, stride, vl, 8))
            .collect();
        let valid = delta * (n as i64 - 1) + 8 <= 128;
        match analyze_group(&streams) {
            Some(w) => {
                prop_assert!(valid);
                prop_assert_eq!(w.delta, delta);
                prop_assert_eq!(w.covered, n);
                prop_assert_eq!(w.vl, vl);
                // Every stream's slice fits in the fetched width.
                prop_assert!(w.offset_of(n - 1) + 8 <= w.wwords as i64 * 8);
            }
            None => prop_assert!(!valid, "valid group rejected: delta={delta} n={n}"),
        }
    }

    /// The vectorizer preserves non-load instructions and converts loads
    /// one-for-one into moves, for arbitrary group shapes.
    #[test]
    fn vectorizer_conserves_instructions(
        delta in 0i64..20,
        loads in 2usize..40,
        stride in 16i64..2048,
    ) {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(stride);
        let b = tb.li(Gpr::new(1), 0x1_0000);
        for k in 0..loads {
            tb.vload(MomReg::new((k % 8) as u8), b, 0x1_0000 + (delta as u64) * k as u64);
        }
        let trace = tb.finish();
        let (out, report) = vectorize(&trace, &VectorizeConfig::default());

        let count = |t: &mom3d_isa::Trace, op: mom3d_isa::Opcode| {
            t.iter().filter(|i| i.opcode == op).count() as u64
        };
        let vloads_in = count(&trace, mom3d_isa::Opcode::VLoad);
        let vloads_out = count(&out, mom3d_isa::Opcode::VLoad);
        let movs = count(&out, mom3d_isa::Opcode::DvMov);
        let dvloads = count(&out, mom3d_isa::Opcode::DvLoad);

        // One move per converted load; untouched loads survive.
        prop_assert_eq!(movs, report.loads_converted);
        prop_assert_eq!(vloads_out, vloads_in - report.loads_converted);
        prop_assert_eq!(dvloads, report.dvloads_emitted);
        // Non-memory instructions are untouched.
        let scalars = |t: &mom3d_isa::Trace| {
            t.iter().filter(|i| !i.opcode.is_vector()).count()
        };
        prop_assert_eq!(scalars(&out), scalars(&trace));
        // Traffic accounting is consistent.
        if report.groups_converted > 0 {
            prop_assert!(report.words_3d > 0);
            prop_assert!(report.words_2d >= report.loads_converted * 8);
        }
    }

    /// Stream overlap is symmetric and bounded by the smaller footprint.
    #[test]
    fn overlap_symmetry(
        a_base in 0u64..4096,
        b_base in 0u64..4096,
        stride in 8i64..512,
        vl in 1u8..=16,
    ) {
        let a = Stream2d::new(a_base, stride, vl, 8);
        let b = Stream2d::new(b_base, stride, vl, 8);
        prop_assert_eq!(a.overlap_bytes(&b), b.overlap_bytes(&a));
        prop_assert_eq!(a.overlap_bytes(&a), a.total_bytes());
        if !a.may_overlap(&b) {
            prop_assert_eq!(a.overlap_bytes(&b), 0);
        }
    }
}
