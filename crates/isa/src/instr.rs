//! The trace instruction carrier: operands, memory descriptors, display.

use crate::op::{Opcode, Width};
use crate::regs::{AccReg, DReg, Gpr, MmxReg, MomReg, PReg};
use std::fmt;

/// Any architectural register, for operand lists and renaming.
///
/// `Vl` and `Vs` are the MOM vector-length and vector-stride registers;
/// they are renamed like ordinary registers (a `setvl` in flight does not
/// serialize the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// Scalar integer register.
    Gpr(Gpr),
    /// µSIMD 64-bit register.
    Mmx(MmxReg),
    /// MOM 2D vector register.
    Mom(MomReg),
    /// 3D vector register.
    D(DReg),
    /// 3D pointer register.
    P(PReg),
    /// Accumulator register.
    Acc(AccReg),
    /// Vector-length register.
    Vl,
    /// Vector-stride register.
    Vs,
}

impl Reg {
    /// Total number of distinct flat indices (for rename tables).
    pub const FLAT_COUNT: usize = 32 + 32 + 16 + 2 + 2 + 2 + 2;

    /// Maps the register to a dense index in `0..FLAT_COUNT`.
    pub fn flat_index(self) -> usize {
        match self {
            Reg::Gpr(r) => r.index() as usize,
            Reg::Mmx(r) => 32 + r.index() as usize,
            Reg::Mom(r) => 64 + r.index() as usize,
            Reg::D(r) => 80 + r.index() as usize,
            Reg::P(r) => 82 + r.index() as usize,
            Reg::Acc(r) => 84 + r.index() as usize,
            Reg::Vl => 86,
            Reg::Vs => 87,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Gpr(r) => write!(f, "{r}"),
            Reg::Mmx(r) => write!(f, "{r}"),
            Reg::Mom(r) => write!(f, "{r}"),
            Reg::D(r) => write!(f, "{r}"),
            Reg::P(r) => write!(f, "{r}"),
            Reg::Acc(r) => write!(f, "{r}"),
            Reg::Vl => write!(f, "vl"),
            Reg::Vs => write!(f, "vs"),
        }
    }
}

impl From<Gpr> for Reg {
    fn from(r: Gpr) -> Self {
        Reg::Gpr(r)
    }
}
impl From<MmxReg> for Reg {
    fn from(r: MmxReg) -> Self {
        Reg::Mmx(r)
    }
}
impl From<MomReg> for Reg {
    fn from(r: MomReg) -> Self {
        Reg::Mom(r)
    }
}
impl From<DReg> for Reg {
    fn from(r: DReg) -> Self {
        Reg::D(r)
    }
}
impl From<PReg> for Reg {
    fn from(r: PReg) -> Self {
        Reg::P(r)
    }
}
impl From<AccReg> for Reg {
    fn from(r: AccReg) -> Self {
        Reg::Acc(r)
    }
}

/// A fixed-capacity (4) inline operand list.
///
/// Traces hold millions of instructions, so operand lists avoid heap
/// allocation. Four slots cover the widest operand shapes in the ISA
/// (e.g. `vstore data, base, vl, vs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegList {
    regs: [Option<Reg>; 4],
}

impl RegList {
    /// Empty list.
    pub const fn new() -> Self {
        RegList { regs: [None; 4] }
    }

    /// Creates a list from up to four registers.
    pub fn from_slice(regs: &[Reg]) -> Self {
        let mut list = Self::new();
        for &r in regs {
            list.push(r);
        }
        list
    }

    /// Appends a register.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds four registers.
    pub fn push(&mut self, r: Reg) {
        for slot in &mut self.regs {
            if slot.is_none() {
                *slot = Some(r);
                return;
            }
        }
        panic!("operand list overflow (capacity 4)");
    }

    /// Number of registers held.
    pub fn len(&self) -> usize {
        self.regs.iter().filter(|r| r.is_some()).count()
    }

    /// True when no registers are held.
    pub fn is_empty(&self) -> bool {
        self.regs[0].is_none()
    }

    /// Iterates over the registers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().flatten().copied()
    }
}

impl FromIterator<Reg> for RegList {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> Self {
        let mut list = Self::new();
        for r in iter {
            list.push(r);
        }
        list
    }
}

/// The memory pattern class of an access (used for stats and port
/// scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemPattern {
    /// Single scalar access of 1–8 bytes.
    Scalar,
    /// Single µSIMD 64-bit access.
    Unit64,
    /// MOM 2D strided pattern: `count` elements of 8 bytes.
    Strided2d,
    /// 3D pattern: `count` blocks of `elem_bytes` each (up to 128 B).
    Strided3d,
}

/// A resolved (trace-time) memory access descriptor.
///
/// All accesses are expressed as `count` blocks of `elem_bytes` bytes,
/// with consecutive block base addresses `stride` bytes apart:
///
/// * scalar / MMX: `count = 1`;
/// * MOM 2D load/store: `count = VL`, `elem_bytes = 8`, `stride = VS`;
/// * `3dvload`: `count = VL`, `elem_bytes = W × 8`, `stride = VS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Base virtual byte address of block 0.
    pub base: u64,
    /// Byte distance between consecutive block bases (may be negative).
    pub stride: i64,
    /// Number of blocks (vector length for vector accesses).
    pub count: u8,
    /// Bytes per block.
    pub elem_bytes: u8,
    /// Pattern class.
    pub pattern: MemPattern,
}

impl MemAccess {
    /// Creates a scalar access of `bytes` bytes.
    pub fn scalar(base: u64, bytes: u8) -> Self {
        assert!((1..=8).contains(&bytes), "scalar access must be 1-8 bytes");
        MemAccess { base, stride: 0, count: 1, elem_bytes: bytes, pattern: MemPattern::Scalar }
    }

    /// Creates an MMX 64-bit access.
    pub fn unit64(base: u64) -> Self {
        MemAccess { base, stride: 0, count: 1, elem_bytes: 8, pattern: MemPattern::Unit64 }
    }

    /// Creates a MOM 2D strided access of `vl` 64-bit elements.
    pub fn strided2d(base: u64, stride: i64, vl: u8) -> Self {
        assert!(vl >= 1 && vl as usize <= crate::arch::MOM_ELEMS, "2D VL out of range");
        MemAccess { base, stride, count: vl, elem_bytes: 8, pattern: MemPattern::Strided2d }
    }

    /// Creates a 3D access of `vl` blocks of `wwords × 8` bytes.
    pub fn strided3d(base: u64, stride: i64, vl: u8, wwords: u8) -> Self {
        assert!(vl >= 1 && vl as usize <= crate::arch::DREG_ELEMS, "3D VL out of range");
        assert!(
            wwords >= 1 && wwords as usize * 8 <= crate::arch::DREG_ELEM_BYTES,
            "3D block width out of range"
        );
        MemAccess {
            base,
            stride,
            count: vl,
            elem_bytes: wwords * 8,
            pattern: MemPattern::Strided3d,
        }
    }

    /// Base address of block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.count`.
    #[inline]
    pub fn block_addr(&self, i: usize) -> u64 {
        assert!(i < self.count as usize, "block index out of range");
        (self.base as i64).wrapping_add(self.stride * i as u64 as i64) as u64
    }

    /// Iterates over `(address, len)` pairs, one per block.
    pub fn blocks(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        (0..self.count as usize).map(|i| (self.block_addr(i), self.elem_bytes as u32))
    }

    /// Total bytes touched (blocks may overlap; this sums block sizes).
    pub fn total_bytes(&self) -> u64 {
        self.count as u64 * self.elem_bytes as u64
    }

    /// Smallest closed-open `[lo, hi)` interval covering all blocks
    /// (for store-load conflict checks).
    pub fn envelope(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for (addr, len) in self.blocks() {
            lo = lo.min(addr);
            hi = hi.max(addr + len as u64);
        }
        (lo, hi)
    }

    /// True when the byte intervals of `self` and `other` may overlap.
    pub fn may_overlap(&self, other: &MemAccess) -> bool {
        let (a_lo, a_hi) = self.envelope();
        let (b_lo, b_hi) = other.envelope();
        a_lo < b_hi && b_lo < a_hi
    }
}

/// One dynamic (trace) instruction.
///
/// Vector state (`vl`, the stride and block geometry) is captured at
/// trace-generation time, mirroring how the original evaluation
/// instrumented binaries with ATOM; the architectural `Vl`/`Vs` registers
/// still appear in the operand lists so renaming sees the true
/// dependences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    /// Operation.
    pub opcode: Opcode,
    /// Destination registers (0–2: e.g. `3dvmov` writes a MOM register
    /// *and* renames its pointer register).
    pub dsts: RegList,
    /// Source registers.
    pub srcs: RegList,
    /// Immediate operand (shift amounts, added constants, pointer stride
    /// for `3dvmov`, `b` flag for `3dvload` as 0/1).
    pub imm: i64,
    /// Resolved memory access, for memory opcodes.
    pub mem: Option<MemAccess>,
    /// Captured vector length (1 for scalar/µSIMD instructions).
    pub vl: u8,
    /// Lane width at which the data is produced/consumed (drives the
    /// first-dimension statistics of Table 1).
    pub data_width: Width,
    /// Resolved branch direction (branches only).
    pub taken: bool,
}

impl Instruction {
    /// Creates a non-memory instruction with the given operands.
    pub fn op(opcode: Opcode, dsts: &[Reg], srcs: &[Reg]) -> Self {
        Instruction {
            opcode,
            dsts: RegList::from_slice(dsts),
            srcs: RegList::from_slice(srcs),
            imm: 0,
            mem: None,
            vl: 1,
            data_width: Width::D64,
            taken: false,
        }
    }

    /// Sets the immediate (builder style).
    pub fn with_imm(mut self, imm: i64) -> Self {
        self.imm = imm;
        self
    }

    /// Sets the memory descriptor (builder style).
    pub fn with_mem(mut self, mem: MemAccess) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Sets the captured vector length (builder style).
    pub fn with_vl(mut self, vl: u8) -> Self {
        self.vl = vl;
        self
    }

    /// Sets the data lane width (builder style).
    pub fn with_width(mut self, w: Width) -> Self {
        self.data_width = w;
        self
    }

    /// Number of packed scalar operations this instruction performs
    /// (lanes × elements) — the paper's "operations per instruction".
    pub fn packed_ops(&self) -> u64 {
        match self.opcode {
            Opcode::Usimd(_) => self.data_width.lanes() as u64,
            Opcode::VCompute(_) | Opcode::VReduce(_) => {
                self.data_width.lanes() as u64 * self.vl as u64
            }
            _ => 1,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        for r in self.dsts.iter() {
            write!(f, "{}{}", if first { " " } else { ", " }, r)?;
            first = false;
        }
        for r in self.srcs.iter() {
            write!(f, "{}{}", if first { " " } else { ", " }, r)?;
            first = false;
        }
        if let Some(m) = &self.mem {
            write!(f, ", [{:#x}", m.base)?;
            if m.count > 1 {
                write!(f, " +{}*{}", m.stride, m.count)?;
            }
            write!(f, " x{}B]", m.elem_bytes)?;
        }
        if self.imm != 0 {
            write!(f, ", #{}", self.imm)?;
        }
        if self.opcode.is_vector() {
            write!(f, " (vl={})", self.vl)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::IntOp;

    #[test]
    fn flat_indices_are_dense_and_unique() {
        let mut seen = [false; Reg::FLAT_COUNT];
        let mut all: Vec<Reg> = Vec::new();
        all.extend(Gpr::all().map(Reg::Gpr));
        all.extend(MmxReg::all().map(Reg::Mmx));
        all.extend(MomReg::all().map(Reg::Mom));
        all.extend(DReg::all().map(Reg::D));
        all.extend(PReg::all().map(Reg::P));
        all.extend(AccReg::all().map(Reg::Acc));
        all.push(Reg::Vl);
        all.push(Reg::Vs);
        assert_eq!(all.len(), Reg::FLAT_COUNT);
        for r in all {
            let i = r.flat_index();
            assert!(!seen[i], "duplicate flat index {i} for {r}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn reglist_push_iter() {
        let mut l = RegList::new();
        assert!(l.is_empty());
        l.push(Reg::Gpr(Gpr::new(1)));
        l.push(Reg::Vl);
        assert_eq!(l.len(), 2);
        let v: Vec<Reg> = l.iter().collect();
        assert_eq!(v, vec![Reg::Gpr(Gpr::new(1)), Reg::Vl]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn reglist_overflow_panics() {
        let mut l = RegList::new();
        for i in 0..5 {
            l.push(Reg::Gpr(Gpr::new(i)));
        }
    }

    #[test]
    fn strided2d_block_addresses() {
        let m = MemAccess::strided2d(0x1000, 640, 4);
        let addrs: Vec<u64> = m.blocks().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x1000, 0x1000 + 640, 0x1000 + 1280, 0x1000 + 1920]);
        assert_eq!(m.total_bytes(), 32);
    }

    #[test]
    fn negative_stride_walks_down() {
        let m = MemAccess::strided2d(0x1000, -16, 3);
        let addrs: Vec<u64> = m.blocks().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x1000, 0x1000 - 16, 0x1000 - 32]);
        assert_eq!(m.envelope(), (0x1000 - 32, 0x1000 + 8));
    }

    #[test]
    fn strided3d_geometry() {
        let m = MemAccess::strided3d(0x2000, 1, 16, 16);
        assert_eq!(m.elem_bytes, 128);
        assert_eq!(m.total_bytes(), 2048);
        // Overlapping blocks: stride 1 byte, 128-byte blocks.
        assert_eq!(m.envelope(), (0x2000, 0x2000 + 15 + 128));
    }

    #[test]
    fn overlap_detection() {
        let a = MemAccess::strided2d(0x1000, 64, 4);
        let b = MemAccess::scalar(0x1000 + 64, 4);
        let c = MemAccess::scalar(0x5000, 8);
        assert!(a.may_overlap(&b));
        assert!(!a.may_overlap(&c));
        assert!(b.may_overlap(&a));
    }

    #[test]
    #[should_panic(expected = "2D VL out of range")]
    fn vl_zero_rejected() {
        MemAccess::strided2d(0, 8, 0);
    }

    #[test]
    fn packed_ops_counts() {
        let v = Instruction::op(
            Opcode::VCompute(crate::op::UsimdOp::AddWrap(Width::B8)),
            &[Reg::Mom(MomReg::new(0))],
            &[Reg::Mom(MomReg::new(1)), Reg::Mom(MomReg::new(2))],
        )
        .with_vl(8)
        .with_width(Width::B8);
        assert_eq!(v.packed_ops(), 64);
        let s = Instruction::op(Opcode::IntAlu(IntOp::Add), &[Reg::Gpr(Gpr::new(0))], &[]);
        assert_eq!(s.packed_ops(), 1);
    }

    #[test]
    fn display_roundtrip_smoke() {
        let v = Instruction::op(
            Opcode::VLoad,
            &[Reg::Mom(MomReg::new(3))],
            &[Reg::Gpr(Gpr::new(4)), Reg::Vl, Reg::Vs],
        )
        .with_mem(MemAccess::strided2d(0x1_0000, 640, 8))
        .with_vl(8);
        let s = v.to_string();
        assert!(s.contains("vload"), "{s}");
        assert!(s.contains("mr3"), "{s}");
        assert!(s.contains("0x10000"), "{s}");
        assert!(s.contains("vl=8"), "{s}");
    }
}
