//! Architectural constants of the MOM + 3D machine (paper §4.1, §5.3).

/// Number of 64-bit elements in a MOM 2D vector register.
pub const MOM_ELEMS: usize = 16;

/// Bytes per MOM register element.
pub const MOM_ELEM_BYTES: usize = 8;

/// Total bytes in one MOM register (16 × 64 bit = 128 B).
pub const MOM_REG_BYTES: usize = MOM_ELEMS * MOM_ELEM_BYTES;

/// Number of logical MOM 2D vector registers.
pub const MOM_LOGICAL_REGS: usize = 16;

/// Number of physical MOM registers in the modeled pipeline (Table 3).
pub const MOM_PHYSICAL_REGS: usize = 36;

/// Logical µSIMD (MMX-like) registers of the MMX-style configuration.
pub const MMX_LOGICAL_REGS: usize = 32;

/// Physical µSIMD registers of the MMX-style configuration (Table 3).
pub const MMX_PHYSICAL_REGS: usize = 80;

/// Number of elements in a 3D vector register.
pub const DREG_ELEMS: usize = 16;

/// Bytes per 3D vector register element (16 × 64 bit — one L2 line).
pub const DREG_ELEM_BYTES: usize = 128;

/// Total bytes in one 3D vector register (2 KiB).
pub const DREG_BYTES: usize = DREG_ELEMS * DREG_ELEM_BYTES;

/// Logical 3D vector registers added by the extension.
pub const DREG_LOGICAL_REGS: usize = 2;

/// Physical 3D vector registers (Table 3).
pub const DREG_PHYSICAL_REGS: usize = 4;

/// Physical 3D pointer registers (Table 3: 2 logical / 8 physical).
pub const PREG_PHYSICAL_REGS: usize = 8;

/// Bits in a 3D pointer register (enough to address 128 bytes).
pub const PREG_BITS: u32 = 7;

/// Logical accumulator registers (Table 3: 2 logical / 4 physical).
pub const ACC_LOGICAL_REGS: usize = 2;

/// Accumulator register width in bits (Table 3).
pub const ACC_BITS: u32 = 192;

/// Vector lanes (clusters) of the MOM pipeline and of the 3D register
/// file (§5.3: "one SIMD functional unit with four lanes").
pub const LANES: usize = 4;

/// Number of scalar general-purpose registers we model.
pub const GPR_COUNT: usize = 32;

/// Maximum legal vector length.
pub const VL_MAX: u8 = MOM_ELEMS as u8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper() {
        // "a 3D vector register contains 16 elements of 128 bytes (16 x 64
        // bits), enough to fit a typical L2 cache line"
        assert_eq!(DREG_ELEM_BYTES, 128);
        assert_eq!(DREG_BYTES, 2048);
        // "Each 2D vector register is composed of 16 MMX-like elements of
        // 64-bit each."
        assert_eq!(MOM_REG_BYTES, 128);
        // 7-bit pointer addresses any byte of a 128-byte element.
        assert_eq!(1usize << PREG_BITS, DREG_ELEM_BYTES);
    }

    #[test]
    fn register_counts_match_table3() {
        assert_eq!((MMX_LOGICAL_REGS, MMX_PHYSICAL_REGS), (32, 80));
        assert_eq!((MOM_LOGICAL_REGS, MOM_PHYSICAL_REGS), (16, 36));
        assert_eq!((DREG_LOGICAL_REGS, DREG_PHYSICAL_REGS), (2, 4));
        assert_eq!(PREG_PHYSICAL_REGS, 8);
        assert_eq!(ACC_BITS, 192);
    }
}
