//! Dynamic instruction traces and the code-generation builder.

use crate::arch;
use crate::instr::{Instruction, MemAccess, Reg};
use crate::op::{ExecClass, IntOp, Opcode, ReduceOp, UsimdOp, Width};
use crate::regs::{AccReg, DReg, Gpr, MmxReg, MomReg};
use std::fmt;

/// A dynamic instruction trace, as produced by the workload generators
/// (the moral equivalent of the paper's ATOM-instrumented runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    instrs: Vec<Instruction>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions in program order.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: Instruction) {
        self.instrs.push(instr);
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// Computes summary statistics (instruction mix, Table 1 vector
    /// lengths, memory footprint).
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }
}

impl FromIterator<Instruction> for Trace {
    fn from_iter<I: IntoIterator<Item = Instruction>>(iter: I) -> Self {
        Trace { instrs: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

/// Aggregate statistics of a trace.
///
/// `dim1_*` is the sub-word (µSIMD) dimension, `dim2_*` the MOM vector
/// dimension, `dim3_*` the 3D dimension — the three rows of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: u64,
    /// Scalar integer + branch instructions.
    pub scalar: u64,
    /// µSIMD compute instructions.
    pub usimd: u64,
    /// MOM vector compute/reduce instructions.
    pub vcompute: u64,
    /// Scalar/MMX memory instructions.
    pub mem_scalar: u64,
    /// MOM 2D vector memory instructions.
    pub mem_2d: u64,
    /// 3D vector loads.
    pub mem_3d: u64,
    /// `3dvmov` transfers.
    pub mov_3d: u64,
    /// Total packed scalar operations (lanes × elements summed).
    pub packed_ops: u64,
    /// Sum of µSIMD lane counts over memory instructions (dimension 1).
    pub dim1_lanes_sum: u64,
    /// Memory instructions counted in `dim1_lanes_sum`.
    pub dim1_count: u64,
    /// Sum of VL over vector memory instructions (dimension 2; 3D loads
    /// contribute their VL here too — their elements are the second
    /// dimension's rows).
    pub dim2_vl_sum: u64,
    /// Vector memory instructions counted in `dim2_vl_sum`.
    pub dim2_count: u64,
    /// Total `3dvmov` slices served by 3D loads (dimension 3: each move
    /// extracts one 2D stream from the loaded 3D pattern).
    pub dim3_vl_sum: u64,
    /// 3D loads counted.
    pub dim3_count: u64,
    /// Maximum slices served by a single 3D load.
    pub dim3_vl_max: u64,
    /// Total bytes requested by memory instructions.
    pub bytes_accessed: u64,
}

impl TraceStats {
    fn from_trace(trace: &Trace) -> Self {
        let mut s = TraceStats::default();
        // Slices served by the most recent 3dvload of each 3D register.
        let mut open_loads: [Option<usize>; crate::arch::DREG_LOGICAL_REGS] = Default::default();
        let mut served: Vec<u64> = Vec::new();
        for i in trace.iter() {
            s.total += 1;
            s.packed_ops += i.packed_ops();
            match i.opcode.class() {
                ExecClass::Int => s.scalar += 1,
                ExecClass::Simd => {
                    if i.opcode.is_vector() {
                        s.vcompute += 1;
                    } else {
                        s.usimd += 1;
                    }
                }
                ExecClass::Mem => s.mem_scalar += 1,
                ExecClass::VecMem => {}
                ExecClass::Mov3d => s.mov_3d += 1,
            }
            match i.opcode {
                Opcode::DvLoad => {
                    if let Some(Reg::D(dr)) = i.dsts.iter().find(|r| matches!(r, Reg::D(_))) {
                        served.push(0);
                        open_loads[dr.index() as usize] = Some(served.len() - 1);
                    }
                }
                Opcode::DvMov => {
                    if let Some(Reg::D(dr)) = i.srcs.iter().find(|r| matches!(r, Reg::D(_))) {
                        if let Some(slot) = open_loads[dr.index() as usize] {
                            served[slot] += 1;
                        }
                    }
                    // The move delivers data at a µSIMD width, standing in
                    // for the 2D load it replaced (dimension 1).
                    s.dim1_lanes_sum += i.data_width.lanes() as u64;
                    s.dim1_count += 1;
                }
                _ => {}
            }
            if let Some(m) = &i.mem {
                s.bytes_accessed += m.total_bytes();
                match i.opcode {
                    Opcode::VLoad | Opcode::VStore => {
                        s.mem_2d += 1;
                        s.dim1_lanes_sum += i.data_width.lanes() as u64;
                        s.dim1_count += 1;
                        s.dim2_vl_sum += i.vl as u64;
                        s.dim2_count += 1;
                    }
                    Opcode::DvLoad => {
                        s.mem_3d += 1;
                        s.dim2_vl_sum += i.vl as u64;
                        s.dim2_count += 1;
                    }
                    Opcode::LoadMmx | Opcode::StoreMmx => {
                        s.dim1_lanes_sum += i.data_width.lanes() as u64;
                        s.dim1_count += 1;
                    }
                    _ => {}
                }
            }
        }
        s.dim3_count = served.len() as u64;
        s.dim3_vl_sum = served.iter().sum();
        s.dim3_vl_max = served.iter().copied().max().unwrap_or(0);
        s
    }

    /// Average µSIMD lanes per vector/MMX memory instruction (Table 1,
    /// first dimension).
    pub fn avg_dim1(&self) -> f64 {
        ratio(self.dim1_lanes_sum, self.dim1_count)
    }

    /// Average VL per vector memory instruction (Table 1, second
    /// dimension).
    pub fn avg_dim2(&self) -> f64 {
        ratio(self.dim2_vl_sum, self.dim2_count)
    }

    /// Average 2D streams served per 3D load (Table 1, third dimension),
    /// `None` when the trace has no 3D loads.
    pub fn avg_dim3(&self) -> Option<f64> {
        (self.dim3_count > 0).then(|| ratio(self.dim3_vl_sum, self.dim3_count))
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs (scalar {}, usimd {}, vcompute {}, mem {}+{}2D+{}3D, 3dvmov {})",
            self.total,
            self.scalar,
            self.usimd,
            self.vcompute,
            self.mem_scalar,
            self.mem_2d,
            self.mem_3d,
            self.mov_3d
        )
    }
}

/// Code-generation builder for instruction traces.
///
/// Tracks the architectural `VL`/`VS` values so vector instructions
/// capture them, and emits the `setvl`/`setvs` instructions that a real
/// compiler would schedule. All memory addresses are resolved trace-time
/// values; the register carrying the address is still named so that the
/// timing simulator sees the address-generation dependence.
///
/// ```
/// use mom3d_isa::{TraceBuilder, Gpr, MomReg};
/// let mut tb = TraceBuilder::new();
/// tb.set_vl(4);
/// tb.set_vs(64);
/// let b = tb.li(Gpr::new(2), 0x1000);
/// tb.vload(MomReg::new(0), b, 0x1000);
/// assert_eq!(tb.finish().stats().mem_2d, 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    vl: u8,
    vs: i64,
}

impl TraceBuilder {
    /// New builder with `VL = 16`, `VS = 8` (dense pattern).
    pub fn new() -> Self {
        TraceBuilder { trace: Trace::new(), vl: arch::VL_MAX, vs: 8 }
    }

    /// Consumes the builder and returns the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    /// Current vector length.
    pub fn vl(&self) -> u8 {
        self.vl
    }

    /// Current vector stride in bytes.
    pub fn vs(&self) -> i64 {
        self.vs
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, instr: Instruction) {
        self.trace.push(instr);
    }

    // ---- scalar helpers -------------------------------------------------

    /// `mov dst, #imm` — load immediate; returns `dst` for chaining.
    pub fn li(&mut self, dst: Gpr, imm: i64) -> Gpr {
        self.push(Instruction::op(Opcode::IntAlu(IntOp::Mov), &[dst.into()], &[]).with_imm(imm));
        dst
    }

    /// Three-register scalar ALU op.
    pub fn alu(&mut self, op: IntOp, dst: Gpr, a: Gpr, b: Gpr) -> Gpr {
        self.push(Instruction::op(Opcode::IntAlu(op), &[dst.into()], &[a.into(), b.into()]));
        dst
    }

    /// Register–immediate scalar ALU op.
    pub fn alui(&mut self, op: IntOp, dst: Gpr, a: Gpr, imm: i64) -> Gpr {
        self.push(Instruction::op(Opcode::IntAlu(op), &[dst.into()], &[a.into()]).with_imm(imm));
        dst
    }

    /// Conditional branch on `cond` with the resolved direction `taken`.
    pub fn branch(&mut self, cond: Gpr, taken: bool) {
        let mut i = Instruction::op(Opcode::Branch, &[], &[cond.into()]);
        i.taken = taken;
        self.push(i);
    }

    /// Scalar load of `bytes` bytes at `addr` into `dst`; `addr_reg`
    /// carries the address dependence.
    pub fn load_scalar(&mut self, dst: Gpr, addr_reg: Gpr, addr: u64, bytes: u8) -> Gpr {
        self.push(
            Instruction::op(Opcode::LoadScalar, &[dst.into()], &[addr_reg.into()])
                .with_mem(MemAccess::scalar(addr, bytes)),
        );
        dst
    }

    /// Scalar store of `bytes` bytes of `src` at `addr`.
    pub fn store_scalar(&mut self, src: Gpr, addr_reg: Gpr, addr: u64, bytes: u8) {
        self.push(
            Instruction::op(Opcode::StoreScalar, &[], &[src.into(), addr_reg.into()])
                .with_mem(MemAccess::scalar(addr, bytes)),
        );
    }

    // ---- µSIMD (MMX) helpers --------------------------------------------

    /// MMX 64-bit load.
    pub fn movq_load(&mut self, dst: MmxReg, addr_reg: Gpr, addr: u64, width: Width) -> MmxReg {
        self.push(
            Instruction::op(Opcode::LoadMmx, &[dst.into()], &[addr_reg.into()])
                .with_mem(MemAccess::unit64(addr))
                .with_width(width),
        );
        dst
    }

    /// MMX 64-bit store.
    pub fn movq_store(&mut self, src: MmxReg, addr_reg: Gpr, addr: u64) {
        self.push(
            Instruction::op(Opcode::StoreMmx, &[], &[src.into(), addr_reg.into()])
                .with_mem(MemAccess::unit64(addr)),
        );
    }

    /// Two-source µSIMD op.
    pub fn usimd2(&mut self, op: UsimdOp, dst: MmxReg, a: MmxReg, b: MmxReg) -> MmxReg {
        let w = usimd_width(op);
        self.push(
            Instruction::op(Opcode::Usimd(op), &[dst.into()], &[a.into(), b.into()]).with_width(w),
        );
        dst
    }

    /// One-source-plus-immediate µSIMD op (shifts).
    pub fn usimd2i(&mut self, op: UsimdOp, dst: MmxReg, a: MmxReg, imm: i64) -> MmxReg {
        let w = usimd_width(op);
        self.push(
            Instruction::op(Opcode::Usimd(op), &[dst.into()], &[a.into()])
                .with_imm(imm)
                .with_width(w),
        );
        dst
    }

    /// Move a µSIMD register into a scalar register (e.g. SAD result).
    pub fn mmx_to_gpr(&mut self, dst: Gpr, src: MmxReg) -> Gpr {
        self.push(Instruction::op(Opcode::IntAlu(IntOp::Mov), &[dst.into()], &[src.into()]));
        dst
    }

    // ---- MOM vector helpers ----------------------------------------------

    /// Emits `setvl` and records the new vector length.
    ///
    /// # Panics
    ///
    /// Panics if `vl` is zero or exceeds [`arch::VL_MAX`].
    pub fn set_vl(&mut self, vl: u8) {
        assert!((1..=arch::VL_MAX).contains(&vl), "VL must be in 1..={}", arch::VL_MAX);
        if vl == self.vl && !self.trace.is_empty() {
            return; // compilers hoist redundant setvl
        }
        self.vl = vl;
        self.push(Instruction::op(Opcode::SetVl, &[Reg::Vl], &[]).with_imm(vl as i64));
    }

    /// Emits `setvs` and records the new vector stride (bytes).
    pub fn set_vs(&mut self, vs: i64) {
        if vs == self.vs && !self.trace.is_empty() {
            return;
        }
        self.vs = vs;
        self.push(Instruction::op(Opcode::SetVs, &[Reg::Vs], &[]).with_imm(vs));
    }

    /// MOM 2D vector load of `vl()` elements at the current stride.
    pub fn vload(&mut self, dst: MomReg, addr_reg: Gpr, addr: u64) -> MomReg {
        self.vload_w(dst, addr_reg, addr, Width::B8)
    }

    /// MOM 2D vector load, annotating the consumed lane width.
    pub fn vload_w(&mut self, dst: MomReg, addr_reg: Gpr, addr: u64, width: Width) -> MomReg {
        self.push(
            Instruction::op(Opcode::VLoad, &[dst.into()], &[addr_reg.into(), Reg::Vl, Reg::Vs])
                .with_mem(MemAccess::strided2d(addr, self.vs, self.vl))
                .with_vl(self.vl)
                .with_width(width),
        );
        dst
    }

    /// MOM 2D vector store.
    pub fn vstore(&mut self, src: MomReg, addr_reg: Gpr, addr: u64) {
        self.vstore_w(src, addr_reg, addr, Width::B8)
    }

    /// MOM 2D vector store, annotating the lane width.
    pub fn vstore_w(&mut self, src: MomReg, addr_reg: Gpr, addr: u64, width: Width) {
        self.push(
            Instruction::op(
                Opcode::VStore,
                &[],
                &[src.into(), addr_reg.into(), Reg::Vl, Reg::Vs],
            )
            .with_mem(MemAccess::strided2d(addr, self.vs, self.vl))
            .with_vl(self.vl)
            .with_width(width),
        );
    }

    /// Two-source MOM vector compute.
    pub fn vop2(&mut self, op: UsimdOp, dst: MomReg, a: MomReg, b: MomReg) -> MomReg {
        let w = usimd_width(op);
        self.push(
            Instruction::op(Opcode::VCompute(op), &[dst.into()], &[a.into(), b.into(), Reg::Vl])
                .with_vl(self.vl)
                .with_width(w),
        );
        dst
    }

    /// One-source-plus-immediate MOM vector compute (shifts).
    pub fn vop2i(&mut self, op: UsimdOp, dst: MomReg, a: MomReg, imm: i64) -> MomReg {
        let w = usimd_width(op);
        self.push(
            Instruction::op(Opcode::VCompute(op), &[dst.into()], &[a.into(), Reg::Vl])
                .with_imm(imm)
                .with_vl(self.vl)
                .with_width(w),
        );
        dst
    }

    /// Vector reduction of `a` (and `b` for two-source reductions like
    /// SAD) into accumulator `acc`.
    pub fn vreduce(&mut self, op: ReduceOp, acc: AccReg, a: MomReg, b: Option<MomReg>) {
        let mut srcs = vec![Reg::Mom(a)];
        if let Some(b) = b {
            srcs.push(Reg::Mom(b));
        }
        srcs.push(Reg::Acc(acc));
        srcs.push(Reg::Vl);
        let w = match op {
            ReduceOp::SadAccumU8 => Width::B8,
            ReduceOp::SumU(w) | ReduceOp::SumS(w) => w,
            ReduceOp::DotS16 => Width::H16,
        };
        self.push(
            Instruction::op(Opcode::VReduce(op), &[Reg::Acc(acc)], &[])
                .with_vl(self.vl)
                .with_width(w)
                .with_srcs(srcs),
        );
    }

    /// Clears an accumulator (modeled as a reduce with VL captured 1).
    pub fn clear_acc(&mut self, acc: AccReg) {
        self.push(
            Instruction::op(Opcode::IntAlu(IntOp::Mov), &[Reg::Acc(acc)], &[]).with_imm(0),
        );
    }

    /// Reads the low 64 bits of `acc` into `dst`.
    pub fn rdacc(&mut self, dst: Gpr, acc: AccReg) -> Gpr {
        self.push(Instruction::op(Opcode::ReadAcc, &[dst.into()], &[Reg::Acc(acc)]));
        dst
    }

    // ---- 3D extension helpers ---------------------------------------------

    /// `3dvload dreg ← (addr), stride, W=wwords, b=from_end`.
    ///
    /// Loads `vl()` blocks of `wwords × 64` bits into the 3D register and
    /// initializes its pointer register to the beginning (or end, when
    /// `from_end`) of the loaded data.
    pub fn dvload(
        &mut self,
        dst: DReg,
        addr_reg: Gpr,
        addr: u64,
        stride: i64,
        wwords: u8,
        from_end: bool,
    ) -> DReg {
        self.push(
            Instruction::op(
                Opcode::DvLoad,
                &[dst.into(), Reg::P(dst.pointer())],
                &[addr_reg.into(), Reg::Vl],
            )
            .with_mem(MemAccess::strided3d(addr, stride, self.vl, wwords))
            .with_vl(self.vl)
            .with_imm(from_end as i64),
        );
        dst
    }

    /// `3dvmov mom ← dreg, Ps=pstride`.
    ///
    /// Moves `vl()` byte-aligned 64-bit slices (one per 3D element,
    /// starting at the pointer offset) into `dst`, then adds `pstride`
    /// to the pointer register (renaming it).
    pub fn dvmov(&mut self, dst: MomReg, src: DReg, pstride: i16) -> MomReg {
        self.dvmov_w(dst, src, pstride, Width::B8)
    }

    /// `3dvmov` with explicit lane-width annotation.
    pub fn dvmov_w(&mut self, dst: MomReg, src: DReg, pstride: i16, width: Width) -> MomReg {
        let p = Reg::P(src.pointer());
        self.push(
            Instruction::op(Opcode::DvMov, &[dst.into(), p], &[src.into(), p, Reg::Vl])
                .with_vl(self.vl)
                .with_imm(pstride as i64)
                .with_width(width),
        );
        dst
    }
}

impl Instruction {
    fn with_srcs(mut self, srcs: Vec<Reg>) -> Self {
        self.srcs = srcs.into_iter().collect();
        self
    }
}

fn usimd_width(op: UsimdOp) -> Width {
    match op {
        UsimdOp::AddWrap(w)
        | UsimdOp::SubWrap(w)
        | UsimdOp::AddSatU(w)
        | UsimdOp::SubSatU(w)
        | UsimdOp::AddSatS(w)
        | UsimdOp::SubSatS(w)
        | UsimdOp::MinU(w)
        | UsimdOp::MaxU(w)
        | UsimdOp::MinS(w)
        | UsimdOp::MaxS(w)
        | UsimdOp::AbsDiffU(w)
        | UsimdOp::AvgU(w)
        | UsimdOp::MulLow(w)
        | UsimdOp::Shl(w)
        | UsimdOp::ShrL(w)
        | UsimdOp::ShrA(w)
        | UsimdOp::CmpEq(w)
        | UsimdOp::CmpGtS(w)
        | UsimdOp::UnpackLo(w)
        | UsimdOp::UnpackHi(w) => w,
        UsimdOp::SadU8 | UsimdOp::PackUs16To8 | UsimdOp::PackSs16To8 => Width::B8,
        UsimdOp::MulHighS16 | UsimdOp::MaddS16 | UsimdOp::PackSs32To16 => Width::H16,
        UsimdOp::And | UsimdOp::Or | UsimdOp::Xor | UsimdOp::AndNot => Width::D64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vl_vs() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        assert_eq!(tb.vl(), 8);
        assert_eq!(tb.vs(), 640);
        let b = tb.li(Gpr::new(1), 0x1000);
        tb.vload(MomReg::new(0), b, 0x1000);
        let t = tb.finish();
        let v = t.instrs().last().unwrap();
        assert_eq!(v.vl, 8);
        assert_eq!(v.mem.unwrap().stride, 640);
    }

    #[test]
    fn redundant_setvl_is_elided() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        let n = tb.len();
        tb.set_vl(8);
        assert_eq!(tb.len(), n);
        tb.set_vl(4);
        assert_eq!(tb.len(), n + 1);
    }

    #[test]
    fn dvload_writes_register_and_pointer() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(16);
        let b = tb.li(Gpr::new(1), 0x2000);
        tb.dvload(DReg::new(0), b, 0x2000, 640, 16, false);
        let t = tb.finish();
        let i = t.instrs().last().unwrap();
        assert_eq!(i.opcode, Opcode::DvLoad);
        let dsts: Vec<Reg> = i.dsts.iter().collect();
        assert!(dsts.contains(&Reg::D(DReg::new(0))));
        assert!(dsts.contains(&Reg::P(DReg::new(0).pointer())));
        assert_eq!(i.mem.unwrap().elem_bytes, 128);
    }

    #[test]
    fn dvmov_reads_and_renames_pointer() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.dvmov(MomReg::new(2), DReg::new(1), 8);
        let t = tb.finish();
        let i = t.instrs().last().unwrap();
        let p = Reg::P(DReg::new(1).pointer());
        assert!(i.dsts.iter().any(|r| r == p));
        assert!(i.srcs.iter().any(|r| r == p));
        assert_eq!(i.imm, 8);
    }

    #[test]
    fn stats_capture_table1_dimensions() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.set_vs(640);
        let b = tb.li(Gpr::new(1), 0x1000);
        tb.vload_w(MomReg::new(0), b, 0x1000, Width::B8); // 8 lanes
        tb.vload_w(MomReg::new(1), b, 0x2000, Width::H16); // 4 lanes
        // First 3D load serves 3 slices, second serves 1.
        tb.dvload(DReg::new(0), b, 0x3000, 1, 16, false);
        tb.dvmov(MomReg::new(2), DReg::new(0), 1);
        tb.dvmov(MomReg::new(3), DReg::new(0), 1);
        tb.dvmov(MomReg::new(4), DReg::new(0), 1);
        tb.dvload(DReg::new(0), b, 0x4000, 1, 16, false);
        tb.dvmov(MomReg::new(5), DReg::new(0), 1);
        let s = tb.finish().stats();
        assert_eq!(s.mem_2d, 2);
        assert_eq!(s.mem_3d, 2);
        // Two 2D loads (8 + 4 lanes) plus four B8 dvmovs (8 lanes each).
        assert!((s.avg_dim1() - 44.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.avg_dim2(), 8.0); // all four vector memory ops VL=8
        assert_eq!(s.avg_dim3(), Some(2.0)); // (3 + 1) / 2 slices per load
        assert_eq!(s.dim3_vl_max, 3);
        assert_eq!(s.mov_3d, 4);
    }

    #[test]
    fn stats_no_3d_is_none() {
        let mut tb = TraceBuilder::new();
        let b = tb.li(Gpr::new(0), 0);
        tb.vload(MomReg::new(0), b, 0);
        assert_eq!(tb.finish().stats().avg_dim3(), None);
    }

    #[test]
    fn instruction_mix_counts() {
        let mut tb = TraceBuilder::new();
        let a = tb.li(Gpr::new(0), 1);
        let b = tb.li(Gpr::new(1), 2);
        tb.alu(IntOp::Add, Gpr::new(2), a, b);
        tb.branch(Gpr::new(2), true);
        tb.movq_load(MmxReg::new(0), a, 0x100, Width::B8);
        tb.usimd2(UsimdOp::AddWrap(Width::B8), MmxReg::new(1), MmxReg::new(0), MmxReg::new(0));
        let s = tb.finish().stats();
        assert_eq!(s.scalar, 4);
        assert_eq!(s.mem_scalar, 1);
        assert_eq!(s.usimd, 1);
        assert_eq!(s.total, 6);
    }

    #[test]
    fn vreduce_reads_accumulator_and_sources() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(8);
        tb.vreduce(ReduceOp::SadAccumU8, AccReg::new(0), MomReg::new(0), Some(MomReg::new(1)));
        let t = tb.finish();
        let i = t.instrs().last().unwrap();
        assert_eq!(i.dsts.iter().next(), Some(Reg::Acc(AccReg::new(0))));
        let srcs: Vec<Reg> = i.srcs.iter().collect();
        assert!(srcs.contains(&Reg::Mom(MomReg::new(0))));
        assert!(srcs.contains(&Reg::Mom(MomReg::new(1))));
        assert!(srcs.contains(&Reg::Acc(AccReg::new(0))));
    }

    #[test]
    fn packed_ops_accumulate() {
        let mut tb = TraceBuilder::new();
        tb.set_vl(16);
        tb.vop2(UsimdOp::AddWrap(Width::B8), MomReg::new(0), MomReg::new(1), MomReg::new(2));
        let s = tb.finish().stats();
        // setvl (1) + vector op (16 elements x 8 lanes).
        assert_eq!(s.packed_ops, 1 + 128);
    }
}
